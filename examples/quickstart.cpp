// Quickstart: binary consensus among 1000 crash-prone nodes.
//
// Builds the paper's Few-Crashes-Consensus (Figure 3: Almost-Everywhere-
// Agreement on an expander among the 5t "little" nodes, then
// Spread-Common-Value to everyone), runs it against a random crash
// adversary, and prints the outcome and the communication bill.
//
//   ./examples/quickstart [n] [t]
#include <cstdio>
#include <cstdlib>

#include "core/consensus.hpp"
#include "core/params.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"

int main(int argc, char** argv) {
  using namespace lft;

  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 1000;
  const std::int64_t t = argc > 2 ? std::atoll(argv[2]) : n / 10;

  // Every node gets a random binary input.
  Rng rng(2024);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));

  // Protocol parameters: overlay degrees, probing thresholds, phase counts.
  const auto params = core::ConsensusParams::practical(n, t);

  // An adversary that crashes t nodes at random times (clean crashes).
  auto adversary = sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t, 0.0, 42));

  const auto outcome = core::run_few_crashes_consensus(params, inputs, std::move(adversary));

  std::printf("consensus among n=%d nodes with up to t=%lld crashes\n", n,
              static_cast<long long>(t));
  std::printf("  decision     : %s\n",
              outcome.decision ? std::to_string(*outcome.decision).c_str() : "(none)");
  std::printf("  agreement    : %s\n", outcome.agreement ? "ok" : "VIOLATED");
  std::printf("  validity     : %s\n", outcome.validity ? "ok" : "VIOLATED");
  std::printf("  termination  : %s\n", outcome.termination ? "ok" : "VIOLATED");
  std::printf("  rounds       : %lld  (Theorem 7: O(t + log n))\n",
              static_cast<long long>(outcome.report.rounds));
  std::printf("  messages     : %lld\n",
              static_cast<long long>(outcome.report.metrics.messages_total));
  std::printf("  bits         : %lld  (Theorem 7: O(n + t log t))\n",
              static_cast<long long>(outcome.report.metrics.bits_total));
  std::printf("  crashed      : %lld nodes\n",
              static_cast<long long>(outcome.report.crashed_count()));
  return outcome.all_good() ? 0 : 1;
}
