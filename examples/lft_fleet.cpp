// Fleet sweep driver: expands registered scenarios across seed and size axes
// and executes the resulting instances over the instance-multiplexed
// FleetRunner (src/sim/fleet.hpp).
//
//   lft_fleet --list
//   lft_fleet (--scenario=name[,name...] | --all)
//             [--seeds=N] [--seed-base=B] [--sizes=a,b,c] [--threads=T]
//             [--verify-serial=K] [--json=PATH]
//
// Every (scenario, seed, size) instance runs serially on one fleet worker,
// so its Report is bit-identical to running it alone; --verify-serial=K
// re-runs K spot-check instances one-at-a-time and fails on any fingerprint
// mismatch — and on a mismatch it re-runs the instance twice under trace
// recording and reports the first divergent round and digest component
// (forensics::diff) instead of only the failing fingerprint. The summary
// aggregates per scenario (p50/p95 rounds, messages, per-instance wall
// time) plus fleet totals (instances/sec, work steals, scratch
// adoption/recycle counts); --json=PATH writes one "fleet" row, one
// "aggregate" row per scenario, and one "instance" row per execution (with
// its fingerprint) in the BENCH_*.json artifact schema. Exit code is
// nonzero if any instance's invariant (or the serial spot check) fails.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "forensics/replay.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fleet.hpp"

namespace {

using lft::NodeId;
using lft::bench::JsonRows;
using lft::bench::WallTimer;
using lft::scenarios::all_scenarios;
using lft::scenarios::Scenario;
using lft::scenarios::SweepItem;
using lft::scenarios::SweepOutcome;

void print_usage() {
  std::printf(
      "usage: lft_fleet --list\n"
      "       lft_fleet (--scenario=name[,name...] | --all)\n"
      "                 [--seeds=N] [--seed-base=B] [--sizes=a,b,c] [--threads=T]\n"
      "                 [--verify-serial=K] [--json=PATH]\n");
}

void list_scenarios() {
  std::printf("%-28s %-14s %-10s %6s %5s  %s\n", "name", "protocol", "fault", "n", "t",
              "description");
  for (const auto& s : all_scenarios()) {
    std::printf("%-28s %-14s %-10s %6d %5lld  %s\n", s.name.c_str(), s.protocol.c_str(),
                s.fault_kind.c_str(), s.n, static_cast<long long>(s.t),
                s.description.c_str());
  }
}

struct Options {
  bool list = false;
  bool all = false;
  std::int64_t seeds = 8;
  std::uint64_t seed_base = 1;
  int threads = 4;
  std::int64_t verify_serial = 0;
  std::vector<std::string> names;
  std::vector<NodeId> sizes;
  std::string json_path;
};

bool parse_args(int argc, char** argv, Options& opt) {
  return lft::cli::ArgParser(argc, argv)
      .on_flag("--list", opt.list)
      .on_flag("--all", opt.all)
      .on_csv("--scenario", opt.names)
      .on_i64("--seeds", opt.seeds, 1)
      .on_u64("--seed-base", opt.seed_base)
      .on_value("--sizes",
                [&opt](const std::string& csv) {
                  for (const auto& part : lft::cli::split_csv(csv)) {
                    const long size = std::strtol(part.c_str(), nullptr, 10);
                    if (size < 8) return false;
                    opt.sizes.push_back(static_cast<NodeId>(size));
                  }
                  return true;
                })
      .on_int("--threads", opt.threads, 1)
      .on_value(
          "--verify-serial",
          [&opt](const std::string& value) {
            opt.verify_serial = value.empty() ? 8 : std::strtoll(value.c_str(), nullptr, 10);
            return true;
          },
          /*allow_bare=*/true)
      .on_str("--json", opt.json_path)
      .parse();
}

/// Nearest-rank percentile of a sorted sample: the smallest element with at
/// least p% of the sample at or below it (p in [0, 100]).
template <class T>
T percentile(const std::vector<T>& sorted, double p) {
  if (sorted.empty()) return T{};
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size())) - 1.0;
  const auto index = static_cast<std::size_t>(std::max(0.0, rank));
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    print_usage();
    return 2;
  }
  if (opt.list) {
    list_scenarios();
    return 0;
  }
  std::vector<const Scenario*> selected;
  if (opt.all) {
    for (const auto& s : all_scenarios()) selected.push_back(&s);
  } else {
    for (const auto& name : opt.names) {
      const Scenario* s = lft::scenarios::find_scenario(name);
      if (s == nullptr) {
        std::fprintf(stderr, "unknown scenario: %s (see --list)\n", name.c_str());
        return 2;
      }
      // Dedupe repeated names (first mention wins) so the per-scenario
      // aggregation below counts every instance exactly once.
      if (std::find(selected.begin(), selected.end(), s) == selected.end()) {
        selected.push_back(s);
      }
    }
  }
  if (selected.empty()) {
    print_usage();
    return 2;
  }

  // Expand the seed x size grid for every selected scenario into one mixed
  // instance queue.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(opt.seeds));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = opt.seed_base + static_cast<std::uint64_t>(i);
  }
  std::vector<SweepItem> items;
  for (const Scenario* s : selected) {
    auto expanded = lft::scenarios::sweep(s->name, seeds, opt.sizes);
    items.insert(items.end(), expanded.begin(), expanded.end());
  }

  std::printf("fleet: %zu instances (%zu scenarios x %lld seeds x %zu sizes) on %d threads\n",
              items.size(), selected.size(), static_cast<long long>(opt.seeds),
              std::max<std::size_t>(1, opt.sizes.size()), opt.threads);

  lft::sim::FleetRunner fleet(lft::sim::FleetConfig{opt.threads, /*reuse_scratch=*/true});
  const WallTimer fleet_timer;
  const auto outcomes = lft::scenarios::run_sweep(fleet, items);
  fleet.wait_all();  // stats (steals, scratch counters) are exact after this
  const double fleet_wall_ms = fleet_timer.ms();
  const double instances_per_sec =
      fleet_wall_ms > 0.0 ? 1000.0 * static_cast<double>(items.size()) / fleet_wall_ms : 0.0;

  bool all_ok = true;

  // Per-scenario aggregates, in selection order.
  JsonRows rows;
  rows.begin_row();
  rows.field("kind", std::string("fleet"));
  rows.field("instances", static_cast<std::int64_t>(items.size()));
  rows.field("threads", static_cast<std::int64_t>(fleet.threads()));
  rows.field("wall_ms", fleet_wall_ms);
  rows.field("instances_per_sec", instances_per_sec);
  rows.field("stolen", fleet.stolen());
  rows.field("scratch_adoptions", fleet.scratch_adoptions());
  rows.field("scratch_recycles", fleet.scratch_recycles());

  std::printf("%-28s %9s %4s %10s %10s %12s %12s %10s %10s\n", "scenario", "instances", "ok",
              "p50_rnds", "p95_rnds", "p50_msgs", "p95_msgs", "p50_ms", "p95_ms");
  for (const Scenario* s : selected) {
    std::vector<std::int64_t> rounds;
    std::vector<std::int64_t> messages;
    std::vector<double> wall;
    std::int64_t ok_count = 0;
    std::int64_t count = 0;
    for (const auto& out : outcomes) {
      if (out.item.scenario != s) continue;
      ++count;
      ok_count += out.ok ? 1 : 0;
      rounds.push_back(static_cast<std::int64_t>(out.report.rounds));
      messages.push_back(out.report.metrics.messages_total);
      wall.push_back(out.wall_ms);
    }
    std::sort(rounds.begin(), rounds.end());
    std::sort(messages.begin(), messages.end());
    std::sort(wall.begin(), wall.end());
    const bool scenario_ok = ok_count == count;
    all_ok = all_ok && scenario_ok;
    std::printf("%-28s %9lld %4s %10lld %10lld %12lld %12lld %10.2f %10.2f\n", s->name.c_str(),
                static_cast<long long>(count), scenario_ok ? "yes" : "NO",
                static_cast<long long>(percentile(rounds, 50)),
                static_cast<long long>(percentile(rounds, 95)),
                static_cast<long long>(percentile(messages, 50)),
                static_cast<long long>(percentile(messages, 95)), percentile(wall, 50),
                percentile(wall, 95));

    rows.begin_row();
    rows.field("kind", std::string("aggregate"));
    rows.field("scenario", s->name);
    rows.field("fault", s->fault_kind);
    rows.field("instances", count);
    rows.field("ok_instances", ok_count);
    rows.field("p50_rounds", percentile(rounds, 50));
    rows.field("p95_rounds", percentile(rounds, 95));
    rows.field("p50_messages", percentile(messages, 50));
    rows.field("p95_messages", percentile(messages, 95));
    rows.field("p50_wall_ms", percentile(wall, 50));
    rows.field("p95_wall_ms", percentile(wall, 95));
    rows.field("ok", std::string(scenario_ok ? "yes" : "NO"));
  }
  std::printf(
      "fleet wall: %.1f ms, %.1f instances/sec, %lld steals, %lld scratch adoptions "
      "(%lld warm recycles)\n",
      fleet_wall_ms, instances_per_sec, static_cast<long long>(fleet.stolen()),
      static_cast<long long>(fleet.scratch_adoptions()),
      static_cast<long long>(fleet.scratch_recycles()));

  // Per-instance rows: the fingerprint trail that certifies determinism
  // across fleet runs (equal seeds => equal fingerprints, any thread count).
  for (const auto& out : outcomes) {
    all_ok = all_ok && out.ok;
    rows.begin_row();
    rows.field("kind", std::string("instance"));
    rows.field("scenario", out.item.scenario->name);
    rows.field("seed", static_cast<std::int64_t>(out.item.seed));
    rows.field("n", static_cast<std::int64_t>(out.item.n));
    rows.field("t", out.item.t);
    rows.field("rounds", static_cast<std::int64_t>(out.report.rounds));
    rows.field("messages", out.report.metrics.messages_total);
    rows.field("wall_ms", out.wall_ms);
    rows.field("fingerprint", static_cast<std::int64_t>(out.fingerprint));
    rows.field("ok", std::string(out.ok ? "yes" : "NO"));
  }

  // Serial spot check: K instances sampled at a deterministic stride across
  // the whole queue (items are grouped scenario-by-scenario, so a stride —
  // unlike a prefix — covers every scenario) re-run one-at-a-time must be
  // bit-identical to their fleet runs.
  if (opt.verify_serial > 0) {
    const auto k = std::min<std::size_t>(static_cast<std::size_t>(opt.verify_serial),
                                         outcomes.size());
    std::int64_t mismatches = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t i = j * outcomes.size() / k;
      const auto& out = outcomes[i];
      const auto serial =
          out.item.scenario->run_at(out.item.seed, out.item.n, out.item.t, {});
      if (lft::scenarios::fingerprint(serial.report) == out.fingerprint) continue;
      ++mismatches;
      // Localize: re-run the instance under trace recording with cold
      // buffers vs. a *warm* recycled scratch — the two configurations a
      // fleet slot can differ in — and report the first divergent
      // round/component. The scratch is warmed by a throwaway first run;
      // a freshly constructed scratch would just be another cold run.
      const auto cold =
          lft::forensics::record(*out.item.scenario, out.item.seed, 1, out.item.n, out.item.t);
      lft::sim::EngineScratch scratch;
      lft::core::RunOptions warm_options;
      warm_options.scratch = &scratch;
      (void)out.item.scenario->run_at(out.item.seed, out.item.n, out.item.t,
                                      warm_options);  // warm the buffers
      lft::forensics::TraceRecorder warm_recorder;
      warm_options.trace = &warm_recorder;
      (void)out.item.scenario->run_at(out.item.seed, out.item.n, out.item.t, warm_options);
      const auto divergence = lft::forensics::diff(cold.trace, warm_recorder.trace());
      std::printf("verify-serial MISMATCH %s seed %llu n %d: %s\n",
                  out.item.scenario->name.c_str(),
                  static_cast<unsigned long long>(out.item.seed), out.item.n,
                  divergence.diverged
                      ? divergence.detail.c_str()
                      : "divergence did not reproduce under tracing (fleet-run-only)");
    }
    std::printf("verify-serial: %zu instances re-run serially, %lld fingerprint mismatches\n",
                k, static_cast<long long>(mismatches));
    if (mismatches != 0) all_ok = false;
  }

  if (!opt.json_path.empty() && !rows.write_file(opt.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
