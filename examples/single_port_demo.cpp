// Single-port demo: consensus on hardware that can drive only one link per
// cycle (the Section 8 model — think one-NIC nodes or TDMA radio slots).
// Linear-Consensus schedules every overlay exchange link by link and still
// finishes in Theta(t + log n) slot-rounds; this demo runs the multi-port
// and single-port executions side by side to show the constant-factor slot
// expansion and the matching lower bound.
//
//   ./examples/single_port_demo [n] [t]
#include <cstdio>
#include <cstdlib>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/consensus.hpp"
#include "singleport/linear_consensus.hpp"
#include "singleport/lower_bound.hpp"

int main(int argc, char** argv) {
  using namespace lft;

  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 400;
  const std::int64_t t = argc > 2 ? std::atoll(argv[2]) : n / 10;

  Rng rng(11);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));

  // Multi-port reference execution.
  const auto mp_params = core::ConsensusParams::practical(n, t);
  const auto mp = core::run_few_crashes_consensus(
      mp_params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t, 0.0, 13)));

  // Single-port execution of the same protocol.
  const auto sp_params = core::ConsensusParams::single_port(n, t);
  const auto sp = singleport::run_linear_consensus(
      sp_params, inputs,
      std::make_unique<singleport::ScheduledSpAdversary>(
          sim::random_crash_schedule(n, t, 0, 40 * t, 0.0, 13)));

  std::printf("consensus, n=%d, t=%lld\n", n, static_cast<long long>(t));
  std::printf("  multi-port : rounds=%-6lld bits=%-8lld decision=%llu ok=%s\n",
              static_cast<long long>(mp.report.rounds),
              static_cast<long long>(mp.report.metrics.bits_total),
              static_cast<unsigned long long>(mp.decision.value_or(99)),
              mp.all_good() ? "yes" : "NO");
  std::printf("  single-port: rounds=%-6lld bits=%-8lld decision=%llu ok=%s\n",
              static_cast<long long>(sp.report.rounds),
              static_cast<long long>(sp.report.metrics.bits_total),
              static_cast<unsigned long long>(sp.decision.value_or(99)),
              sp.all_good() ? "yes" : "NO");
  const double shape =
      static_cast<double>(t) + ceil_log2(static_cast<std::uint64_t>(n));
  std::printf("  sp rounds / (t + lg n) = %.2f   (Theorem 12: O(t + log n))\n",
              static_cast<double>(sp.report.rounds) / shape);

  // The matching lower bound in action: an adversary that starves a victim.
  const auto isolation = singleport::run_port_isolation(64, 12, 63);
  std::printf(
      "  Theorem 13 demo: with 12 crashes a victim hears nothing for %lld sp-rounds "
      "(no-crash first receipt: %lld)\n",
      static_cast<long long>(isolation.isolation_rounds),
      static_cast<long long>(isolation.baseline_receipt));
  return (mp.all_good() && sp.all_good()) ? 0 : 1;
}
