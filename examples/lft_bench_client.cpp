// lft_bench_client: load generator + correctness auditor for lft_serve.
// Closed loop (default): C client threads each keep a window of W pipelined
// proposals outstanding until the request budget drains — the window is
// corked into one write per refill. Open loop (--open-loop=RATE): proposals
// are sent on a fixed aggregate schedule of RATE requests/second regardless
// of ack progress, and latency is measured from each request's *scheduled*
// send time, so queueing delay is not hidden (no coordinated omission).
// Afterwards a subscriber replays the whole log and the tool fails (nonzero
// exit) on any lost, duplicated, or reordered command — the "serve real
// traffic, lose nothing" gate CI runs as service-smoke.
//
//   lft_bench_client [--port=N] [--requests=N] [--clients=C] [--window=W]
//                    [--open-loop=RATE] [--sockets] [--trace=PATH]
//                    [--backend=auto|epoll|io_uring] [--pipeline=D]
//                    [--json=PATH] [--server-stats] [--stats-json=PATH]
//
// Without --port (or with --port=0) an in-process server is spawned and
// shut down at the end; --sockets/--trace/--backend/--pipeline apply to
// that spawned server. --json writes the run's metrics (req/s, p50/p95/p99
// ack latency) in the BENCH_*.json artifact schema. --server-stats fetches
// the server's telemetry snapshot over the wire (kStatsRequest) after the
// audit and prints its request-latency histogram — the server-side view of
// the same traffic, measured frame-arrival to ack-enqueue; --stats-json
// writes that full snapshot as JSON (the BENCH_service_stats.json artifact
// CI archives), and the --json row gains server_* latency fields.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "net/reactor.hpp"
#include "obs/obs.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using lft::service::Client;

std::vector<std::byte> payload_for(std::uint64_t client_id, std::uint64_t request_id) {
  const std::string s =
      "c" + std::to_string(client_id) + ":r" + std::to_string(request_id);
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

struct WorkerResult {
  bool ok = true;
  std::string error;
  std::uint64_t acked = 0;
  std::vector<double> latencies_ms;
};

/// One closed-loop client: keep `window` proposals in flight until
/// `requests` have been acknowledged, checking the per-session guarantees
/// on the way (acks in request order, log indices strictly increasing, no
/// duplicates for fresh request ids). Each window refill is corked into a
/// single write (Client::queue_propose + flush).
void run_worker(std::uint16_t port, std::uint64_t client_id, std::uint64_t requests,
                std::uint64_t window, WorkerResult& out) {
  auto fail = [&out](std::string why) {
    out.ok = false;
    out.error = std::move(why);
  };
  Client client(port, client_id);
  if (!client.connected()) return fail("connect/handshake failed");

  out.latencies_ms.reserve(static_cast<std::size_t>(requests));
  std::unordered_map<std::uint64_t, Clock::time_point> inflight;
  std::uint64_t next_request = 1;
  std::uint64_t expect_ack = 1;
  std::uint64_t last_index = 0;
  bool have_index = false;

  while (out.acked < requests) {
    bool queued = false;
    while (inflight.size() < window && next_request <= requests) {
      client.queue_propose(next_request, payload_for(client_id, next_request));
      inflight.emplace(next_request, Clock::now());
      ++next_request;
      queued = true;
    }
    if (queued && !client.flush()) return fail("flush failed");
    const auto ack = client.recv_ack();
    if (!ack) return fail("recv_ack failed");
    if (ack->request_id != expect_ack) return fail("acks out of request order");
    ++expect_ack;
    const auto it = inflight.find(ack->request_id);
    if (it == inflight.end()) return fail("ack for unknown request");
    out.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - it->second).count());
    inflight.erase(it);
    if (ack->applied.duplicate) return fail("fresh request acked as duplicate");
    if (have_index && ack->applied.index <= last_index) {
      return fail("log indices not increasing within the session");
    }
    last_index = ack->applied.index;
    have_index = true;
    ++out.acked;
  }
}

/// One open-loop client: send proposal r at start + (r-1)/rate no matter how
/// far acks lag; a receiver thread collects acks concurrently. The Client's
/// send and recv paths touch disjoint state, so one sender plus one receiver
/// thread per connection is safe. Latency is measured against the scheduled
/// send time.
void run_open_worker(std::uint16_t port, std::uint64_t client_id, std::uint64_t requests,
                     double rate_per_client, WorkerResult& out) {
  auto fail = [&out](std::string why) {
    out.ok = false;
    out.error = std::move(why);
  };
  Client client(port, client_id);
  if (!client.connected()) return fail("connect/handshake failed");

  out.latencies_ms.reserve(static_cast<std::size_t>(requests));
  const auto start = Clock::now();
  const std::chrono::duration<double> interval(1.0 / rate_per_client);
  auto scheduled_at = [&](std::uint64_t request_id) {
    return start + std::chrono::duration_cast<Clock::duration>(
                       interval * static_cast<double>(request_id - 1));
  };

  std::thread receiver([&] {
    std::uint64_t expect_ack = 1;
    std::uint64_t last_index = 0;
    bool have_index = false;
    while (out.acked < requests) {
      const auto ack = client.recv_ack();
      if (!ack) return fail("recv_ack failed");
      if (ack->request_id != expect_ack) return fail("acks out of request order");
      ++expect_ack;
      out.latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                     Clock::now() - scheduled_at(ack->request_id))
                                     .count());
      if (ack->applied.duplicate) return fail("fresh request acked as duplicate");
      if (have_index && ack->applied.index <= last_index) {
        return fail("log indices not increasing within the session");
      }
      last_index = ack->applied.index;
      have_index = true;
      ++out.acked;
    }
  });

  bool send_failed = false;
  for (std::uint64_t r = 1; r <= requests; ++r) {
    std::this_thread::sleep_until(scheduled_at(r));
    if (!client.send_propose(r, payload_for(client_id, r))) {
      send_failed = true;  // the broken socket unblocks the receiver too
      break;
    }
  }
  receiver.join();
  if (send_failed && out.ok) fail("send_propose failed");
}

/// Nearest-rank percentile of a sorted sample (p in [0, 100]).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size())) - 1.0;
  const auto index = static_cast<std::size_t>(std::max(0.0, rank));
  return sorted[std::min(index, sorted.size() - 1)];
}

/// Prints the server's request-latency histogram from a fetched telemetry
/// snapshot: every populated bucket plus the percentile summary, ns -> ms.
void print_server_histogram(const lft::obs::Snapshot& snapshot) {
  const auto* row = snapshot.find_histogram("lft_service_request_ns");
  if (row == nullptr || row->data.count() == 0) {
    std::printf("server stats: no lft_service_request_ns samples\n");
    return;
  }
  const auto& h = row->data;
  const auto ms = [](std::uint64_t ns) { return static_cast<double>(ns) / 1e6; };
  std::printf("server request latency (frame arrival -> ack enqueue, %llu samples):\n",
              static_cast<unsigned long long>(h.count()));
  for (int b = 0; b < lft::obs::Histogram::kBuckets; ++b) {
    const std::uint64_t n = h.bucket_count(b);
    if (n == 0) continue;
    std::printf("  [%10.4f ms, %10.4f ms)  %llu\n", ms(lft::obs::Histogram::bucket_lower(b)),
                b == lft::obs::Histogram::kBuckets - 1
                    ? ms(h.max())
                    : ms(lft::obs::Histogram::bucket_upper(b)),
                static_cast<unsigned long long>(n));
  }
  std::printf("  server p50=%.4f ms p90=%.4f ms p99=%.4f ms max=%.4f ms mean=%.4f ms\n",
              ms(h.percentile(50.0)), ms(h.percentile(90.0)), ms(h.percentile(99.0)),
              ms(h.max()), h.mean() / 1e6);
}

void print_usage() {
  std::printf(
      "usage: lft_bench_client [--port=N] [--requests=N] [--clients=C] [--window=W]\n"
      "                        [--open-loop=RATE] [--sockets] [--trace=PATH]\n"
      "                        [--backend=auto|epoll|io_uring] [--pipeline=D]\n"
      "                        [--json=PATH] [--server-stats] [--stats-json=PATH]\n");
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::int64_t requests = 100000;
  int clients = 4;
  std::int64_t window = 4;
  std::int64_t open_rate = 0;
  bool sockets = false;
  std::string trace_path;
  std::string backend_name = "auto";
  int pipeline = 4;
  std::string json_path;
  bool server_stats = false;
  std::string stats_json_path;
  const bool parsed = lft::cli::ArgParser(argc, argv)
                          .on_int("--port", port, 0)
                          .on_i64("--requests", requests, 1)
                          .on_int("--clients", clients, 1)
                          .on_i64("--window", window, 1)
                          .on_i64("--open-loop", open_rate, 0)
                          .on_flag("--sockets", sockets)
                          .on_str("--trace", trace_path)
                          .on_str("--backend", backend_name)
                          .on_int("--pipeline", pipeline, 1)
                          .on_str("--json", json_path)
                          .on_flag("--server-stats", server_stats)
                          .on_str("--stats-json", stats_json_path)
                          .parse();
  if (!parsed) {
    print_usage();
    return 2;
  }
  lft::net::ReactorBackend backend = lft::net::ReactorBackend::kAuto;
  if (!lft::net::parse_backend(backend_name, backend)) {
    std::fprintf(stderr, "lft_bench_client: unknown backend '%s'\n", backend_name.c_str());
    print_usage();
    return 2;
  }
  const bool open_loop = open_rate > 0;

  // Spawn an in-process server unless pointed at a live one.
  std::optional<lft::service::Server> server;
  std::thread server_thread;
  std::uint16_t target_port = static_cast<std::uint16_t>(port);
  std::string backend_used = "external";
  if (port == 0) {
    lft::service::ServerOptions options;
    options.use_sockets = sockets;
    options.trace_path = trace_path;
    options.backend = backend;
    options.pipeline = pipeline;
    server.emplace(options);
    target_port = server->port();
    backend_used = server->backend();
    server_thread = std::thread([&server] { server->run(); });
  }

  const auto per_client = static_cast<std::uint64_t>(requests) /
                          static_cast<std::uint64_t>(clients);
  const std::uint64_t total = per_client * static_cast<std::uint64_t>(clients);
  if (open_loop) {
    std::printf(
        "lft_bench_client: %llu requests over %d clients (open loop, %lld req/s) "
        "-> port %u (backend %s)\n",
        static_cast<unsigned long long>(total), clients,
        static_cast<long long>(open_rate), target_port, backend_used.c_str());
  } else {
    std::printf(
        "lft_bench_client: %llu requests over %d clients (window %lld) -> port %u "
        "(backend %s)\n",
        static_cast<unsigned long long>(total), clients, static_cast<long long>(window),
        target_port, backend_used.c_str());
  }
  std::fflush(stdout);

  const auto start = Clock::now();
  std::vector<WorkerResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  const double rate_per_client =
      static_cast<double>(open_rate) / static_cast<double>(clients);
  for (int c = 0; c < clients; ++c) {
    WorkerResult& result = results[static_cast<std::size_t>(c)];
    if (open_loop) {
      workers.emplace_back(run_open_worker, target_port,
                           static_cast<std::uint64_t>(c + 1), per_client,
                           rate_per_client, std::ref(result));
    } else {
      workers.emplace_back(run_worker, target_port, static_cast<std::uint64_t>(c + 1),
                           per_client, static_cast<std::uint64_t>(window),
                           std::ref(result));
    }
  }
  for (auto& w : workers) w.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  bool ok = true;
  std::vector<double> latencies;
  latencies.reserve(total);
  for (int c = 0; c < clients; ++c) {
    const auto& r = results[static_cast<std::size_t>(c)];
    if (!r.ok || r.acked != per_client) {
      ok = false;
      std::fprintf(stderr, "client %d FAILED after %llu acks: %s\n", c + 1,
                   static_cast<unsigned long long>(r.acked), r.error.c_str());
    }
    latencies.insert(latencies.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());

  // Audit the total order: replay the whole log through a subscriber and
  // demand exactly `total` contiguous entries, each command exactly once
  // with the payload it was proposed with.
  std::uint64_t slots = 0;
  if (ok) {
    Client auditor(target_port, /*client_id=*/0xa0d17);
    ok = ok && auditor.connected();
    if (ok) {
      const auto state = auditor.read_state();
      ok = ok && state.has_value() && state->size == total;
      if (!ok) {
        std::fprintf(stderr, "log audit FAILED: size %llu != proposed %llu\n",
                     state ? static_cast<unsigned long long>(state->size) : 0ULL,
                     static_cast<unsigned long long>(total));
      } else {
        slots = state->slots;
      }
    }
    if (ok && !auditor.subscribe(0)) ok = false;
    std::vector<std::uint64_t> seen_request(static_cast<std::size_t>(clients) + 1, 0);
    for (std::uint64_t i = 0; ok && i < total; ++i) {
      const auto e = auditor.next_commit();
      if (!e || e->index != i) {
        ok = false;
        std::fprintf(stderr, "log audit FAILED: commit %llu missing or out of order\n",
                     static_cast<unsigned long long>(i));
        break;
      }
      if (e->client_id == 0 || e->client_id > static_cast<std::uint64_t>(clients) ||
          e->request_id != seen_request[e->client_id] + 1 ||
          e->payload != payload_for(e->client_id, e->request_id)) {
        ok = false;
        std::fprintf(stderr,
                     "log audit FAILED at index %llu: client %llu request %llu "
                     "(duplicate, gap, or corrupt payload)\n",
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(e->client_id),
                     static_cast<unsigned long long>(e->request_id));
        break;
      }
      seen_request[e->client_id] = e->request_id;
    }
  }

  // Fetch the server's own telemetry snapshot (kStatsRequest) while it is
  // still up — its request-latency histogram is the server-side view of the
  // run we just measured from the client side.
  std::optional<lft::obs::Snapshot> server_snapshot;
  if (server_stats || !stats_json_path.empty()) {
    Client stats_client(target_port, /*client_id=*/0x0b5);
    if (stats_client.connected()) server_snapshot = stats_client.server_stats();
    if (!server_snapshot) {
      ok = false;
      std::fprintf(stderr, "server stats fetch FAILED\n");
    }
  }

  if (server.has_value()) {
    Client stopper(target_port, /*client_id=*/0x57c9);
    if (stopper.connected()) (void)stopper.shutdown_server();
    server_thread.join();
  }

  const double rps = wall_ms > 0.0 ? static_cast<double>(total) / (wall_ms / 1000.0) : 0.0;
  const double p50 = percentile(latencies, 50.0);
  const double p95 = percentile(latencies, 95.0);
  const double p99 = percentile(latencies, 99.0);
  std::printf("%12s %8s %8s %12s %12s %10s %10s %10s %6s\n", "requests", "clients",
              "window", "wall_ms", "req_per_s", "p50_ms", "p95_ms", "p99_ms", "ok");
  std::printf("%12llu %8d %8lld %12.1f %12.0f %10.3f %10.3f %10.3f %6s\n",
              static_cast<unsigned long long>(total), clients,
              static_cast<long long>(open_loop ? 0 : window), wall_ms, rps, p50, p95, p99,
              ok ? "yes" : "NO");
  if (server_stats && server_snapshot) print_server_histogram(*server_snapshot);
  if (!stats_json_path.empty() && server_snapshot) {
    std::ofstream out(stats_json_path, std::ios::trunc);
    out << server_snapshot->to_json();
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", stats_json_path.c_str());
      return 1;
    }
  }

  if (!json_path.empty()) {
    lft::bench::JsonRows rows;
    rows.begin_row();
    rows.field("bench", std::string("service_closed_loop"));
    rows.field("mode", std::string(open_loop ? "open" : "closed"));
    rows.field("backend", backend_used);
    rows.field("pipeline", static_cast<std::int64_t>(pipeline));
    rows.field("requests", static_cast<std::int64_t>(total));
    rows.field("clients", static_cast<std::int64_t>(clients));
    rows.field("window", static_cast<std::int64_t>(open_loop ? 0 : window));
    rows.field("open_rate", static_cast<std::int64_t>(open_rate));
    rows.field("slots", static_cast<std::int64_t>(slots));
    rows.field("wall_ms", wall_ms);
    rows.field("req_per_s", rps);
    // bench_report.py series key: lets a smoke-run row double as a
    // bench/history/ point row alongside the engine_hotpath series.
    rows.field("simd", std::string("service"));
    rows.field("items_per_second", rps);
    rows.field("p50_ms", p50);
    rows.field("p95_ms", p95);
    rows.field("p99_ms", p99);
    if (server_snapshot != std::nullopt) {
      // Server-side latency (frame arrival -> ack enqueue) from the fetched
      // telemetry snapshot, for side-by-side comparison with the client view.
      if (const auto* row = server_snapshot->find_histogram("lft_service_request_ns");
          row != nullptr && row->data.count() > 0) {
        rows.field("server_samples", static_cast<std::int64_t>(row->data.count()));
        rows.field("server_p50_ms", static_cast<double>(row->data.percentile(50.0)) / 1e6);
        rows.field("server_p95_ms", static_cast<double>(row->data.percentile(95.0)) / 1e6);
        rows.field("server_p99_ms", static_cast<double>(row->data.percentile(99.0)) / 1e6);
        rows.field("server_max_ms", static_cast<double>(row->data.max()) / 1e6);
      }
    }
    rows.field("ok", std::string(ok ? "yes" : "NO"));
    if (!rows.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
