// Forensics CLI: record execution traces of registry scenarios, replay them
// with first-divergent-round localization, diff two trace files offline, and
// shrink violating fault plans to minimal repros.
//
//   lft_forensics record --scenario=NAME --out=trace.bin
//                        [--seed=N] [--threads=N] [--n=N] [--t=N] [--json=PATH]
//   lft_forensics replay --trace=trace.bin [--threads=N] [--json=PATH]
//   lft_forensics diff   --trace=a.bin --trace2=b.bin [--json=PATH]
//   lft_forensics shrink --case=NAME [--seed=N] [--workers=N]
//                        [--out=repro.json] [--json=PATH]
//   lft_forensics list
//
// `replay` exits nonzero on divergence and prints the exact first divergent
// round and digest component; `shrink` exits nonzero unless the minimal plan
// still violates and its serial/parallel traces are bit-identical. `--json`
// writes rows in the BENCH_*.json artifact schema; `shrink --out` writes the
// minimal repro (meta + one row per surviving fault event) as JSON.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "forensics/replay.hpp"
#include "forensics/shrink.hpp"
#include "forensics/trace.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using lft::NodeId;
using lft::bench::JsonRows;
using lft::bench::WallTimer;
using lft::forensics::Divergence;
using lft::forensics::Trace;

void print_usage() {
  std::printf(
      "usage: lft_forensics record --scenario=NAME --out=PATH [--seed=N] [--threads=N]\n"
      "                            [--n=N] [--t=N] [--json=PATH]\n"
      "       lft_forensics replay --trace=PATH [--threads=N] [--json=PATH]\n"
      "       lft_forensics diff   --trace=A --trace2=B [--json=PATH]\n"
      "       lft_forensics shrink --case=NAME [--seed=N] [--workers=N]\n"
      "                            [--out=repro.json] [--json=PATH]\n"
      "       lft_forensics list\n");
}

struct Options {
  std::string command;
  std::string scenario;
  std::string shrink_case;
  std::string trace_path;
  std::string trace2_path;
  std::string out_path;
  std::string json_path;
  std::uint64_t seed = 1;
  int threads = 1;
  int workers = 4;
  NodeId n = -1;
  std::int64_t t = -1;
};

bool parse_args(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  return lft::cli::ArgParser(argc, argv, /*first_arg=*/2)
      .on_str("--scenario", opt.scenario)
      .on_str("--case", opt.shrink_case)
      .on_str("--trace", opt.trace_path)
      .on_str("--trace2", opt.trace2_path)
      .on_str("--out", opt.out_path)
      .on_str("--json", opt.json_path)
      .on_u64("--seed", opt.seed)
      .on_int("--threads", opt.threads, 1)
      .on_int("--workers", opt.workers, 1)
      .on_value("--n",
                [&opt](const std::string& v) {
                  opt.n = static_cast<NodeId>(std::strtol(v.c_str(), nullptr, 10));
                  return true;
                })
      .on_i64("--t", opt.t, std::numeric_limits<std::int64_t>::min())
      .parse();
}

void print_trace_summary(const Trace& trace) {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t actions = 0;
  for (const auto& d : trace.rounds) {
    sent += d.sent;
    delivered += d.delivered;
    lost += d.lost_crash + d.lost_fault + d.lost_dead;
    actions += d.crashes + d.omissions + d.links + d.partitions + d.takeovers;
  }
  std::printf(
      "trace: scenario=%s seed=%llu n=%d t=%lld rounds=%zu sent=%llu delivered=%llu "
      "lost=%llu fault_actions=%llu fingerprint=%016llx\n",
      trace.meta.scenario.c_str(), static_cast<unsigned long long>(trace.meta.seed),
      trace.meta.n, static_cast<long long>(trace.meta.t), trace.rounds.size(),
      static_cast<unsigned long long>(sent), static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(lost), static_cast<unsigned long long>(actions),
      static_cast<unsigned long long>(trace.report_fingerprint));
}

void divergence_fields(JsonRows& rows, const Divergence& d) {
  rows.field("diverged", std::string(d.diverged ? "yes" : "no"));
  rows.field("divergent_round", static_cast<std::int64_t>(d.round));
  rows.field("component", std::string(lft::forensics::component_name(d.component)));
  rows.field("expected", static_cast<std::int64_t>(d.expected));
  rows.field("actual", static_cast<std::int64_t>(d.actual));
}

bool write_json(const JsonRows& rows, const std::string& path) {
  if (path.empty()) return true;
  if (!rows.write_file(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

int cmd_list() {
  std::printf("recordable scenarios (see lft_scenarios --list for details):\n");
  for (const auto& s : lft::scenarios::all_scenarios()) {
    std::printf("  %-28s %s\n", s.name.c_str(),
                s.run_plan != nullptr ? "plan-driven (replayable + shrinkable)"
                                      : "adaptive (replayable)");
  }
  std::printf("shrink cases:\n");
  for (const auto& c : lft::forensics::shrink_cases()) {
    std::printf("  %-28s %s\n", c.name.c_str(), c.description.c_str());
  }
  return 0;
}

int cmd_record(const Options& opt) {
  const auto* scenario = lft::scenarios::find_scenario(opt.scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario: %s (see lft_forensics list)\n",
                 opt.scenario.c_str());
    return 2;
  }
  if (opt.out_path.empty()) {
    std::fprintf(stderr, "record needs --out=PATH\n");
    return 2;
  }
  const WallTimer timer;
  auto run = lft::forensics::record(*scenario, opt.seed, opt.threads, opt.n, opt.t);
  const double wall_ms = timer.ms();
  if (!lft::forensics::save_trace(run.trace, opt.out_path)) {
    std::fprintf(stderr, "failed to write %s\n", opt.out_path.c_str());
    return 1;
  }
  print_trace_summary(run.trace);
  std::printf("recorded %s in %.1f ms (invariant %s: %s)\n", opt.out_path.c_str(), wall_ms,
              run.result.ok ? "ok" : "VIOLATED", run.result.detail.c_str());

  JsonRows rows;
  rows.begin_row();
  rows.field("kind", std::string("record"));
  rows.field("scenario", run.trace.meta.scenario);
  rows.field("seed", static_cast<std::int64_t>(run.trace.meta.seed));
  rows.field("n", static_cast<std::int64_t>(run.trace.meta.n));
  rows.field("t", run.trace.meta.t);
  rows.field("rounds", static_cast<std::int64_t>(run.trace.rounds.size()));
  rows.field("fingerprint", static_cast<std::int64_t>(run.trace.report_fingerprint));
  rows.field("wall_ms", wall_ms);
  rows.field("ok", std::string(run.result.ok ? "yes" : "NO"));
  if (!write_json(rows, opt.json_path)) return 1;
  return run.result.ok ? 0 : 1;
}

int cmd_replay(const Options& opt) {
  if (opt.trace_path.empty()) {
    std::fprintf(stderr, "replay needs --trace=PATH\n");
    return 2;
  }
  const auto recorded = lft::forensics::load_trace(opt.trace_path);
  if (!recorded) {
    std::fprintf(stderr, "cannot load trace %s\n", opt.trace_path.c_str());
    return 2;
  }
  if (lft::scenarios::find_scenario(recorded->meta.scenario) == nullptr) {
    std::fprintf(stderr, "trace names unknown scenario: %s\n",
                 recorded->meta.scenario.c_str());
    return 2;
  }
  const WallTimer timer;
  const auto replayed = lft::forensics::replay(*recorded, opt.threads);
  const double wall_ms = timer.ms();
  print_trace_summary(replayed.trace);
  if (replayed.divergence.diverged) {
    std::printf("DIVERGED: %s\n", replayed.divergence.detail.c_str());
  } else {
    std::printf("replay matches the recording (%zu rounds, fingerprint %016llx) in %.1f ms\n",
                replayed.trace.rounds.size(),
                static_cast<unsigned long long>(replayed.trace.report_fingerprint), wall_ms);
  }

  JsonRows rows;
  rows.begin_row();
  rows.field("kind", std::string("replay"));
  rows.field("scenario", recorded->meta.scenario);
  rows.field("seed", static_cast<std::int64_t>(recorded->meta.seed));
  rows.field("threads", static_cast<std::int64_t>(opt.threads));
  rows.field("wall_ms", wall_ms);
  divergence_fields(rows, replayed.divergence);
  if (!write_json(rows, opt.json_path)) return 1;
  return replayed.divergence.diverged ? 1 : 0;
}

int cmd_diff(const Options& opt) {
  if (opt.trace_path.empty() || opt.trace2_path.empty()) {
    std::fprintf(stderr, "diff needs --trace=A and --trace2=B\n");
    return 2;
  }
  const auto a = lft::forensics::load_trace(opt.trace_path);
  const auto b = lft::forensics::load_trace(opt.trace2_path);
  if (!a || !b) {
    std::fprintf(stderr, "cannot load %s\n", (!a ? opt.trace_path : opt.trace2_path).c_str());
    return 2;
  }
  const Divergence d = lft::forensics::diff(*a, *b);
  if (d.diverged) {
    std::printf("DIVERGED: %s\n", d.detail.c_str());
  } else {
    std::printf("traces identical (%zu rounds)\n", a->rounds.size());
  }
  JsonRows rows;
  rows.begin_row();
  rows.field("kind", std::string("diff"));
  divergence_fields(rows, d);
  if (!write_json(rows, opt.json_path)) return 1;
  return d.diverged ? 1 : 0;
}

/// Serializes the minimal repro: one meta row, then one row per surviving
/// event, in plan order.
void repro_rows(JsonRows& rows, const lft::forensics::ShrinkResult& result,
                const std::string& case_name, std::uint64_t seed) {
  rows.begin_row();
  rows.field("kind", std::string("shrink"));
  rows.field("case", case_name);
  rows.field("seed", static_cast<std::int64_t>(seed));
  rows.field("n", static_cast<std::int64_t>(result.n));
  rows.field("t", result.t);
  rows.field("events_before", result.initial_events);
  rows.field("events_after", result.final_events);
  rows.field("evaluations", result.evaluations);
  rows.field("violating", std::string(result.violating ? "yes" : "NO"));
  rows.field("budget_exhausted", std::string(result.budget_exhausted ? "yes" : "no"));
  rows.field("parallel_bit_identical",
             std::string(result.parallel_divergence.diverged ? "NO" : "yes"));
  rows.field("detail", result.result.detail);
  rows.field("fingerprint", static_cast<std::int64_t>(result.trace.report_fingerprint));
  for (const auto& e : result.plan.crashes) {
    rows.begin_row();
    rows.field("kind", std::string("crash"));
    rows.field("node", static_cast<std::int64_t>(e.node));
    rows.field("round", static_cast<std::int64_t>(e.round));
    rows.field("keep_fraction", e.keep_fraction);
  }
  for (const auto& e : result.plan.omissions) {
    rows.begin_row();
    rows.field("kind", std::string("omission"));
    rows.field("node", static_cast<std::int64_t>(e.node));
    rows.field("from", static_cast<std::int64_t>(e.from));
    rows.field("until", static_cast<std::int64_t>(e.until));
    rows.field("send", std::string(e.send ? "yes" : "no"));
    rows.field("recv", std::string(e.recv ? "yes" : "no"));
  }
  for (const auto& e : result.plan.links) {
    rows.begin_row();
    rows.field("kind", std::string("link"));
    rows.field("a", static_cast<std::int64_t>(e.a));
    rows.field("b", static_cast<std::int64_t>(e.b));
    rows.field("from", static_cast<std::int64_t>(e.from));
    rows.field("until", static_cast<std::int64_t>(e.until));
    rows.field("symmetric", std::string(e.symmetric ? "yes" : "no"));
  }
  for (const auto& e : result.plan.partitions) {
    rows.begin_row();
    rows.field("kind", std::string("partition"));
    rows.field("from", static_cast<std::int64_t>(e.from));
    rows.field("until", static_cast<std::int64_t>(e.until));
    // Displaced = nodes outside the *majority* group (matching the
    // shrinker's notion; group ids are arbitrary, 0 included).
    std::vector<std::int64_t> count;
    for (const auto g : e.group_of) {
      if (g >= count.size()) count.resize(g + 1, 0);
      ++count[g];
    }
    std::int64_t majority = 0;
    for (const auto c : count) majority = std::max(majority, c);
    rows.field("displaced_nodes",
               static_cast<std::int64_t>(e.group_of.size()) - majority);
  }
  for (const auto& e : result.plan.takeovers) {
    rows.begin_row();
    rows.field("kind", std::string("takeover"));
    rows.field("node", static_cast<std::int64_t>(e.node));
    rows.field("round", static_cast<std::int64_t>(e.round));
    rows.field("behavior", e.kind);
  }
}

int cmd_shrink(const Options& opt) {
  const auto* shrink_case = lft::forensics::find_shrink_case(opt.shrink_case);
  if (shrink_case == nullptr) {
    std::fprintf(stderr, "unknown shrink case: %s (see lft_forensics list)\n",
                 opt.shrink_case.c_str());
    return 2;
  }
  const auto problem = shrink_case->make(opt.seed);
  lft::forensics::ShrinkOptions options;
  options.workers = opt.workers;
  const WallTimer timer;
  const auto result = lft::forensics::shrink(problem, options);
  const double wall_ms = timer.ms();

  std::printf(
      "shrink %s: %lld -> %lld events (n %d -> %d) in %lld evaluations, %.1f ms\n"
      "  minimal repro %s, serial/parallel traces %s\n  %s\n",
      shrink_case->name.c_str(), static_cast<long long>(result.initial_events),
      static_cast<long long>(result.final_events), problem.n, result.n,
      static_cast<long long>(result.evaluations), wall_ms,
      result.violating ? "still violates" : "DOES NOT VIOLATE",
      result.parallel_divergence.diverged ? "DIVERGE" : "bit-identical",
      result.result.detail.c_str());
  if (result.budget_exhausted) {
    std::printf("  note: evaluation budget exhausted — the plan may not be 1-minimal\n");
  }

  JsonRows rows;
  repro_rows(rows, result, shrink_case->name, opt.seed);
  if (!opt.out_path.empty() && !rows.write_file(opt.out_path)) {
    std::fprintf(stderr, "failed to write %s\n", opt.out_path.c_str());
    return 1;
  }
  if (!write_json(rows, opt.json_path)) return 1;
  return result.violating && !result.parallel_divergence.diverged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    print_usage();
    return 2;
  }
  if (opt.command == "list") return cmd_list();
  if (opt.command == "record") return cmd_record(opt);
  if (opt.command == "replay") return cmd_replay(opt);
  if (opt.command == "diff") return cmd_diff(opt);
  if (opt.command == "shrink") return cmd_shrink(opt);
  print_usage();
  return 2;
}
