// Scenario runner CLI: executes named (protocol × fault plan × size)
// scenarios from the registry in src/scenarios/.
//
//   lft_scenarios --list
//   lft_scenarios --all [--seed=N] [--threads=N] [--verify-determinism] [--json=PATH]
//   lft_scenarios --run=name[,name...] [...]
//
// --verify-determinism re-runs every scenario with the same seed (serial and
// with the parallel stepper) under trace recording and fails unless the
// executions are bit-identical — and when they are not, it uses
// forensics::diff to report the *first divergent round and digest component*
// instead of only the mismatched final fingerprints. --json=PATH writes one
// row per scenario in the BENCH_*.json artifact schema
// (bench/bench_json.hpp). Exit code is nonzero if any scenario's invariant
// (or the determinism check) fails.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "forensics/replay.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using lft::bench::JsonRows;
using lft::bench::WallTimer;
using lft::scenarios::all_scenarios;
using lft::scenarios::Scenario;
using lft::scenarios::ScenarioResult;

void print_usage() {
  std::printf(
      "usage: lft_scenarios --list\n"
      "       lft_scenarios (--all | --run=name[,name...])\n"
      "                     [--seed=N] [--threads=N] [--verify-determinism] [--json=PATH]\n");
}

void list_scenarios() {
  std::printf("%-28s %-14s %-10s %6s %5s  %s\n", "name", "protocol", "fault", "n", "t",
              "description");
  for (const auto& s : all_scenarios()) {
    std::printf("%-28s %-14s %-10s %6d %5lld  %s\n", s.name.c_str(), s.protocol.c_str(),
                s.fault_kind.c_str(), s.n, static_cast<long long>(s.t),
                s.description.c_str());
  }
}

struct Options {
  bool list = false;
  bool all = false;
  bool verify_determinism = false;
  std::uint64_t seed = 1;
  int threads = 1;
  std::vector<std::string> names;
  std::string json_path;
};

bool parse_args(int argc, char** argv, Options& opt) {
  return lft::cli::ArgParser(argc, argv)
      .on_flag("--list", opt.list)
      .on_flag("--all", opt.all)
      .on_flag("--verify-determinism", opt.verify_determinism)
      .on_u64("--seed", opt.seed)
      .on_int("--threads", opt.threads, 1)
      .on_str("--json", opt.json_path)
      .on_csv("--run", opt.names)
      .parse();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    print_usage();
    return 2;
  }
  if (opt.list) {
    list_scenarios();
    return 0;
  }
  std::vector<const Scenario*> selected;
  if (opt.all) {
    for (const auto& s : all_scenarios()) selected.push_back(&s);
  } else {
    for (const auto& name : opt.names) {
      const Scenario* s = lft::scenarios::find_scenario(name);
      if (s == nullptr) {
        std::fprintf(stderr, "unknown scenario: %s (see --list)\n", name.c_str());
        return 2;
      }
      selected.push_back(s);
    }
  }
  if (selected.empty()) {
    print_usage();
    return 2;
  }

  JsonRows rows;
  bool all_ok = true;
  std::printf("%-28s %-10s %8s %12s %6s %10s  %s\n", "name", "fault", "rounds", "messages",
              "ok", "wall_ms", "detail");
  for (const Scenario* s : selected) {
    const WallTimer timer;
    ScenarioResult result = s->run(opt.seed, opt.threads);
    const double wall_ms = timer.ms();
    const std::uint64_t digest = lft::scenarios::fingerprint(result.report);

    bool deterministic = true;
    if (opt.verify_determinism) {
      // Same seed, serial vs. parallel stepper: the recorded traces (and
      // with them the Reports) must be bit-identical. On a mismatch the
      // forensics diff names the first divergent round and component.
      const auto serial = lft::forensics::record(*s, opt.seed, /*threads=*/1);
      const auto parallel = lft::forensics::record(*s, opt.seed, /*threads=*/4);
      const auto divergence = lft::forensics::diff(serial.trace, parallel.trace);
      deterministic = !divergence.diverged &&
                      serial.trace.report_fingerprint == digest;
      if (divergence.diverged) {
        result.detail += " DETERMINISM-MISMATCH[" + divergence.detail + "]";
      } else if (!deterministic) {
        result.detail += " DETERMINISM-MISMATCH[primary run differs from serial re-run]";
      }
    }

    const bool ok = result.ok && deterministic;
    all_ok = all_ok && ok;
    std::printf("%-28s %-10s %8lld %12lld %6s %10.1f  %s\n", s->name.c_str(),
                s->fault_kind.c_str(), static_cast<long long>(result.report.rounds),
                static_cast<long long>(result.report.metrics.messages_total),
                ok ? "yes" : "NO", wall_ms, result.detail.c_str());

    rows.begin_row();
    rows.field("scenario", s->name);
    rows.field("protocol", s->protocol);
    rows.field("fault", s->fault_kind);
    rows.field("n", static_cast<std::int64_t>(s->n));
    rows.field("t", s->t);
    rows.field("seed", static_cast<std::int64_t>(opt.seed));
    rows.field("rounds", static_cast<std::int64_t>(result.report.rounds));
    rows.field("messages", result.report.metrics.messages_total);
    rows.field("bits", result.report.metrics.bits_total);
    rows.field("wall_ms", wall_ms);
    rows.field("fingerprint", static_cast<std::int64_t>(digest));
    rows.field("ok", std::string(ok ? "yes" : "NO"));
  }

  if (!opt.json_path.empty() && !rows.write_file(opt.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
