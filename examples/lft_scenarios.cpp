// Scenario runner CLI: executes named (protocol × fault plan × size)
// scenarios from the registry in src/scenarios/.
//
//   lft_scenarios --list
//   lft_scenarios --all [--seed=N] [--threads=N] [--verify-determinism]
//                 [--telemetry] [--json=PATH]
//   lft_scenarios --run=name[,name...] [...]
//
// --telemetry runs each scenario with an obs::Registry attached
// (core::RunOptions::telemetry) and prints its engine round-time
// percentiles (lft_engine_step_ns) plus per-round delivery stats —
// strictly out-of-band: the Reports and fingerprints are bit-identical
// with and without it.
//
// --verify-determinism re-runs every scenario with the same seed (serial and
// with the parallel stepper) under trace recording and fails unless the
// executions are bit-identical — and when they are not, it uses
// forensics::diff to report the *first divergent round and digest component*
// instead of only the mismatched final fingerprints. --json=PATH writes one
// row per scenario in the BENCH_*.json artifact schema
// (bench/bench_json.hpp). Exit code is nonzero if any scenario's invariant
// (or the determinism check) fails.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "forensics/replay.hpp"
#include "obs/obs.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using lft::bench::JsonRows;
using lft::bench::WallTimer;
using lft::scenarios::all_scenarios;
using lft::scenarios::Scenario;
using lft::scenarios::ScenarioResult;

void print_usage() {
  std::printf(
      "usage: lft_scenarios --list\n"
      "       lft_scenarios (--all | --run=name[,name...])\n"
      "                     [--seed=N] [--threads=N] [--verify-determinism]\n"
      "                     [--telemetry] [--json=PATH]\n");
}

void list_scenarios() {
  std::printf("%-28s %-14s %-10s %6s %5s  %s\n", "name", "protocol", "fault", "n", "t",
              "description");
  for (const auto& s : all_scenarios()) {
    std::printf("%-28s %-14s %-10s %6d %5lld  %s\n", s.name.c_str(), s.protocol.c_str(),
                s.fault_kind.c_str(), s.n, static_cast<long long>(s.t),
                s.description.c_str());
  }
}

struct Options {
  bool list = false;
  bool all = false;
  bool verify_determinism = false;
  bool telemetry = false;
  std::uint64_t seed = 1;
  int threads = 1;
  std::vector<std::string> names;
  std::string json_path;
};

bool parse_args(int argc, char** argv, Options& opt) {
  return lft::cli::ArgParser(argc, argv)
      .on_flag("--list", opt.list)
      .on_flag("--all", opt.all)
      .on_flag("--verify-determinism", opt.verify_determinism)
      .on_flag("--telemetry", opt.telemetry)
      .on_u64("--seed", opt.seed)
      .on_int("--threads", opt.threads, 1)
      .on_str("--json", opt.json_path)
      .on_csv("--run", opt.names)
      .parse();
}

/// Round-time + delivery summary from one scenario's engine telemetry.
void print_scenario_telemetry(const lft::obs::Snapshot& snapshot) {
  const auto* step = snapshot.find_histogram("lft_engine_step_ns");
  if (step == nullptr || step->data.count() == 0) {
    std::printf("    telemetry: no engine rounds recorded\n");
    return;
  }
  const auto us = [](std::uint64_t ns) { return static_cast<double>(ns) / 1e3; };
  std::printf("    round time: p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus (%llu rounds)",
              us(step->data.percentile(50.0)), us(step->data.percentile(90.0)),
              us(step->data.percentile(99.0)), us(step->data.max()),
              static_cast<unsigned long long>(step->data.count()));
  if (const auto* delivered = snapshot.find_histogram("lft_engine_round_delivered");
      delivered != nullptr && delivered->data.count() > 0) {
    std::printf("  delivered/round: p50=%llu max=%llu",
                static_cast<unsigned long long>(delivered->data.percentile(50.0)),
                static_cast<unsigned long long>(delivered->data.max()));
  }
  if (const auto* lost = snapshot.find_counter("lft_engine_lost_total");
      lost != nullptr && lost->value > 0) {
    std::printf("  lost=%llu", static_cast<unsigned long long>(lost->value));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    print_usage();
    return 2;
  }
  if (opt.list) {
    list_scenarios();
    return 0;
  }
  std::vector<const Scenario*> selected;
  if (opt.all) {
    for (const auto& s : all_scenarios()) selected.push_back(&s);
  } else {
    for (const auto& name : opt.names) {
      const Scenario* s = lft::scenarios::find_scenario(name);
      if (s == nullptr) {
        std::fprintf(stderr, "unknown scenario: %s (see --list)\n", name.c_str());
        return 2;
      }
      selected.push_back(s);
    }
  }
  if (selected.empty()) {
    print_usage();
    return 2;
  }

  JsonRows rows;
  bool all_ok = true;
  std::printf("%-28s %-10s %8s %12s %6s %10s  %s\n", "name", "fault", "rounds", "messages",
              "ok", "wall_ms", "detail");
  for (const Scenario* s : selected) {
    lft::obs::Registry registry;
    lft::core::RunOptions run_options;
    run_options.threads = opt.threads;
    if (opt.telemetry) run_options.telemetry = &registry;
    const WallTimer timer;
    ScenarioResult result = s->run_at(opt.seed, s->n, s->t, run_options);
    const double wall_ms = timer.ms();
    const std::uint64_t digest = lft::scenarios::fingerprint(result.report);

    bool deterministic = true;
    if (opt.verify_determinism) {
      // Same seed, serial vs. parallel stepper: the recorded traces (and
      // with them the Reports) must be bit-identical. On a mismatch the
      // forensics diff names the first divergent round and component.
      const auto serial = lft::forensics::record(*s, opt.seed, /*threads=*/1);
      const auto parallel = lft::forensics::record(*s, opt.seed, /*threads=*/4);
      const auto divergence = lft::forensics::diff(serial.trace, parallel.trace);
      deterministic = !divergence.diverged &&
                      serial.trace.report_fingerprint == digest;
      if (divergence.diverged) {
        result.detail += " DETERMINISM-MISMATCH[" + divergence.detail + "]";
      } else if (!deterministic) {
        result.detail += " DETERMINISM-MISMATCH[primary run differs from serial re-run]";
      }
    }

    const bool ok = result.ok && deterministic;
    all_ok = all_ok && ok;
    std::printf("%-28s %-10s %8lld %12lld %6s %10.1f  %s\n", s->name.c_str(),
                s->fault_kind.c_str(), static_cast<long long>(result.report.rounds),
                static_cast<long long>(result.report.metrics.messages_total),
                ok ? "yes" : "NO", wall_ms, result.detail.c_str());
    if (opt.telemetry) print_scenario_telemetry(registry.snapshot());

    rows.begin_row();
    rows.field("scenario", s->name);
    rows.field("protocol", s->protocol);
    rows.field("fault", s->fault_kind);
    rows.field("n", static_cast<std::int64_t>(s->n));
    rows.field("t", s->t);
    rows.field("seed", static_cast<std::int64_t>(opt.seed));
    rows.field("rounds", static_cast<std::int64_t>(result.report.rounds));
    rows.field("messages", result.report.metrics.messages_total);
    rows.field("bits", result.report.metrics.bits_total);
    rows.field("wall_ms", wall_ms);
    rows.field("fingerprint", static_cast<std::int64_t>(digest));
    rows.field("ok", std::string(ok ? "yes" : "NO"));
  }

  if (!opt.json_path.empty() && !rows.write_file(opt.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
