// lft_serve: the replicated coordination service, live. A reactor server
// (epoll or io_uring) multiplexing TCP client sessions over a ReplicaGroup
// that orders every proposal batch through a Few-Crashes-Consensus slot (the
// paper's Figure 3 assembly) — the same Stage/Process code the simulator
// runs, behind the core::Transport seam. Consensus slots run through a
// pipeline so rounds overlap network I/O.
//
//   lft_serve [--port=N] [--n=N] [--t=N] [--sockets] [--no-shutdown]
//             [--trace=PATH] [--backend=auto|epoll|io_uring] [--pipeline=D]
//             [--stats-dump=PATH] [--stats-interval-ms=MS]
//
// --port=0 (default) picks a free port and prints it. --sockets runs each
// replica on its own thread behind an AF_UNIX socketpair instead of inline.
// --trace=PATH records the first commit slot as an LFTTRACE file that
// `lft_forensics replay --trace=PATH` re-executes under the sim engine.
// --no-shutdown ignores client kShutdown frames (run until killed).
// --backend picks the readiness backend; auto (default) uses io_uring when
// the kernel supports it and falls back to epoll. --pipeline sets the slot
// pipeline depth D (how many consensus slots may be in flight at once).
// --stats-dump=PATH periodically overwrites PATH with the live telemetry
// snapshot (JSON rows for .json, Prometheus text exposition otherwise);
// --stats-interval-ms sets the cadence. The same snapshot is served live
// over the wire to any client sending kStatsRequest
// (`lft_bench_client --server-stats` prints it).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hpp"
#include "net/reactor.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: lft_serve [--port=N] [--n=N] [--t=N] [--sockets] [--no-shutdown]\n"
      "                 [--trace=PATH] [--backend=auto|epoll|io_uring] [--pipeline=D]\n"
      "                 [--stats-dump=PATH] [--stats-interval-ms=MS]\n");
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int n = lft::service::kDefaultGroupSize;
  std::int64_t t = lft::service::kDefaultFaultBudget;
  bool sockets = false;
  bool no_shutdown = false;
  std::string trace_path;
  std::string backend_name = "auto";
  int pipeline = 4;
  std::string stats_dump;
  std::int64_t stats_interval_ms = 1000;
  const bool parsed = lft::cli::ArgParser(argc, argv)
                          .on_int("--port", port, 0)
                          .on_int("--n", n, 1)
                          .on_i64("--t", t, 0)
                          .on_flag("--sockets", sockets)
                          .on_flag("--no-shutdown", no_shutdown)
                          .on_str("--trace", trace_path)
                          .on_str("--backend", backend_name)
                          .on_int("--pipeline", pipeline, 1)
                          .on_str("--stats-dump", stats_dump)
                          .on_i64("--stats-interval-ms", stats_interval_ms, 1)
                          .parse();
  if (!parsed) {
    print_usage();
    return 2;
  }
  if (t >= n || 5 * t >= n) {
    std::fprintf(stderr, "lft_serve: need 5t < n (got n=%d t=%lld)\n", n,
                 static_cast<long long>(t));
    return 2;
  }
  lft::net::ReactorBackend backend = lft::net::ReactorBackend::kAuto;
  if (!lft::net::parse_backend(backend_name, backend)) {
    std::fprintf(stderr, "lft_serve: unknown backend '%s'\n", backend_name.c_str());
    print_usage();
    return 2;
  }

  lft::service::ServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.n = static_cast<lft::NodeId>(n);
  options.t = t;
  options.use_sockets = sockets;
  options.allow_shutdown = !no_shutdown;
  options.trace_path = trace_path;
  options.backend = backend;
  options.pipeline = pipeline;
  options.stats_dump_path = stats_dump;
  options.stats_dump_interval_ms = stats_interval_ms;

  lft::service::Server server(options);
  std::printf(
      "lft_serve: listening on 127.0.0.1:%u (n=%d t=%lld replicas=%s backend=%s "
      "pipeline=%d)\n",
      server.port(), n, static_cast<long long>(t),
      sockets ? "socketpair threads" : "inline", server.backend(), pipeline);
  if (!trace_path.empty()) {
    std::printf("lft_serve: first commit slot will be traced to %s\n", trace_path.c_str());
  }
  if (!stats_dump.empty()) {
    std::printf("lft_serve: telemetry snapshot every %lldms to %s\n",
                static_cast<long long>(stats_interval_ms), stats_dump.c_str());
  }
  std::fflush(stdout);

  server.run();

  const auto& stats = server.stats();
  std::printf(
      "lft_serve: shut down after %llu sessions, %llu proposals (%llu duplicates), "
      "%llu commit batches, %llu log entries, %llu consensus slots, "
      "%llu session pauses\n",
      static_cast<unsigned long long>(stats.sessions_accepted),
      static_cast<unsigned long long>(stats.proposals),
      static_cast<unsigned long long>(stats.duplicates),
      static_cast<unsigned long long>(stats.commit_batches),
      static_cast<unsigned long long>(server.group().machine().size()),
      static_cast<unsigned long long>(server.group().slots()),
      static_cast<unsigned long long>(stats.session_pauses));
  return 0;
}
