// Checkpoint service: a simulated batch-compute cluster that periodically
// agrees on its surviving membership — the motivating workload of the
// checkpointing problem (Section 6). Each epoch some workers crash; the
// cluster runs the paper's Checkpointing algorithm (gossip with dummy
// rumors, then n concurrent consensus instances with combined messages) and
// every survivor decides the *same* roster, so work can be re-sharded
// deterministically without a central coordinator.
//
//   ./examples/checkpoint_service [n] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/checkpointing.hpp"
#include "sim/adversary.hpp"

int main(int argc, char** argv) {
  using namespace lft;

  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 300;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::int64_t t = n / 10;

  std::printf("cluster of %d workers, checkpoint epoch tolerates t=%lld crashes\n\n", n,
              static_cast<long long>(t));

  std::int64_t shards = 4 * n;  // work items to re-shard after each epoch
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto params = core::CheckpointParams::practical(n, t);
    auto adversary = sim::make_scheduled(
        sim::random_crash_schedule(n, t, 0, 3 * t + 10, 0.3, 1000 + epoch));
    const auto outcome = core::run_checkpointing(params, std::move(adversary));

    // Reconstruct the agreed roster from any surviving node's decision.
    std::int64_t members = 0;
    for (const auto& s : outcome.report.nodes) {
      if (!s.crashed) ++members;
    }
    std::printf("epoch %d:\n", epoch);
    std::printf("  crashed this epoch : %lld\n",
                static_cast<long long>(outcome.report.crashed_count()));
    std::printf("  agreed roster size : %lld workers (all decided sets equal: %s)\n",
                static_cast<long long>(members), outcome.condition3 ? "yes" : "NO");
    std::printf("  conditions (1)/(2) : %s / %s   termination: %s\n",
                outcome.condition1 ? "ok" : "VIOLATED",
                outcome.condition2 ? "ok" : "VIOLATED",
                outcome.termination ? "ok" : "VIOLATED");
    std::printf("  rounds / messages  : %lld / %lld  (Theorem 10: O(t + log n log t), O(n + t log n log t))\n",
                static_cast<long long>(outcome.report.rounds),
                static_cast<long long>(outcome.report.metrics.messages_total));
    if (members > 0) {
      std::printf("  re-sharding        : %lld shards -> %lld per member\n\n",
                  static_cast<long long>(shards),
                  static_cast<long long>(shards / members));
    }
    if (!outcome.all_good()) return 1;
  }
  std::printf("all epochs checkpointed consistently.\n");
  return 0;
}
