// Byzantine ledger: n replicas commit a sequence of ledger slots while up to
// t of them misbehave (silent, equivocating, flooding), using AB-Consensus
// (Section 7) with the authenticated-signature substrate. Per slot, each
// little replica proposes whether its mempool saw the batch; the committed
// bit is the agreed maximum — a faithful use of the paper's decision rule.
//
//   ./examples/byzantine_ledger [n] [slots]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "byzantine/ab_consensus.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace lft;

  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 120;
  const int slots = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t t = n / 12;

  const auto params = byzantine::AbParams::practical(n, t);

  // A fixed Byzantine coalition with mixed behaviors.
  std::vector<std::pair<NodeId, std::string>> coalition;
  const char* kinds[] = {"silent", "equivocate", "flood"};
  for (std::int64_t i = 0; i < t; ++i) {
    coalition.emplace_back(static_cast<NodeId>((3 * i + 1) % params.little_count),
                           kinds[i % 3]);
  }
  std::sort(coalition.begin(), coalition.end());
  coalition.erase(std::unique(coalition.begin(), coalition.end(),
                              [](const auto& a, const auto& b) { return a.first == b.first; }),
                  coalition.end());

  std::printf("ledger with %d replicas, %zu Byzantine (t=%lld), %d slots\n\n", n,
              coalition.size(), static_cast<long long>(t), slots);

  Rng rng(7);
  int committed = 0;
  for (int slot = 0; slot < slots; ++slot) {
    // Each replica proposes 1 iff its mempool contains the slot's batch
    // (simulated: ~70% propagation).
    std::vector<std::uint64_t> proposals(static_cast<std::size_t>(n));
    for (auto& p : proposals) p = rng.chance(7, 10) ? 1 : 0;

    const auto outcome = byzantine::run_ab_consensus(params, proposals, coalition);
    if (!outcome.termination || !outcome.agreement) {
      std::printf("slot %d: consensus FAILED\n", slot);
      return 1;
    }
    committed += static_cast<int>(*outcome.decision);
    std::printf(
        "slot %d: commit=%llu  rounds=%lld  honest msgs=%lld (O(t^2+n)=%lld)  total msgs=%lld\n",
        slot, static_cast<unsigned long long>(*outcome.decision),
        static_cast<long long>(outcome.report.rounds),
        static_cast<long long>(outcome.report.metrics.messages_honest),
        static_cast<long long>(t * t + n),
        static_cast<long long>(outcome.report.metrics.messages_total));
  }
  std::printf("\n%d/%d slots committed; all replicas agreed on every slot despite the "
              "Byzantine coalition.\n",
              committed, slots);
  return 0;
}
