// Majority vote + live-node counting: the Section 9 extensions realized
// with the paper's own machinery. A cluster votes on a reconfiguration
// proposal while up to t nodes crash mid-vote; every survivor derives the
// same (member count, yes count) pair and hence the same verdict, with the
// communication profile of checkpointing rather than all-to-all exchange.
//
//   ./examples/majority_vote [n] [yes_fraction_percent]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/extensions.hpp"
#include "sim/adversary.hpp"

int main(int argc, char** argv) {
  using namespace lft;

  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 200;
  const int yes_pct = argc > 2 ? std::atoi(argv[2]) : 55;
  const std::int64_t t = n / 10;

  Rng rng(77);
  std::vector<int> votes(static_cast<std::size_t>(n));
  int proposed_yes = 0;
  for (auto& v : votes) {
    v = rng.chance(static_cast<std::uint64_t>(yes_pct), 100) ? 1 : 0;
    proposed_yes += v;
  }

  const auto params = core::CheckpointParams::practical(n, t);
  auto adversary =
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 4 * t + 10, 0.4, 55));
  const auto outcome = core::run_majority_consensus(params, votes, std::move(adversary));

  std::printf("reconfiguration vote among n=%d nodes (t=%lld crash budget)\n", n,
              static_cast<long long>(t));
  std::printf("  proposed yes votes : %d of %d\n", proposed_yes, n);
  std::printf("  crashed mid-vote   : %lld\n",
              static_cast<long long>(outcome.report.crashed_count()));
  std::printf("  agreed member count: %lld   (counting extension)\n",
              static_cast<long long>(outcome.members));
  std::printf("  agreed yes count   : %lld\n", static_cast<long long>(outcome.ones));
  std::printf("  verdict            : %s   (majority-consensus extension)\n",
              outcome.majority == 1 ? "ACCEPTED" : "REJECTED");
  std::printf("  all survivors agree: %s\n", outcome.agreement ? "yes" : "NO");
  std::printf("  rounds / messages  : %lld / %lld\n",
              static_cast<long long>(outcome.report.rounds),
              static_cast<long long>(outcome.report.metrics.messages_total));
  return outcome.all_good() ? 0 : 1;
}
