// Gossip monitor: cluster-wide telemetry collection. Every node holds a
// status word (encoded load/health); the paper's Gossip algorithm (Figure 5)
// spreads all pairs to all survivors in O(log n log t) rounds with
// O(n + t log n log t) messages — far below the n^2 of naive all-to-all —
// and every survivor ends with a full, consistent view.
//
//   ./examples/gossip_monitor [n]
#include <cstdio>
#include <cstdlib>

#include "core/gossip.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"

int main(int argc, char** argv) {
  using namespace lft;

  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 400;
  const std::int64_t t = n / 10;

  // Status word per node: (load percent << 8) | health code.
  Rng rng(99);
  std::vector<std::uint64_t> status(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    status[static_cast<std::size_t>(v)] = (rng.uniform(100) << 8) | rng.uniform(4);
  }

  const auto params = core::GossipParams::practical(n, t);
  auto adversary =
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 4 * t + 10, 0.5, 321));
  const auto outcome = core::run_gossip(params, status, std::move(adversary));

  std::printf("telemetry gossip among n=%d nodes (t=%lld crash budget)\n", n,
              static_cast<long long>(t));
  std::printf("  crashed          : %lld\n",
              static_cast<long long>(outcome.report.crashed_count()));
  std::printf("  every survivor has every live node's status : %s\n",
              outcome.condition2 ? "yes" : "NO");
  std::printf("  no ghost entries from silent crashes        : %s\n",
              outcome.condition1 ? "yes" : "NO");
  std::printf("  statuses uncorrupted                        : %s\n",
              outcome.rumors_intact ? "yes" : "NO");
  std::printf("  rounds   : %lld   (Theorem 9: O(log n log t))\n",
              static_cast<long long>(outcome.report.rounds));
  std::printf("  messages : %lld   (naive all-to-all: %lld)\n",
              static_cast<long long>(outcome.report.metrics.messages_total),
              static_cast<long long>(n) * (n - 1));

  // Aggregate the collected view like a monitoring dashboard would.
  std::int64_t overloaded = 0;
  std::int64_t unhealthy = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (outcome.report.nodes[static_cast<std::size_t>(v)].crashed) continue;
    const std::uint64_t s = status[static_cast<std::size_t>(v)];
    overloaded += (s >> 8) >= 90 ? 1 : 0;
    unhealthy += (s & 0xff) == 3 ? 1 : 0;
  }
  std::printf("  dashboard: %lld overloaded, %lld unhealthy among survivors\n",
              static_cast<long long>(overloaded), static_cast<long long>(unhealthy));
  return outcome.all_good() ? 0 : 1;
}
