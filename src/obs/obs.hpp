// Runtime telemetry plane: zero-allocation, branch-cheap instruments owned
// by a Registry, snapshotted into a value type that renders as Prometheus
// text exposition or JSON and round-trips through the common binary codec
// (so a live server can ship its registry over the wire in one frame).
//
// Instruments are deliberately *not* atomic: every writer in the tree is
// single-threaded where it records (the service reactor thread, the engine
// coordinator, one fleet worker per registry). Cross-thread aggregation
// happens by merging whole registries/snapshots after the writers are done
// — the same fold pattern FleetRunner already uses for scratch counters.
//
// The Histogram is HDR-style log-linear: 64 fixed buckets, two sub-buckets
// per power of two (worst-case relative bucket width 50%), covering
// 1 ns .. 2^32 ns (~4.3 s) with the top bucket absorbing everything larger.
// record() is O(1) and allocation-free; count/sum/min/max are tracked
// exactly, so percentile() can clamp its bucket-bound answer into the
// observed [min, max] range and merge() stays associative.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.hpp"

namespace lft::obs {

/// Monotonic wall-clock sample in nanoseconds (steady_clock) — the common
/// time source for every `*_ns` metric in the tree. Telemetry reads the
/// clock and records; it never branches on the value, so instrumented code
/// stays bit-identical to uninstrumented code in everything it computes.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic event count. Single-writer; merge by addition.
class Counter {
 public:
  void inc() noexcept { ++value_; }
  void add(std::uint64_t n) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (queue depth, ring high-water, arena bytes).
/// Single-writer; merge keeps the maximum (the interesting direction for
/// every gauge in the tree — occupancy and high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t d) noexcept { value_ += d; }
  /// High-water update: keeps the larger of the current and new value.
  void set_max(std::int64_t v) noexcept {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Log-linear fixed-bucket histogram (see file comment). Values are
/// dimensionless u64s; by convention the tree records nanoseconds into
/// `*_ns` metrics and plain counts elsewhere.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index of a value: identity below 2, then two sub-buckets per
  /// octave (index = 2*floor(log2 v) + next-bit-below-msb). Values at or
  /// above 2^32 clamp into the top bucket.
  [[nodiscard]] static int bucket_index(std::uint64_t v) noexcept {
    if (v < 2) return static_cast<int>(v);
    const int e = std::bit_width(v) - 1;  // floor(log2 v) >= 1
    if (e >= 32) return kBuckets - 1;
    return 2 * e + static_cast<int>((v >> (e - 1)) & 1u);
  }

  /// Inclusive lower bound of a bucket's value range.
  [[nodiscard]] static std::uint64_t bucket_lower(int b) noexcept {
    if (b < 2) return static_cast<std::uint64_t>(b);
    const int e = b / 2;
    const std::uint64_t m = static_cast<std::uint64_t>(b & 1);
    return (std::uint64_t{1} << e) + (m << (e - 1));
  }

  /// Exclusive upper bound; the top bucket is unbounded (clamping).
  [[nodiscard]] static std::uint64_t bucket_upper(int b) noexcept {
    if (b >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
    return bucket_lower(b + 1);
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[static_cast<std::size_t>(bucket_index(v))];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Exact observed extremes; 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket_count(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)];
  }

  /// Value at quantile q (0..100]: the upper edge of the bucket holding the
  /// ceil(q/100 * count)-th observation, clamped into the exact observed
  /// [min, max] range. 0 when empty. Worst-case relative error is the
  /// bucket width: 50%.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  /// Bucket-wise addition plus count/sum/min/max folds. Associative and
  /// commutative: merging per-worker histograms in any order yields the
  /// same result as recording every value into one histogram.
  void merge(const Histogram& other) noexcept;

  void reset() noexcept { *this = Histogram{}; }

  [[nodiscard]] bool operator==(const Histogram& other) const noexcept = default;

 private:
  friend struct Snapshot;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// One registry's state at a point in time: plain values, detached from the
/// live instruments. Renders, merges, and round-trips through the codec.
struct Snapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    Histogram data;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  [[nodiscard]] const CounterRow* find_counter(std::string_view name) const noexcept;
  [[nodiscard]] const GaugeRow* find_gauge(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramRow* find_histogram(std::string_view name) const noexcept;

  /// Prometheus text exposition: counters and gauges as single samples,
  /// histograms as summaries (quantile 0.5/0.9/0.99 labels + _sum/_count).
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON array of flat row objects (the bench_json.hpp artifact shape):
  /// {"metric","kind","value"} for scalars, {"metric","kind","count","sum",
  /// "min","max","p50","p90","p99"} for histograms.
  [[nodiscard]] std::string to_json() const;

  /// Binary codec (versioned) for the kStatsReply wire frame and for
  /// --stats-dump artifacts' transport. decode rejects malformed input.
  void encode(ByteWriter& writer) const;
  [[nodiscard]] static std::optional<Snapshot> decode(ByteReader& reader);

  /// Folds `other` in by metric name: counters add, gauges keep the max,
  /// histograms merge; names unique to `other` are appended.
  void merge_from(const Snapshot& other);
};

/// Owns named instruments and hands out stable references. Registration is
/// idempotent (same name returns the same instrument) and cheap enough for
/// setup paths; the returned references are the hot-path handles — no name
/// lookup ever happens on record. Not thread-safe: one writer thread per
/// registry, aggregation by snapshot()/merge after writers quiesce.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies every instrument's current value into a detached Snapshot, in
  /// registration order.
  [[nodiscard]] Snapshot snapshot() const;

  /// Folds another registry's instruments into this one by name (counter
  /// add, gauge max, histogram merge), creating missing instruments.
  void merge_from(const Registry& other);

  /// Zeroes every instrument, keeping registrations (and handed-out
  /// references) valid.
  void reset_values();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& entry(std::string_view name, Kind kind);

  std::deque<Entry> entries_;               // stable addresses for references
  std::map<std::string, Entry*, std::less<>> index_;
};

}  // namespace lft::obs
