#include "obs/obs.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"

namespace lft::obs {

// ---- Histogram -------------------------------------------------------------

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q > 100.0) q = 100.0;
  // Rank of the target observation, 1-based: ceil(q/100 * count).
  const double want = (q / 100.0) * static_cast<double>(count_);
  auto rank = static_cast<std::uint64_t>(want);
  if (static_cast<double>(rank) < want) ++rank;
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets_[static_cast<std::size_t>(b)];
    if (cum >= rank) {
      const std::uint64_t upper = bucket_upper(b);
      std::uint64_t v =
          upper == std::numeric_limits<std::uint64_t>::max() ? max_ : upper - 1;
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  // An empty histogram's sentinels (min = u64 max, max = 0) make both folds
  // no-ops, so no emptiness branch is needed.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

// ---- Snapshot lookups ------------------------------------------------------

const Snapshot::CounterRow* Snapshot::find_counter(std::string_view name) const noexcept {
  for (const auto& row : counters) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

const Snapshot::GaugeRow* Snapshot::find_gauge(std::string_view name) const noexcept {
  for (const auto& row : gauges) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

const Snapshot::HistogramRow* Snapshot::find_histogram(std::string_view name) const noexcept {
  for (const auto& row : histograms) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

// ---- renders ---------------------------------------------------------------

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

/// Metric names in this tree are snake_case identifiers, but escape anyway
/// so a hostile snapshot cannot corrupt a JSON artifact.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  out.reserve(256 + 96 * (counters.size() + gauges.size()) + 256 * histograms.size());
  for (const auto& row : counters) {
    out += "# TYPE " + row.name + " counter\n" + row.name + " ";
    append_u64(out, row.value);
    out += '\n';
  }
  for (const auto& row : gauges) {
    out += "# TYPE " + row.name + " gauge\n" + row.name + " ";
    append_i64(out, row.value);
    out += '\n';
  }
  for (const auto& row : histograms) {
    out += "# TYPE " + row.name + " summary\n";
    for (const auto& [label, q] :
         {std::pair{"0.5", 50.0}, std::pair{"0.9", 90.0}, std::pair{"0.99", 99.0}}) {
      out += row.name + "{quantile=\"" + label + "\"} ";
      append_u64(out, row.data.percentile(q));
      out += '\n';
    }
    out += row.name + "_sum ";
    append_u64(out, row.data.sum());
    out += '\n';
    out += row.name + "_count ";
    append_u64(out, row.data.count());
    out += '\n';
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
  };
  for (const auto& row : counters) {
    comma();
    out += "{\"metric\": ";
    append_json_string(out, row.name);
    out += ", \"kind\": \"counter\", \"value\": ";
    append_u64(out, row.value);
    out += "}";
  }
  for (const auto& row : gauges) {
    comma();
    out += "{\"metric\": ";
    append_json_string(out, row.name);
    out += ", \"kind\": \"gauge\", \"value\": ";
    append_i64(out, row.value);
    out += "}";
  }
  for (const auto& row : histograms) {
    comma();
    out += "{\"metric\": ";
    append_json_string(out, row.name);
    out += ", \"kind\": \"histogram\", \"count\": ";
    append_u64(out, row.data.count());
    out += ", \"sum\": ";
    append_u64(out, row.data.sum());
    out += ", \"min\": ";
    append_u64(out, row.data.min());
    out += ", \"max\": ";
    append_u64(out, row.data.max());
    out += ", \"p50\": ";
    append_u64(out, row.data.percentile(50.0));
    out += ", \"p90\": ";
    append_u64(out, row.data.percentile(90.0));
    out += ", \"p95\": ";
    append_u64(out, row.data.percentile(95.0));
    out += ", \"p99\": ";
    append_u64(out, row.data.percentile(99.0));
    out += "}";
  }
  out += first ? "]" : "\n]";
  out += '\n';
  return out;
}

// ---- binary codec ----------------------------------------------------------

namespace {

constexpr std::uint8_t kSnapshotVersion = 1;

void put_name(ByteWriter& writer, const std::string& name) {
  writer.put_varint(name.size());
  writer.put_bytes(std::as_bytes(std::span<const char>(name.data(), name.size())));
}

std::optional<std::string> get_name(ByteReader& reader) {
  const auto len = reader.get_varint();
  // Metric names are short identifiers; a huge length is malformed input,
  // not a big registry.
  if (!len || *len > 4096) return std::nullopt;
  const auto bytes = reader.get_bytes(static_cast<std::size_t>(*len));
  if (!bytes) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(bytes->data()), bytes->size());
}

}  // namespace

void Snapshot::encode(ByteWriter& writer) const {
  writer.put_u8(kSnapshotVersion);
  writer.put_varint(counters.size());
  for (const auto& row : counters) {
    put_name(writer, row.name);
    writer.put_varint(row.value);
  }
  writer.put_varint(gauges.size());
  for (const auto& row : gauges) {
    put_name(writer, row.name);
    writer.put_u64(static_cast<std::uint64_t>(row.value));
  }
  writer.put_varint(histograms.size());
  for (const auto& row : histograms) {
    put_name(writer, row.name);
    const auto& h = row.data;
    writer.put_varint(h.count_);
    writer.put_varint(h.sum_);
    writer.put_varint(h.count_ == 0 ? 0 : h.min_);
    writer.put_varint(h.max_);
    for (const std::uint64_t b : h.buckets_) writer.put_varint(b);
  }
}

std::optional<Snapshot> Snapshot::decode(ByteReader& reader) {
  const auto version = reader.get_u8();
  if (!version || *version != kSnapshotVersion) return std::nullopt;
  Snapshot snap;
  const auto n_counters = reader.get_varint();
  if (!n_counters || *n_counters > 65536) return std::nullopt;
  snap.counters.reserve(static_cast<std::size_t>(*n_counters));
  for (std::uint64_t i = 0; i < *n_counters; ++i) {
    auto name = get_name(reader);
    const auto value = reader.get_varint();
    if (!name || !value) return std::nullopt;
    snap.counters.push_back({std::move(*name), *value});
  }
  const auto n_gauges = reader.get_varint();
  if (!n_gauges || *n_gauges > 65536) return std::nullopt;
  snap.gauges.reserve(static_cast<std::size_t>(*n_gauges));
  for (std::uint64_t i = 0; i < *n_gauges; ++i) {
    auto name = get_name(reader);
    const auto value = reader.get_u64();
    if (!name || !value) return std::nullopt;
    snap.gauges.push_back({std::move(*name), static_cast<std::int64_t>(*value)});
  }
  const auto n_hists = reader.get_varint();
  if (!n_hists || *n_hists > 65536) return std::nullopt;
  snap.histograms.reserve(static_cast<std::size_t>(*n_hists));
  for (std::uint64_t i = 0; i < *n_hists; ++i) {
    auto name = get_name(reader);
    if (!name) return std::nullopt;
    HistogramRow row;
    row.name = std::move(*name);
    Histogram& h = row.data;
    const auto count = reader.get_varint();
    const auto sum = reader.get_varint();
    const auto min = reader.get_varint();
    const auto max = reader.get_varint();
    if (!count || !sum || !min || !max) return std::nullopt;
    h.count_ = *count;
    h.sum_ = *sum;
    h.min_ = *count == 0 ? std::numeric_limits<std::uint64_t>::max() : *min;
    h.max_ = *max;
    for (auto& bucket : h.buckets_) {
      const auto b = reader.get_varint();
      if (!b) return std::nullopt;
      bucket = *b;
    }
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void Snapshot::merge_from(const Snapshot& other) {
  for (const auto& row : other.counters) {
    if (auto* mine = const_cast<CounterRow*>(find_counter(row.name))) {
      mine->value += row.value;
    } else {
      counters.push_back(row);
    }
  }
  for (const auto& row : other.gauges) {
    if (auto* mine = const_cast<GaugeRow*>(find_gauge(row.name))) {
      mine->value = std::max(mine->value, row.value);
    } else {
      gauges.push_back(row);
    }
  }
  for (const auto& row : other.histograms) {
    if (auto* mine = const_cast<HistogramRow*>(find_histogram(row.name))) {
      mine->data.merge(row.data);
    } else {
      histograms.push_back(row);
    }
  }
}

// ---- Registry --------------------------------------------------------------

Registry::Entry& Registry::entry(std::string_view name, Kind kind) {
  if (const auto it = index_.find(name); it != index_.end()) {
    LFT_ASSERT_MSG(it->second->kind == kind, "metric re-registered with a different kind");
    return *it->second;
  }
  entries_.push_back(Entry{std::string(name), kind, {}, {}, {}});
  Entry& e = entries_.back();
  index_.emplace(e.name, &e);
  return e;
}

Counter& Registry::counter(std::string_view name) {
  return entry(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) { return entry(name, Kind::kGauge).gauge; }

Histogram& Registry::histogram(std::string_view name) {
  return entry(name, Kind::kHistogram).histogram;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (const auto& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters.push_back({e.name, e.counter.value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({e.name, e.gauge.value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back({e.name, e.histogram});
        break;
    }
  }
  return snap;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& e : other.entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        counter(e.name).add(e.counter.value());
        break;
      case Kind::kGauge:
        gauge(e.name).set_max(e.gauge.value());
        break;
      case Kind::kHistogram:
        histogram(e.name).merge(e.histogram);
        break;
    }
  }
}

void Registry::reset_values() {
  for (auto& e : entries_) {
    e.counter.reset();
    e.gauge.reset();
    e.histogram.reset();
  }
}

}  // namespace lft::obs
