#include "baselines/baselines.hpp"

#include <algorithm>

#include "byzantine/ab_consensus.hpp"
#include "byzantine/dolev_strong.hpp"
#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/tags.hpp"

namespace lft::baselines {

namespace {

enum BaselineTag : std::uint32_t {
  kTagFlood = core::kTagBaseline + 1,
  kTagCoord = core::kTagBaseline + 2,
  kTagRumorX = core::kTagBaseline + 3,
  kTagPresence = core::kTagBaseline + 4,
  kTagMemberSet = core::kTagBaseline + 5,
};

// ---- FloodSet ------------------------------------------------------------------

class FloodSetProcess final : public sim::Process {
 public:
  FloodSetProcess(NodeId n, std::int64_t t, int input) : n_(n), t_(t) {
    seen_ = input == 0 ? 0b01u : 0b10u;
  }

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    for (const auto& m : inbox) {
      if (m.tag == kTagFlood) seen_ |= static_cast<std::uint32_t>(m.value);
    }
    if (ctx.round() <= t_) {
      // Full-information exchange: broadcast the seen-set every round.
      for (NodeId v = 0; v < n_; ++v) {
        if (v != ctx.self()) ctx.send(v, kTagFlood, seen_, 2);
      }
      return;
    }
    // Round t+1 delivered the last exchange; decide min of the seen set.
    ctx.decide(seen_ == 0b10u ? 1 : 0);
    ctx.halt();
  }

 private:
  NodeId n_;
  std::int64_t t_;
  std::uint32_t seen_;
};

// ---- Rotating coordinator ---------------------------------------------------------

class CoordinatorProcess final : public sim::Process {
 public:
  CoordinatorProcess(NodeId n, std::int64_t t, int input)
      : n_(n), t_(t), value_(static_cast<std::uint64_t>(input)) {}

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    for (const auto& m : inbox) {
      if (m.tag == kTagCoord) value_ = m.value;
    }
    const Round phase = ctx.round();
    if (phase <= t_) {
      if (ctx.self() == static_cast<NodeId>(phase % n_)) {
        for (NodeId v = 0; v < n_; ++v) {
          if (v != ctx.self()) ctx.send(v, kTagCoord, value_, 1);
        }
      }
      return;
    }
    ctx.decide(value_);
    ctx.halt();
  }

 private:
  NodeId n_;
  std::int64_t t_;
  std::uint64_t value_;
};

// ---- All-to-all gossip --------------------------------------------------------------

class AllToAllGossipProcess final : public sim::Process {
 public:
  explicit AllToAllGossipProcess(NodeId n, NodeId self) : extant_(static_cast<std::size_t>(n)) {
    extant_.set(static_cast<std::size_t>(self));
  }

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    if (ctx.round() == 0) {
      for (NodeId v = 0; v < ctx.num_nodes(); ++v) {
        if (v != ctx.self()) ctx.send(v, kTagRumorX, 1, 64);
      }
      return;
    }
    for (const auto& m : inbox) {
      if (m.tag == kTagRumorX) extant_.set(static_cast<std::size_t>(m.from));
    }
    ctx.decide(1);
    ctx.halt();
  }

  [[nodiscard]] const DynamicBitset& extant() const noexcept { return extant_; }

 private:
  DynamicBitset extant_;
};

// ---- Naive checkpointing --------------------------------------------------------------

class NaiveCheckpointProcess final : public sim::Process {
 public:
  NaiveCheckpointProcess(NodeId n, std::int64_t t, NodeId self)
      : n_(n), t_(t), members_(static_cast<std::size_t>(n)) {
    members_.set(static_cast<std::size_t>(self));
  }

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    for (const auto& m : inbox) {
      if (m.tag == kTagPresence) members_.set(static_cast<std::size_t>(m.from));
      if (m.tag == kTagMemberSet) {
        ByteReader reader(m.body());
        if (auto set = reader.get_bitset(static_cast<std::size_t>(n_))) {
          members_ = std::move(*set);
        }
      }
    }
    const Round r = ctx.round();
    if (r == 0) {
      for (NodeId v = 0; v < n_; ++v) {
        if (v != ctx.self()) ctx.send(v, kTagPresence, 1, 1);
      }
      return;
    }
    const Round phase = r - 1;  // coordinator phases 0..t
    if (phase <= t_) {
      if (ctx.self() == static_cast<NodeId>(phase % n_)) {
        ByteWriter w;
        w.put_bitset(members_);
        for (NodeId v = 0; v < n_; ++v) {
          if (v != ctx.self()) {
            ctx.send(v, kTagMemberSet, 0, static_cast<std::uint64_t>(n_), w.view());
          }
        }
      }
      return;
    }
    decided_ = true;
    ctx.decide(hash_words(members_.words()));
    ctx.halt();
  }

  [[nodiscard]] bool decided() const noexcept { return decided_; }
  [[nodiscard]] const DynamicBitset& members() const noexcept { return members_; }

 private:
  NodeId n_;
  std::int64_t t_;
  DynamicBitset members_;
  bool decided_ = false;
};

// ---- Full Dolev-Strong ------------------------------------------------------------------

class DsFullProcess final : public sim::Process {
 public:
  DsFullProcess(std::shared_ptr<const crypto::KeyRegistry> registry, NodeId n, std::int64_t t,
                NodeId self, std::uint64_t input)
      : n_(n), ds_(registry, registry->signer_for(self), n, t) {
    ds_.set_own_value(input);
  }

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    if (ctx.round() < ds_.duration()) {
      const auto combined = ds_.step(ctx.round(), inbox.all());
      if (!combined.empty()) {
        const std::uint64_t bits = std::max<std::uint64_t>(1, combined.size() * 8);
        for (NodeId v = 0; v < n_; ++v) {
          if (v != ctx.self()) ctx.send(v, core::kTagDsRelay, 0, bits, combined);
        }
      }
      return;
    }
    ctx.decide(ds_.result().max_value());
    ctx.halt();
  }

 private:
  NodeId n_;
  byzantine::DsNode ds_;
};

}  // namespace

core::ConsensusOutcome run_floodset(NodeId n, std::int64_t t, std::span<const int> inputs,
                                    std::unique_ptr<sim::FaultInjector> adversary) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == n);
  auto report = core::run_system(
      n, t,
      [&](NodeId v) {
        return std::make_unique<FloodSetProcess>(n, t, inputs[static_cast<std::size_t>(v)]);
      },
      std::move(adversary));
  return core::evaluate_consensus(std::move(report), inputs);
}

core::ConsensusOutcome run_rotating_coordinator(NodeId n, std::int64_t t,
                                                std::span<const int> inputs,
                                                std::unique_ptr<sim::FaultInjector> adversary) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == n);
  auto report = core::run_system(
      n, t,
      [&](NodeId v) {
        return std::make_unique<CoordinatorProcess>(n, t, inputs[static_cast<std::size_t>(v)]);
      },
      std::move(adversary));
  return core::evaluate_consensus(std::move(report), inputs);
}

NaiveGossipOutcome run_all_to_all_gossip(NodeId n, std::int64_t t,
                                         std::unique_ptr<sim::FaultInjector> adversary) {
  sim::EngineConfig config;
  config.crash_budget = t;
  config.omission_budget = t;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, std::make_unique<AllToAllGossipProcess>(n, v));
  }
  if (adversary != nullptr) engine.add_fault_injector(std::move(adversary));
  NaiveGossipOutcome out;
  out.report = engine.run();
  out.condition1 = true;
  out.condition2 = true;
  for (NodeId v = 0; v < n; ++v) {
    const auto& vs = out.report.nodes[static_cast<std::size_t>(v)];
    if (vs.crashed || vs.omission) continue;  // faulty nodes are exempt
    const auto& extant =
        static_cast<const AllToAllGossipProcess&>(engine.process(v)).extant();
    for (NodeId j = 0; j < n; ++j) {
      const auto& js = out.report.nodes[static_cast<std::size_t>(j)];
      if (js.crashed && js.sends == 0 && j != v && extant.test(static_cast<std::size_t>(j))) {
        out.condition1 = false;
      }
      if (!js.crashed && !js.omission && !extant.test(static_cast<std::size_t>(j))) {
        out.condition2 = false;
      }
    }
  }
  return out;
}

NaiveCheckpointOutcome run_naive_checkpointing(NodeId n, std::int64_t t,
                                               std::unique_ptr<sim::FaultInjector> adversary) {
  sim::EngineConfig config;
  config.crash_budget = t;
  config.omission_budget = t;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, std::make_unique<NaiveCheckpointProcess>(n, t, v));
  }
  if (adversary != nullptr) engine.add_fault_injector(std::move(adversary));
  NaiveCheckpointOutcome out;
  out.report = engine.run();
  out.termination = out.report.completed;
  out.condition1 = out.condition2 = out.condition3 = true;
  const DynamicBitset* reference = nullptr;
  for (NodeId v = 0; v < n; ++v) {
    const auto& vs = out.report.nodes[static_cast<std::size_t>(v)];
    if (vs.crashed || vs.omission) continue;  // faulty nodes are exempt
    const auto& proc = static_cast<const NaiveCheckpointProcess&>(engine.process(v));
    if (!proc.decided()) {
      out.termination = false;
      continue;
    }
    const DynamicBitset& set = proc.members();
    if (reference == nullptr) {
      reference = &set;
    } else if (!(*reference == set)) {
      out.condition3 = false;
    }
    for (NodeId j = 0; j < n; ++j) {
      const auto& js = out.report.nodes[static_cast<std::size_t>(j)];
      if (js.crashed && js.sends == 0 && set.test(static_cast<std::size_t>(j))) {
        out.condition1 = false;
      }
      if (!js.crashed && !js.omission && !set.test(static_cast<std::size_t>(j))) {
        out.condition2 = false;
      }
    }
  }
  return out;
}

DsFullOutcome run_full_dolev_strong(NodeId n, std::int64_t t,
                                    std::span<const std::uint64_t> inputs,
                                    const std::vector<std::pair<NodeId, std::string>>& byzantine) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == n);
  auto registry = std::make_shared<crypto::KeyRegistry>(n, 0xD5F011);

  // Reuse the AB-Consensus behavior factory for the Byzantine nodes: its
  // relay-level attacks target exactly the DS validation logic.
  byzantine::AbParams ab;
  ab.n = n;
  ab.t = t;
  ab.little_count = n;
  ab.cert_threshold = static_cast<NodeId>(std::max<std::int64_t>(1, n - t));
  ab.spread_rounds = 1;
  auto cfg = std::make_shared<byzantine::AbConfig>();
  cfg->params = ab;
  cfg->registry = registry;

  sim::EngineConfig config;
  config.max_rounds = t + 16;
  sim::Engine engine(n, config);
  std::vector<bool> is_byz(static_cast<std::size_t>(n), false);
  for (const auto& [node, kind] : byzantine) {
    is_byz[static_cast<std::size_t>(node)] = true;
    engine.set_process(node,
                       byzantine::make_byzantine_process(kind, cfg, node, make_seed(0xB, node)));
    engine.mark_byzantine(node);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!is_byz[static_cast<std::size_t>(v)]) {
      engine.set_process(v, std::make_unique<DsFullProcess>(registry, n, t, v,
                                                            inputs[static_cast<std::size_t>(v)]));
    }
  }

  DsFullOutcome out;
  out.report = engine.run();
  out.termination = true;
  out.agreement = true;
  for (const auto& s : out.report.nodes) {
    if (s.byzantine) continue;
    if (!s.decided) {
      out.termination = false;
      continue;
    }
    if (out.decision && *out.decision != s.decision) out.agreement = false;
    out.decision = s.decision;
  }
  return out;
}

}  // namespace lft::baselines
