// The classical baselines the paper compares against (Table 1 "O(1)" rows
// and the prior-work complexity points):
//  FloodSet            — full-information consensus: t+1 all-to-all rounds,
//                        Theta(t n^2) messages (folklore, [35, 37]).
//  RotatingCoordinator — t+1 coordinator phases: O(t) rounds, O(t n) msgs.
//  AllToAllGossip      — one broadcast round: O(1) rounds, Theta(n^2) msgs
//                        (the message-heavy time-optimal extreme, cf. [25]).
//  NaiveCheckpointing  — all-to-all presence exchange + t+1 coordinator
//                        set-broadcast phases: O(t) rounds, O(t n) messages
//                        (the De Prisco-Mayer-Yung [20] shape).
//  FullDolevStrong     — n parallel authenticated broadcasts over all nodes:
//                        O(t) rounds, Theta(n^2) messages ([24], Table 1
//                        row "authenticated consensus, t = O(1)").
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bitset.hpp"
#include "core/consensus.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"

namespace lft::baselines {

/// FloodSet binary consensus (crash model).
[[nodiscard]] core::ConsensusOutcome run_floodset(NodeId n, std::int64_t t,
                                                  std::span<const int> inputs,
                                                  std::unique_ptr<sim::FaultInjector> adversary);

/// Rotating-coordinator binary consensus (crash model).
[[nodiscard]] core::ConsensusOutcome run_rotating_coordinator(
    NodeId n, std::int64_t t, std::span<const int> inputs,
    std::unique_ptr<sim::FaultInjector> adversary);

/// One-shot all-to-all gossip. Returns per-node extant bitsets via the
/// outcome's process inspection; the report carries the cost metrics.
struct NaiveGossipOutcome {
  sim::Report report;
  bool condition1 = false;
  bool condition2 = false;
};
[[nodiscard]] NaiveGossipOutcome run_all_to_all_gossip(
    NodeId n, std::int64_t t, std::unique_ptr<sim::FaultInjector> adversary);

/// All-to-all presence exchange followed by t+1 coordinator set-broadcast
/// phases; all non-faulty nodes decide the same member set.
struct NaiveCheckpointOutcome {
  sim::Report report;
  bool termination = false;
  bool condition1 = false;
  bool condition2 = false;
  bool condition3 = false;
  [[nodiscard]] bool all_good() const {
    return termination && condition1 && condition2 && condition3;
  }
};
[[nodiscard]] NaiveCheckpointOutcome run_naive_checkpointing(
    NodeId n, std::int64_t t, std::unique_ptr<sim::FaultInjector> adversary);

/// n parallel Dolev-Strong broadcasts over all n nodes; decision is the
/// maximum resolved value. `byzantine` assigns behaviors as in
/// byzantine::run_ab_consensus.
struct DsFullOutcome {
  sim::Report report;
  bool termination = false;
  bool agreement = false;
  std::optional<std::uint64_t> decision;
};
[[nodiscard]] DsFullOutcome run_full_dolev_strong(
    NodeId n, std::int64_t t, std::span<const std::uint64_t> inputs,
    const std::vector<std::pair<NodeId, std::string>>& byzantine);

}  // namespace lft::baselines
