#include "sim/adversary.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::sim {

std::vector<CrashEvent> isolation_crash_schedule(const graph::Graph& overlay, NodeId victim,
                                                 std::int64_t t) {
  std::vector<CrashEvent> events;
  for (NodeId w : overlay.neighbors(victim)) {
    if (static_cast<std::int64_t>(events.size()) >= t) break;
    events.push_back(CrashEvent{0, w, 0.0});
  }
  return events;
}

ProbeDisruptorAdversary::ProbeDisruptorAdversary(std::int64_t budget, int per_round,
                                                 Round first_round)
    : budget_(budget), per_round_(per_round), first_round_(first_round) {}

void ProbeDisruptorAdversary::on_round(const EngineView& view, FaultController& control) {
  if (view.round() < first_round_ || budget_ <= 0) return;

  pending_.resize(static_cast<std::size_t>(view.num_nodes()), 0);
  for (const Message& m : view.pending_sends()) {
    const auto from = static_cast<std::size_t>(m.from);
    if (pending_[from] == 0) touched_.push_back(m.from);
    ++pending_[from];
  }
  // `touched_` doubles as the candidate list: crashable senders first (the
  // partition keeps dead senders around so their counters still get reset),
  // busiest first within the candidates.
  const auto candidates_end = std::partition(touched_.begin(), touched_.end(), [&](NodeId v) {
    return view.alive(v) && !view.halted(v);
  });
  std::sort(touched_.begin(), candidates_end, [&](NodeId a, NodeId b) {
    const auto pa = pending_[static_cast<std::size_t>(a)];
    const auto pb = pending_[static_cast<std::size_t>(b)];
    return pa != pb ? pa > pb : a < b;
  });
  const auto num_candidates = static_cast<int>(candidates_end - touched_.begin());
  for (int i = 0; i < per_round_ && i < num_candidates && budget_ > 0; ++i) {
    control.crash(touched_[static_cast<std::size_t>(i)]);
    --budget_;
  }
  for (const NodeId v : touched_) pending_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();
}

}  // namespace lft::sim
