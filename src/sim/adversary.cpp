#include "sim/adversary.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::sim {

ScheduledAdversary::ScheduledAdversary(std::vector<CrashEvent> events, std::uint64_t seed)
    : events_(std::move(events)), rng_(seed) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
}

void ScheduledAdversary::on_round(const EngineView& view, CrashController& control) {
  while (next_ < events_.size() && events_[next_].round <= view.round()) {
    const CrashEvent& ev = events_[next_++];
    if (!view.alive(ev.node)) continue;
    if (ev.keep_fraction <= 0.0) {
      control.crash(ev.node);
    } else {
      // Deterministic per-message coin with the configured bias.
      const auto threshold = static_cast<std::uint64_t>(ev.keep_fraction * 1e9);
      const std::uint64_t salt = rng_.next();
      control.crash_partial(ev.node, [threshold, salt](const Message& m) {
        const std::uint64_t coin =
            mix64(salt ^ (static_cast<std::uint64_t>(m.to) << 32) ^
                  static_cast<std::uint64_t>(m.tag));
        return coin % 1000000000ULL < threshold;
      });
    }
  }
}

std::vector<CrashEvent> random_crash_schedule(NodeId n, std::int64_t t, Round first_round,
                                              Round last_round, double keep_fraction,
                                              std::uint64_t seed) {
  LFT_ASSERT(t <= n);
  LFT_ASSERT(first_round <= last_round);
  Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));

  std::vector<CrashEvent> events;
  events.reserve(static_cast<std::size_t>(t));
  for (std::int64_t i = 0; i < t; ++i) {
    CrashEvent ev;
    ev.node = perm[static_cast<std::size_t>(i)];
    ev.round = rng.uniform_int(first_round, last_round);
    ev.keep_fraction = keep_fraction;
    events.push_back(ev);
  }
  return events;
}

std::vector<CrashEvent> burst_crash_schedule(NodeId n, std::int64_t t, Round round,
                                             std::uint64_t seed) {
  return random_crash_schedule(n, t, round, round, 0.0, seed);
}

std::vector<CrashEvent> staggered_crash_schedule(NodeId n, std::int64_t t, Round first_round,
                                                 Round period, std::uint64_t seed) {
  auto events = random_crash_schedule(n, t, 0, 0, 0.0, seed);
  Round r = first_round;
  for (auto& ev : events) {
    ev.round = r;
    r += period;
  }
  return events;
}

std::vector<CrashEvent> isolation_crash_schedule(const graph::Graph& overlay, NodeId victim,
                                                 std::int64_t t) {
  std::vector<CrashEvent> events;
  for (NodeId w : overlay.neighbors(victim)) {
    if (static_cast<std::int64_t>(events.size()) >= t) break;
    events.push_back(CrashEvent{0, w, 0.0});
  }
  return events;
}

ProbeDisruptorAdversary::ProbeDisruptorAdversary(std::int64_t budget, int per_round,
                                                 Round first_round)
    : budget_(budget), per_round_(per_round), first_round_(first_round) {}

void ProbeDisruptorAdversary::on_round(const EngineView& view, CrashController& control) {
  if (view.round() < first_round_ || budget_ <= 0) return;

  pending_.resize(static_cast<std::size_t>(view.num_nodes()), 0);
  for (const Message& m : view.pending_sends()) {
    const auto from = static_cast<std::size_t>(m.from);
    if (pending_[from] == 0) touched_.push_back(m.from);
    ++pending_[from];
  }
  // `touched_` doubles as the candidate list: crashable senders first (the
  // partition keeps dead senders around so their counters still get reset),
  // busiest first within the candidates.
  const auto candidates_end = std::partition(touched_.begin(), touched_.end(), [&](NodeId v) {
    return view.alive(v) && !view.halted(v);
  });
  std::sort(touched_.begin(), candidates_end, [&](NodeId a, NodeId b) {
    const auto pa = pending_[static_cast<std::size_t>(a)];
    const auto pb = pending_[static_cast<std::size_t>(b)];
    return pa != pb ? pa > pb : a < b;
  });
  const auto num_candidates = static_cast<int>(candidates_end - touched_.begin());
  for (int i = 0; i < per_round_ && i < num_candidates && budget_ > 0; ++i) {
    control.crash(touched_[static_cast<std::size_t>(i)]);
    --budget_;
  }
  for (const NodeId v : touched_) pending_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();
}

std::unique_ptr<CrashAdversary> make_scheduled(std::vector<CrashEvent> events,
                                               std::uint64_t seed) {
  return std::make_unique<ScheduledAdversary>(std::move(events), seed);
}

}  // namespace lft::sim
