// The unified fault plane: one adversary API for crash, omission, partition,
// link, and Byzantine faults.
//
// The paper's algorithms are stated against an adaptive adversary; the
// regimes differ only in which actions it may take. A `FaultInjector`
// observes the execution through `EngineView` and applies typed actions
// through `FaultController`:
//   * crash / crash_partial — the paper's crash model (Sections 2-7): a node
//     stops forever; of the sends it produced in its crash round, an
//     arbitrary adversary-chosen subset is still delivered.
//   * send/receive omission — the Dwork-Halpern-Waarts omission regimes: a
//     faulty node keeps running, but messages it sends (send omission) or
//     messages addressed to it (receive omission) are lost in transit.
//   * link cuts and partitions — network faults: a directed link drops every
//     message until healed; a partition drops every message crossing its
//     group boundary until cleared (round-ranged splits + heal/re-merge).
//   * Byzantine takeover — the node's Process is swapped for an injected
//     behavior and the node is marked Byzantine for the honest-communication
//     accounting (Theorem 11's measure).
//   * timing faults — delay rules and the GST knob: matched messages are
//     held in transit and delivered whole at a later round (never lost), the
//     per-message lag drawn from a deterministic content hash. `set_gst`
//     expresses the DLS partially synchronous regime: before the global
//     stabilization time the adversary may hold any message up to GST + Δ,
//     after it every message arrives within Δ rounds.
//
// Injectors fire in two phases each round. `pre_round` runs before nodes are
// stepped: state changes (omission flags, partitions, link cuts, takeovers)
// made here affect the current round's sends. `on_round` runs after sends
// are collected but before delivery — the classical adaptive-crash position,
// where the adversary sees this round's pending sends. All delivery-time
// filtering happens inside the engine's radix sweep, so an armed fault plane
// adds one predictable branch per message and the hot path stays
// allocation-free.
//
// `FaultPlan` is the declarative layer: a data-only schedule of typed fault
// events (composed with fluent builders, including the promoted
// random/burst/staggered crash schedules) that `make_plan_injector` turns
// into a deterministic injector. Scenarios, tests, and benches compose plans
// instead of hand-writing adversary classes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace lft::sim {

class Engine;
class EngineView;
class FaultController;
struct Message;
class Process;

/// Round value meaning "never" for windowed fault events.
inline constexpr Round kRoundForever = std::numeric_limits<Round>::max();

/// A deterministic fault strategy. Both hooks default to no-ops so a
/// strategy overrides only the phase it needs.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// Before the round's nodes are stepped: omission/partition/link state
  /// changes apply to this round's sends; Byzantine takeovers replace the
  /// victim's Process effective this round. `pending_sends()` is empty here.
  virtual void pre_round(const EngineView& view, FaultController& control) {
    (void)view;
    (void)control;
  }
  /// After sends are collected, before delivery: the adaptive-crash position
  /// (the adversary inspects `pending_sends()` and node states).
  virtual void on_round(const EngineView& view, FaultController& control) {
    (void)view;
    (void)control;
  }
};

/// Applies typed fault actions for the current round. All actions are
/// engine-enforced against the per-class budgets in EngineConfig.
class FaultController {
 public:
  /// Crashes v this round; all of v's pending sends this round are dropped.
  void crash(NodeId v);
  /// Crashes v this round; of v's pending sends this round, those matching
  /// `keep` are still delivered (the classical partial-send crash).
  void crash_partial(NodeId v, std::function<bool(const Message&)> keep);

  /// While enabled, every message v sends is lost in transit (accounted as
  /// sent, never delivered). Enabling any omission flag on a node for the
  /// first time charges the omission budget once.
  void set_send_omission(NodeId v, bool enabled);
  /// While enabled, every message addressed to v is lost in transit.
  void set_recv_omission(NodeId v, bool enabled);

  /// Drops every message a -> b (directed) until healed. Unbudgeted: link
  /// faults model the network, not node failures.
  void cut_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);

  /// Installs a partition: `group_of` (size n) assigns each node a group id
  /// and every message crossing groups is dropped until `clear_partition`.
  /// Re-installing replaces the previous partition.
  void set_partition(std::span<const std::uint32_t> group_of);
  void clear_partition();

  /// Byzantine takeover (pre-round phase only): swaps v's Process for
  /// `behavior`, marks v Byzantine for the honest counters, and reactivates
  /// v if it was halted or sleeping. The behavior runs from the current
  /// round on. Charges the Byzantine budget.
  void takeover(NodeId v, std::unique_ptr<Process> behavior);

  /// Installs a timing-fault rule: messages src -> dst (kNoNode = wildcard)
  /// sent while the rule is active are delivered `min_delay..max_delay`
  /// rounds later than normal, the exact lag drawn per message from a
  /// deterministic hash seeded by `salt`. Lag 0 means normal next-round
  /// delivery. Delayed messages are never lost in transit — they arrive
  /// whole at their due round, or count as `lost_dead` if the receiver has
  /// crashed or halted by then. Unbudgeted (network fault). Returns a rule
  /// id for `remove_delay_rule`; earlier-installed rules match first.
  std::size_t add_delay_rule(NodeId src, NodeId dst, Round min_delay, Round max_delay,
                             std::uint64_t salt);
  /// Retires a delay rule; messages already in transit keep their due round.
  void remove_delay_rule(std::size_t id);

  /// Arms the GST partial-synchrony knob: a message sent at round r gets a
  /// hash-drawn lag of up to `stabilization - r - 1 + delta` rounds while
  /// r < stabilization (so everything sent before GST is readable by round
  /// stabilization + delta), and up to `delta - 1` rounds after (readable
  /// within Δ = delta rounds of the send). delta must be >= 1; delta == 1
  /// is fully synchronous delivery. Explicit delay rules take precedence on
  /// the links they match. Unbudgeted.
  void set_gst(Round stabilization, Round delta, std::uint64_t salt);

 private:
  friend class Engine;
  explicit FaultController(Engine& engine) : engine_(&engine) {}
  Engine* engine_;
};

/// An ordered collection of injectors driven by the engine each round. Order
/// is deterministic: injectors fire in insertion order within each phase.
class FaultPlane {
 public:
  /// Appends an injector (fires after previously added ones in each phase).
  FaultPlane& add(std::unique_ptr<FaultInjector> injector);
  /// True iff no injector is installed (the engine skips both phases).
  [[nodiscard]] bool empty() const noexcept { return injectors_.empty(); }
  /// Number of installed injectors.
  [[nodiscard]] std::size_t size() const noexcept { return injectors_.size(); }

  /// Drives every injector's pre-round hook, in insertion order.
  void pre_round(const EngineView& view, FaultController& control);
  /// Drives every injector's post-step hook, in insertion order.
  void on_round(const EngineView& view, FaultController& control);

 private:
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
};

// ---- declarative fault plans ----------------------------------------------

/// One planned crash: node `node` crashes at round `round`; each of its
/// pending sends that round survives with probability keep_fraction
/// (0 = clean crash, 1 = all of that round's sends still delivered).
struct CrashEvent {
  Round round = 0;
  NodeId node = kNoNode;
  double keep_fraction = 0.0;
};

/// Omission window: node `node` is send- and/or receive-omission faulty
/// during rounds [from, until).
struct OmissionEvent {
  NodeId node = kNoNode;
  Round from = 0;
  Round until = kRoundForever;
  bool send = true;
  bool recv = false;
};

/// Link-cut window: messages a -> b (and b -> a when symmetric) are dropped
/// during rounds [from, until).
struct LinkEvent {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  Round from = 0;
  Round until = kRoundForever;
  bool symmetric = true;
};

/// Partition window: `group_of` (size n) holds each node's group during
/// rounds [from, until); messages crossing groups are dropped. At `until`
/// the partition heals (groups re-merge).
struct PartitionSpec {
  Round from = 0;
  Round until = kRoundForever;
  std::vector<std::uint32_t> group_of;
};

/// Byzantine takeover: at round `round`, node `node`'s Process is replaced
/// by the behavior the plan's BehaviorFactory builds for `kind`.
struct ByzantineEvent {
  Round round = 0;
  NodeId node = kNoNode;
  std::string kind;
};

/// Timing-fault window: messages src -> dst (kNoNode = every sender /
/// receiver) sent during rounds [from, until) are delivered
/// `min_delay..max_delay` rounds late, the exact lag drawn per message from
/// a deterministic hash of the plan seed and the event's own content — so
/// dropping sibling events (ddmin) never reshuffles this event's coins.
struct DelayEvent {
  Round from = 0;
  Round until = kRoundForever;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Round min_delay = 1;
  Round max_delay = 1;
};

/// GST switch, armed from round 0: adversarial (hash-drawn, bounded only by
/// GST + delta) lags before round `stabilization`, lags < `delta` after.
struct GstEvent {
  Round stabilization = 0;
  Round delta = 1;
};

/// Builds the Process installed by a planned Byzantine takeover.
using BehaviorFactory =
    std::function<std::unique_ptr<Process>(NodeId node, const std::string& kind)>;

/// t distinct victims crash at uniform random rounds within
/// [first_round, last_round], each with the given partial-send fraction.
[[nodiscard]] std::vector<CrashEvent> random_crash_schedule(NodeId n, std::int64_t t,
                                                            Round first_round,
                                                            Round last_round,
                                                            double keep_fraction,
                                                            std::uint64_t seed);

/// All t victims crash at round `round` (an early burst is the classic
/// worst case for flooding protocols).
[[nodiscard]] std::vector<CrashEvent> burst_crash_schedule(NodeId n, std::int64_t t,
                                                           Round round, std::uint64_t seed);

/// One victim crashes every `period` rounds starting at `first_round`
/// (exercises the paper's "one crash delays termination by O(1) rounds").
[[nodiscard]] std::vector<CrashEvent> staggered_crash_schedule(NodeId n, std::int64_t t,
                                                               Round first_round, Round period,
                                                               std::uint64_t seed);

/// A declarative, data-only fault schedule. Compose with the fluent
/// builders, then turn into an injector with `make_plan_injector`; scenarios
/// store plans, not adversary objects, so fault programs stay inspectable
/// and composable.
struct FaultPlan {
  std::uint64_t seed = 0;  // drives partial-send coins for planned crashes
  std::vector<CrashEvent> crashes;
  std::vector<OmissionEvent> omissions;
  std::vector<LinkEvent> links;
  std::vector<PartitionSpec> partitions;
  std::vector<ByzantineEvent> takeovers;
  std::vector<DelayEvent> delays;  // appended after takeovers: the shrinker's
  std::vector<GstEvent> gsts;      // flat event order depends on member order

  FaultPlan& with_seed(std::uint64_t s);
  /// Appends pre-built crash events (e.g. isolation_crash_schedule).
  FaultPlan& crash(std::vector<CrashEvent> events);
  FaultPlan& crash_at(NodeId node, Round round, double keep_fraction = 0.0);
  FaultPlan& random_crashes(NodeId n, std::int64_t t, Round first_round, Round last_round,
                            double keep_fraction, std::uint64_t schedule_seed);
  FaultPlan& burst_crashes(NodeId n, std::int64_t t, Round round, std::uint64_t schedule_seed);
  FaultPlan& staggered_crashes(NodeId n, std::int64_t t, Round first_round, Round period,
                               std::uint64_t schedule_seed);
  FaultPlan& omission(NodeId node, Round from, Round until, bool send, bool recv);
  /// `count` distinct omission-faulty nodes, windowed [from, until).
  FaultPlan& random_omissions(NodeId n, std::int64_t count, Round from, Round until, bool send,
                              bool recv, std::uint64_t schedule_seed);
  FaultPlan& cut_link(NodeId a, NodeId b, Round from, Round until, bool symmetric = true);
  /// Two-way split: nodes [0, boundary) vs [boundary, n) during [from, until).
  FaultPlan& split_at(NodeId boundary, NodeId n, Round from, Round until);
  FaultPlan& split(std::vector<std::uint32_t> group_of, Round from, Round until);
  FaultPlan& takeover(NodeId node, Round round, std::string kind);
  /// Delays messages src -> dst (kNoNode wildcards) sent during [from,
  /// until) by a hash-drawn lag in [min_delay, max_delay].
  FaultPlan& delay(NodeId src, NodeId dst, Round from, Round until, Round min_delay,
                   Round max_delay);
  /// Delays every message sent during [from, until).
  FaultPlan& delay_all(Round from, Round until, Round min_delay, Round max_delay);
  /// Arms the DLS partial-synchrony regime: adversarial lags before round
  /// `stabilization` (everything sent pre-GST readable by stabilization +
  /// delta), lags < delta after. delta >= 1; delta == 1 is synchronous.
  FaultPlan& gst(Round stabilization, Round delta);

  /// Distinct faulty *nodes* the plan names (crash + omission + Byzantine
  /// victims; link/partition faults are network faults). Budget-sizing aid.
  [[nodiscard]] std::int64_t faulty_nodes() const;
};

/// Deterministic injector executing `plan`: crashes fire in the post-step
/// phase (the classical adaptive position, same partial-send coins as
/// ScheduledAdversary); omission/link/partition windows and takeovers fire
/// in the pre-round phase at their scheduled rounds. `byz` is required iff
/// the plan contains takeovers.
[[nodiscard]] std::unique_ptr<FaultInjector> make_plan_injector(FaultPlan plan,
                                                                BehaviorFactory byz = nullptr);

/// Executes a fixed schedule of crash events (the original crash-only
/// strategy, now a FaultInjector).
class ScheduledAdversary final : public FaultInjector {
 public:
  ScheduledAdversary(std::vector<CrashEvent> events, std::uint64_t seed);
  void on_round(const EngineView& view, FaultController& control) override;

 private:
  std::vector<CrashEvent> events_;  // sorted by round
  std::size_t next_ = 0;
  Rng rng_;
};

/// Convenience: wraps a crash schedule in an injector.
[[nodiscard]] std::unique_ptr<FaultInjector> make_scheduled(std::vector<CrashEvent> events,
                                                            std::uint64_t seed = 0);

}  // namespace lft::sim
