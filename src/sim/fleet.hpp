// Fleet mode: instance-multiplexed execution of many independent protocol
// runs over one shared engine core.
//
// The paper's headline is per-execution linearity; the simulator's job at
// production scale is *aggregate throughput* — hundreds to thousands of
// executions (each its own node set, fault plan, seed, and Report) swept
// across seeds, sizes, and fault plans. FleetRunner multiplexes those
// instances over a shared worker pool:
//
//   * one persistent pool of `threads` workers shared by every instance;
//   * per-worker recycled EngineScratch (message vectors + payload-arena
//     chunks), so the k-th instance on a slot reaches the engine's
//     zero-allocation steady state without re-growing its buffers;
//   * per-worker run queues with work-stealing: submissions are dealt
//     round-robin, a worker that drains its own queue steals from the
//     busiest peer, so short executions retire early and free their slot
//     for queued ones instead of idling behind a long tail;
//   * NUMA-aware placement on multi-socket hosts: workers are spread across
//     the populated nodes, each pinned to its node's cpu set so recycled
//     scratch pages stay behind the local memory controller, and stealing
//     prefers same-node victims (remote steals remain the fallback, and are
//     counted). Single-node hosts — most CI, this dev container — discover
//     one node and run exactly the old flat behavior; LFT_NUMA=0 forces
//     that. Placement is a throughput hint only and never changes a Report
//     bit (an instance runs serially wherever it lands);
//   * per-instance message namespaces for free — every instance owns a
//     private Engine (nodes, arenas, fault plane, metrics), so nothing an
//     instance does can alias another instance's messages or state.
//
// Determinism: each instance runs its engine serially on whichever worker
// picks it up, so its Report is bit-identical to running the same
// (scenario, plan, seed) alone in a plain loop — regardless of fleet
// concurrency, submission order, or which worker executed it. Only the
// *completion order* of handles is nondeterministic. Scratch adoption is a
// capacity cache and never changes a Report bit (asserted in
// tests/test_fleet.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace lft::sim {

/// Fleet-pool configuration.
struct FleetConfig {
  /// Worker threads executing instances; clamped to [1, 64]. Each worker
  /// runs one instance at a time, serially.
  int threads = 1;
  /// Recycle per-worker EngineScratch across the instances a worker runs
  /// (pass the slot's scratch to each job). Purely a capacity cache;
  /// disable to give every instance cold buffers.
  bool reuse_scratch = true;
  /// Hand each telemetry-aware job (the two-argument submit overload) its
  /// slot's obs::Registry; FleetRunner::telemetry() merges the per-slot
  /// registries after the fleet drains. Off (nullptr handed out) by
  /// default — telemetry never changes a Report bit either way.
  bool telemetry = false;
};

/// One queued execution. The job builds, runs, and evaluates a complete
/// instance and returns its Report. `scratch` is the executing slot's
/// recycled buffer set (hand it to EngineConfig::scratch), or nullptr when
/// FleetConfig::reuse_scratch is off; a job is free to ignore it. Jobs run
/// concurrently with other jobs, so they must not touch shared mutable
/// state — every shipped protocol runner already satisfies this. A job
/// that throws yields a default Report (completed == false) through its
/// handle; the pool keeps running.
using FleetJob = std::function<Report(EngineScratch* scratch)>;

/// Telemetry-aware job: additionally receives the executing slot's metric
/// registry (single-writer: only the instance currently running on that
/// slot records into it), or nullptr when FleetConfig::telemetry is off.
/// Hand it to core::RunOptions::telemetry / EngineConfig::telemetry.
using FleetJobObs = std::function<Report(EngineScratch* scratch, obs::Registry* telemetry)>;

/// Runs queued instances over a shared worker pool (see file comment).
/// Thread-safe: submit/wait may be called from any thread. The destructor
/// drains the queue (every submitted job still runs) before joining.
class FleetRunner {
 public:
  /// Future-like handle to one submitted instance's Report. Handles are
  /// cheap shared references; copying one does not duplicate the execution.
  class Handle {
   public:
    Handle() = default;
    /// False for a default-constructed handle.
    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
    /// True once the instance finished (never blocks).
    [[nodiscard]] bool ready() const;
    /// Blocks until the instance finished; returns its Report. Valid for
    /// the lifetime of the handle (the state is shared, not runner-owned).
    [[nodiscard]] const Report& wait() const;
    /// Blocks, then moves the Report out (at most once per instance).
    [[nodiscard]] Report take();

   private:
    friend class FleetRunner;
    struct State;
    std::shared_ptr<State> state_;
  };

  explicit FleetRunner(FleetConfig config);
  /// Drains every queued instance, then joins the pool.
  ~FleetRunner();
  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  /// Enqueues one instance; it starts as soon as a worker frees up.
  Handle submit(FleetJob job);
  /// Telemetry-aware overload (see FleetJobObs).
  Handle submit(FleetJobObs job);
  /// Blocks until every instance submitted so far has completed.
  void wait_all();

  /// Merge of every slot's metric registry (counter add, gauge max,
  /// histogram merge) — per-instance engine telemetry aggregated across the
  /// whole fleet. Call after wait_all(): slots record outside the runner
  /// lock while instances run. Empty when FleetConfig::telemetry is off.
  [[nodiscard]] obs::Snapshot telemetry() const;

  /// Actual worker count (config clamped).
  [[nodiscard]] int threads() const noexcept;
  /// Instances submitted / completed so far.
  [[nodiscard]] std::int64_t submitted() const;
  [[nodiscard]] std::int64_t completed() const;
  /// Instances a worker stole from another worker's queue.
  [[nodiscard]] std::int64_t stolen() const;
  /// Subset of stolen() taken from a worker pinned to a different NUMA node
  /// (0 on single-node hosts, where every steal is local by definition).
  [[nodiscard]] std::int64_t stolen_remote() const;
  /// NUMA nodes the pool spread its workers across (1 = flat mode).
  [[nodiscard]] int numa_nodes() const noexcept;
  /// EngineScratch observability across completed instances: engines that
  /// adopted a slot's scratch, and adoptions that found warm buffers from a
  /// previous instance in that slot (see EngineScratch counters). Both are 0
  /// when FleetConfig::reuse_scratch is off or jobs ignore their scratch.
  /// A slot's counters are folded in just before its instance counts as
  /// completed, so these are exact after wait_all() (an instance's handle
  /// becomes ready slightly before its fold — don't read stats off a bare
  /// handle wait).
  [[nodiscard]] std::int64_t scratch_adoptions() const;
  [[nodiscard]] std::int64_t scratch_recycles() const;

 private:
  struct Task;
  struct Worker;

  void worker_loop(std::size_t slot);
  /// Pops this worker's next task, stealing from the busiest peer when its
  /// own queue is empty. Caller holds mu_. Returns false when idle.
  bool pop_task(std::size_t slot, Task& out);

  FleetConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  // workers park here when idle
  std::condition_variable cv_idle_;  // wait_all / the destructor park here
  std::size_t next_queue_ = 0;       // round-robin dealing cursor
  int numa_nodes_ = 1;               // nodes the workers were spread across
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t stolen_ = 0;
  std::int64_t stolen_remote_ = 0;
  std::int64_t scratch_adoptions_ = 0;  // folded from per-slot counters
  std::int64_t scratch_recycles_ = 0;   // after each completed instance
  bool stop_ = false;
};

}  // namespace lft::sim
