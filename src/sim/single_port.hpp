// Single-port synchronous engine (Section 8 model): per round a node may
// enqueue at most one message to one chosen target and poll at most one
// inbound port. Each directed link is a FIFO queue; polls dequeue one
// message; nodes get no signal that messages are waiting on a port. Crashes
// are controlled by an adversary with budget t, as in the multi-port engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"  // reuses Report / NodeStatus / Metrics
#include "sim/message.hpp"

namespace lft::sim {

struct SpSend {
  NodeId to = kNoNode;
  std::uint32_t tag = 0;
  std::uint64_t value = 0;
  std::uint64_t bits = 1;
  /// Payload view; must reference storage that stays valid until the engine
  /// finishes the round (it is copied into the link's pooled byte buffer
  /// after the adversary step). Process-owned scratch satisfies this.
  PayloadView body{};
};

/// A node's move for one round: optionally send one message and/or poll one
/// inbound port (poll == kNoNode means no poll).
struct SpAction {
  std::optional<SpSend> send;
  NodeId poll = kNoNode;
};

class SinglePortEngine;

class SpContext {
 public:
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] NodeId num_nodes() const noexcept;
  [[nodiscard]] Round round() const noexcept;
  void decide(std::uint64_t value);
  [[nodiscard]] bool has_decided() const noexcept;
  [[nodiscard]] std::uint64_t decision() const noexcept;
  void halt();
  void count_fallback();

 private:
  friend class SinglePortEngine;
  SpContext(SinglePortEngine& engine, NodeId self) : engine_(&engine), self_(self) {}
  SinglePortEngine* engine_;
  NodeId self_;
};

class SinglePortProcess {
 public:
  virtual ~SinglePortProcess() = default;
  /// `received` is the message dequeued by this node's poll in the previous
  /// round, if any. Its body views a per-node scratch buffer that is valid
  /// only for the duration of this call — copy the bytes out to keep them.
  virtual SpAction on_round(SpContext& ctx, const std::optional<Message>& received) = 0;
};

/// Adversary-facing view; exposes this round's actions so the Theorem 13
/// constructions can pre-empt a victim's ports.
class SpView {
 public:
  explicit SpView(const SinglePortEngine& engine) : engine_(&engine) {}
  [[nodiscard]] NodeId num_nodes() const noexcept;
  [[nodiscard]] Round round() const noexcept;
  [[nodiscard]] bool alive(NodeId v) const noexcept;
  [[nodiscard]] bool halted(NodeId v) const noexcept;
  [[nodiscard]] bool decided(NodeId v) const noexcept;
  [[nodiscard]] std::int64_t crashes_used() const noexcept;
  [[nodiscard]] std::int64_t crash_budget() const noexcept;
  /// The action node v returned this round (valid for alive, non-halted v).
  [[nodiscard]] const SpAction& action(NodeId v) const noexcept;

 private:
  const SinglePortEngine* engine_;
};

class SpAdversary {
 public:
  virtual ~SpAdversary() = default;
  /// Appends nodes to crash this round to `crash_out`; their sends this
  /// round are dropped.
  virtual void on_round(const SpView& view, std::vector<NodeId>& crash_out) = 0;
};

struct SinglePortConfig {
  Round max_rounds = Round{1} << 22;
  std::int64_t crash_budget = 0;
};

class SinglePortEngine {
 public:
  SinglePortEngine(NodeId n, SinglePortConfig config);
  ~SinglePortEngine();
  SinglePortEngine(const SinglePortEngine&) = delete;
  SinglePortEngine& operator=(const SinglePortEngine&) = delete;

  void set_process(NodeId v, std::unique_ptr<SinglePortProcess> process);
  void set_adversary(std::unique_ptr<SpAdversary> adversary);
  /// Marks v Byzantine for accounting: its sends are excluded from the
  /// honest counters, mirroring the multi-port engine (the adapter path must
  /// report the same Theorem 11 measure).
  void mark_byzantine(NodeId v);

  Report run();

  [[nodiscard]] SinglePortProcess& process(NodeId v);

 private:
  friend class SpContext;
  friend class SpView;

  NodeId n_;
  SinglePortConfig config_;
  Round round_ = 0;
  std::vector<std::unique_ptr<SinglePortProcess>> processes_;
  std::unique_ptr<SpAdversary> adversary_;
  std::vector<NodeStatus> status_;
  std::int64_t crashes_used_ = 0;
  std::vector<SpAction> actions_;
  std::vector<std::optional<Message>> fetched_;

  /// FIFO link queue backed by flat buffers: POD messages plus a pooled byte
  /// buffer holding their payloads in the same FIFO order (strict FIFO means
  /// the payload of buf[head] always starts at bytes_head — no offsets
  /// stored). Pops advance the heads, and the dead prefixes are compacted
  /// once they dominate, so steady-state traffic on a link reuses its
  /// capacity instead of churning per-message allocations.
  struct PortQueue {
    std::vector<Message> buf;
    std::vector<std::byte> bytes;
    std::size_t head = 0;
    std::size_t bytes_head = 0;

    [[nodiscard]] bool empty() const noexcept { return head >= buf.size(); }
    void push(const Message& m, PayloadView body);
    /// Copies the payload into `payload_out` and returns the message with
    /// its body viewing that buffer.
    Message pop(std::vector<std::byte>& payload_out);
  };
  std::unordered_map<std::uint64_t, PortQueue> ports_;
  std::vector<std::vector<std::byte>> fetched_bytes_;  // per-node payload scratch
  Metrics metrics_;
};

}  // namespace lft::sim
