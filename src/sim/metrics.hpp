// Communication accounting, matching the paper's metrics: number of
// point-to-point messages and total bits, with separate counters for
// messages sent by non-faulty nodes (the quantity Theorem 11 bounds for the
// Byzantine model).
#pragma once

#include <cstdint>

namespace lft::sim {

/// Communication accounting for one execution.
struct Metrics {
  std::int64_t messages_total = 0;   ///< point-to-point messages sent
  std::int64_t bits_total = 0;       ///< accounted bits across all messages
  std::int64_t messages_honest = 0;  ///< sent by non-Byzantine nodes
  std::int64_t bits_honest = 0;      ///< bits sent by non-Byzantine nodes
  std::int64_t max_sends_per_node = 0;  ///< largest per-node send count
  std::int64_t fallback_pulls = 0;  ///< activations of the certified-pull epilogue
  std::int64_t rounds = 0;          ///< rounds executed (mirrors Report::rounds)
  std::int64_t peak_round_messages = 0;  ///< largest delivered batch in one round
};

}  // namespace lft::sim
