#include "sim/faults.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace lft::sim {

// ---- FaultController -------------------------------------------------------

void FaultController::crash(NodeId v) { engine_->do_crash(v, nullptr); }

void FaultController::crash_partial(NodeId v, std::function<bool(const Message&)> keep) {
  engine_->do_crash(v, std::move(keep));
}

void FaultController::set_send_omission(NodeId v, bool enabled) {
  engine_->do_set_omission(v, Engine::kOmitSend, enabled);
}

void FaultController::set_recv_omission(NodeId v, bool enabled) {
  engine_->do_set_omission(v, Engine::kOmitRecv, enabled);
}

void FaultController::cut_link(NodeId a, NodeId b) { engine_->do_set_link(a, b, true); }

void FaultController::heal_link(NodeId a, NodeId b) { engine_->do_set_link(a, b, false); }

void FaultController::set_partition(std::span<const std::uint32_t> group_of) {
  engine_->do_set_partition(group_of);
}

void FaultController::clear_partition() { engine_->do_clear_partition(); }

void FaultController::takeover(NodeId v, std::unique_ptr<Process> behavior) {
  engine_->do_takeover(v, std::move(behavior));
}

std::size_t FaultController::add_delay_rule(NodeId src, NodeId dst, Round min_delay,
                                            Round max_delay, std::uint64_t salt) {
  return engine_->do_add_delay_rule(src, dst, min_delay, max_delay, salt);
}

void FaultController::remove_delay_rule(std::size_t id) { engine_->do_remove_delay_rule(id); }

void FaultController::set_gst(Round stabilization, Round delta, std::uint64_t salt) {
  engine_->do_set_gst(stabilization, delta, salt);
}

// ---- FaultPlane ------------------------------------------------------------

FaultPlane& FaultPlane::add(std::unique_ptr<FaultInjector> injector) {
  LFT_ASSERT(injector != nullptr);
  injectors_.push_back(std::move(injector));
  return *this;
}

void FaultPlane::pre_round(const EngineView& view, FaultController& control) {
  for (auto& injector : injectors_) injector->pre_round(view, control);
}

void FaultPlane::on_round(const EngineView& view, FaultController& control) {
  for (auto& injector : injectors_) injector->on_round(view, control);
}

// ---- crash schedules -------------------------------------------------------

std::vector<CrashEvent> random_crash_schedule(NodeId n, std::int64_t t, Round first_round,
                                              Round last_round, double keep_fraction,
                                              std::uint64_t seed) {
  LFT_ASSERT(t <= n);
  LFT_ASSERT(first_round <= last_round);
  Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));

  std::vector<CrashEvent> events;
  events.reserve(static_cast<std::size_t>(t));
  for (std::int64_t i = 0; i < t; ++i) {
    CrashEvent ev;
    ev.node = perm[static_cast<std::size_t>(i)];
    ev.round = rng.uniform_int(first_round, last_round);
    ev.keep_fraction = keep_fraction;
    events.push_back(ev);
  }
  return events;
}

std::vector<CrashEvent> burst_crash_schedule(NodeId n, std::int64_t t, Round round,
                                             std::uint64_t seed) {
  return random_crash_schedule(n, t, round, round, 0.0, seed);
}

std::vector<CrashEvent> staggered_crash_schedule(NodeId n, std::int64_t t, Round first_round,
                                                 Round period, std::uint64_t seed) {
  auto events = random_crash_schedule(n, t, 0, 0, 0.0, seed);
  Round r = first_round;
  for (auto& ev : events) {
    ev.round = r;
    r += period;
  }
  return events;
}

// ---- shared crash-application helper ---------------------------------------

namespace {

/// Applies every due crash event from `events[next...]`, drawing one
/// partial-send coin salt per partial crash — the exact semantics (and rng
/// consumption) of the original ScheduledAdversary, shared with PlanInjector
/// so crash-only plans stay bit-identical to the legacy strategy.
void apply_due_crashes(const std::vector<CrashEvent>& events, std::size_t& next, Rng& rng,
                       const EngineView& view, FaultController& control) {
  while (next < events.size() && events[next].round <= view.round()) {
    const CrashEvent& ev = events[next++];
    if (!view.alive(ev.node)) continue;
    if (ev.keep_fraction <= 0.0) {
      control.crash(ev.node);
    } else {
      // Deterministic per-message coin with the configured bias.
      const auto threshold = static_cast<std::uint64_t>(ev.keep_fraction * 1e9);
      const std::uint64_t salt = rng.next();
      control.crash_partial(ev.node, [threshold, salt](const Message& m) {
        const std::uint64_t coin =
            mix64(salt ^ (static_cast<std::uint64_t>(m.to) << 32) ^
                  static_cast<std::uint64_t>(m.tag));
        return coin % 1000000000ULL < threshold;
      });
    }
  }
}

void sort_by_round(std::vector<CrashEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
}

/// Per-event lag-coin salt: a hash of the plan seed and the event's link and
/// lag bounds — deliberately *not* its window or position in the plan, so
/// ddmin dropping sibling events (or the shrinker narrowing this window)
/// never reshuffles the lags of messages the event still covers.
std::uint64_t delay_event_salt(std::uint64_t seed, const DelayEvent& ev) {
  std::uint64_t h = mix64(seed ^ 0x44454c4159ULL);  // "DELAY"
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.src)) << 32) ^
            static_cast<std::uint32_t>(ev.dst));
  h = mix64(h ^ (static_cast<std::uint64_t>(ev.max_delay) << 32) ^
            static_cast<std::uint64_t>(ev.min_delay));
  return h;
}

std::uint64_t gst_event_salt(std::uint64_t seed, const GstEvent& ev) {
  std::uint64_t h = mix64(seed ^ 0x475354ULL);  // "GST"
  h = mix64(h ^ (static_cast<std::uint64_t>(ev.delta) << 32) ^
            static_cast<std::uint64_t>(ev.stabilization));
  return h;
}

}  // namespace

// ---- ScheduledAdversary ----------------------------------------------------

ScheduledAdversary::ScheduledAdversary(std::vector<CrashEvent> events, std::uint64_t seed)
    : events_(std::move(events)), rng_(seed) {
  sort_by_round(events_);
}

void ScheduledAdversary::on_round(const EngineView& view, FaultController& control) {
  apply_due_crashes(events_, next_, rng_, view, control);
}

std::unique_ptr<FaultInjector> make_scheduled(std::vector<CrashEvent> events,
                                              std::uint64_t seed) {
  return std::make_unique<ScheduledAdversary>(std::move(events), seed);
}

// ---- FaultPlan builders ----------------------------------------------------

FaultPlan& FaultPlan::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

FaultPlan& FaultPlan::crash(std::vector<CrashEvent> events) {
  crashes.insert(crashes.end(), events.begin(), events.end());
  return *this;
}

FaultPlan& FaultPlan::crash_at(NodeId node, Round round, double keep_fraction) {
  crashes.push_back(CrashEvent{round, node, keep_fraction});
  return *this;
}

FaultPlan& FaultPlan::random_crashes(NodeId n, std::int64_t t, Round first_round,
                                     Round last_round, double keep_fraction,
                                     std::uint64_t schedule_seed) {
  return crash(random_crash_schedule(n, t, first_round, last_round, keep_fraction,
                                     schedule_seed));
}

FaultPlan& FaultPlan::burst_crashes(NodeId n, std::int64_t t, Round round,
                                    std::uint64_t schedule_seed) {
  return crash(burst_crash_schedule(n, t, round, schedule_seed));
}

FaultPlan& FaultPlan::staggered_crashes(NodeId n, std::int64_t t, Round first_round,
                                        Round period, std::uint64_t schedule_seed) {
  return crash(staggered_crash_schedule(n, t, first_round, period, schedule_seed));
}

FaultPlan& FaultPlan::omission(NodeId node, Round from, Round until, bool send, bool recv) {
  LFT_ASSERT(send || recv);
  omissions.push_back(OmissionEvent{node, from, until, send, recv});
  return *this;
}

FaultPlan& FaultPlan::random_omissions(NodeId n, std::int64_t count, Round from, Round until,
                                       bool send, bool recv, std::uint64_t schedule_seed) {
  LFT_ASSERT(count <= n);
  Rng rng(schedule_seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));
  for (std::int64_t i = 0; i < count; ++i) {
    omission(perm[static_cast<std::size_t>(i)], from, until, send, recv);
  }
  return *this;
}

FaultPlan& FaultPlan::cut_link(NodeId a, NodeId b, Round from, Round until, bool symmetric) {
  links.push_back(LinkEvent{a, b, from, until, symmetric});
  return *this;
}

FaultPlan& FaultPlan::split_at(NodeId boundary, NodeId n, Round from, Round until) {
  LFT_ASSERT(boundary >= 0 && boundary <= n);
  std::vector<std::uint32_t> group_of(static_cast<std::size_t>(n), 0);
  for (NodeId v = boundary; v < n; ++v) group_of[static_cast<std::size_t>(v)] = 1;
  return split(std::move(group_of), from, until);
}

FaultPlan& FaultPlan::split(std::vector<std::uint32_t> group_of, Round from, Round until) {
  partitions.push_back(PartitionSpec{from, until, std::move(group_of)});
  return *this;
}

FaultPlan& FaultPlan::takeover(NodeId node, Round round, std::string kind) {
  takeovers.push_back(ByzantineEvent{round, node, std::move(kind)});
  return *this;
}

FaultPlan& FaultPlan::delay(NodeId src, NodeId dst, Round from, Round until, Round min_delay,
                            Round max_delay) {
  LFT_ASSERT(min_delay >= 0 && min_delay <= max_delay);
  delays.push_back(DelayEvent{from, until, src, dst, min_delay, max_delay});
  return *this;
}

FaultPlan& FaultPlan::delay_all(Round from, Round until, Round min_delay, Round max_delay) {
  return delay(kNoNode, kNoNode, from, until, min_delay, max_delay);
}

FaultPlan& FaultPlan::gst(Round stabilization, Round delta) {
  LFT_ASSERT(delta >= 1);
  gsts.push_back(GstEvent{stabilization, delta});
  return *this;
}

std::int64_t FaultPlan::faulty_nodes() const {
  std::vector<NodeId> nodes;
  for (const auto& ev : crashes) nodes.push_back(ev.node);
  for (const auto& ev : omissions) nodes.push_back(ev.node);
  for (const auto& ev : takeovers) nodes.push_back(ev.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return static_cast<std::int64_t>(nodes.size());
}

// ---- PlanInjector ----------------------------------------------------------

namespace {

/// Executes a FaultPlan. The plan's window events are pre-compiled into a
/// single round-sorted op list applied in the pre-round phase; crashes run
/// in the post-step phase through the shared helper above.
class PlanInjector final : public FaultInjector {
 public:
  PlanInjector(FaultPlan plan, BehaviorFactory byz)
      : plan_(std::move(plan)), byz_(std::move(byz)), rng_(plan_.seed) {
    LFT_ASSERT_MSG(plan_.takeovers.empty() || byz_ != nullptr,
                   "a plan with Byzantine takeovers needs a BehaviorFactory");
    sort_by_round(plan_.crashes);
    // Expand windowed events into (round, op) toggles. Ties are broken by
    // insertion order (stable sort), so plans are deterministic programs.
    for (std::size_t i = 0; i < plan_.omissions.size(); ++i) {
      const auto& ev = plan_.omissions[i];
      ops_.push_back(Op{ev.from, OpKind::kOmitOn, i});
      if (ev.until != kRoundForever) ops_.push_back(Op{ev.until, OpKind::kOmitOff, i});
    }
    for (std::size_t i = 0; i < plan_.links.size(); ++i) {
      const auto& ev = plan_.links[i];
      ops_.push_back(Op{ev.from, OpKind::kLinkCut, i});
      if (ev.until != kRoundForever) ops_.push_back(Op{ev.until, OpKind::kLinkHeal, i});
    }
    for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
      const auto& ev = plan_.partitions[i];
      ops_.push_back(Op{ev.from, OpKind::kSplit, i});
      if (ev.until != kRoundForever) ops_.push_back(Op{ev.until, OpKind::kHeal, i});
    }
    for (std::size_t i = 0; i < plan_.takeovers.size(); ++i) {
      ops_.push_back(Op{plan_.takeovers[i].round, OpKind::kTakeover, i});
    }
    for (std::size_t i = 0; i < plan_.delays.size(); ++i) {
      const auto& ev = plan_.delays[i];
      ops_.push_back(Op{ev.from, OpKind::kDelayOn, i});
      if (ev.until != kRoundForever) ops_.push_back(Op{ev.until, OpKind::kDelayOff, i});
    }
    // The GST knob describes the whole execution; it arms at round 0.
    for (std::size_t i = 0; i < plan_.gsts.size(); ++i) {
      ops_.push_back(Op{0, OpKind::kGst, i});
    }
    std::stable_sort(ops_.begin(), ops_.end(),
                     [](const Op& a, const Op& b) { return a.round < b.round; });
  }

  void pre_round(const EngineView& view, FaultController& control) override {
    while (next_op_ < ops_.size() && ops_[next_op_].round <= view.round()) {
      apply(ops_[next_op_++], view, control);
    }
  }

  void on_round(const EngineView& view, FaultController& control) override {
    apply_due_crashes(plan_.crashes, next_crash_, rng_, view, control);
  }

 private:
  enum class OpKind {
    kOmitOn,
    kOmitOff,
    kLinkCut,
    kLinkHeal,
    kSplit,
    kHeal,
    kTakeover,
    kDelayOn,
    kDelayOff,
    kGst,
  };
  struct Op {
    Round round;
    OpKind kind;
    std::size_t index;
  };

  // Overlapping windows compose by reference counting: a flag (or link cut)
  // stays active until *every* window that raised it has closed, and the
  // active partition is the latest-started open spec — an inner window's
  // heal restores the enclosing one instead of clearing everything.

  void set_omission(const OmissionEvent& ev, NodeId node, bool on,
                    FaultController& control) {
    auto& counts = omit_counts_[node];
    if (ev.send) {
      counts.send += on ? 1 : -1;
      control.set_send_omission(node, counts.send > 0);
    }
    if (ev.recv) {
      counts.recv += on ? 1 : -1;
      control.set_recv_omission(node, counts.recv > 0);
    }
  }

  void set_link(NodeId a, NodeId b, bool cut, FaultController& control) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
        static_cast<std::uint32_t>(b);
    auto& count = link_counts_[key];
    count += cut ? 1 : -1;
    if (count > 0) {
      control.cut_link(a, b);
    } else {
      control.heal_link(a, b);
    }
  }

  void apply_top_partition(FaultController& control) {
    if (active_partitions_.empty()) {
      control.clear_partition();
    } else {
      control.set_partition(plan_.partitions[active_partitions_.back()].group_of);
    }
  }

  void apply(const Op& op, const EngineView& view, FaultController& control) {
    switch (op.kind) {
      case OpKind::kOmitOn:
      case OpKind::kOmitOff: {
        const auto& ev = plan_.omissions[op.index];
        if (!view.alive(ev.node)) return;  // crashed nodes stay crashed
        set_omission(ev, ev.node, op.kind == OpKind::kOmitOn, control);
        return;
      }
      case OpKind::kLinkCut:
      case OpKind::kLinkHeal: {
        const auto& ev = plan_.links[op.index];
        const bool cut = op.kind == OpKind::kLinkCut;
        set_link(ev.a, ev.b, cut, control);
        if (ev.symmetric) set_link(ev.b, ev.a, cut, control);
        return;
      }
      case OpKind::kSplit:
        active_partitions_.push_back(op.index);
        apply_top_partition(control);
        return;
      case OpKind::kHeal:
        std::erase(active_partitions_, op.index);
        apply_top_partition(control);
        return;
      case OpKind::kTakeover: {
        const auto& ev = plan_.takeovers[op.index];
        if (!view.alive(ev.node)) return;
        control.takeover(ev.node, byz_(ev.node, ev.kind));
        return;
      }
      case OpKind::kDelayOn: {
        const auto& ev = plan_.delays[op.index];
        delay_rule_ids_[op.index] = control.add_delay_rule(
            ev.src, ev.dst, ev.min_delay, ev.max_delay, delay_event_salt(plan_.seed, ev));
        return;
      }
      case OpKind::kDelayOff: {
        const auto it = delay_rule_ids_.find(op.index);
        if (it != delay_rule_ids_.end()) control.remove_delay_rule(it->second);
        return;
      }
      case OpKind::kGst: {
        const auto& ev = plan_.gsts[op.index];
        control.set_gst(ev.stabilization, ev.delta, gst_event_salt(plan_.seed, ev));
        return;
      }
    }
  }

  struct OmitCounts {
    int send = 0;
    int recv = 0;
  };

  FaultPlan plan_;
  BehaviorFactory byz_;
  Rng rng_;
  std::vector<Op> ops_;
  std::size_t next_op_ = 0;
  std::size_t next_crash_ = 0;
  std::map<NodeId, OmitCounts> omit_counts_;
  std::map<std::uint64_t, int> link_counts_;
  std::vector<std::size_t> active_partitions_;  // open specs, by start order
  std::map<std::size_t, std::size_t> delay_rule_ids_;  // delay event -> engine rule id
};

}  // namespace

std::unique_ptr<FaultInjector> make_plan_injector(FaultPlan plan, BehaviorFactory byz) {
  return std::make_unique<PlanInjector>(std::move(plan), std::move(byz));
}

}  // namespace lft::sim
