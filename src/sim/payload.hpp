// Pooled payload storage for the zero-copy message plane. Message bodies
// live in a PayloadArena — a chunked bump allocator with stable addresses —
// and messages carry only a (pointer, length) view, which keeps sim::Message
// trivially copyable and makes the delivery sweep move 40-byte PODs without
// touching payload bytes. Arenas are round-scoped and double-buffered by the
// engine: the arena filled in round r backs the inboxes read in round r+1
// and is reset (chunks retained) in round r+2, so the steady state performs
// no allocation.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/hugepage.hpp"

namespace lft::sim {

/// Non-owning read-only view of a message payload. Producers hand one to
/// Context::send (which copies the bytes into the engine's arena); consumers
/// get one from Message::body(), valid for the round the message is
/// delivered in.
using PayloadView = std::span<const std::byte>;

/// Chunked bump allocator with stable addresses: allocations never move, and
/// clear() resets the cursors while keeping every chunk, so a reused arena
/// allocates nothing in steady state.
class PayloadArena {
 public:
  /// First-chunk size; subsequent chunks double (stable addresses make
  /// growth-by-new-chunk free) so a body-heavy round reaches huge-page-sized
  /// chunks in a few allocations instead of thousands of 64 KiB ones.
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
  /// Chunk-size growth cap: big enough that the chunk count stays O(log) in
  /// the round's body volume, small enough to not strand memory.
  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 23;

  /// Returns `len` stable writable bytes (nullptr for len == 0).
  std::byte* alloc(std::size_t len) {
    if (len == 0) return nullptr;
    while (current_ < chunks_.size() && used_ + len > chunks_[current_].capacity) {
      ++current_;  // payload larger than the remainder: move on (rare)
      used_ = 0;
    }
    if (current_ >= chunks_.size()) {
      std::size_t capacity = next_chunk_bytes_;
      if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
      if (len > capacity) capacity = len;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(capacity), capacity});
      // Large chunks carry the delivery working set; ask for 2 MiB backing
      // (advice only — see common/hugepage.hpp; small chunks are skipped).
      advise_hugepages(chunks_.back().data.get(), capacity);
      used_ = 0;
    }
    std::byte* p = chunks_[current_].data.get() + used_;
    used_ += len;
    total_ += len;
    return p;
  }

  /// Copies `bytes` into the arena and returns the stable view.
  PayloadView store(PayloadView bytes) {
    if (bytes.empty()) return {};
    std::byte* p = alloc(bytes.size());
    std::memcpy(p, bytes.data(), bytes.size());
    return PayloadView(p, bytes.size());
  }

  /// Resets the cursors; chunks (and every outstanding pointer's storage)
  /// stay allocated, so this must only run once the previous round's views
  /// have been consumed.
  void clear() noexcept {
    current_ = 0;
    used_ = 0;
    total_ = 0;
  }

  [[nodiscard]] std::size_t bytes_stored() const noexcept { return total_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity;
  };
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunk the cursor is in
  std::size_t used_ = 0;     // bytes used in chunks_[current_]
  std::size_t total_ = 0;    // bytes stored since the last clear()
  std::size_t next_chunk_bytes_ = kChunkBytes;  // doubling, capped
};

}  // namespace lft::sim
