// Synchronous multi-port message-passing engine (the paper's base model,
// Section 2): n nodes, lock-step rounds, any-to-any messaging, reliable
// same-round delivery, faults controlled by an adaptive adversary through
// the unified fault plane (sim/faults.hpp): crashes with budget t, plus
// send/receive omission, link cuts, partitions, and Byzantine takeover.
// Delivery normal form: sends produced in on_round(r) appear in
// the recipients' inboxes at on_round(r+1); round counts match the paper's.
//
// The engine is batched and event-driven with a zero-copy message plane:
// sim::Message is a trivially-copyable POD whose body is a view into a
// round-scoped, double-buffered PayloadArena, so each round's sends append
// PODs to a contiguous arena (reused across rounds — the steady state
// performs no per-message allocation), delivery is a two-pass counting/radix
// sweep that groups the batch by (receiver, tag) in O(m + min(n, d log d))
// for d distinct receivers, and each receiver gets a zero-copy Inbox view
// into its slice. Only nodes that are alive and not halted are stepped (the
// active set shrinks as the execution winds down), so per-round cost is
// O(active + messages), not O(n).
//
// Opt-in deterministic parallel stepping (EngineConfig::threads > 1): the
// active set is sharded across a small persistent worker pool; each worker
// appends sends to its own outbox arena, and the shards are concatenated in
// ascending sender order after the barrier, so the delivered batch — and
// with it every Report field — is bit-identical to the serial engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_set64.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/payload.hpp"
#include "sim/trace.hpp"

namespace lft::obs {
class Registry;
}  // namespace lft::obs

namespace lft::sim {

class Engine;

/// Per-shard send collector (engine internal): a message vector plus the
/// double-buffered payload arenas its bodies point into. The serial engine
/// uses sink 0; the parallel stepper gives each worker its own, then
/// concatenates in shard (= ascending sender) order.
struct StepSink {
  std::vector<Message> msgs;
  /// Delivery sort keys built on the send path, 1:1 with msgs: the fused
  /// counting-sort key (to << tag_bits) | tag under the tag width latched
  /// when the step began. Shipping the key next to the record saves the
  /// delivery sweep a full gather pass over the batch (clean rounds consume
  /// these directly); rounds that compact the batch or outgrow the latched
  /// tag width rebuild from the records instead.
  std::vector<std::uint32_t> keys;
  std::uint32_t max_tag = 0;
  PayloadArena arena[2];  // indexed by round parity
  std::int64_t fallback_pulls = 0;
  /// Trace-hook accumulators for the current round (both stay 0 when
  /// tracing is off): XOR of store-time body digests, and the sum of
  /// send-time header digests. Both ride the send path while the message
  /// fields are still in registers — re-streaming the multi-hundred-MiB
  /// batch at delivery time just for a digest would cost a full DRAM pass —
  /// and both are worker-local and commutative, so the folded round digest
  /// is identical across serial and parallel stepping.
  std::uint64_t body_hash = 0;
  std::uint64_t header_sum = 0;
  /// Per-round communication accounting, accumulated on the send path and
  /// consumed by the clean-round delivery fast path (which then never has to
  /// re-stream the batch): total accounted bits, and the honest (non-
  /// Byzantine sender) message/bit counts. Rounds that take the compaction
  /// path ignore these — dropped messages make per-message accounting
  /// authoritative there.
  std::int64_t bits_sum = 0;
  std::int64_t honest_msgs = 0;
  std::int64_t honest_bits = 0;
  /// Worker-local per-round flags folded by the coordinator after the step
  /// barrier (workers may not touch shared engine counters): nodes that
  /// halted this round, and whether any node parked itself past the next
  /// round. Both feed the clean-round delivery fast path.
  std::int64_t halts = 0;
  bool slept = false;
};

/// Zero-copy view of one node's delivered batch for the current round.
/// Messages are grouped by tag (ascending) and sorted by sender id within
/// each tag group; per-sender send order is preserved.
class Inbox {
 public:
  Inbox() = default;
  /// Wraps a span that is already grouped by tag / sorted by sender (the
  /// engine's delivery normal form). Public so tests and adapters can build
  /// inboxes without an engine.
  explicit Inbox(std::span<const Message> sorted) : messages_(sorted) {}

  /// The whole delivered batch for this node, in normal-form order.
  [[nodiscard]] std::span<const Message> all() const noexcept { return messages_; }
  /// The contiguous run of messages carrying `tag` (binary search).
  [[nodiscard]] std::span<const Message> with_tag(std::uint32_t tag) const noexcept;

  /// Number of messages delivered this round.
  [[nodiscard]] std::size_t size() const noexcept { return messages_.size(); }
  /// True iff nothing was delivered this round.
  [[nodiscard]] bool empty() const noexcept { return messages_.empty(); }
  /// Range-for support over the delivered batch.
  [[nodiscard]] const Message* begin() const noexcept { return messages_.data(); }
  [[nodiscard]] const Message* end() const noexcept {
    return messages_.data() + messages_.size();
  }

 private:
  std::span<const Message> messages_;
};

/// Per-node handle the engine passes to Process::on_round.
class Context {
 public:
  /// This node's id.
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  /// System size n. Inline below the Engine class: protocols read these
  /// inside their per-message send loops.
  [[nodiscard]] NodeId num_nodes() const noexcept;
  /// The current round (0-based).
  [[nodiscard]] Round round() const noexcept;

  /// Queues a message for delivery at the start of the next round. The
  /// payload bytes are copied into the engine's round arena immediately, so
  /// `body` may reference any storage that outlives the call. Defined inline
  /// below the Engine class: the bodyless case is the engine's single
  /// hottest operation and compiles down to accounting plus one 40-byte
  /// append when inlined into the caller's round loop.
  void send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits = 1,
            PayloadView body = {});

  /// Irrevocably decides on a value; deciding twice on different values is a
  /// protocol bug and aborts.
  void decide(std::uint64_t value);
  /// True once this node decided (in this or an earlier round).
  [[nodiscard]] bool has_decided() const noexcept;
  /// The decided value; meaningful only when has_decided().
  [[nodiscard]] std::uint64_t decision() const noexcept;

  /// Voluntarily stops participating from the next round on.
  void halt();

  /// Event-driven activation: requests that this node not be stepped again
  /// before round `wake_round`, unless a message addressed to it is
  /// delivered first (delivery always wakes the recipient for the round the
  /// message is readable). A protocol may only sleep through rounds in which
  /// it would provably take no spontaneous action; the engine still ticks
  /// every round, so adversary schedules are unaffected.
  void sleep_until(Round wake_round);

  /// Records one activation of the certified-pull epilogue (DESIGN.md
  /// substitution 4); tests assert this stays zero.
  void count_fallback();

 private:
  friend class Engine;
  Context(Engine& engine, NodeId self, StepSink& sink, bool honest, unsigned tag_bits,
          bool traced)
      : engine_(&engine), self_(self), sink_(&sink), honest_(honest), tag_bits_(tag_bits),
        traced_(traced) {}
  Engine* engine_;
  NodeId self_;
  StepSink* sink_;
  bool honest_;        // !byzantine, latched at step time for the send fast path
  unsigned tag_bits_;  // engine sort-key tag width, latched at step time
  bool traced_;        // a TraceSink is installed: send accumulates digests
};

/// Protocol logic for one node. Implementations are installed per node and
/// driven once per round while the node is alive and not halted. With
/// parallel stepping enabled, on_round may run on a worker thread; a process
/// must only touch its own state and shared *read-only* configuration
/// (which every shipped protocol already satisfies).
class Process {
 public:
  virtual ~Process() = default;
  /// `inbox` views the messages delivered this round (see Inbox for order).
  virtual void on_round(Context& ctx, const Inbox& inbox) = 0;
};

/// Read-only view of the execution the adversary may inspect (a strong,
/// adaptive adversary: it sees this round's pending sends and node states).
class EngineView {
 public:
  explicit EngineView(const Engine& engine) : engine_(&engine) {}
  /// System size n.
  [[nodiscard]] NodeId num_nodes() const noexcept;
  /// The current round (0-based).
  [[nodiscard]] Round round() const noexcept;
  /// True iff v has not crashed.
  [[nodiscard]] bool alive(NodeId v) const noexcept;
  /// True iff v voluntarily halted.
  [[nodiscard]] bool halted(NodeId v) const noexcept;
  /// True iff v has decided.
  [[nodiscard]] bool decided(NodeId v) const noexcept;
  /// True iff v is marked Byzantine (setup or takeover).
  [[nodiscard]] bool byzantine(NodeId v) const noexcept;
  /// True iff v currently has a send-omission fault.
  [[nodiscard]] bool send_omission(NodeId v) const noexcept;
  /// True iff v currently has a receive-omission fault.
  [[nodiscard]] bool recv_omission(NodeId v) const noexcept;
  /// Crashes charged so far / the crash budget t.
  [[nodiscard]] std::int64_t crashes_used() const noexcept;
  [[nodiscard]] std::int64_t crash_budget() const noexcept;
  /// Distinct omission-faulty nodes charged so far / the omission budget.
  [[nodiscard]] std::int64_t omissions_used() const noexcept;
  [[nodiscard]] std::int64_t omission_budget() const noexcept;
  /// Byzantine takeovers charged so far / the Byzantine budget.
  [[nodiscard]] std::int64_t takeovers_used() const noexcept;
  [[nodiscard]] std::int64_t byzantine_budget() const noexcept;
  /// All messages produced this round, before crash filtering (arena order:
  /// ascending sender id, per-sender send order preserved). Empty in the
  /// pre-round phase.
  [[nodiscard]] std::span<const Message> pending_sends() const noexcept;
  /// The protocol object of node v (adversaries may downcast for
  /// protocol-aware attacks).
  [[nodiscard]] const Process* process(NodeId v) const noexcept;

 private:
  const Engine* engine_;
};

/// Per-node terminal state recorded in the Report.
struct NodeStatus {
  bool crashed = false;         ///< the fault plane crashed this node
  Round crash_round = -1;       ///< round of the crash (-1 if never)
  bool halted = false;          ///< voluntarily stopped participating
  bool decided = false;         ///< irrevocably decided a value
  std::uint64_t decision = 0;   ///< the decided value (when decided)
  bool byzantine = false;       ///< marked Byzantine (setup or takeover)
  bool omission = false;        ///< ever given a send/receive-omission fault
  std::int64_t sends = 0;       ///< messages this node sent (accounted)
};

/// Result of an execution.
struct Report {
  Round rounds = 0;        ///< rounds executed until every non-faulty node halted
  bool completed = false;  ///< false iff the max_rounds safety cap was hit
  Metrics metrics;                 ///< communication accounting
  std::vector<NodeStatus> nodes;   ///< per-node terminal states (size n)

  [[nodiscard]] std::int64_t decided_count() const noexcept;
  [[nodiscard]] std::int64_t crashed_count() const noexcept;
  /// The common decision of non-faulty decided nodes, or nullopt if none
  /// decided or two of them disagree. Crashed, Byzantine, and
  /// omission-faulty nodes are exempt.
  [[nodiscard]] std::optional<std::uint64_t> agreed_value() const noexcept;
  /// True iff every non-faulty (non-crashed, non-Byzantine, non-omission)
  /// node decided.
  [[nodiscard]] bool all_nonfaulty_decided() const noexcept;
};

/// Recyclable engine buffers for back-to-back executions (fleet mode): the
/// message outbox/inbox vectors and the serial send sink with its two
/// payload arenas — the storage whose capacity dominates an execution's
/// allocation profile. An Engine constructed with EngineConfig::scratch
/// adopts these buffers (contents cleared, capacity and arena chunks
/// retained) and releases them back on destruction, so the k-th execution in
/// a fleet slot reaches steady state without re-growing them. Purely a
/// capacity cache: adopting scratch never changes any Report bit.
struct EngineScratch {
  StepSink sink;               ///< serial sink 0: message vector + arenas
  std::vector<Message> outbox; ///< round send arena
  std::vector<Message> inbox;  ///< delivered-batch arena
  /// Observability counters (surfaced as FleetRunner stats): engines that
  /// adopted this scratch, and adoptions that found warm buffers left by a
  /// previous execution in the slot. Maintained by the engine at adoption
  /// time; purely diagnostic — they never change any Report bit.
  std::int64_t adoptions = 0;
  std::int64_t recycles = 0;
};

/// Construction-time engine configuration.
struct EngineConfig {
  /// Safety cap on executed rounds; Report::completed is false when hit.
  Round max_rounds = Round{1} << 22;
  std::int64_t crash_budget = 0;  ///< the paper's t (for the crash model)
  /// Nodes the fault plane may give send/receive-omission faults (charged
  /// once per node, on the first flag it receives).
  std::int64_t omission_budget = 0;
  /// Nodes the fault plane may take over as Byzantine mid-run. Pre-run
  /// mark_byzantine is setup, not an adversary move, and is not charged.
  std::int64_t byzantine_budget = 0;
  /// Worker threads for the deterministic parallel stepper; 1 = serial.
  /// Results are bit-identical for every value (see the file comment).
  int threads = 1;
  /// Optional recycled buffers (see EngineScratch). Non-owning: the scratch
  /// must outlive the engine, and one scratch may back at most one live
  /// engine at a time. nullptr = allocate fresh.
  EngineScratch* scratch = nullptr;
  /// Optional execution-trace hook (see sim/trace.hpp): when set, the engine
  /// emits one RoundDigest per executed round. Non-owning; nullptr (the
  /// default) records nothing and keeps the delivery hot path untouched.
  TraceSink* trace = nullptr;
  /// SIMD dispatch tier for the delivery sweep and digest kernels. kAuto
  /// (the default) uses the best tier the CPU supports, clamped by the
  /// LFT_SIMD environment override; an explicit tier is clamped to what the
  /// machine can execute. Every tier produces bit-identical Reports and
  /// RoundDigests (see common/simd.hpp) — this knob trades speed only.
  simd::Tier simd = simd::Tier::kAuto;
  /// Optional telemetry registry (obs/obs.hpp): when set, the engine records
  /// per-round delivered/delayed/lost message counts, active-set size, step
  /// wall time, and arena bytes as `lft_engine_*` metrics. Strictly
  /// out-of-band — telemetry reads engine state and the clock but never
  /// feeds anything back, so Reports and RoundDigests are bit-identical
  /// with telemetry on or off (asserted in the determinism suites).
  /// Non-owning; single-writer (the thread calling run()).
  obs::Registry* telemetry = nullptr;
};

/// One execution: n nodes driven in lock-step rounds under the fault plane.
/// Construct, install a Process per node (plus injectors), then run() once.
class Engine {
 public:
  /// Builds an engine for n nodes; `config` is fixed for the execution.
  Engine(NodeId n, EngineConfig config);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs node v's protocol logic; every node needs one before run().
  void set_process(NodeId v, std::unique_ptr<Process> process);
  /// Appends an injector to the fault plane (injectors fire in insertion
  /// order within each phase).
  void add_fault_injector(std::unique_ptr<FaultInjector> injector);
  /// The engine's fault plane (for introspection; prefer add_fault_injector
  /// for installing strategies).
  [[nodiscard]] FaultPlane& faults() noexcept { return fault_plane_; }
  /// Marks v Byzantine for accounting (its sends are excluded from the
  /// honest counters). The Byzantine behavior itself is the installed
  /// Process.
  void mark_byzantine(NodeId v);

  /// Runs to completion (all non-faulty nodes halted) or the round cap.
  Report run();

  /// Post-run (or mid-run, from adversaries) introspection.
  [[nodiscard]] Process& process(NodeId v);
  [[nodiscard]] const Process& process(NodeId v) const;

 private:
  friend class Context;
  friend class EngineView;
  friend class FaultController;

  // Omission flag bits in omit_state_.
  static constexpr std::uint8_t kOmitSend = 1;
  static constexpr std::uint8_t kOmitRecv = 2;

  void do_send(StepSink& sink, NodeId from, NodeId to, std::uint32_t tag,
               std::uint64_t value, std::uint64_t bits, PayloadView body);
  void do_decide(NodeId v, std::uint64_t value);
  void do_sleep(NodeId v, Round wake_round);
  /// Ensures a sleeping node is stepped at `round` (message wake).
  void wake_by(NodeId v, Round round);
  void do_crash(NodeId v, std::function<bool(const Message&)> keep);
  void do_set_omission(NodeId v, std::uint8_t flag, bool enabled);
  void do_set_link(NodeId a, NodeId b, bool cut);
  void do_set_partition(std::span<const std::uint32_t> group_of);
  void do_clear_partition();
  void do_takeover(NodeId v, std::unique_ptr<Process> behavior);
  std::size_t do_add_delay_rule(NodeId src, NodeId dst, Round min_delay, Round max_delay,
                                std::uint64_t salt);
  void do_remove_delay_rule(std::size_t id);
  void do_set_gst(Round stabilization, Round delta, std::uint64_t salt);
  /// Recomputes delays_armed_ after a timing-fault state change.
  void rearm_delays() noexcept;
  /// Extra in-transit rounds for message m sent this round: the first
  /// matching delay rule's hash-drawn lag, else the GST regime's, else 0.
  [[nodiscard]] Round delay_for(const Message& m) const noexcept;
  /// Moves m into the bucket injected at `due` (body bytes copied — the
  /// send-time round arenas recycle too soon) and counts it as in transit.
  void park_delayed(const Message& m, Round due);
  /// Recomputes fault_filters_armed_ after a fault-state change.
  void rearm_fault_filters() noexcept;
  /// True iff the armed fault filters (omission / partition / link cuts)
  /// lose message m in transit.
  [[nodiscard]] bool fault_dropped(const Message& m) const noexcept;
  /// Runs one fault-plane phase (pre-round or post-step).
  void run_fault_phase(bool pre_round);
  /// Steps active_[k-th shard] (bounds in shard_begin_) into sinks_[k].
  void step_shard(std::size_t k);
  /// Steps every active node (serial or sharded) and fills outbox_.
  void step_active();
  /// Filters crashed senders / dead receivers out of the arena, accounts
  /// metrics, and sorts the survivors into delivery normal form.
  void deliver_batch();
  /// Two-pass counting/radix sort of outbox_ by (receiver, tag): stable by
  /// construction, O(m + tag_domain + min(n, d log d)) with inbox_ as the
  /// intermediate buffer. Falls back to a comparison sort for degenerate
  /// (huge) tag values.
  void sort_batch_normal_form();

  NodeId n_;
  EngineConfig config_;
  Round round_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  FaultPlane fault_plane_;

  std::vector<NodeStatus> status_;
  std::int64_t crashes_used_ = 0;

  // Fault-plane state beyond crashes. All containers are empty (and the
  // armed flag false) until an injector uses the corresponding action, so
  // fault-free runs pay one predictable branch per delivered message.
  std::vector<std::uint8_t> omit_state_;  // lazily sized n; kOmitSend|kOmitRecv
  std::int64_t omissions_used_ = 0;       // distinct nodes ever given a flag
  std::vector<std::uint32_t> partition_group_;  // lazily sized n
  bool partition_active_ = false;
  FlatSet64 link_cuts_;                 // keys pack (from, to)
  bool fault_filters_armed_ = false;    // any of the three filters active
  std::int64_t omit_active_count_ = 0;  // nodes with a nonzero omit flag
  std::int64_t takeovers_used_ = 0;
  bool in_pre_round_ = false;           // gates takeover to the pre phase
  std::vector<NodeId> reactivated_;     // takeover scratch (halted/sleeping victims)

  // Timing-fault state: delay rules, the GST knob, and the due-round queue
  // of in-flight delayed messages. Everything here stays empty/false until a
  // timing fault is armed, and the delivery sweep consults only
  // delays_armed_ — zero-delay executions take the exact pre-existing code
  // path, bit for bit. Delayed messages are *moved*, never dropped: the
  // bucket keyed by round D is injected into round D's delivery sweep (so
  // its messages become readable at D + 1), each message's body copied into
  // the bucket's own arena because the send-round arenas recycle too soon.
  struct DelayRule {
    NodeId src;        // kNoNode = every sender
    NodeId dst;        // kNoNode = every receiver
    Round min_delay;
    Round max_delay;
    std::uint64_t salt;  // seeds the per-message lag coins
    bool active;
  };
  struct DelayedBatch {
    std::vector<Message> msgs;
    PayloadArena arena;
  };
  std::vector<DelayRule> delay_rules_;      // slot index = rule id
  std::int64_t delay_rules_active_ = 0;
  bool gst_armed_ = false;
  Round gst_round_ = 0;                     // global stabilization time
  Round gst_delta_ = 1;                     // post-GST delivery bound Δ
  std::uint64_t gst_salt_ = 0;
  bool delays_armed_ = false;               // rules/GST armed or queue nonempty
  std::map<Round, DelayedBatch> pending_delayed_;  // due round -> bucket
  std::int64_t pending_delayed_count_ = 0;  // messages across all buckets
  std::uint64_t total_delayed_ = 0;  // lifetime park_delayed count (telemetry)
  // Bucket injected last round: its arena backs inbox views until the step
  // that consumes them finishes, then the storage is recycled via the pool.
  DelayedBatch draining_delayed_;
  std::vector<DelayedBatch> delayed_pool_;

  // Nodes stepped each round (alive, not halted, not sleeping), ascending
  // id; compacted in place after each round.
  std::vector<NodeId> active_;

  // Sleeping nodes, woken by timer (min-heap, lazily invalidated) or by
  // message delivery. sleeping_[v] is authoritative; heap entries whose node
  // is no longer sleeping or whose round is stale are skipped on pop.
  std::vector<Round> wake_at_;
  std::vector<char> sleeping_;
  std::int64_t sleeping_count_ = 0;
  std::priority_queue<std::pair<Round, NodeId>, std::vector<std::pair<Round, NodeId>>,
                      std::greater<>>
      sleep_heap_;
  std::vector<NodeId> woken_;  // per-round scratch

  // Double-buffered contiguous message arenas, reused across rounds.
  std::vector<Message> outbox_;  // current round's sends, arena order
  std::vector<Message> inbox_;   // delivered batch, sorted by (receiver, tag)

  // Send collection: sinks_[0] serves the serial path; sinks_[1..] belong to
  // the worker pool. shard_begin_ holds the active_-index bounds of each
  // shard for the current round.
  std::vector<StepSink> sinks_;
  std::vector<std::size_t> shard_begin_;
  struct Pool;
  std::unique_ptr<Pool> pool_;

  // Radix-sweep scratch, sized once and cleared via touch lists so per-round
  // cost stays proportional to the batch.
  std::vector<std::uint32_t> tag_count_;
  std::vector<std::uint32_t> recv_count_;  // n entries, all zero between rounds
  std::vector<NodeId> touched_receivers_;

  // Fused single-pass sweep scratch (the SIMD fast path of
  // sort_batch_normal_form): per-message sort keys (to << tag_bits_) | tag,
  // the dense key histogram, and per-receiver inbox bounds derived from the
  // scattered histogram. recv_bounds_ is valid only for rounds the fused
  // sweep sorted (recv_bounds_valid_); step_shard then slices inboxes by
  // lookup instead of scanning inbox_ for receiver boundaries. tag_bits_ is
  // a high-water mark: it grows when a round's max tag outgrows it and the
  // keys are rebuilt (rare — tags are small protocol enumerators).
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> keys_hi_;  // two-level scatter: bucket ids, then per-bucket keys
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> recv_bounds_;  // n + 1 entries when valid
  bool recv_bounds_valid_ = false;
  unsigned tag_bits_ = 4;
  // Set by step_active when keys_ holds send-path-built keys aligned 1:1
  // with outbox_ (and sent_max_tag_ the batch's max tag); consumed — and
  // cleared — by the next sort_batch_normal_form. Compaction rounds clear it
  // before sorting: dropped records break the 1:1 alignment.
  bool sent_keys_valid_ = false;
  std::uint32_t sent_max_tag_ = 0;

  // Per-node send counts for the round being stepped, recorded as vector-
  // length deltas around each on_round call. The clean-round delivery fast
  // path charges NodeStatus::sends from these in O(active) instead of
  // re-streaming the batch; compaction rounds count per surviving message
  // and ignore them. Entries of nodes not stepped this round are stale by
  // design — consumers only read the stepped set.
  std::vector<std::uint32_t> round_sends_;

  // Resolved SIMD dispatch tier for this engine (never kAuto).
  simd::Tier tier_ = simd::Tier::kScalar;

  // Nodes currently crashed or halted. When zero (and no crash / fault
  // filter / sleep activity this round), no delivered message can drop and
  // deliver_batch takes the clean-round fast path: run-length sender
  // accounting over the ascending-sender outbox instead of per-message
  // status checks and compaction. Maintained by the coordinator only
  // (worker halts are folded from StepSink::halts after the step barrier).
  std::int64_t dead_count_ = 0;

  // Per-round crash bookkeeping. `crash_filter_` maps a node crashed this
  // round to its keep-filter slot (or -1 for a clean crash); only the entries
  // named in `crashed_this_round_` are live, and only those are reset at the
  // end of the round, keeping per-round cost independent of n. Keep-filter
  // slots are reused across rounds (high-water storage + per-round counter)
  // instead of cleared, avoiding std::function churn on adversary-heavy
  // runs.
  std::vector<std::int32_t> crash_filter_;  // n-sized, -2 = not crashed this round
  std::vector<NodeId> crashed_this_round_;
  std::vector<std::function<bool(const Message&)>> keep_filters_;
  std::size_t keep_filters_used_ = 0;

  // Per-round digest scratch for the trace hook; only touched when
  // config_.trace is set (loss counters hide behind the existing drop
  // branches, and the per-round hashes are computed just before emission).
  RoundDigest digest_;

  Metrics metrics_;

  // Telemetry instrument handles (engine.cpp), resolved once from
  // config_.telemetry at construction; nullptr when telemetry is off. All
  // recording is out-of-band: it never changes a Report or digest bit.
  struct Telemetry;
  std::unique_ptr<Telemetry> tele_;
};

inline NodeId Context::num_nodes() const noexcept { return engine_->n_; }
inline Round Context::round() const noexcept { return engine_->round_; }

// ---- Inline send fast path -------------------------------------------------
// The bodyless send — the overwhelmingly common case across the shipped
// protocols and the engine's single hottest operation — inlines into the
// caller's round loop: two asserts, the per-sink accounting adds, and one
// 40-byte vector append. No trace work lives here: traced runs digest the
// round's headers with one batch SIMD pass at delivery time, which is how
// the traced and untraced send paths stay within the <= 5% recorder-overhead
// gate of each other. Sends with bodies take the out-of-line Engine::do_send
// (arena store + store-time body digest).
inline void Context::send(NodeId to, std::uint32_t tag, std::uint64_t value,
                          std::uint64_t bits, PayloadView body) {
  if (!body.empty()) [[unlikely]] {
    engine_->do_send(*sink_, self_, to, tag, value, bits, body);
    return;
  }
  LFT_ASSERT(to >= 0 && to < engine_->n_);
  LFT_ASSERT(bits >= 1);
  StepSink& sink = *sink_;
  sink.bits_sum += static_cast<std::int64_t>(bits);
  if (honest_) [[likely]] {
    ++sink.honest_msgs;
    sink.honest_bits += static_cast<std::int64_t>(bits);
  }
  sink.keys.push_back((static_cast<std::uint32_t>(to) << tag_bits_) | tag);
  if (tag > sink.max_tag) sink.max_tag = tag;
  Message m;
  m.from = self_;
  m.to = to;
  m.tag = tag;
  m.value = value;
  m.bits = bits;
  if (traced_) sink.header_sum += digest_header(m);
  sink.msgs.push_back(m);
}

}  // namespace lft::sim
