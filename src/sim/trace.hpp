// Execution tracing hook for the forensics plane: when a TraceSink is
// installed (EngineConfig::trace), the engine emits one RoundDigest per
// executed round — message counts per fate class, fault actions applied,
// a hash of the stepped active set, and a payload hash over the delivered
// batch (headers and bodies). Digests are a pure function of the execution,
// so they are bit-identical across the serial and parallel steppers and
// across scratch adoption, which is what lets forensics::replay localize the
// *first divergent round and component* instead of comparing only the final
// Report fingerprint.
//
// Cost contract: with no sink installed the engine pays nothing on the
// delivery hot path (the loss-class counters hide behind the existing drop
// branches, and the per-round hashing is skipped entirely). With a sink
// installed the recorder budget is <= 5% of the engine hot path or <= 5 ns
// per message (whichever allows more — the digest work is a fixed absolute
// cost, so the relative bound alone would tighten every time the untraced
// path gets faster), held by
// bench/bench_trace.cpp + scripts/check_trace_overhead.py in CI; the hashes
// below are therefore multiply-accumulate folds (one multiply + add per
// 64-bit word) finalized through mix64 once per round, not per-message
// hash_combine chains.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/hash.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "sim/message.hpp"

namespace lft::sim {

/// One executed round, digested. Every field is deterministic given
/// (processes, fault plane, seed): equal executions give equal digests
/// regardless of engine thread count or scratch reuse.
struct RoundDigest {
  Round round = 0;             ///< the 0-based round this digest describes
  std::uint64_t sent = 0;      ///< messages produced this round (pre-filtering)
  std::uint64_t delivered = 0; ///< messages that reached an inbox
  std::uint64_t lost_crash = 0;  ///< dropped: sender crashed this round (keep-filter misses)
  std::uint64_t lost_fault = 0;  ///< dropped in transit: omission / partition / link
  std::uint64_t lost_dead = 0;   ///< dropped: receiver already crashed or halted
  /// Messages that entered the due-round delay queue this round (timing
  /// faults hold, never lose: each resolves to delivered or lost_dead at its
  /// due round). Trace codec v2; absent (zero) in v1 traces.
  std::uint64_t delayed = 0;
  std::uint32_t crashes = 0;     ///< crash actions applied this round
  std::uint32_t omissions = 0;   ///< omission flag changes (enable + disable)
  std::uint32_t links = 0;       ///< link cut / heal actions
  std::uint32_t partitions = 0;  ///< partition install / clear actions
  std::uint32_t takeovers = 0;   ///< Byzantine takeovers applied this round
  std::uint32_t delays = 0;      ///< delay-rule installs/retires + GST arms (codec v2)
  std::uint64_t active_hash = 0;  ///< hash over the stepped active set
  /// Digest of the delivered batch's headers: a commutative (order-free)
  /// sum over per-message header words plus the delivered count — it
  /// distinguishes batches by content multiset, not by order (which the
  /// engine determines from content anyway). See digest_messages.
  std::uint64_t payload_hash = 0;
  /// XOR of header-salted body digests over the bodies *stored this round*
  /// (i.e. sent — including sends later lost to crashes or fault filters).
  /// Computed at store time while the bytes are cache-hot and combined
  /// commutatively, so it is bit-identical across the serial and parallel
  /// steppers; a changed body surfaces in its send round.
  std::uint64_t body_hash = 0;

  /// Memberwise (never memcmp: the layout has padding after the u32 action
  /// counters, and padding bytes are indeterminate).
  [[nodiscard]] bool operator==(const RoundDigest&) const = default;
};

/// Receives one RoundDigest per executed round, in round order, on the
/// engine's coordinating thread. Implementations must not re-enter the
/// engine. Install via EngineConfig::trace (non-owning; off by default).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_round(const RoundDigest& digest) = 0;
};

namespace detail {
// Odd multipliers for the per-field mixes below. Canonical home is
// common/simd.hpp: the SIMD batch kernels (sum_headers40, xor_mul_words)
// restate the digest formulas below on wider lanes and must share one
// definition. Aliased here so the scalar formulas keep reading naturally.
using simd::detail::kMulChain;
using simd::detail::kMulAddr;
using simd::detail::kMulValue;
using simd::detail::kMulTag;
using simd::detail::kMulBits;
using simd::detail::kMulBody;
}  // namespace detail

/// Mixes one message's header fields into a single word through independent
/// multiplies (the CPU overlaps them — this is on the traced hot path).
[[nodiscard]] inline std::uint64_t digest_header(const Message& m) noexcept {
  using namespace detail;
  std::uint64_t w = ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.from)) << 32) |
                     static_cast<std::uint32_t>(m.to)) *
                    kMulAddr;
  w ^= m.value * kMulValue;
  w ^= ((static_cast<std::uint64_t>(m.tag) << 32) | m.body_len) * kMulTag;
  w ^= m.bits * kMulBits;
  return w;
}

/// Digest of a message batch's headers (from, to, tag, value, bits, body
/// length), computed over the delivery normal form. Bodies are deliberately
/// excluded: by delivery time their bytes are cache-cold (inbox order is
/// unrelated to arena order), so the engine hashes them at store time
/// instead — see digest_body and RoundDigest::body_hash.
///
/// Accumulation is a commutative wrapping SUM of per-message header words,
/// not an ordered chain. Three reasons: (1) batch order in the engine is a
/// deterministic function of batch content, so order carries no extra
/// information; (2) commutativity is what lets the engine accumulate the
/// sum on the send path while the fields are still in registers (worker-
/// local partials folded at delivery, rare dropped messages subtracted
/// during compaction) instead of re-streaming the reordered delivered batch
/// from DRAM — a full extra memory pass that blew the recorder-overhead
/// gate (bench/bench_trace.cpp) on million-message rounds; it is also what
/// lets batch consumers (core::RoundDriver, digest_messages below) use the
/// vectorized sum_headers40 kernel over flat record arrays; (3) unlike XOR,
/// a sum does not cancel identical duplicate messages (legal in the model)
/// pairwise.
[[nodiscard]] inline std::uint64_t digest_messages_final(std::uint64_t header_sum,
                                                         std::uint64_t count) noexcept {
  return mix64(header_sum + count * detail::kMulChain);
}

[[nodiscard]] inline std::uint64_t digest_messages(
    std::span<const Message> batch,
    simd::Tier tier = simd::Tier::kAuto) noexcept {
  // Message is a 40-byte POD, so a batch is exactly the flat record array
  // the SIMD header-sum kernel wants; every tier returns the same sum bit
  // for bit (see common/simd.hpp), so the digest stays tier-independent.
  static_assert(sizeof(Message) == 40);
  const std::uint64_t sum = simd::sum_headers40(
      tier, reinterpret_cast<const std::byte*>(batch.data()), batch.size());
  return digest_messages_final(sum, batch.size());
}

/// Header-salted digest of one message's body bytes, for the commutative
/// RoundDigest::body_hash accumulator. Word order inside the body matters
/// (position-salted multipliers, kept odd), but contributions XOR across
/// messages, which is what makes the accumulator identical no matter which
/// worker's arena stored the body. `header_word` is the message's
/// digest_header (computed once by the caller, shared with the header sum);
/// `bytes` is the body content — callers on the send path pass the *source*
/// span rather than the just-memcpy'd arena copy, because reading bytes
/// right behind the copy's vector stores defeats store-to-load forwarding
/// and costs ~4x the hash itself.
[[nodiscard]] inline std::uint64_t digest_body(std::uint64_t header_word,
                                               PayloadView bytes) noexcept {
  using namespace detail;
  std::uint64_t bw = header_word;
  const std::byte* body = bytes.data();
  std::size_t left = bytes.size();
  std::uint64_t salt = kMulBody;
  // Four words per step with independent salts: the products have no
  // dependency on each other, so the CPU overlaps the multiplies instead of
  // serializing on one salt/accumulator chain (same per-word salts, XOR is
  // commutative — the digest value is unchanged).
  while (left >= 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, body, 8);
    std::memcpy(&w1, body + 8, 8);
    std::memcpy(&w2, body + 16, 8);
    std::memcpy(&w3, body + 24, 8);
    bw ^= (w0 * salt) ^ (w1 * (salt + 2)) ^ (w2 * (salt + 4)) ^ (w3 * (salt + 6));
    salt += 8;
    body += 32;
    left -= 32;
  }
  while (left >= 8) {
    std::uint64_t word;
    std::memcpy(&word, body, 8);
    bw ^= word * salt;
    salt += 2;
    body += 8;
    left -= 8;
  }
  if (left != 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, body, left);
    bw ^= word * salt;  // tail is zero-padded; body_len disambiguates
  }
  // No finalizer: contributions are XOR-combined and already products of
  // odd constants; per-message avalanche buys nothing the accumulator's
  // final mix64 (in the Report/trace consumer) wouldn't.
  return bw;
}

/// Dispatched form of digest_body: identical result on every tier (the
/// kernel is the same exact integer fold), vectorized for bodies long
/// enough to fill vector lanes. Short bodies keep the inline scalar loop —
/// the cutover is by length only, never by tier, so digests stay
/// tier-independent.
[[nodiscard]] inline std::uint64_t digest_body(simd::Tier tier,
                                               std::uint64_t header_word,
                                               PayloadView bytes) noexcept {
  if (bytes.size() < 64) return digest_body(header_word, bytes);
  return simd::xor_mul_words(tier, header_word, bytes.data(), bytes.size(),
                             detail::kMulBody);
}

/// Order-sensitive digest of a node-id set (the engine hashes the stepped
/// active set, which it keeps in ascending id order).
[[nodiscard]] inline std::uint64_t digest_nodes(std::span<const NodeId> nodes) noexcept {
  std::uint64_t acc = 0x4c465441u;  // "LFTA"
  acc = acc * detail::kMulChain + nodes.size();
  for (const NodeId v : nodes) {
    acc = acc * detail::kMulChain +
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  }
  return mix64(acc);
}

}  // namespace lft::sim
