#include "sim/fleet.hpp"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/assert.hpp"
#include "common/numa.hpp"

namespace lft::sim {

// ---- Handle ----------------------------------------------------------------

struct FleetRunner::Handle::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Report report;
};

bool FleetRunner::Handle::ready() const {
  LFT_ASSERT(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const Report& FleetRunner::Handle::wait() const {
  LFT_ASSERT(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->report;
}

Report FleetRunner::Handle::take() {
  LFT_ASSERT(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return std::move(state_->report);
}

// ---- FleetRunner -----------------------------------------------------------

struct FleetRunner::Task {
  FleetJobObs job;
  std::shared_ptr<Handle::State> state;
};

/// One execution slot: its run queue (guarded by the runner's mutex), the
/// scratch its instances recycle, and the metric registry its instances
/// record into (both touched only by the thread running the slot's current
/// instance, outside the lock; the registry is read by telemetry() once the
/// fleet has drained).
struct FleetRunner::Worker {
  std::deque<Task> queue;
  EngineScratch scratch;
  obs::Registry registry;
  int node = 0;  // NUMA node this slot is pinned to (0 in flat mode)
};

namespace {

// Pins the calling thread to every cpu of `node`. Node-level, not per-cpu:
// the OS scheduler still balances within the node, we only fence off remote
// memory controllers. Best effort — failure (cgroup cpuset restrictions,
// exotic kernels) just leaves the thread unpinned.
void pin_to_node(int node) {
#if defined(__linux__)
  const auto cpus = numa_topology().cpus_of_node(node);
  if (cpus.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)node;
#endif
}

}  // namespace

FleetRunner::FleetRunner(FleetConfig config) : config_(config) {
  config_.threads = std::clamp(config_.threads, 1, 64);
  const auto workers = static_cast<std::size_t>(config_.threads);
  numa_nodes_ = numa_topology().nodes;
  workers_.reserve(workers);
  for (std::size_t k = 0; k < workers; ++k) {
    workers_.push_back(std::make_unique<Worker>());
    // Deal slots across the populated nodes round-robin: with W >= nodes
    // every node hosts ~W/nodes slots; with W < nodes the first W nodes get
    // one each. Flat mode (1 node) leaves every slot on node 0, unpinned.
    workers_.back()->node = static_cast<int>(k) % numa_nodes_;
  }
  threads_.reserve(workers);
  for (std::size_t k = 0; k < workers; ++k) {
    threads_.emplace_back([this, k] { worker_loop(k); });
  }
}

FleetRunner::~FleetRunner() {
  wait_all();  // drain: every submitted instance still runs
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

FleetRunner::Handle FleetRunner::submit(FleetJob job) {
  LFT_ASSERT(job != nullptr);
  return submit(FleetJobObs(
      [job = std::move(job)](EngineScratch* scratch, obs::Registry*) { return job(scratch); }));
}

FleetRunner::Handle FleetRunner::submit(FleetJobObs job) {
  LFT_ASSERT(job != nullptr);
  Handle handle;
  handle.state_ = std::make_shared<Handle::State>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    LFT_ASSERT_MSG(!stop_, "submit after shutdown");
    // Deal round-robin; imbalance (short vs long executions) is fixed up by
    // stealing, not by smarter placement.
    workers_[next_queue_]->queue.push_back(Task{std::move(job), handle.state_});
    next_queue_ = (next_queue_ + 1) % workers_.size();
    ++submitted_;
  }
  cv_work_.notify_one();
  return handle;
}

void FleetRunner::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return completed_ == submitted_; });
}

int FleetRunner::threads() const noexcept { return config_.threads; }

std::int64_t FleetRunner::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::int64_t FleetRunner::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::int64_t FleetRunner::stolen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stolen_;
}

std::int64_t FleetRunner::stolen_remote() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stolen_remote_;
}

int FleetRunner::numa_nodes() const noexcept { return numa_nodes_; }

std::int64_t FleetRunner::scratch_adoptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scratch_adoptions_;
}

std::int64_t FleetRunner::scratch_recycles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scratch_recycles_;
}

obs::Snapshot FleetRunner::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  LFT_ASSERT_MSG(completed_ == submitted_,
                 "telemetry() while instances are running — call wait_all() first");
  obs::Snapshot merged;
  for (const auto& worker : workers_) merged.merge_from(worker->registry.snapshot());
  return merged;
}

bool FleetRunner::pop_task(std::size_t slot, Task& out) {
  auto& own = workers_[slot]->queue;
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    return true;
  }
  // Steal from the back of the longest peer queue: the busiest slot sheds
  // its most-recently-dealt work, so FIFO start order is preserved where it
  // matters least and the tail drains in parallel. Same-node victims are
  // preferred — a stolen instance then adopts scratch whose pages live
  // behind the thief's own memory controller; only when the whole node is
  // drained does the thief cross nodes (better a remote steal than an idle
  // slot). On single-node hosts every peer ties for "same node" and this is
  // the old flat scan.
  const int my_node = workers_[slot]->node;
  std::size_t victim = slot;
  std::size_t longest = 0;
  bool victim_local = false;
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    if (k == slot) continue;
    const std::size_t len = workers_[k]->queue.size();
    if (len == 0) continue;
    const bool local = workers_[k]->node == my_node;
    if ((local && !victim_local) || (local == victim_local && len > longest)) {
      longest = len;
      victim = k;
      victim_local = local;
    }
  }
  if (longest == 0) return false;
  auto& theirs = workers_[victim]->queue;
  out = std::move(theirs.back());
  theirs.pop_back();
  ++stolen_;
  if (!victim_local) ++stolen_remote_;
  return true;
}

void FleetRunner::worker_loop(std::size_t slot) {
  if (numa_nodes_ > 1) pin_to_node(workers_[slot]->node);
  EngineScratch* scratch = config_.reuse_scratch ? &workers_[slot]->scratch : nullptr;
  obs::Registry* registry = config_.telemetry ? &workers_[slot]->registry : nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Task task;
    if (pop_task(slot, task)) {
      lock.unlock();
      Report report;
      try {
        report = task.job(scratch, registry);
      } catch (...) {
        // A throwing job yields a default Report (completed == false); the
        // pool and every other instance keep running, and the handle is
        // still fulfilled so nobody blocks on a dead instance.
        report = Report{};
      }
      {
        std::lock_guard<std::mutex> state_lock(task.state->mu);
        task.state->report = std::move(report);
        task.state->done = true;
      }
      task.state->cv.notify_all();
      task.job = nullptr;  // release captures outside the runner lock
      lock.lock();
      if (scratch != nullptr) {
        // Fold the slot's scratch counters (touched only by the thread that
        // ran the instance) into the runner totals while holding the lock.
        scratch_adoptions_ += scratch->adoptions;
        scratch_recycles_ += scratch->recycles;
        scratch->adoptions = 0;
        scratch->recycles = 0;
      }
      ++completed_;
      if (completed_ == submitted_) cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;
    cv_work_.wait(lock);
  }
}

}  // namespace lft::sim
