// Crash-adversary strategies. The model grants the adversary full
// adaptivity: each round it inspects node states and this round's pending
// sends, then crashes nodes (cleanly, or keeping an arbitrary subset of the
// victim's in-flight messages). All strategies are deterministic in their
// seeds and respect the engine-enforced budget t.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"
#include "sim/engine.hpp"

namespace lft::sim {

/// One planned crash: node `node` crashes at round `round`; each of its
/// pending sends that round survives with probability keep_fraction
/// (0 = clean crash, 1 = all of that round's sends still delivered).
struct CrashEvent {
  Round round = 0;
  NodeId node = kNoNode;
  double keep_fraction = 0.0;
};

/// Executes a fixed schedule of crash events.
class ScheduledAdversary final : public CrashAdversary {
 public:
  ScheduledAdversary(std::vector<CrashEvent> events, std::uint64_t seed);
  void on_round(const EngineView& view, CrashController& control) override;

 private:
  std::vector<CrashEvent> events_;  // sorted by round
  std::size_t next_ = 0;
  Rng rng_;
};

/// t distinct victims crash at uniform random rounds within
/// [first_round, last_round], each with the given partial-send fraction.
[[nodiscard]] std::vector<CrashEvent> random_crash_schedule(NodeId n, std::int64_t t,
                                                            Round first_round,
                                                            Round last_round,
                                                            double keep_fraction,
                                                            std::uint64_t seed);

/// All t victims crash at round `round` (an early burst is the classic
/// worst case for flooding protocols).
[[nodiscard]] std::vector<CrashEvent> burst_crash_schedule(NodeId n, std::int64_t t,
                                                           Round round, std::uint64_t seed);

/// One victim crashes every `period` rounds starting at `first_round`
/// (exercises the paper's "one crash delays termination by O(1) rounds").
[[nodiscard]] std::vector<CrashEvent> staggered_crash_schedule(NodeId n, std::int64_t t,
                                                               Round first_round, Round period,
                                                               std::uint64_t seed);

/// Crashes the overlay neighbors of `victim` at round 0 (up to the budget),
/// trying to cut the victim off from the overlay.
[[nodiscard]] std::vector<CrashEvent> isolation_crash_schedule(const graph::Graph& overlay,
                                                               NodeId victim, std::int64_t t);

/// Adaptive strategy: each round it crashes the (up to) `per_round` alive
/// nodes with the most pending sends — a direct attack on probing/flooding
/// hubs. Stops at the budget.
class ProbeDisruptorAdversary final : public CrashAdversary {
 public:
  ProbeDisruptorAdversary(std::int64_t budget, int per_round, Round first_round = 0);
  void on_round(const EngineView& view, CrashController& control) override;

 private:
  std::int64_t budget_;
  int per_round_;
  Round first_round_;
  // Scratch reused across rounds; only the entries touched by a round's
  // pending sends are reset, so per-round cost tracks the batch size, not n.
  std::vector<std::int64_t> pending_;
  std::vector<NodeId> touched_;
};

/// Convenience: wraps a schedule in an adversary.
[[nodiscard]] std::unique_ptr<CrashAdversary> make_scheduled(std::vector<CrashEvent> events,
                                                             std::uint64_t seed = 0);

}  // namespace lft::sim
