// Adaptive fault strategies beyond declarative plans. The model grants the
// adversary full adaptivity: each round it inspects node states and this
// round's pending sends through EngineView, then applies typed actions
// through FaultController. The declarative layer (CrashEvent, FaultPlan,
// ScheduledAdversary, the random/burst/staggered schedules) lives in
// sim/faults.hpp, which this header re-exports; here are the strategies that
// need a graph or genuine adaptivity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"

namespace lft::sim {

/// Crashes the overlay neighbors of `victim` at round 0 (up to the budget),
/// trying to cut the victim off from the overlay.
[[nodiscard]] std::vector<CrashEvent> isolation_crash_schedule(const graph::Graph& overlay,
                                                               NodeId victim, std::int64_t t);

/// Adaptive strategy: each round it crashes the (up to) `per_round` alive
/// nodes with the most pending sends — a direct attack on probing/flooding
/// hubs. Stops at the budget.
class ProbeDisruptorAdversary final : public FaultInjector {
 public:
  ProbeDisruptorAdversary(std::int64_t budget, int per_round, Round first_round = 0);
  void on_round(const EngineView& view, FaultController& control) override;

 private:
  std::int64_t budget_;
  int per_round_;
  Round first_round_;
  // Scratch reused across rounds; only the entries touched by a round's
  // pending sends are reset, so per-round cost tracks the batch size, not n.
  std::vector<std::int64_t> pending_;
  std::vector<NodeId> touched_;
};

}  // namespace lft::sim
