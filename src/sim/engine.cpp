#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "common/hugepage.hpp"
#include "obs/obs.hpp"

namespace lft::sim {

namespace {
constexpr std::int32_t kNotCrashedThisRound = -2;
constexpr std::int32_t kCleanCrash = -1;
// Tag values are small enumerators; anything past this is degenerate and
// falls back to a comparison sort (same normal form, so still deterministic).
constexpr std::uint32_t kMaxCountingTag = 1u << 16;
// Below this many active nodes a round is stepped serially even with a
// worker pool: the barrier handshake would dominate. Purely a latency knob —
// results are bit-identical either way.
constexpr std::size_t kParallelMinActive = 256;
// Cap on the fused delivery sweep's key domain (n << tag_bits): bounds the
// dense histogram at 16 MiB of u32 counts and keeps the key in 32 bits. The
// gate is a function of (n, tag_bits, m) only — never of the SIMD tier — so
// sort algorithm selection, and with it every Report bit, is tier-independent.
constexpr std::uint64_t kMaxFusedDomain = 1u << 22;

// Batch size past which the fused sweep's scatter goes two-level (cache-
// blocked): 40-byte records times this is ~10 MB, past any L2. Depends only
// on m, never on the SIMD tier — both strategies produce the identical
// stable permutation.
constexpr std::size_t kTwoLevelMinM = std::size_t{1} << 18;
}  // namespace

// ---- Telemetry -------------------------------------------------------------

/// The engine's metric catalogue (docs/observability.md), resolved once at
/// construction. Recording reads engine state and the clock; it never feeds
/// a value back into the execution.
struct Engine::Telemetry {
  explicit Telemetry(obs::Registry& registry)
      : rounds(registry.counter("lft_engine_rounds_total")),
        sent_total(registry.counter("lft_engine_sent_total")),
        delivered_total(registry.counter("lft_engine_delivered_total")),
        delayed_total(registry.counter("lft_engine_delayed_total")),
        lost_total(registry.counter("lft_engine_lost_total")),
        round_delivered(registry.histogram("lft_engine_round_delivered")),
        round_delayed(registry.histogram("lft_engine_round_delayed")),
        round_lost(registry.histogram("lft_engine_round_lost")),
        round_active(registry.histogram("lft_engine_round_active")),
        step_ns(registry.histogram("lft_engine_step_ns")),
        arena_bytes(registry.gauge("lft_engine_arena_bytes")) {}

  obs::Counter& rounds;
  obs::Counter& sent_total;
  obs::Counter& delivered_total;
  obs::Counter& delayed_total;
  obs::Counter& lost_total;
  obs::Histogram& round_delivered;
  obs::Histogram& round_delayed;
  obs::Histogram& round_lost;
  obs::Histogram& round_active;
  obs::Histogram& step_ns;
  obs::Gauge& arena_bytes;
};

// ---- Inbox -----------------------------------------------------------------

std::span<const Message> Inbox::with_tag(std::uint32_t tag) const noexcept {
  const auto lo = std::partition_point(
      messages_.begin(), messages_.end(), [tag](const Message& m) { return m.tag < tag; });
  const auto hi = std::partition_point(
      lo, messages_.end(), [tag](const Message& m) { return m.tag <= tag; });
  return messages_.subspan(static_cast<std::size_t>(lo - messages_.begin()),
                           static_cast<std::size_t>(hi - lo));
}

// ---- Context ---------------------------------------------------------------

void Context::decide(std::uint64_t value) { engine_->do_decide(self_, value); }

bool Context::has_decided() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decided;
}

std::uint64_t Context::decision() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decision;
}

void Context::halt() {
  auto& s = engine_->status_[static_cast<std::size_t>(self_)];
  if (!s.halted) {
    s.halted = true;
    ++sink_->halts;  // folded into Engine::dead_count_ after the step barrier
  }
}

void Context::sleep_until(Round wake_round) {
  // A node parking itself past the next round disables the clean-round
  // delivery fast path for this round (a message to it must wake it before
  // the end-of-round compaction parks it). Worker-local flag, folded later.
  if (wake_round > engine_->round_ + 1) sink_->slept = true;
  engine_->do_sleep(self_, wake_round);
}

void Context::count_fallback() { ++sink_->fallback_pulls; }

// ---- EngineView ------------------------------------------------------------

NodeId EngineView::num_nodes() const noexcept { return engine_->n_; }
Round EngineView::round() const noexcept { return engine_->round_; }

bool EngineView::alive(NodeId v) const noexcept {
  return !engine_->status_[static_cast<std::size_t>(v)].crashed;
}

bool EngineView::halted(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].halted;
}

bool EngineView::decided(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].decided;
}

bool EngineView::byzantine(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].byzantine;
}

bool EngineView::send_omission(NodeId v) const noexcept {
  const auto& omit = engine_->omit_state_;
  return !omit.empty() && (omit[static_cast<std::size_t>(v)] & Engine::kOmitSend) != 0;
}

bool EngineView::recv_omission(NodeId v) const noexcept {
  const auto& omit = engine_->omit_state_;
  return !omit.empty() && (omit[static_cast<std::size_t>(v)] & Engine::kOmitRecv) != 0;
}

std::int64_t EngineView::crashes_used() const noexcept { return engine_->crashes_used_; }
std::int64_t EngineView::crash_budget() const noexcept { return engine_->config_.crash_budget; }
std::int64_t EngineView::omissions_used() const noexcept { return engine_->omissions_used_; }
std::int64_t EngineView::omission_budget() const noexcept {
  return engine_->config_.omission_budget;
}
std::int64_t EngineView::takeovers_used() const noexcept { return engine_->takeovers_used_; }
std::int64_t EngineView::byzantine_budget() const noexcept {
  return engine_->config_.byzantine_budget;
}

std::span<const Message> EngineView::pending_sends() const noexcept {
  return engine_->outbox_;
}

const Process* EngineView::process(NodeId v) const noexcept {
  return engine_->processes_[static_cast<std::size_t>(v)].get();
}

// ---- Report ----------------------------------------------------------------

std::int64_t Report::decided_count() const noexcept {
  std::int64_t c = 0;
  for (const auto& s : nodes) c += s.decided ? 1 : 0;
  return c;
}

std::int64_t Report::crashed_count() const noexcept {
  std::int64_t c = 0;
  for (const auto& s : nodes) c += s.crashed ? 1 : 0;
  return c;
}

std::optional<std::uint64_t> Report::agreed_value() const noexcept {
  std::optional<std::uint64_t> value;
  for (const auto& s : nodes) {
    if (s.crashed || s.byzantine || s.omission || !s.decided) continue;
    if (!value) {
      value = s.decision;
    } else if (*value != s.decision) {
      return std::nullopt;
    }
  }
  return value;
}

bool Report::all_nonfaulty_decided() const noexcept {
  return std::all_of(nodes.begin(), nodes.end(), [](const NodeStatus& s) {
    return s.crashed || s.byzantine || s.omission || s.decided;
  });
}

// ---- Engine::Pool ----------------------------------------------------------

/// Persistent worker pool for the deterministic parallel stepper. Workers
/// park on a condition variable between rounds; the coordinating thread runs
/// shard 0 itself, so a pool of W sinks spawns W-1 threads. The mutex
/// handshake orders every worker's writes before the coordinator resumes.
struct Engine::Pool {
  Pool(Engine& engine, int workers) : engine_(&engine) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int k = 0; k < workers; ++k) {
      threads_.emplace_back([this, k] { worker_loop(static_cast<std::size_t>(k) + 1); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Dispatches shards 1..W-1 to the pool, runs shard 0 inline, and returns
  /// once every shard finished.
  void step_round() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++generation_;
      pending_ = static_cast<int>(threads_.size());
    }
    cv_start_.notify_all();
    engine_->step_shard(0);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void worker_loop(std::size_t shard) {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      engine_->step_shard(shard);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
      }
      cv_done_.notify_one();
    }
  }

  Engine* engine_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

// ---- Engine ----------------------------------------------------------------

Engine::Engine(NodeId n, EngineConfig config)
    : n_(n),
      config_(config),
      processes_(static_cast<std::size_t>(n)),
      status_(static_cast<std::size_t>(n)),
      wake_at_(static_cast<std::size_t>(n), 0),
      sleeping_(static_cast<std::size_t>(n), 0),
      recv_count_(static_cast<std::size_t>(n), 0),
      round_sends_(static_cast<std::size_t>(n), 0),
      crash_filter_(static_cast<std::size_t>(n), kNotCrashedThisRound) {
  LFT_ASSERT(n > 0);
  tier_ = simd::resolve_tier(config_.simd);
  if (config_.telemetry != nullptr) {
    tele_ = std::make_unique<Telemetry>(*config_.telemetry);
  }
  active_.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) active_.push_back(v);
  const int workers = std::clamp(config_.threads, 1, 64);
  config_.threads = workers;
  sinks_.resize(static_cast<std::size_t>(workers));
  shard_begin_.assign(static_cast<std::size_t>(workers) + 1, 0);
  if (config_.scratch != nullptr) {
    // Adopt the recycled buffers: contents are cleared, but vector capacity
    // and arena chunks carry over from the previous execution in this slot.
    EngineScratch& scratch = *config_.scratch;
    ++scratch.adoptions;
    if (scratch.outbox.capacity() != 0 || scratch.inbox.capacity() != 0 ||
        scratch.sink.msgs.capacity() != 0) {
      ++scratch.recycles;  // warm buffers left by a previous execution
    }
    sinks_[0] = std::move(scratch.sink);
    sinks_[0].msgs.clear();
    sinks_[0].arena[0].clear();
    sinks_[0].arena[1].clear();
    sinks_[0].fallback_pulls = 0;
    outbox_ = std::move(scratch.outbox);
    outbox_.clear();
    inbox_ = std::move(scratch.inbox);
    inbox_.clear();
  }
  // The active set never exceeds n, so a small engine can never engage the
  // pool — skip creating threads it would only park and join.
  if (workers > 1 && static_cast<std::size_t>(n_) >= kParallelMinActive) {
    pool_ = std::make_unique<Pool>(*this, workers - 1);
  }
}

Engine::~Engine() {
  if (config_.scratch != nullptr) {
    // Release the buffers (capacity and arena chunks intact) back to the
    // scratch so the next execution in this slot can adopt them.
    EngineScratch& scratch = *config_.scratch;
    scratch.sink = std::move(sinks_[0]);
    scratch.outbox = std::move(outbox_);
    scratch.inbox = std::move(inbox_);
  }
}

void Engine::set_process(NodeId v, std::unique_ptr<Process> process) {
  LFT_ASSERT(v >= 0 && v < n_);
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void Engine::add_fault_injector(std::unique_ptr<FaultInjector> injector) {
  fault_plane_.add(std::move(injector));
}

void Engine::mark_byzantine(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  status_[static_cast<std::size_t>(v)].byzantine = true;
}

Process& Engine::process(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

const Process& Engine::process(NodeId v) const {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

void Engine::do_send(StepSink& sink, NodeId from, NodeId to, std::uint32_t tag,
                     std::uint64_t value, std::uint64_t bits, PayloadView body) {
  // The out-of-line half of Context::send: sends carrying a body (the
  // bodyless case inlines at the call site — see engine.hpp).
  LFT_ASSERT(to >= 0 && to < n_);
  LFT_ASSERT(bits >= 1);
  sink.bits_sum += static_cast<std::int64_t>(bits);
  if (!status_[static_cast<std::size_t>(from)].byzantine) {
    ++sink.honest_msgs;
    sink.honest_bits += static_cast<std::int64_t>(bits);
  }
  sink.keys.push_back((static_cast<std::uint32_t>(to) << tag_bits_) | tag);
  if (tag > sink.max_tag) sink.max_tag = tag;
  Message m;
  m.from = from;
  m.to = to;
  m.tag = tag;
  m.value = value;
  m.bits = bits;
  m.set_body(sink.arena[static_cast<std::size_t>(round_) & 1].store(body));
  // Trace digests happen at send time, while the message fields are in
  // registers and the body bytes are cache-hot; both accumulators are
  // worker-local and commutative, so the round digest is identical across
  // serial and parallel stepping.
  if (config_.trace != nullptr) {
    const std::uint64_t w = digest_header(m);
    sink.header_sum += w;
    sink.body_hash ^= digest_body(tier_, w, body);
  }
  sink.msgs.push_back(m);
}

void Engine::do_decide(NodeId v, std::uint64_t value) {
  auto& s = status_[static_cast<std::size_t>(v)];
  if (s.decided) {
    LFT_ASSERT_MSG(s.decision == value, "decision is irrevocable");
    return;
  }
  s.decided = true;
  s.decision = value;
}

void Engine::do_sleep(NodeId v, Round wake_round) {
  // Applied during the node's own on_round; the move out of the active set
  // happens in the end-of-round compaction.
  wake_at_[static_cast<std::size_t>(v)] = wake_round;
}

void Engine::wake_by(NodeId v, Round round) {
  auto& wake = wake_at_[static_cast<std::size_t>(v)];
  if (wake <= round) return;
  wake = round;
  if (sleeping_[static_cast<std::size_t>(v)] != 0) sleep_heap_.emplace(round, v);
}

void Engine::do_crash(NodeId v, std::function<bool(const Message&)> keep) {
  LFT_ASSERT(v >= 0 && v < n_);
  auto& s = status_[static_cast<std::size_t>(v)];
  LFT_ASSERT_MSG(!s.crashed, "node already crashed");
  // Crashing an already-halted node is a no-op for the execution; the paper
  // disregards such crashes, so we do not charge the budget for them.
  if (s.halted) return;
  if (sleeping_[static_cast<std::size_t>(v)] != 0) {
    sleeping_[static_cast<std::size_t>(v)] = 0;
    --sleeping_count_;
  }
  ++crashes_used_;
  LFT_ASSERT_MSG(crashes_used_ <= config_.crash_budget, "crash budget exceeded");
  s.crashed = true;
  ++dead_count_;  // halted nodes returned above are already counted
  s.crash_round = round_;
  crashed_this_round_.push_back(v);
  if (config_.trace != nullptr) ++digest_.crashes;
  if (keep) {
    // Reuse a high-water slot instead of growing/clearing the vector each
    // round: live slots are [0, keep_filters_used_).
    const auto slot = keep_filters_used_++;
    if (slot < keep_filters_.size()) {
      keep_filters_[slot] = std::move(keep);
    } else {
      keep_filters_.push_back(std::move(keep));
    }
    crash_filter_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(slot);
  } else {
    crash_filter_[static_cast<std::size_t>(v)] = kCleanCrash;
  }
}

void Engine::do_set_omission(NodeId v, std::uint8_t flag, bool enabled) {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT_MSG(!status_[static_cast<std::size_t>(v)].crashed,
                 "omission faults target running nodes");
  // Giving a halted node an omission fault has no effect on the execution;
  // as with crashing a halted node, it is a free no-op (no budget charge, no
  // faulty mark — the node's decisions were made while it was non-faulty).
  // Disabling still proceeds so windowed plans keep their counters balanced.
  if (enabled && status_[static_cast<std::size_t>(v)].halted) return;
  if (config_.trace != nullptr) ++digest_.omissions;
  if (omit_state_.empty()) omit_state_.assign(static_cast<std::size_t>(n_), 0);
  auto& state = omit_state_[static_cast<std::size_t>(v)];
  const std::uint8_t before = state;
  if (enabled) {
    if (before == 0) {
      // First omission flag this node ever receives: it becomes a faulty
      // node and is charged against the omission budget.
      if (!status_[static_cast<std::size_t>(v)].omission) {
        status_[static_cast<std::size_t>(v)].omission = true;
        ++omissions_used_;
        LFT_ASSERT_MSG(omissions_used_ <= config_.omission_budget, "omission budget exceeded");
      }
    }
    state = static_cast<std::uint8_t>(before | flag);
  } else {
    state = static_cast<std::uint8_t>(before & ~flag);
  }
  if (before == 0 && state != 0) ++omit_active_count_;
  if (before != 0 && state == 0) --omit_active_count_;
  rearm_fault_filters();
}

void Engine::do_set_link(NodeId a, NodeId b, bool cut) {
  LFT_ASSERT(a >= 0 && a < n_ && b >= 0 && b < n_);
  if (config_.trace != nullptr) ++digest_.links;
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
                            static_cast<std::uint32_t>(b);
  if (cut) {
    link_cuts_.insert(key);
  } else {
    link_cuts_.erase(key);
  }
  rearm_fault_filters();
}

void Engine::do_set_partition(std::span<const std::uint32_t> group_of) {
  LFT_ASSERT_MSG(static_cast<NodeId>(group_of.size()) == n_,
                 "partition group map must cover every node");
  partition_group_.assign(group_of.begin(), group_of.end());
  partition_active_ = true;
  if (config_.trace != nullptr) ++digest_.partitions;
  rearm_fault_filters();
}

void Engine::do_clear_partition() {
  partition_active_ = false;
  if (config_.trace != nullptr) ++digest_.partitions;
  rearm_fault_filters();
}

void Engine::do_takeover(NodeId v, std::unique_ptr<Process> behavior) {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(behavior != nullptr);
  LFT_ASSERT_MSG(in_pre_round_, "Byzantine takeover must happen in the pre-round phase");
  auto& s = status_[static_cast<std::size_t>(v)];
  LFT_ASSERT_MSG(!s.crashed, "cannot take over a crashed node");
  if (!s.byzantine) {
    ++takeovers_used_;
    LFT_ASSERT_MSG(takeovers_used_ <= config_.byzantine_budget, "Byzantine budget exceeded");
    s.byzantine = true;
  }
  processes_[static_cast<std::size_t>(v)] = std::move(behavior);
  if (config_.trace != nullptr) ++digest_.takeovers;
  // Reactivate a parked victim: the behavior runs from this round on. A node
  // is in the active set iff it is neither halted nor sleeping.
  const auto vi = static_cast<std::size_t>(v);
  if (s.halted || sleeping_[vi] != 0) {
    if (sleeping_[vi] != 0) {
      sleeping_[vi] = 0;
      --sleeping_count_;
    }
    if (s.halted) --dead_count_;  // un-halt: the node can receive again
    s.halted = false;
    reactivated_.push_back(v);
  }
  wake_at_[vi] = round_;
}

std::size_t Engine::do_add_delay_rule(NodeId src, NodeId dst, Round min_delay, Round max_delay,
                                      std::uint64_t salt) {
  LFT_ASSERT(src == kNoNode || (src >= 0 && src < n_));
  LFT_ASSERT(dst == kNoNode || (dst >= 0 && dst < n_));
  LFT_ASSERT_MSG(min_delay >= 0 && min_delay <= max_delay, "delay bounds must be ordered");
  if (config_.trace != nullptr) ++digest_.delays;
  delay_rules_.push_back(DelayRule{src, dst, min_delay, max_delay, salt, true});
  ++delay_rules_active_;
  rearm_delays();
  return delay_rules_.size() - 1;
}

void Engine::do_remove_delay_rule(std::size_t id) {
  LFT_ASSERT(id < delay_rules_.size());
  if (!delay_rules_[id].active) return;
  if (config_.trace != nullptr) ++digest_.delays;
  delay_rules_[id].active = false;
  --delay_rules_active_;
  rearm_delays();
}

void Engine::do_set_gst(Round stabilization, Round delta, std::uint64_t salt) {
  LFT_ASSERT_MSG(delta >= 1, "the post-GST delivery bound must be >= 1");
  if (config_.trace != nullptr) ++digest_.delays;
  gst_armed_ = true;
  gst_round_ = stabilization;
  gst_delta_ = delta;
  gst_salt_ = salt;
  rearm_delays();
}

void Engine::rearm_delays() noexcept {
  delays_armed_ = delay_rules_active_ > 0 || gst_armed_ || pending_delayed_count_ > 0;
}

Round Engine::delay_for(const Message& m) const noexcept {
  // The lag is a pure hash of (salt, link, tag, send round): no RNG state is
  // consumed, so the coins are identical across serial/parallel stepping and
  // independent of how many other rules or messages exist.
  const std::uint64_t link =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.from)) << 32) |
      static_cast<std::uint32_t>(m.to);
  const std::uint64_t when = (static_cast<std::uint64_t>(m.tag) << 32) |
                             static_cast<std::uint32_t>(round_);
  for (const DelayRule& rule : delay_rules_) {
    if (!rule.active) continue;
    if (rule.src != kNoNode && rule.src != m.from) continue;
    if (rule.dst != kNoNode && rule.dst != m.to) continue;
    const auto span = static_cast<std::uint64_t>(rule.max_delay - rule.min_delay) + 1;
    const std::uint64_t h = mix64(mix64(rule.salt ^ link) ^ when);
    return rule.min_delay + static_cast<Round>(h % span);
  }
  if (gst_armed_) {
    // DLS partial synchrony: a message sent at round r < GST may lag up to
    // GST - r - 1 + Δ rounds (readable by GST + Δ); after GST the lag is
    // < Δ (readable within Δ rounds of the send).
    const Round bound = round_ >= gst_round_ ? gst_delta_ - 1
                                             : gst_round_ - round_ - 1 + gst_delta_;
    if (bound <= 0) return 0;
    const std::uint64_t h = mix64(mix64(gst_salt_ ^ link) ^ when);
    return static_cast<Round>(h % (static_cast<std::uint64_t>(bound) + 1));
  }
  return 0;
}

void Engine::park_delayed(const Message& m, Round due) {
  auto it = pending_delayed_.find(due);
  if (it == pending_delayed_.end()) {
    DelayedBatch bucket;
    if (!delayed_pool_.empty()) {
      bucket = std::move(delayed_pool_.back());
      delayed_pool_.pop_back();
    }
    it = pending_delayed_.emplace(due, std::move(bucket)).first;
  }
  DelayedBatch& bucket = it->second;
  Message copy = m;
  if (m.body_len != 0) copy.set_body(bucket.arena.store(m.body()));
  bucket.msgs.push_back(copy);
  ++pending_delayed_count_;
  ++total_delayed_;  // lifetime count, read (never branched on) by telemetry
  delays_armed_ = true;  // a nonempty queue keeps the delay plane engaged
}

void Engine::rearm_fault_filters() noexcept {
  fault_filters_armed_ =
      omit_active_count_ > 0 || partition_active_ || !link_cuts_.empty();
}

bool Engine::fault_dropped(const Message& m) const noexcept {
  const auto from = static_cast<std::size_t>(m.from);
  const auto to = static_cast<std::size_t>(m.to);
  if (!omit_state_.empty() && ((omit_state_[from] & kOmitSend) != 0 ||
                               (omit_state_[to] & kOmitRecv) != 0)) {
    return true;
  }
  if (partition_active_ && partition_group_[from] != partition_group_[to]) return true;
  if (!link_cuts_.empty()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.from)) << 32) |
        static_cast<std::uint32_t>(m.to);
    if (link_cuts_.contains(key)) return true;
  }
  return false;
}

void Engine::run_fault_phase(bool pre_round) {
  EngineView view(*this);
  FaultController control(*this);
  if (pre_round) {
    in_pre_round_ = true;
    fault_plane_.pre_round(view, control);
    in_pre_round_ = false;
    if (!reactivated_.empty()) {
      // Merge takeover victims back into the (sorted) active set.
      std::sort(reactivated_.begin(), reactivated_.end());
      const auto old_size = active_.size();
      active_.insert(active_.end(), reactivated_.begin(), reactivated_.end());
      std::inplace_merge(active_.begin(),
                         active_.begin() + static_cast<std::ptrdiff_t>(old_size),
                         active_.end());
      reactivated_.clear();
    }
  } else {
    fault_plane_.on_round(view, control);
  }
}

void Engine::step_shard(std::size_t k) {
  const std::size_t begin = shard_begin_[k];
  const std::size_t end = shard_begin_[k + 1];
  if (begin >= end) return;
  StepSink& sink = sinks_[k];
  if (recv_bounds_valid_) {
    // The fused sweep that sorted inbox_ also recorded every receiver's
    // slice bounds; no scanning needed.
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = active_[i];
      const std::size_t lo = recv_bounds_[static_cast<std::size_t>(v)];
      const std::size_t hi = recv_bounds_[static_cast<std::size_t>(v) + 1];
      Context ctx(*this, v, sink, !status_[static_cast<std::size_t>(v)].byzantine, tag_bits_,
                  config_.trace != nullptr);
      const Inbox inbox(std::span<const Message>(inbox_.data() + lo, hi - lo));
      const std::size_t before = sink.msgs.size();
      processes_[static_cast<std::size_t>(v)]->on_round(ctx, inbox);
      round_sends_[static_cast<std::size_t>(v)] =
          static_cast<std::uint32_t>(sink.msgs.size() - before);
    }
    return;
  }
  // First delivered message of this shard's first node: inbox_ ascends by
  // receiver, active_ ascends by id, so one cursor pairs them up.
  const NodeId first = active_[begin];
  std::size_t cursor = static_cast<std::size_t>(
      std::partition_point(inbox_.begin(), inbox_.end(),
                           [first](const Message& m) { return m.to < first; }) -
      inbox_.begin());
  for (std::size_t i = begin; i < end; ++i) {
    const NodeId v = active_[i];
    std::size_t lo = cursor;
    while (lo < inbox_.size() && inbox_[lo].to < v) ++lo;
    std::size_t hi = lo;
    while (hi < inbox_.size() && inbox_[hi].to == v) ++hi;
    cursor = hi;
    Context ctx(*this, v, sink, !status_[static_cast<std::size_t>(v)].byzantine, tag_bits_,
                config_.trace != nullptr);
    const Inbox inbox(std::span<const Message>(inbox_.data() + lo, hi - lo));
    const std::size_t before = sink.msgs.size();
    processes_[static_cast<std::size_t>(v)]->on_round(ctx, inbox);
    round_sends_[static_cast<std::size_t>(v)] =
        static_cast<std::uint32_t>(sink.msgs.size() - before);
  }
}

void Engine::step_active() {
  // Reset the arenas of the parity this round writes; the other parity backs
  // the inbox being read and is reset two rounds from now.
  const std::size_t parity = static_cast<std::size_t>(round_) & 1;
  for (auto& sink : sinks_) {
    sink.arena[parity].clear();
    sink.msgs.clear();
    sink.keys.clear();
    sink.max_tag = 0;
    sink.body_hash = 0;
    sink.header_sum = 0;
    sink.bits_sum = 0;
    sink.honest_msgs = 0;
    sink.honest_bits = 0;
    sink.slept = false;
  }

  const auto workers = sinks_.size();
  if (pool_ == nullptr || active_.size() < kParallelMinActive) {
    shard_begin_[0] = 0;
    for (std::size_t k = 1; k <= workers; ++k) shard_begin_[k] = active_.size();
    step_shard(0);
    outbox_.swap(sinks_[0].msgs);
    keys_.swap(sinks_[0].keys);
  } else {
    for (std::size_t k = 0; k < workers; ++k) {
      shard_begin_[k] = k * active_.size() / workers;
    }
    shard_begin_[workers] = active_.size();
    pool_->step_round();
    // Concatenate in shard order = ascending sender order: the batch is
    // byte-identical to what the serial path appends.
    std::size_t total = 0;
    for (const auto& sink : sinks_) total += sink.msgs.size();
    if (outbox_.capacity() < total) {
      outbox_.reserve(total);
      advise_hugepages(outbox_.data(), outbox_.capacity() * sizeof(Message));
    }
    for (auto& sink : sinks_) {
      outbox_.insert(outbox_.end(), sink.msgs.begin(), sink.msgs.end());
    }
    if (keys_.capacity() < total) {
      keys_.clear();
      keys_.reserve(total);
      advise_hugepages(keys_.data(), keys_.capacity() * sizeof(std::uint32_t));
    }
    keys_.clear();
    for (auto& sink : sinks_) {
      keys_.insert(keys_.end(), sink.keys.begin(), sink.keys.end());
    }
  }

  std::uint32_t max_tag = 0;
  for (auto& sink : sinks_) {
    metrics_.fallback_pulls += sink.fallback_pulls;
    sink.fallback_pulls = 0;
    dead_count_ += sink.halts;  // worker halts, folded after the barrier
    sink.halts = 0;
    max_tag = std::max(max_tag, sink.max_tag);
  }
  // keys_ now mirrors outbox_ 1:1; the sort consumes (and re-validates) it.
  sent_max_tag_ = max_tag;
  sent_keys_valid_ = true;
}

void Engine::sort_batch_normal_form() {
  const std::size_t m = outbox_.size();
  recv_bounds_valid_ = false;
  // Send-path-built keys are usable only when the batch reached us intact
  // (compaction rounds cleared the flag; the size check guards adapters that
  // sort a hand-built batch). One-shot: consumed here either way.
  const bool sent_keys = sent_keys_valid_ && keys_.size() == m;
  sent_keys_valid_ = false;
  if (m <= 1) return;

  // Fused single-pass counting sort on the combined key
  // (to << tag_bits_) | tag: one histogram + scan + stable 40-byte scatter
  // replaces the two LSD passes below (half the scatter traffic), and the
  // scattered histogram doubles as the per-receiver inbox bounds step_shard
  // slices by. Engaged when the dense key domain is affordable (bounded
  // absolutely and relative to m, so the per-round memset stays amortized);
  // the result is bit-identical to the two-pass sort — both are stable
  // sorts by (to, tag) — and every gate below depends only on
  // (n, tag_bits, m, max_tag), never on the SIMD tier.
  const auto n64 = static_cast<std::uint64_t>(static_cast<std::uint32_t>(n_));
  std::uint32_t max_tag = sent_keys ? sent_max_tag_ : 0;
  bool have_max_tag = sent_keys;
  if (m < static_cast<std::size_t>(UINT32_MAX) && (n64 << tag_bits_) <= kMaxFusedDomain) {
    const auto* bytes = reinterpret_cast<const std::byte*>(outbox_.data());
    if (!sent_keys) {
      // Million-message rounds scatter across tens of MB; 2 MiB pages keep
      // the random 40-byte stores from thrashing the DTLB. The advice must
      // land between allocation and first touch to take effect at fault time
      // (khugepaged collapses already-faulted 4 KiB pages far too slowly), so
      // each buffer is reserved, advised, then sized. Advice only, size-gated
      // inside — see common/hugepage.hpp.
      if (keys_.capacity() < m) {
        keys_.clear();  // stale contents; don't let reserve's copy fault pages
        keys_.reserve(m);
        advise_hugepages(keys_.data(), keys_.capacity() * sizeof(std::uint32_t));
      }
      keys_.resize(m);
      max_tag = simd::build_keys40(tier_, bytes, m, tag_bits_, keys_.data());
      have_max_tag = true;
    }
    if (max_tag >= (1u << tag_bits_) && max_tag < kMaxCountingTag) {
      // Tag outgrew the high-water key width: widen and rebuild once.
      tag_bits_ = static_cast<unsigned>(std::bit_width(max_tag));
      if ((n64 << tag_bits_) <= kMaxFusedDomain) {
        (void)simd::build_keys40(tier_, bytes, m, tag_bits_, keys_.data());
      }
    }
    const std::uint64_t domain = n64 << tag_bits_;
    if (max_tag < (1u << tag_bits_) && domain <= kMaxFusedDomain &&
        domain <= 4 * static_cast<std::uint64_t>(m) + 1024) {
      if (counts_.capacity() < static_cast<std::size_t>(domain)) {
        counts_.clear();
        counts_.reserve(static_cast<std::size_t>(domain));
        advise_hugepages(counts_.data(), counts_.capacity() * sizeof(std::uint32_t));
      }
      counts_.assign(static_cast<std::size_t>(domain), 0);
      simd::histogram_u32(tier_, keys_.data(), m, counts_.data());
      const std::uint32_t total =
          simd::exclusive_scan_u32(tier_, counts_.data(), counts_.size());
      LFT_ASSERT(total == m);
      if (inbox_.capacity() < m) {
        inbox_.clear();  // last round's batch, already consumed by the step
        inbox_.reserve(m);
        advise_hugepages(inbox_.data(), inbox_.capacity() * sizeof(Message));
      }
      inbox_.resize(m);
      auto* inbox_bytes = reinterpret_cast<std::byte*>(inbox_.data());
      // Large batches over a large key domain take the scatter in two
      // cache-blocked levels: a stable partition by the keys' high bits into
      // bucket-sequential streams, then a per-bucket scatter whose source
      // slice and destination window are both L2-resident. The direct
      // scatter keeps one open write cursor per distinct (receiver, tag);
      // once that cursor set outgrows L2 (domain beyond ~32k keys at a
      // cache line each) every record store misses, and paying one extra
      // sequential pass to shrink the live cursor set wins. Below that the
      // direct scatter is already cache-resident and strictly cheaper. Same
      // stable permutation either way — MSD partition + stable in-bucket
      // sort by the full key — so the result is bit-identical; the cutover
      // depends only on (m, domain), never on the tier.
      const bool two_level = m >= kTwoLevelMinM && domain >= 32768;
      if (!two_level) {
        simd::scatter_records40(tier_, bytes, m, keys_.data(), counts_.data(),
                                inbox_bytes);
      } else {
        // Bucket count scales so each output window is ~1-2 MiB, capped so
        // the partition cursors stay within one page of L1 lines.
        const auto want = static_cast<std::uint32_t>(
            std::min<std::size_t>(256, m * sizeof(Message) >> 20));
        const std::uint32_t target = std::bit_ceil(std::max(16u, want));
        const auto dbits = static_cast<unsigned>(std::bit_width(domain - 1));
        const unsigned tbits = static_cast<unsigned>(std::countr_zero(target));
        const unsigned shift = dbits > tbits ? dbits - tbits : 0;
        const auto nbuckets =
            static_cast<std::uint32_t>((domain + (std::uint64_t{1} << shift) - 1) >> shift);
        if (keys_hi_.capacity() < m) {
          keys_hi_.clear();
          keys_hi_.reserve(m);
          advise_hugepages(keys_hi_.data(), keys_hi_.capacity() * sizeof(std::uint32_t));
        }
        keys_hi_.resize(m);
        for (std::size_t i = 0; i < m; ++i) keys_hi_[i] = keys_[i] >> shift;
        std::array<std::uint32_t, 257> bcur{};
        for (std::size_t i = 0; i < m; ++i) ++bcur[keys_hi_[i]];
        std::uint32_t bsum = 0;
        for (std::uint32_t k = 0; k < nbuckets; ++k) {
          const std::uint32_t c = bcur[k];
          bcur[k] = bsum;
          bsum += c;
        }
        // Level 1: stable partition outbox -> inbox by bucket id.
        simd::scatter_records40(tier_, bytes, m, keys_hi_.data(), bcur.data(),
                                inbox_bytes);
        // Level 2: per bucket, rebuild the full keys from the (L2-hot)
        // partitioned slice and scatter into the final positions — the
        // global cursors in counts_ already point at each key's run. The
        // destination is outbox_ itself: its records were just copied out,
        // so the sorted batch lands where the direct path's swap would put
        // it.
        auto* outbox_bytes = reinterpret_cast<std::byte*>(outbox_.data());
        std::uint32_t start = 0;
        for (std::uint32_t k = 0; k < nbuckets; ++k) {
          const std::uint32_t end = bcur[k];  // post-scatter: end of bucket k
          const std::uint32_t cnt = end - start;
          if (cnt != 0) {
            (void)simd::build_keys40(tier_, inbox_bytes + std::size_t{start} * sizeof(Message),
                                     cnt, tag_bits_, keys_hi_.data() + start);
            simd::scatter_records40(tier_, inbox_bytes + std::size_t{start} * sizeof(Message),
                                    cnt, keys_hi_.data() + start, counts_.data(),
                                    outbox_bytes);
          }
          start = end;
        }
      }
      // Post-scatter, counts_[k] is the end offset of key k's run, so the
      // end of receiver v's slice is the end of its last tag run.
      recv_bounds_.resize(static_cast<std::size_t>(n_) + 1);
      recv_bounds_[0] = 0;
      for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
        recv_bounds_[v + 1] = counts_[((v + 1) << tag_bits_) - 1];
      }
      recv_bounds_valid_ = true;
      // Leave the result where the caller expects it (it swaps the arenas);
      // the two-level path already sorted back into outbox_.
      if (!two_level) outbox_.swap(inbox_);
      return;
    }
  }

  if (!have_max_tag) {
    for (const Message& msg : outbox_) max_tag = std::max(max_tag, msg.tag);
  }
  if (max_tag >= kMaxCountingTag || m >= static_cast<std::size_t>(UINT32_MAX)) {
    std::stable_sort(outbox_.begin(), outbox_.end(), [](const Message& a, const Message& b) {
      return a.to != b.to ? a.to < b.to : a.tag < b.tag;
    });
    return;
  }

  // Pass 1 (LSD): stable counting sort by tag, outbox_ -> inbox_. The tag
  // domain is tiny (protocol enumerators), so a dense count array is cheap.
  tag_count_.assign(static_cast<std::size_t>(max_tag) + 1, 0);
  for (const Message& msg : outbox_) ++tag_count_[msg.tag];
  std::uint32_t sum = 0;
  for (auto& c : tag_count_) {
    const std::uint32_t count = c;
    c = sum;
    sum += count;
  }
  inbox_.resize(m);
  for (const Message& msg : outbox_) inbox_[tag_count_[msg.tag]++] = msg;

  // Pass 2: stable counting sort by receiver, inbox_ -> outbox_. Counts are
  // kept in an n-sized array that is all-zero between rounds; only the
  // entries actually touched are visited for the prefix sum (sorted distinct
  // receivers) when the batch is sparse, and only they are re-zeroed.
  touched_receivers_.clear();
  for (const Message& msg : inbox_) {
    auto& c = recv_count_[static_cast<std::size_t>(msg.to)];
    if (c++ == 0) touched_receivers_.push_back(msg.to);
  }
  const std::size_t distinct = touched_receivers_.size();
  sum = 0;
  if (distinct < static_cast<std::size_t>(n_) / 16) {
    std::sort(touched_receivers_.begin(), touched_receivers_.end());
    for (const NodeId r : touched_receivers_) {
      auto& c = recv_count_[static_cast<std::size_t>(r)];
      const std::uint32_t count = c;
      c = sum;
      sum += count;
    }
  } else {
    for (NodeId r = 0; r < n_; ++r) {
      auto& c = recv_count_[static_cast<std::size_t>(r)];
      if (c != 0) {  // untouched entries must stay zero
        const std::uint32_t count = c;
        c = sum;
        sum += count;
      }
    }
  }
  for (const Message& msg : inbox_) {
    outbox_[recv_count_[static_cast<std::size_t>(msg.to)]++] = msg;
  }
  // Restore the all-zero invariant by visiting only touched entries.
  for (const NodeId r : touched_receivers_) recv_count_[static_cast<std::size_t>(r)] = 0;
}

void Engine::deliver_batch() {
  const bool traced = config_.trace != nullptr;

  // Recycle the delayed bucket injected last round: its arena backed inbox
  // views through the step that just consumed them. One predictable
  // empty-check on delay-free runs.
  if (!draining_delayed_.msgs.empty()) {
    draining_delayed_.msgs.clear();
    draining_delayed_.arena.clear();
    delayed_pool_.push_back(std::move(draining_delayed_));
    draining_delayed_ = DelayedBatch{};  // moved-from arena cursors are stale
  }

  // Clean-round fast path: when nobody crashed this round, no fault filter
  // is armed, no node is crashed/halted, nobody is (going) sleeping, and no
  // timing fault is armed or in flight, no message can drop, delay, or need
  // waking — the entire per-message filter pass collapses to O(active)
  // accounting: the send path already accumulated bits, honest counts, and
  // (when traced) header digests per sink, and step_shard recorded each
  // stepped node's send count. The header sum is commutative, so folding the
  // worker-local accumulators equals what any per-message order would give.
  // The condition is a pure function of the execution, so taking this path
  // never changes a Report or RoundDigest bit.
  bool slept = false;
  for (const auto& sink : sinks_) slept = slept || sink.slept;
  if (crashed_this_round_.empty() && !fault_filters_armed_ && dead_count_ == 0 &&
      sleeping_count_ == 0 && !slept && !delays_armed_) {
    const std::size_t m = outbox_.size();
    if (traced) {
      digest_.sent = m;
      std::uint64_t header_sum = 0;
      for (const auto& sink : sinks_) header_sum += sink.header_sum;
      digest_.payload_hash = digest_messages_final(header_sum, m);
    }
    std::int64_t bits_sum = 0;
    std::int64_t honest_msgs = 0;
    std::int64_t honest_bits = 0;
    for (const auto& sink : sinks_) {
      bits_sum += sink.bits_sum;
      honest_msgs += sink.honest_msgs;
      honest_bits += sink.honest_bits;
    }
    metrics_.messages_total += static_cast<std::int64_t>(m);
    metrics_.bits_total += bits_sum;
    metrics_.messages_honest += honest_msgs;
    metrics_.bits_honest += honest_bits;
    // active_ is exactly the stepped set here (compaction happens after
    // delivery, and a round that halted or crashed anyone took the slow
    // path), so every entry's round_sends_ slot is fresh.
    for (const NodeId v : active_) {
      status_[static_cast<std::size_t>(v)].sends += round_sends_[static_cast<std::size_t>(v)];
    }
    metrics_.peak_round_messages =
        std::max(metrics_.peak_round_messages, static_cast<std::int64_t>(m));
    sort_batch_normal_form();
    inbox_.swap(outbox_);
    outbox_.clear();
    return;
  }

  // One compaction pass over the arena: drop crashed senders' messages (minus
  // the ones their keep-filter saves), account the survivors, and drop
  // messages whose receiver can no longer accept them. Survivors shift left
  // in place, so the steady state allocates nothing.
  std::size_t kept = 0;
  sent_keys_valid_ = false;  // compaction breaks the keys_/outbox_ alignment
  const bool fault_filters = fault_filters_armed_;
  // Trace accounting rides the existing drop branches: the sent-batch header
  // sum was accumulated at send time (fields in registers, no extra DRAM
  // pass), the rare dropped messages are subtracted below, and with no sink
  // installed only the predictable `traced` branches remain.
  std::uint64_t dropped_sum = 0;
  std::uint64_t sent_sum = 0;
  if (traced) {
    digest_.sent = outbox_.size();
    for (const auto& sink : sinks_) sent_sum += sink.header_sum;
  }
  for (std::size_t i = 0; i < outbox_.size(); ++i) {
    const Message& m = outbox_[i];
    const auto from = static_cast<std::size_t>(m.from);
    const std::int32_t filter = crash_filter_[from];
    if (filter != kNotCrashedThisRound) {
      const bool saved =
          filter >= 0 && keep_filters_[static_cast<std::size_t>(filter)](m);
      if (!saved) {  // lost in the crash
        if (traced) {
          ++digest_.lost_crash;
          dropped_sum += digest_header(m);
        }
        continue;
      }
    }
    metrics_.messages_total += 1;
    metrics_.bits_total += static_cast<std::int64_t>(m.bits);
    auto& sender = status_[from];
    if (!sender.byzantine) {
      metrics_.messages_honest += 1;
      metrics_.bits_honest += static_cast<std::int64_t>(m.bits);
    }
    sender.sends += 1;
    // Omission / partition / link faults lose the message in transit: the
    // sender paid for it (accounted above), the receiver never sees it.
    if (fault_filters && fault_dropped(m)) {
      if (traced) {
        ++digest_.lost_fault;
        dropped_sum += digest_header(m);
      }
      continue;
    }
    // Timing faults hold the message in transit instead of losing it: the
    // sender paid for it above, and the whole record (body bytes copied)
    // parks in the bucket injected into round (round_ + lag)'s sweep, so it
    // becomes readable exactly lag rounds late. Receiver liveness is judged
    // at delivery time, not here.
    if (delays_armed_) {
      const Round lag = delay_for(m);
      if (lag > 0) {
        if (traced) {
          ++digest_.delayed;
          dropped_sum += digest_header(m);
        }
        park_delayed(m, round_ + lag);
        continue;
      }
    }
    const auto to = static_cast<std::size_t>(m.to);
    if (status_[to].crashed || status_[to].halted) {  // never received
      if (traced) {
        ++digest_.lost_dead;
        dropped_sum += digest_header(m);
      }
      continue;
    }
    wake_by(m.to, round_ + 1);  // delivery always wakes the recipient
    if (kept != i) outbox_[kept] = m;
    ++kept;
  }
  outbox_.resize(kept);
  // Inject the messages whose due round is now: they join the batch after
  // this round's own survivors (the stable sort below groups them by
  // (receiver, tag), late arrivals after on-time ones within a group) and
  // become readable next round. A receiver that crashed or halted while the
  // message was in transit never sees it (lost_dead); live recipients are
  // woken exactly as for on-time delivery.
  std::uint64_t injected_sum = 0;
  if (delays_armed_) {
    const auto due = pending_delayed_.find(round_);
    if (due != pending_delayed_.end()) {
      for (const Message& m : due->second.msgs) {
        --pending_delayed_count_;
        const auto to = static_cast<std::size_t>(m.to);
        if (status_[to].crashed || status_[to].halted) {
          if (traced) ++digest_.lost_dead;
          continue;
        }
        wake_by(m.to, round_ + 1);
        if (traced) injected_sum += digest_header(m);
        outbox_.push_back(m);
      }
      // The bucket's arena backs the injected bodies until next round's step
      // has read them; recycled one round from now (see the top).
      draining_delayed_ = std::move(due->second);
      pending_delayed_.erase(due);
      rearm_delays();
    }
  }
  const std::size_t kept_total = outbox_.size();
  if (traced) {
    // Delivered-header digest = (sum of sent headers) - (sum of dropped and
    // parked headers) + (sum of injected due headers): equal to
    // digest_messages over the delivered batch, without touching any
    // surviving message again.
    digest_.payload_hash =
        digest_messages_final(sent_sum - dropped_sum + injected_sum, kept_total);
  }
  metrics_.peak_round_messages =
      std::max(metrics_.peak_round_messages, static_cast<std::int64_t>(kept_total));

  // Two-pass counting/radix sweep into delivery normal form: group by
  // (receiver, tag). The arena is appended in ascending sender order and
  // both passes are stable, so each (receiver, tag) run stays sorted by
  // sender with per-sender send order preserved.
  sort_batch_normal_form();
  inbox_.swap(outbox_);
  outbox_.clear();
}

Report Engine::run() {
  for (NodeId v = 0; v < n_; ++v) {
    LFT_ASSERT_MSG(processes_[static_cast<std::size_t>(v)] != nullptr,
                   "every node needs a Process before run()");
  }

  Report report;
  bool completed = false;

  for (round_ = 0; round_ < config_.max_rounds; ++round_) {
    // 0a. Fault plane, pre-round phase: omission/partition/link windows and
    //     Byzantine takeovers that affect this round's sends.
    if (!fault_plane_.empty()) run_fault_phase(/*pre_round=*/true);

    // 0b. Wake sleepers whose timer (or a message) is due. Heap entries are
    //    lazily invalidated: only nodes still marked sleeping with a due wake
    //    round count.
    woken_.clear();
    while (!sleep_heap_.empty() && sleep_heap_.top().first <= round_) {
      const NodeId v = sleep_heap_.top().second;
      sleep_heap_.pop();
      const auto vi = static_cast<std::size_t>(v);
      if (sleeping_[vi] == 0 || wake_at_[vi] > round_) continue;
      sleeping_[vi] = 0;
      --sleeping_count_;
      woken_.push_back(v);
    }
    if (!woken_.empty()) {
      std::sort(woken_.begin(), woken_.end());
      const auto old_size = active_.size();
      active_.insert(active_.end(), woken_.begin(), woken_.end());
      std::inplace_merge(active_.begin(),
                         active_.begin() + static_cast<std::ptrdiff_t>(old_size),
                         active_.end());
    }

    // 1. Step every active node in id order (serially or sharded across the
    //    worker pool — bit-identical either way), filling outbox_ with the
    //    round's sends in ascending sender order.
    const std::uint64_t step_start = tele_ != nullptr ? obs::now_ns() : 0;
    step_active();
    if (tele_ != nullptr) {
      tele_->step_ns.record(obs::now_ns() - step_start);
      tele_->round_active.record(active_.size());
    }

    // 2. Fault plane, post-step phase: the adaptive adversary inspects this
    //    round's pending sends and node states (crashes classically land
    //    here).
    if (!fault_plane_.empty()) run_fault_phase(/*pre_round=*/false);

    // 3. Filter, account, and sort this round's batch for delivery.
    //    Telemetry brackets the batch with message conservation: everything
    //    entering the round (in-flight delayed + fresh sends) leaves it as
    //    delivered, still-delayed, or lost (crash/fault/dead).
    const std::int64_t tele_pending_before = pending_delayed_count_;
    const std::uint64_t tele_delayed_before = total_delayed_;
    const std::uint64_t tele_sent = tele_ != nullptr ? outbox_.size() : 0;
    deliver_batch();
    if (tele_ != nullptr) {
      const auto delivered = static_cast<std::uint64_t>(inbox_.size());
      const std::uint64_t newly_delayed = total_delayed_ - tele_delayed_before;
      const std::int64_t lost = tele_pending_before + static_cast<std::int64_t>(tele_sent) -
                                static_cast<std::int64_t>(delivered) - pending_delayed_count_;
      tele_->rounds.inc();
      tele_->sent_total.add(tele_sent);
      tele_->delivered_total.add(delivered);
      tele_->delayed_total.add(newly_delayed);
      tele_->lost_total.add(static_cast<std::uint64_t>(std::max<std::int64_t>(lost, 0)));
      tele_->round_delivered.record(delivered);
      tele_->round_delayed.record(newly_delayed);
      tele_->round_lost.record(static_cast<std::uint64_t>(std::max<std::int64_t>(lost, 0)));
      std::size_t arena_bytes = 0;
      for (const auto& sink : sinks_) {
        arena_bytes += sink.arena[0].bytes_stored() + sink.arena[1].bytes_stored();
      }
      tele_->arena_bytes.set_max(static_cast<std::int64_t>(arena_bytes));
    }

    // 3b. Emit this round's trace digest (inbox_ now holds the delivered
    //     batch in normal form; active_ is still the set that was stepped).
    if (config_.trace != nullptr) {
      digest_.round = round_;
      digest_.delivered = inbox_.size();
      digest_.active_hash = digest_nodes(active_);
      for (const auto& sink : sinks_) digest_.body_hash ^= sink.body_hash;
      config_.trace->on_round(digest_);
      digest_ = RoundDigest{};
    }

    // Reset only the crash slots touched this round; keep-filter slots are
    // released (captured state freed) but their storage is reused.
    for (const NodeId v : crashed_this_round_) {
      crash_filter_[static_cast<std::size_t>(v)] = kNotCrashedThisRound;
    }
    crashed_this_round_.clear();
    for (std::size_t i = 0; i < keep_filters_used_; ++i) keep_filters_[i] = nullptr;
    keep_filters_used_ = 0;

    // 4. Drop crashed/halted nodes from the active set and park sleepers;
    //    done when nobody is active or sleeping.
    std::erase_if(active_, [this](NodeId v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto& s = status_[vi];
      if (s.crashed || s.halted) return true;
      if (wake_at_[vi] > round_ + 1) {
        sleeping_[vi] = 1;
        ++sleeping_count_;
        sleep_heap_.emplace(wake_at_[vi], v);
        return true;
      }
      return false;
    });
    // Messages still in transit keep the engine ticking (a delivery may wake
    // a sleeping or future receiver; undeliverable ones resolve to lost_dead
    // at their due round), so conservation holds over the whole trace.
    if (active_.empty() && sleeping_count_ == 0 && pending_delayed_count_ == 0) {
      completed = true;
      ++round_;  // this round still counts
      break;
    }
  }

  for (const auto& s : status_) {
    metrics_.max_sends_per_node = std::max(metrics_.max_sends_per_node, s.sends);
  }
  metrics_.rounds = round_;
  report.rounds = round_;
  report.completed = completed;
  report.metrics = metrics_;
  report.nodes = status_;
  return report;
}

}  // namespace lft::sim
