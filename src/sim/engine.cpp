#include "sim/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::sim {

// ---- Context ---------------------------------------------------------------

NodeId Context::num_nodes() const noexcept { return engine_->n_; }
Round Context::round() const noexcept { return engine_->round_; }

void Context::send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits,
                   std::vector<std::byte> body) {
  engine_->do_send(self_, to, tag, value, bits, std::move(body));
}

void Context::decide(std::uint64_t value) { engine_->do_decide(self_, value); }

bool Context::has_decided() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decided;
}

std::uint64_t Context::decision() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decision;
}

void Context::halt() { engine_->status_[static_cast<std::size_t>(self_)].halted = true; }

void Context::count_fallback() { ++engine_->metrics_.fallback_pulls; }

// ---- EngineView ------------------------------------------------------------

NodeId EngineView::num_nodes() const noexcept { return engine_->n_; }
Round EngineView::round() const noexcept { return engine_->round_; }

bool EngineView::alive(NodeId v) const noexcept {
  return !engine_->status_[static_cast<std::size_t>(v)].crashed;
}

bool EngineView::halted(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].halted;
}

bool EngineView::decided(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].decided;
}

std::int64_t EngineView::crashes_used() const noexcept { return engine_->crashes_used_; }
std::int64_t EngineView::crash_budget() const noexcept { return engine_->config_.crash_budget; }

std::span<const Message> EngineView::pending_sends() const noexcept {
  return engine_->outbox_;
}

const Process* EngineView::process(NodeId v) const noexcept {
  return engine_->processes_[static_cast<std::size_t>(v)].get();
}

// ---- CrashController -------------------------------------------------------

void CrashController::crash(NodeId v) { engine_->do_crash(v, nullptr); }

void CrashController::crash_partial(NodeId v, std::function<bool(const Message&)> keep) {
  engine_->do_crash(v, std::move(keep));
}

// ---- Report ----------------------------------------------------------------

std::int64_t Report::decided_count() const noexcept {
  std::int64_t c = 0;
  for (const auto& s : nodes) c += s.decided ? 1 : 0;
  return c;
}

std::int64_t Report::crashed_count() const noexcept {
  std::int64_t c = 0;
  for (const auto& s : nodes) c += s.crashed ? 1 : 0;
  return c;
}

std::optional<std::uint64_t> Report::agreed_value() const noexcept {
  std::optional<std::uint64_t> value;
  for (const auto& s : nodes) {
    if (s.crashed || s.byzantine || !s.decided) continue;
    if (!value) {
      value = s.decision;
    } else if (*value != s.decision) {
      return std::nullopt;
    }
  }
  return value;
}

bool Report::all_nonfaulty_decided() const noexcept {
  return std::all_of(nodes.begin(), nodes.end(), [](const NodeStatus& s) {
    return s.crashed || s.byzantine || s.decided;
  });
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine(NodeId n, EngineConfig config)
    : n_(n),
      config_(config),
      processes_(static_cast<std::size_t>(n)),
      status_(static_cast<std::size_t>(n)),
      crash_keep_(static_cast<std::size_t>(n)),
      crashed_this_round_(static_cast<std::size_t>(n), 0),
      inbox_(static_cast<std::size_t>(n)) {
  LFT_ASSERT(n > 0);
}

Engine::~Engine() = default;

void Engine::set_process(NodeId v, std::unique_ptr<Process> process) {
  LFT_ASSERT(v >= 0 && v < n_);
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void Engine::set_adversary(std::unique_ptr<CrashAdversary> adversary) {
  adversary_ = std::move(adversary);
}

void Engine::mark_byzantine(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  status_[static_cast<std::size_t>(v)].byzantine = true;
}

Process& Engine::process(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

const Process& Engine::process(NodeId v) const {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

void Engine::do_send(NodeId from, NodeId to, std::uint32_t tag, std::uint64_t value,
                     std::uint64_t bits, std::vector<std::byte> body) {
  LFT_ASSERT(to >= 0 && to < n_);
  LFT_ASSERT(bits >= 1);
  Message m;
  m.from = from;
  m.to = to;
  m.tag = tag;
  m.value = value;
  m.bits = bits;
  m.body = std::move(body);
  outbox_.push_back(std::move(m));
}

void Engine::do_decide(NodeId v, std::uint64_t value) {
  auto& s = status_[static_cast<std::size_t>(v)];
  if (s.decided) {
    LFT_ASSERT_MSG(s.decision == value, "decision is irrevocable");
    return;
  }
  s.decided = true;
  s.decision = value;
}

void Engine::do_crash(NodeId v, std::function<bool(const Message&)> keep) {
  LFT_ASSERT(v >= 0 && v < n_);
  auto& s = status_[static_cast<std::size_t>(v)];
  LFT_ASSERT_MSG(!s.crashed, "node already crashed");
  // Crashing an already-halted node is a no-op for the execution; the paper
  // disregards such crashes, so we do not charge the budget for them.
  if (s.halted) return;
  ++crashes_used_;
  LFT_ASSERT_MSG(crashes_used_ <= config_.crash_budget, "crash budget exceeded");
  s.crashed = true;
  s.crash_round = round_;
  crashed_this_round_[static_cast<std::size_t>(v)] = 1;
  if (keep) {
    keep_filters_.push_back(std::move(keep));
    crash_keep_[static_cast<std::size_t>(v)] = keep_filters_.size() - 1;
  }
}

Report Engine::run() {
  for (NodeId v = 0; v < n_; ++v) {
    LFT_ASSERT_MSG(processes_[static_cast<std::size_t>(v)] != nullptr,
                   "every node needs a Process before run()");
  }

  Report report;
  bool completed = false;

  for (round_ = 0; round_ < config_.max_rounds; ++round_) {
    outbox_.clear();
    keep_filters_.clear();
    std::fill(crash_keep_.begin(), crash_keep_.end(), std::nullopt);
    std::fill(crashed_this_round_.begin(), crashed_this_round_.end(), 0);

    // 1. Step every alive, non-halted node in id order.
    for (NodeId v = 0; v < n_; ++v) {
      auto& s = status_[static_cast<std::size_t>(v)];
      if (s.crashed || s.halted) continue;
      Context ctx(*this, v);
      processes_[static_cast<std::size_t>(v)]->on_round(ctx, inbox_[static_cast<std::size_t>(v)]);
    }

    // 2. Adversary inspects pending sends and may crash nodes.
    if (adversary_ != nullptr) {
      EngineView view(*this);
      CrashController control(*this);
      adversary_->on_round(view, control);
    }

    // 3. Filter crashed senders, account metrics, deliver.
    for (auto& ib : inbox_) ib.clear();
    for (auto& m : outbox_) {
      const auto from = static_cast<std::size_t>(m.from);
      if (crashed_this_round_[from] != 0) {
        const auto& keep_idx = crash_keep_[from];
        const bool kept = keep_idx.has_value() && keep_filters_[*keep_idx](m);
        if (!kept) continue;  // lost in the crash
      }
      metrics_.messages_total += 1;
      metrics_.bits_total += static_cast<std::int64_t>(m.bits);
      auto& sender = status_[from];
      if (!sender.byzantine) {
        metrics_.messages_honest += 1;
        metrics_.bits_honest += static_cast<std::int64_t>(m.bits);
      }
      sender.sends += 1;
      const auto to = static_cast<std::size_t>(m.to);
      if (status_[to].crashed || status_[to].halted) continue;  // never received
      inbox_[to].push_back(std::move(m));
    }

    // 4. Done when every node has crashed or halted.
    bool all_done = true;
    for (const auto& s : status_) {
      if (!s.crashed && !s.halted) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      completed = true;
      ++round_;  // this round still counts
      break;
    }
  }

  for (const auto& s : status_) {
    metrics_.max_sends_per_node = std::max(metrics_.max_sends_per_node, s.sends);
  }
  report.rounds = round_;
  report.completed = completed;
  report.metrics = metrics_;
  report.nodes = status_;
  return report;
}

}  // namespace lft::sim
