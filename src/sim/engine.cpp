#include "sim/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::sim {

namespace {
constexpr std::int32_t kNotCrashedThisRound = -2;
constexpr std::int32_t kCleanCrash = -1;
}  // namespace

// ---- Inbox -----------------------------------------------------------------

std::span<const Message> Inbox::with_tag(std::uint32_t tag) const noexcept {
  const auto lo = std::partition_point(
      messages_.begin(), messages_.end(), [tag](const Message& m) { return m.tag < tag; });
  const auto hi = std::partition_point(
      lo, messages_.end(), [tag](const Message& m) { return m.tag <= tag; });
  return messages_.subspan(static_cast<std::size_t>(lo - messages_.begin()),
                           static_cast<std::size_t>(hi - lo));
}

// ---- Context ---------------------------------------------------------------

NodeId Context::num_nodes() const noexcept { return engine_->n_; }
Round Context::round() const noexcept { return engine_->round_; }

void Context::send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits,
                   std::vector<std::byte> body) {
  engine_->do_send(self_, to, tag, value, bits, std::move(body));
}

void Context::decide(std::uint64_t value) { engine_->do_decide(self_, value); }

bool Context::has_decided() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decided;
}

std::uint64_t Context::decision() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decision;
}

void Context::halt() { engine_->status_[static_cast<std::size_t>(self_)].halted = true; }

void Context::sleep_until(Round wake_round) { engine_->do_sleep(self_, wake_round); }

void Context::count_fallback() { ++engine_->metrics_.fallback_pulls; }

// ---- EngineView ------------------------------------------------------------

NodeId EngineView::num_nodes() const noexcept { return engine_->n_; }
Round EngineView::round() const noexcept { return engine_->round_; }

bool EngineView::alive(NodeId v) const noexcept {
  return !engine_->status_[static_cast<std::size_t>(v)].crashed;
}

bool EngineView::halted(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].halted;
}

bool EngineView::decided(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].decided;
}

std::int64_t EngineView::crashes_used() const noexcept { return engine_->crashes_used_; }
std::int64_t EngineView::crash_budget() const noexcept { return engine_->config_.crash_budget; }

std::span<const Message> EngineView::pending_sends() const noexcept {
  return engine_->outbox_;
}

const Process* EngineView::process(NodeId v) const noexcept {
  return engine_->processes_[static_cast<std::size_t>(v)].get();
}

// ---- CrashController -------------------------------------------------------

void CrashController::crash(NodeId v) { engine_->do_crash(v, nullptr); }

void CrashController::crash_partial(NodeId v, std::function<bool(const Message&)> keep) {
  engine_->do_crash(v, std::move(keep));
}

// ---- Report ----------------------------------------------------------------

std::int64_t Report::decided_count() const noexcept {
  std::int64_t c = 0;
  for (const auto& s : nodes) c += s.decided ? 1 : 0;
  return c;
}

std::int64_t Report::crashed_count() const noexcept {
  std::int64_t c = 0;
  for (const auto& s : nodes) c += s.crashed ? 1 : 0;
  return c;
}

std::optional<std::uint64_t> Report::agreed_value() const noexcept {
  std::optional<std::uint64_t> value;
  for (const auto& s : nodes) {
    if (s.crashed || s.byzantine || !s.decided) continue;
    if (!value) {
      value = s.decision;
    } else if (*value != s.decision) {
      return std::nullopt;
    }
  }
  return value;
}

bool Report::all_nonfaulty_decided() const noexcept {
  return std::all_of(nodes.begin(), nodes.end(), [](const NodeStatus& s) {
    return s.crashed || s.byzantine || s.decided;
  });
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine(NodeId n, EngineConfig config)
    : n_(n),
      config_(config),
      processes_(static_cast<std::size_t>(n)),
      status_(static_cast<std::size_t>(n)),
      wake_at_(static_cast<std::size_t>(n), 0),
      sleeping_(static_cast<std::size_t>(n), 0),
      crash_filter_(static_cast<std::size_t>(n), kNotCrashedThisRound) {
  LFT_ASSERT(n > 0);
  active_.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) active_.push_back(v);
}

Engine::~Engine() = default;

void Engine::set_process(NodeId v, std::unique_ptr<Process> process) {
  LFT_ASSERT(v >= 0 && v < n_);
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void Engine::set_adversary(std::unique_ptr<CrashAdversary> adversary) {
  adversary_ = std::move(adversary);
}

void Engine::mark_byzantine(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  status_[static_cast<std::size_t>(v)].byzantine = true;
}

Process& Engine::process(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

const Process& Engine::process(NodeId v) const {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

void Engine::do_send(NodeId from, NodeId to, std::uint32_t tag, std::uint64_t value,
                     std::uint64_t bits, std::vector<std::byte> body) {
  LFT_ASSERT(to >= 0 && to < n_);
  LFT_ASSERT(bits >= 1);
  Message m;
  m.from = from;
  m.to = to;
  m.tag = tag;
  m.value = value;
  m.bits = bits;
  m.body = std::move(body);
  outbox_.push_back(std::move(m));
}

void Engine::do_decide(NodeId v, std::uint64_t value) {
  auto& s = status_[static_cast<std::size_t>(v)];
  if (s.decided) {
    LFT_ASSERT_MSG(s.decision == value, "decision is irrevocable");
    return;
  }
  s.decided = true;
  s.decision = value;
}

void Engine::do_sleep(NodeId v, Round wake_round) {
  // Applied during the node's own on_round; the move out of the active set
  // happens in the end-of-round compaction.
  wake_at_[static_cast<std::size_t>(v)] = wake_round;
}

void Engine::wake_by(NodeId v, Round round) {
  auto& wake = wake_at_[static_cast<std::size_t>(v)];
  if (wake <= round) return;
  wake = round;
  if (sleeping_[static_cast<std::size_t>(v)] != 0) sleep_heap_.emplace(round, v);
}

void Engine::do_crash(NodeId v, std::function<bool(const Message&)> keep) {
  LFT_ASSERT(v >= 0 && v < n_);
  auto& s = status_[static_cast<std::size_t>(v)];
  LFT_ASSERT_MSG(!s.crashed, "node already crashed");
  // Crashing an already-halted node is a no-op for the execution; the paper
  // disregards such crashes, so we do not charge the budget for them.
  if (s.halted) return;
  if (sleeping_[static_cast<std::size_t>(v)] != 0) {
    sleeping_[static_cast<std::size_t>(v)] = 0;
    --sleeping_count_;
  }
  ++crashes_used_;
  LFT_ASSERT_MSG(crashes_used_ <= config_.crash_budget, "crash budget exceeded");
  s.crashed = true;
  s.crash_round = round_;
  crashed_this_round_.push_back(v);
  if (keep) {
    keep_filters_.push_back(std::move(keep));
    crash_filter_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(keep_filters_.size()) - 1;
  } else {
    crash_filter_[static_cast<std::size_t>(v)] = kCleanCrash;
  }
}

void Engine::deliver_batch() {
  // One compaction pass over the arena: drop crashed senders' messages (minus
  // the ones their keep-filter saves), account the survivors, and drop
  // messages whose receiver can no longer accept them. Survivors shift left
  // in place, so the steady state allocates nothing.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < outbox_.size(); ++i) {
    Message& m = outbox_[i];
    const auto from = static_cast<std::size_t>(m.from);
    const std::int32_t filter = crash_filter_[from];
    if (filter != kNotCrashedThisRound) {
      const bool saved =
          filter >= 0 && keep_filters_[static_cast<std::size_t>(filter)](m);
      if (!saved) continue;  // lost in the crash
    }
    metrics_.messages_total += 1;
    metrics_.bits_total += static_cast<std::int64_t>(m.bits);
    auto& sender = status_[from];
    if (!sender.byzantine) {
      metrics_.messages_honest += 1;
      metrics_.bits_honest += static_cast<std::int64_t>(m.bits);
    }
    sender.sends += 1;
    const auto to = static_cast<std::size_t>(m.to);
    if (status_[to].crashed || status_[to].halted) continue;  // never received
    wake_by(m.to, round_ + 1);  // delivery always wakes the recipient
    if (kept != i) outbox_[kept] = std::move(m);
    ++kept;
  }
  outbox_.resize(kept);
  metrics_.peak_round_messages =
      std::max(metrics_.peak_round_messages, static_cast<std::int64_t>(kept));

  // Single sorted sweep into delivery normal form: group by (receiver, tag).
  // The arena is appended in ascending sender order, so a stable sort keeps
  // each (receiver, tag) run sorted by sender and preserves per-sender send
  // order.
  std::stable_sort(outbox_.begin(), outbox_.end(), [](const Message& a, const Message& b) {
    return a.to != b.to ? a.to < b.to : a.tag < b.tag;
  });
  inbox_.swap(outbox_);
  outbox_.clear();
}

Report Engine::run() {
  for (NodeId v = 0; v < n_; ++v) {
    LFT_ASSERT_MSG(processes_[static_cast<std::size_t>(v)] != nullptr,
                   "every node needs a Process before run()");
  }

  Report report;
  bool completed = false;

  for (round_ = 0; round_ < config_.max_rounds; ++round_) {
    // 0. Wake sleepers whose timer (or a message) is due. Heap entries are
    //    lazily invalidated: only nodes still marked sleeping with a due wake
    //    round count.
    woken_.clear();
    while (!sleep_heap_.empty() && sleep_heap_.top().first <= round_) {
      const NodeId v = sleep_heap_.top().second;
      sleep_heap_.pop();
      const auto vi = static_cast<std::size_t>(v);
      if (sleeping_[vi] == 0 || wake_at_[vi] > round_) continue;
      sleeping_[vi] = 0;
      --sleeping_count_;
      woken_.push_back(v);
    }
    if (!woken_.empty()) {
      std::sort(woken_.begin(), woken_.end());
      const auto old_size = active_.size();
      active_.insert(active_.end(), woken_.begin(), woken_.end());
      std::inplace_merge(active_.begin(),
                         active_.begin() + static_cast<std::ptrdiff_t>(old_size),
                         active_.end());
    }

    // 1. Step every active node in id order, handing each its slice of the
    //    sorted batch. Both active_ and inbox_ ascend by node id, so a single
    //    cursor pairs them up.
    std::size_t cursor = 0;
    for (const NodeId v : active_) {
      std::size_t begin = cursor;
      while (begin < inbox_.size() && inbox_[begin].to < v) ++begin;
      std::size_t end = begin;
      while (end < inbox_.size() && inbox_[end].to == v) ++end;
      cursor = end;
      Context ctx(*this, v);
      const Inbox inbox(std::span<const Message>(inbox_.data() + begin, end - begin));
      processes_[static_cast<std::size_t>(v)]->on_round(ctx, inbox);
    }

    // 2. Adversary inspects pending sends and may crash nodes.
    if (adversary_ != nullptr) {
      EngineView view(*this);
      CrashController control(*this);
      adversary_->on_round(view, control);
    }

    // 3. Filter, account, and sort this round's batch for delivery.
    deliver_batch();

    // Reset only the crash slots touched this round.
    for (const NodeId v : crashed_this_round_) {
      crash_filter_[static_cast<std::size_t>(v)] = kNotCrashedThisRound;
    }
    crashed_this_round_.clear();
    keep_filters_.clear();

    // 4. Drop crashed/halted nodes from the active set and park sleepers;
    //    done when nobody is active or sleeping.
    std::erase_if(active_, [this](NodeId v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto& s = status_[vi];
      if (s.crashed || s.halted) return true;
      if (wake_at_[vi] > round_ + 1) {
        sleeping_[vi] = 1;
        ++sleeping_count_;
        sleep_heap_.emplace(wake_at_[vi], v);
        return true;
      }
      return false;
    });
    if (active_.empty() && sleeping_count_ == 0) {
      completed = true;
      ++round_;  // this round still counts
      break;
    }
  }

  for (const auto& s : status_) {
    metrics_.max_sends_per_node = std::max(metrics_.max_sends_per_node, s.sends);
  }
  metrics_.rounds = round_;
  report.rounds = round_;
  report.completed = completed;
  report.metrics = metrics_;
  report.nodes = status_;
  return report;
}

}  // namespace lft::sim
