#include "sim/single_port.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::sim {

namespace {
std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}
}  // namespace

// ---- PortQueue -------------------------------------------------------------

void SinglePortEngine::PortQueue::push(const Message& m, PayloadView body) {
  // Compact the consumed prefixes before growing past them: keeps the
  // buffers bounded by the live backlog while staying amortized O(1).
  if (head > 0 && head >= buf.size() / 2 && buf.size() >= 8) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
    head = 0;
    bytes.erase(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(bytes_head));
    bytes_head = 0;
  }
  Message queued = m;
  queued.body_ptr = nullptr;  // implicit FIFO offset; rebound on pop
  queued.body_len = static_cast<std::uint32_t>(body.size());
  buf.push_back(queued);
  bytes.insert(bytes.end(), body.begin(), body.end());
}

sim::Message SinglePortEngine::PortQueue::pop(std::vector<std::byte>& payload_out) {
  LFT_ASSERT(!empty());
  Message m = buf[head];
  ++head;
  payload_out.assign(bytes.begin() + static_cast<std::ptrdiff_t>(bytes_head),
                     bytes.begin() + static_cast<std::ptrdiff_t>(bytes_head + m.body_len));
  bytes_head += m.body_len;
  if (m.body_len != 0) m.set_body(payload_out);
  if (head >= buf.size()) {
    buf.clear();
    head = 0;
    bytes.clear();
    bytes_head = 0;
  }
  return m;
}

// ---- SpContext -------------------------------------------------------------

NodeId SpContext::num_nodes() const noexcept { return engine_->n_; }
Round SpContext::round() const noexcept { return engine_->round_; }

void SpContext::decide(std::uint64_t value) {
  auto& s = engine_->status_[static_cast<std::size_t>(self_)];
  if (s.decided) {
    LFT_ASSERT_MSG(s.decision == value, "decision is irrevocable");
    return;
  }
  s.decided = true;
  s.decision = value;
}

bool SpContext::has_decided() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decided;
}

std::uint64_t SpContext::decision() const noexcept {
  return engine_->status_[static_cast<std::size_t>(self_)].decision;
}

void SpContext::halt() { engine_->status_[static_cast<std::size_t>(self_)].halted = true; }

void SpContext::count_fallback() { ++engine_->metrics_.fallback_pulls; }

// ---- SpView ----------------------------------------------------------------

NodeId SpView::num_nodes() const noexcept { return engine_->n_; }
Round SpView::round() const noexcept { return engine_->round_; }

bool SpView::alive(NodeId v) const noexcept {
  return !engine_->status_[static_cast<std::size_t>(v)].crashed;
}

bool SpView::halted(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].halted;
}

bool SpView::decided(NodeId v) const noexcept {
  return engine_->status_[static_cast<std::size_t>(v)].decided;
}

std::int64_t SpView::crashes_used() const noexcept { return engine_->crashes_used_; }
std::int64_t SpView::crash_budget() const noexcept { return engine_->config_.crash_budget; }

const SpAction& SpView::action(NodeId v) const noexcept {
  return engine_->actions_[static_cast<std::size_t>(v)];
}

// ---- SinglePortEngine ------------------------------------------------------

SinglePortEngine::SinglePortEngine(NodeId n, SinglePortConfig config)
    : n_(n),
      config_(config),
      processes_(static_cast<std::size_t>(n)),
      status_(static_cast<std::size_t>(n)),
      actions_(static_cast<std::size_t>(n)),
      fetched_(static_cast<std::size_t>(n)),
      fetched_bytes_(static_cast<std::size_t>(n)) {
  LFT_ASSERT(n > 0);
}

SinglePortEngine::~SinglePortEngine() = default;

void SinglePortEngine::set_process(NodeId v, std::unique_ptr<SinglePortProcess> process) {
  LFT_ASSERT(v >= 0 && v < n_);
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void SinglePortEngine::set_adversary(std::unique_ptr<SpAdversary> adversary) {
  adversary_ = std::move(adversary);
}

void SinglePortEngine::mark_byzantine(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  status_[static_cast<std::size_t>(v)].byzantine = true;
}

SinglePortProcess& SinglePortEngine::process(NodeId v) {
  LFT_ASSERT(v >= 0 && v < n_);
  LFT_ASSERT(processes_[static_cast<std::size_t>(v)] != nullptr);
  return *processes_[static_cast<std::size_t>(v)];
}

Report SinglePortEngine::run() {
  for (NodeId v = 0; v < n_; ++v) {
    LFT_ASSERT_MSG(processes_[static_cast<std::size_t>(v)] != nullptr,
                   "every node needs a SinglePortProcess before run()");
  }

  Report report;
  bool completed = false;
  std::vector<char> crashed_now(static_cast<std::size_t>(n_), 0);

  for (round_ = 0; round_ < config_.max_rounds; ++round_) {
    std::fill(crashed_now.begin(), crashed_now.end(), 0);

    // 1. Collect actions from alive, non-halted nodes.
    for (NodeId v = 0; v < n_; ++v) {
      auto& s = status_[static_cast<std::size_t>(v)];
      actions_[static_cast<std::size_t>(v)] = SpAction{};
      if (s.crashed || s.halted) continue;
      SpContext ctx(*this, v);
      actions_[static_cast<std::size_t>(v)] =
          processes_[static_cast<std::size_t>(v)]->on_round(
              ctx, fetched_[static_cast<std::size_t>(v)]);
      fetched_[static_cast<std::size_t>(v)].reset();
    }

    // 2. Adversary.
    if (adversary_ != nullptr) {
      SpView view(*this);
      std::vector<NodeId> crash_list;
      adversary_->on_round(view, crash_list);
      for (NodeId v : crash_list) {
        LFT_ASSERT(v >= 0 && v < n_);
        auto& s = status_[static_cast<std::size_t>(v)];
        if (s.crashed || s.halted) continue;
        ++crashes_used_;
        LFT_ASSERT_MSG(crashes_used_ <= config_.crash_budget, "crash budget exceeded");
        s.crashed = true;
        s.crash_round = round_;
        crashed_now[static_cast<std::size_t>(v)] = 1;
      }
    }

    // 3. Enqueue surviving sends into port queues.
    std::int64_t round_messages = 0;
    for (NodeId v = 0; v < n_; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      auto& s = status_[vi];
      if (s.crashed || s.halted || !actions_[vi].send.has_value()) continue;
      SpSend& send = *actions_[vi].send;
      LFT_ASSERT(send.to >= 0 && send.to < n_);
      metrics_.messages_total += 1;
      metrics_.bits_total += static_cast<std::int64_t>(send.bits);
      // Nodes marked Byzantine are excluded from the honest counters, as in
      // the multi-port engine's delivery sweep.
      if (!s.byzantine) {
        metrics_.messages_honest += 1;
        metrics_.bits_honest += static_cast<std::int64_t>(send.bits);
      }
      s.sends += 1;
      const auto ti = static_cast<std::size_t>(send.to);
      if (status_[ti].crashed || status_[ti].halted) continue;  // never retrievable
      ++round_messages;
      Message m;
      m.from = v;
      m.to = send.to;
      m.tag = send.tag;
      m.value = send.value;
      m.bits = send.bits;
      ports_[link_key(v, send.to)].push(m, send.body);
    }
    metrics_.peak_round_messages = std::max(metrics_.peak_round_messages, round_messages);

    // 4. Resolve polls (a poll may pick up a message sent this round).
    for (NodeId v = 0; v < n_; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto& s = status_[vi];
      if (s.crashed || s.halted) continue;
      const NodeId src = actions_[vi].poll;
      if (src == kNoNode) continue;
      LFT_ASSERT(src >= 0 && src < n_);
      auto it = ports_.find(link_key(src, v));
      if (it == ports_.end() || it->second.empty()) continue;
      fetched_[vi] = it->second.pop(fetched_bytes_[vi]);
    }

    // 5. Termination.
    bool all_done = true;
    for (const auto& s : status_) {
      if (!s.crashed && !s.halted) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      completed = true;
      ++round_;
      break;
    }
  }

  for (const auto& s : status_) {
    metrics_.max_sends_per_node = std::max(metrics_.max_sends_per_node, s.sends);
  }
  metrics_.rounds = round_;
  report.rounds = round_;
  report.completed = completed;
  report.metrics = metrics_;
  report.nodes = status_;
  return report;
}

}  // namespace lft::sim
