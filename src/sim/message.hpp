// The unit of communication in the synchronous model. Most of the paper's
// messages carry a single bit (`value` with bits == 1); gossiping, Byzantine
// broadcast and checkpointing serialize structured payloads into the body.
// The `bits` field is the accounted size, which is what the paper's
// communication bounds count.
//
// Message is a trivially-copyable POD: the body is a (pointer, length) view
// into a round-scoped PayloadArena owned by whoever produced the message
// (the engine for delivered batches), valid for the round the message is
// readable in. This is what lets the delivery sweep relocate messages with
// raw copies and the parallel stepper concatenate per-thread outboxes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/types.hpp"
#include "sim/payload.hpp"

namespace lft::sim {

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint32_t tag = 0;       // protocol-defined discriminator
  std::uint32_t body_len = 0;  // length of the serialized payload, in bytes
  std::uint64_t value = 0;     // inline small payload (e.g. the rumor bit)
  std::uint64_t bits = 1;      // accounted size in bits
  const std::byte* body_ptr = nullptr;  // arena-backed payload, round-scoped

  [[nodiscard]] PayloadView body() const noexcept { return PayloadView(body_ptr, body_len); }
  [[nodiscard]] bool has_body() const noexcept { return body_len != 0; }

  void set_body(PayloadView view) noexcept {
    body_ptr = view.data();
    body_len = static_cast<std::uint32_t>(view.size());
  }
};

static_assert(std::is_trivially_copyable_v<Message>,
              "the delivery sweep and parallel stepper rely on raw relocation");
static_assert(sizeof(Message) == 40, "keep the hot delivery path cache-friendly");

}  // namespace lft::sim
