// The unit of communication in the synchronous model. Most of the paper's
// messages carry a single bit (`value` with bits == 1); gossiping, Byzantine
// broadcast and checkpointing serialize structured payloads into `body`.
// The `bits` field is the accounted size, which is what the paper's
// communication bounds count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lft::sim {

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint32_t tag = 0;        // protocol-defined discriminator
  std::uint64_t value = 0;      // inline small payload (e.g. the rumor bit)
  std::uint64_t bits = 1;       // accounted size in bits
  std::vector<std::byte> body;  // optional serialized payload
};

}  // namespace lft::sim
