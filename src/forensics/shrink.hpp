// Automatic fault-plan shrinking: given a protocol runner, a FaultPlan that
// makes its invariant fail, and the violation predicate, delta-debug the
// plan down to a minimal counterexample that still fails — then emit the
// minimal plan together with its recorded trace so the repro is replayable.
//
// The shrinker runs four passes:
//   1. event ddmin — classic delta debugging over the plan's flattened event
//      list (crashes, omissions, links, partitions, takeovers, delays,
//      gsts), with every
//      candidate subset of a granularity level evaluated IN PARALLEL over a
//      sim::FleetRunner; the surviving plan is 1-minimal (dropping any
//      single remaining event restores the invariant) unless the evaluation
//      budget ran out mid-pass — observable as ShrinkResult::budget_exhausted;
//   2. window narrowing — each remaining round-ranged event's [from, until)
//      window is halved toward the rounds that matter (infinite windows are
//      first clamped to the execution's recorded length);
//   3. partition-set shrinking — nodes a PartitionSpec displaces from the
//      majority group are ddmin'd back into it;
//   4. size shrinking — n is reduced (t rescaled via `t_of`) while every
//      remaining event still fits and the invariant still fails.
// Every pass only ever commits candidates re-verified to violate, and
// candidate selection is by index order (not completion order), so the
// result is deterministic for a given problem regardless of worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "forensics/replay.hpp"
#include "core/run_options.hpp"
#include "forensics/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/faults.hpp"

namespace lft::forensics {

/// Executes a protocol + invariant under an arbitrary candidate plan (the
/// shrinker's oracle). Must be a pure function of its arguments — candidate
/// evaluations run concurrently on fleet workers.
using PlanRunner = std::function<scenarios::ScenarioResult(
    const sim::FaultPlan& plan, std::uint64_t seed, NodeId n, std::int64_t t,
    const core::RunOptions& options)>;

/// One shrink instance: the runner, the violating plan, and the shape it
/// violates at.
struct ShrinkProblem {
  PlanRunner run;
  sim::FaultPlan plan;
  std::uint64_t seed = 1;
  NodeId n = 0;
  std::int64_t t = 0;
  /// True iff the outcome still violates (the repro reproduces). Defaults
  /// to `!result.ok` — the scenario's own invariant as the oracle.
  std::function<bool(const scenarios::ScenarioResult&)> violates;
  /// Fault budget for a shrunk size (pass 4); defaults to keeping `t`.
  std::function<std::int64_t(NodeId)> t_of;
};

/// Builds a ShrinkProblem from a plan-driven registry scenario (requires
/// scenario.run_plan): the scenario's invariant is the oracle and its
/// scaled_t rescales the budget when n shrinks. Negative n/t mean "the
/// registered default".
[[nodiscard]] ShrinkProblem scenario_problem(const scenarios::Scenario& scenario,
                                             sim::FaultPlan plan, std::uint64_t seed,
                                             NodeId n = -1, std::int64_t t = -1);

struct ShrinkOptions {
  int workers = 4;        ///< fleet workers evaluating candidate plans
  int threads = 1;        ///< engine threads inside each candidate run
  NodeId min_n = 8;       ///< floor for the size-shrinking pass
  bool shrink_windows = true;
  bool shrink_partitions = true;
  bool shrink_size = true;
  std::int64_t max_evaluations = 4096;  ///< global candidate budget
};

/// The minimal repro plus its provenance.
struct ShrinkResult {
  sim::FaultPlan plan;   ///< minimal plan that still violates
  NodeId n = 0;          ///< possibly shrunk size
  std::int64_t t = 0;    ///< budget matching `n`
  std::int64_t evaluations = 0;     ///< candidate runs spent
  std::int64_t initial_events = 0;  ///< events in the input plan
  std::int64_t final_events = 0;    ///< events in the minimal plan
  bool violating = false;  ///< the returned plan was re-verified to violate
  /// True iff max_evaluations ran out mid-shrink: the plan still violates
  /// but may not be 1-minimal (unremoved decoys possible).
  bool budget_exhausted = false;
  Trace trace;             ///< serial trace of the minimal repro
  scenarios::ScenarioResult result;  ///< outcome of the minimal repro
  /// diff between the minimal repro's serial and 4-thread traces; must
  /// report no divergence (the engine's determinism bar).
  Divergence parallel_divergence;
};

/// Shrinks `problem.plan` (see the file comment for the passes). If the
/// input plan does not violate, returns immediately with violating == false
/// and the plan untouched.
[[nodiscard]] ShrinkResult shrink(const ShrinkProblem& problem,
                                  const ShrinkOptions& options = {});

/// Total number of typed events a plan carries (the quantity the shrinker
/// minimizes first).
[[nodiscard]] std::int64_t plan_event_count(const sim::FaultPlan& plan);

// ---- built-in shrink cases -------------------------------------------------

/// A named, self-contained shrink demo: a deliberately fragile protocol and
/// an over-budget fault plan that breaks it, with a small known-minimal
/// core buried in decoy events. Used by the lft_forensics CLI, the CI
/// forensics-smoke step, and the tests.
struct ShrinkCase {
  std::string name;
  std::string description;
  std::function<ShrinkProblem(std::uint64_t seed)> make;
};

/// The case registry: `coordinator_collapse` (12 crash events whose minimal
/// core is the 3 coordinator crashes), `coordinator_blackout` (12
/// omission windows whose minimal core is 3 windows narrowed to the
/// coordinators' broadcast rounds), and `coordinator_lag` (10 delay events
/// whose minimal core is a single delay window narrowed to the broadcast
/// phases — the timing-fault ddmin demo).
[[nodiscard]] const std::vector<ShrinkCase>& shrink_cases();
[[nodiscard]] const ShrinkCase* find_shrink_case(const std::string& name);

}  // namespace lft::forensics
