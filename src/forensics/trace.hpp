// Forensics trace container + codec: a recorded execution as the sequence
// of per-round RoundDigests the engine emits through sim::TraceSink, plus
// the metadata needed to re-execute it (scenario name, seed, shape) and the
// final Report fingerprint. Traces serialize to a compact, versioned binary
// frame over common/codec (varint-packed — fault-free rounds cost a few
// bytes each) so sweeps can archive repro traces cheaply; decoding is
// bounds-checked and returns nullopt on any malformed input.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/trace.hpp"

namespace lft::forensics {

/// What it takes to re-execute a recorded run: the scenario registry name
/// and the (seed, n, t) shape handed to Scenario::run_at. `threads` records
/// what the original run used — replays may use any value, since digests
/// are thread-invariant.
struct TraceMeta {
  std::string scenario;
  std::uint64_t seed = 0;
  NodeId n = 0;
  std::int64_t t = 0;
  std::int32_t threads = 1;
};

/// One recorded execution: metadata, every round's digest in round order,
/// and the final Report fingerprint (scenarios::fingerprint).
struct Trace {
  TraceMeta meta;
  std::vector<sim::RoundDigest> rounds;
  std::uint64_t report_fingerprint = 0;

  [[nodiscard]] bool operator==(const Trace& other) const;
};

/// Collects the engine's per-round digests into a Trace. Install via
/// EngineConfig::trace (or any runner's trailing `trace` parameter), run,
/// then read/take the trace and fill in metadata + fingerprint.
class TraceRecorder final : public sim::TraceSink {
 public:
  void on_round(const sim::RoundDigest& digest) override { trace_.rounds.push_back(digest); }

  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace take() noexcept { return std::move(trace_); }

 private:
  Trace trace_;
};

/// Serializes a trace into the versioned binary frame (see docs/forensics.md
/// for the layout).
[[nodiscard]] std::vector<std::byte> encode_trace(const Trace& trace);

/// Decodes a frame produced by encode_trace; nullopt on bad magic, an
/// unsupported version, or truncated/malformed input.
[[nodiscard]] std::optional<Trace> decode_trace(std::span<const std::byte> bytes);

/// File round-trip helpers. save_trace returns false on IO failure;
/// load_trace returns nullopt on IO failure or malformed content.
[[nodiscard]] bool save_trace(const Trace& trace, const std::string& path);
[[nodiscard]] std::optional<Trace> load_trace(const std::string& path);

}  // namespace lft::forensics
