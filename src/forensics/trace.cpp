#include "forensics/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/codec.hpp"

namespace lft::forensics {

namespace {
// "LFTTRACE" as a little-endian u64, followed by the format version. Bump
// the version on any layout change; decode_trace rejects unknown versions
// instead of guessing. v1 -> v2 appended the timing-fault digest fields
// (`delayed` after lost_dead, `delays` after takeovers); v1 traces still
// decode, with both fields zero.
constexpr std::uint64_t kTraceMagic = 0x4543415254544c46ULL;
constexpr std::uint32_t kTraceVersionV1 = 1;
constexpr std::uint32_t kTraceVersion = 2;
}  // namespace

bool Trace::operator==(const Trace& other) const {
  if (meta.scenario != other.meta.scenario || meta.seed != other.meta.seed ||
      meta.n != other.meta.n || meta.t != other.meta.t ||
      meta.threads != other.meta.threads ||
      report_fingerprint != other.report_fingerprint ||
      rounds.size() != other.rounds.size()) {
    return false;
  }
  return rounds == other.rounds;  // memberwise via RoundDigest::operator==
}

std::vector<std::byte> encode_trace(const Trace& trace) {
  ByteWriter w;
  w.put_u64(kTraceMagic);
  w.put_u32(kTraceVersion);
  w.put_varint(trace.meta.scenario.size());
  w.put_bytes(std::as_bytes(std::span<const char>(trace.meta.scenario.data(),
                                                  trace.meta.scenario.size())));
  w.put_u64(trace.meta.seed);
  w.put_u32(static_cast<std::uint32_t>(trace.meta.n));
  w.put_varint(static_cast<std::uint64_t>(trace.meta.t));
  w.put_u32(static_cast<std::uint32_t>(trace.meta.threads));
  w.put_u64(trace.report_fingerprint);
  w.put_varint(trace.rounds.size());
  for (const auto& d : trace.rounds) {
    w.put_varint(static_cast<std::uint64_t>(d.round));
    w.put_varint(d.sent);
    w.put_varint(d.delivered);
    w.put_varint(d.lost_crash);
    w.put_varint(d.lost_fault);
    w.put_varint(d.lost_dead);
    w.put_varint(d.delayed);
    w.put_varint(d.crashes);
    w.put_varint(d.omissions);
    w.put_varint(d.links);
    w.put_varint(d.partitions);
    w.put_varint(d.takeovers);
    w.put_varint(d.delays);
    w.put_u64(d.active_hash);
    w.put_u64(d.payload_hash);
    w.put_u64(d.body_hash);
  }
  return w.take();
}

std::optional<Trace> decode_trace(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  const auto magic = r.get_u64();
  if (!magic || *magic != kTraceMagic) return std::nullopt;
  const auto version = r.get_u32();
  if (!version || (*version != kTraceVersionV1 && *version != kTraceVersion)) {
    return std::nullopt;
  }
  const bool v2 = *version == kTraceVersion;

  Trace trace;
  const auto name_len = r.get_varint();
  if (!name_len) return std::nullopt;
  const auto name = r.get_bytes(static_cast<std::size_t>(*name_len));
  if (!name) return std::nullopt;
  trace.meta.scenario.assign(reinterpret_cast<const char*>(name->data()), name->size());

  const auto seed = r.get_u64();
  const auto n = r.get_u32();
  const auto t = r.get_varint();
  const auto threads = r.get_u32();
  const auto fingerprint = r.get_u64();
  const auto round_count = r.get_varint();
  if (!seed || !n || !t || !threads || !fingerprint || !round_count) return std::nullopt;
  trace.meta.seed = *seed;
  trace.meta.n = static_cast<NodeId>(*n);
  trace.meta.t = static_cast<std::int64_t>(*t);
  trace.meta.threads = static_cast<std::int32_t>(*threads);
  trace.report_fingerprint = *fingerprint;

  // A digest costs >= 35 bytes in v1 (11 varints of >= 1 byte + three u64
  // hashes) and >= 37 in v2 (two extra varints); reject counts the remaining
  // bytes cannot possibly hold, so a corrupt count cannot amplify a small
  // file into a huge reserve().
  if (*round_count > r.remaining() / (v2 ? 37 : 35)) return std::nullopt;
  trace.rounds.reserve(static_cast<std::size_t>(*round_count));
  for (std::uint64_t i = 0; i < *round_count; ++i) {
    sim::RoundDigest d;
    const auto round = r.get_varint();
    const auto sent = r.get_varint();
    const auto delivered = r.get_varint();
    const auto lost_crash = r.get_varint();
    const auto lost_fault = r.get_varint();
    const auto lost_dead = r.get_varint();
    const auto delayed = v2 ? r.get_varint() : std::optional<std::uint64_t>{0};
    const auto crashes = r.get_varint();
    const auto omissions = r.get_varint();
    const auto links = r.get_varint();
    const auto partitions = r.get_varint();
    const auto takeovers = r.get_varint();
    const auto delays = v2 ? r.get_varint() : std::optional<std::uint64_t>{0};
    const auto active_hash = r.get_u64();
    const auto payload_hash = r.get_u64();
    const auto body_hash = r.get_u64();
    if (!round || !sent || !delivered || !lost_crash || !lost_fault || !lost_dead ||
        !delayed || !crashes || !omissions || !links || !partitions || !takeovers ||
        !delays || !active_hash || !payload_hash || !body_hash) {
      return std::nullopt;
    }
    d.round = static_cast<Round>(*round);
    d.sent = *sent;
    d.delivered = *delivered;
    d.lost_crash = *lost_crash;
    d.lost_fault = *lost_fault;
    d.lost_dead = *lost_dead;
    d.delayed = *delayed;
    d.crashes = static_cast<std::uint32_t>(*crashes);
    d.omissions = static_cast<std::uint32_t>(*omissions);
    d.links = static_cast<std::uint32_t>(*links);
    d.partitions = static_cast<std::uint32_t>(*partitions);
    d.takeovers = static_cast<std::uint32_t>(*takeovers);
    d.delays = static_cast<std::uint32_t>(*delays);
    d.active_hash = *active_hash;
    d.payload_hash = *payload_hash;
    d.body_hash = *body_hash;
    trace.rounds.push_back(d);
  }
  if (!r.exhausted()) return std::nullopt;  // trailing garbage is malformed
  return trace;
}

bool save_trace(const Trace& trace, const std::string& path) {
  const auto bytes = encode_trace(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<Trace> load_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::byte> bytes;
  std::byte buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return std::nullopt;
  return decode_trace(bytes);
}

}  // namespace lft::forensics
