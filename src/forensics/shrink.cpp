#include "forensics/shrink.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "core/consensus.hpp"
#include "core/tags.hpp"
#include "sim/engine.hpp"
#include "sim/fleet.hpp"

namespace lft::forensics {

namespace {

using scenarios::ScenarioResult;
using sim::FaultPlan;

// ---- plan event indexing ---------------------------------------------------

/// Flattened event order: crashes, omissions, links, partitions, takeovers,
/// delays, gsts (matching FaultPlan's member order). `keep` masks this flat
/// index space.
FaultPlan plan_subset(const FaultPlan& plan, const std::vector<char>& keep) {
  FaultPlan out;
  out.seed = plan.seed;
  std::size_t i = 0;
  for (const auto& e : plan.crashes) {
    if (keep[i++] != 0) out.crashes.push_back(e);
  }
  for (const auto& e : plan.omissions) {
    if (keep[i++] != 0) out.omissions.push_back(e);
  }
  for (const auto& e : plan.links) {
    if (keep[i++] != 0) out.links.push_back(e);
  }
  for (const auto& e : plan.partitions) {
    if (keep[i++] != 0) out.partitions.push_back(e);
  }
  for (const auto& e : plan.takeovers) {
    if (keep[i++] != 0) out.takeovers.push_back(e);
  }
  for (const auto& e : plan.delays) {
    if (keep[i++] != 0) out.delays.push_back(e);
  }
  for (const auto& e : plan.gsts) {
    if (keep[i++] != 0) out.gsts.push_back(e);
  }
  return out;
}

/// The plan re-shaped for a smaller system, or nullopt if any event
/// references a node that would no longer exist. Partition group maps are
/// truncated to the new size (every candidate is re-verified to violate, so
/// a semantic change from truncation can only be accepted if it still
/// reproduces).
std::optional<FaultPlan> resize_plan(const FaultPlan& plan, NodeId new_n) {
  FaultPlan out = plan;
  for (const auto& e : out.crashes) {
    if (e.node >= new_n) return std::nullopt;
  }
  for (const auto& e : out.omissions) {
    if (e.node >= new_n) return std::nullopt;
  }
  for (const auto& e : out.links) {
    if (e.a >= new_n || e.b >= new_n) return std::nullopt;
  }
  for (const auto& e : out.takeovers) {
    if (e.node >= new_n) return std::nullopt;
  }
  for (auto& p : out.partitions) {
    if (static_cast<NodeId>(p.group_of.size()) < new_n) return std::nullopt;
    p.group_of.resize(static_cast<std::size_t>(new_n));
  }
  // Delay rules survive a resize unless they pin a node that would no
  // longer exist; wildcard (kNoNode) endpoints and GST events are
  // size-independent.
  for (const auto& e : out.delays) {
    if (e.src != kNoNode && e.src >= new_n) return std::nullopt;
    if (e.dst != kNoNode && e.dst >= new_n) return std::nullopt;
  }
  return out;
}

// ---- the shrinking engine --------------------------------------------------

class Shrinker {
 public:
  Shrinker(const ShrinkProblem& problem, const ShrinkOptions& options)
      : problem_(problem),
        options_(options),
        fleet_(sim::FleetConfig{options.workers, /*reuse_scratch=*/true}) {}

  [[nodiscard]] std::int64_t evaluations() const noexcept { return evaluations_; }

  [[nodiscard]] bool violates(const ScenarioResult& result) const {
    return problem_.violates ? problem_.violates(result) : !result.ok;
  }

  /// One serial oracle run (counts against the budget).
  [[nodiscard]] bool evaluate(const FaultPlan& plan, NodeId n, std::int64_t t) {
    ++evaluations_;
    core::RunOptions run_options;
    run_options.threads = options_.threads;
    return violates(problem_.run(plan, problem_.seed, n, t, run_options));
  }

  [[nodiscard]] bool budget_left(std::size_t upcoming) const {
    return evaluations_ + static_cast<std::int64_t>(upcoming) <= options_.max_evaluations;
  }

  /// Evaluates every candidate on the fleet and returns the index of the
  /// first (lowest-index, not first-completed) violating one, or -1. The
  /// index rule keeps the shrink result independent of worker timing.
  [[nodiscard]] int first_violating(const std::vector<FaultPlan>& candidates, NodeId n,
                                    std::int64_t t) {
    if (!budget_left(candidates.size())) return -1;
    evaluations_ += static_cast<std::int64_t>(candidates.size());
    auto flags = std::make_shared<std::vector<char>>(candidates.size(), 0);
    std::vector<sim::FleetRunner::Handle> handles;
    handles.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      handles.push_back(
          fleet_.submit([this, plan = candidates[i], n, t, flags, i](
                            sim::EngineScratch* scratch) {
            core::RunOptions run_options;
            run_options.threads = options_.threads;
            run_options.scratch = scratch;
            ScenarioResult result = problem_.run(plan, problem_.seed, n, t, run_options);
            (*flags)[i] = violates(result) ? 1 : 0;
            return std::move(result.report);
          }));
    }
    for (auto& h : handles) (void)h.wait();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if ((*flags)[i] != 0) return static_cast<int>(i);
    }
    return -1;
  }

  /// Classic ddmin over `item_count` abstract items: candidates are built by
  /// `without(drop_begin, drop_end)` (the plan minus that index chunk) and
  /// `shrunk(kept_count)` commits. Returns the 1-minimal kept mask.
  template <typename WithoutFn>
  std::vector<char> ddmin(std::size_t item_count, NodeId n, std::int64_t t,
                          const WithoutFn& without) {
    std::vector<char> keep(item_count, 1);
    std::size_t live = item_count;
    if (live <= 1) return keep;
    std::size_t granularity = 2;
    while (true) {
      granularity = std::min(granularity, live);
      // Live indices, in flat order.
      std::vector<std::size_t> indices;
      indices.reserve(live);
      for (std::size_t i = 0; i < item_count; ++i) {
        if (keep[i] != 0) indices.push_back(i);
      }
      // Candidate c = the plan minus chunk c of the live items.
      std::vector<std::vector<char>> masks;
      std::vector<FaultPlan> candidates;
      for (std::size_t c = 0; c < granularity; ++c) {
        const std::size_t begin = c * live / granularity;
        const std::size_t end = (c + 1) * live / granularity;
        if (begin == end) continue;
        std::vector<char> mask = keep;
        for (std::size_t k = begin; k < end; ++k) mask[indices[k]] = 0;
        candidates.push_back(without(mask));
        masks.push_back(std::move(mask));
      }
      const int hit = first_violating(candidates, n, t);
      if (hit >= 0) {
        keep = std::move(masks[static_cast<std::size_t>(hit)]);
        live = static_cast<std::size_t>(std::count(keep.begin(), keep.end(), char{1}));
        if (live <= 1) break;
        granularity = std::max<std::size_t>(2, granularity - 1);
        continue;
      }
      if (granularity >= live || !budget_left(2 * granularity)) break;
      granularity = std::min(live, granularity * 2);
    }
    return keep;
  }

  /// Pass 1: ddmin over the plan's flattened events.
  void shrink_events(FaultPlan& plan, NodeId n, std::int64_t t) {
    const auto count = static_cast<std::size_t>(plan_event_count(plan));
    const auto keep =
        ddmin(count, n, t, [&plan](const std::vector<char>& mask) {
          return plan_subset(plan, mask);
        });
    plan = plan_subset(plan, keep);
  }

  /// Pass 2: narrow every remaining [from, until) window by repeated
  /// halving — first pull `until` down, then push `from` up — until a full
  /// sweep over the plan's windowed events changes nothing.
  void shrink_windows(FaultPlan& plan, NodeId n, std::int64_t t, Round total_rounds) {
    auto narrow = [&](Round& from, Round& until) {
      bool changed = false;
      if (until > total_rounds) {
        // Clamp open-ended windows to the recorded run length — but like
        // every other narrowing step, only if the clamped plan still
        // violates (a shrunk plan can run longer than the baseline, making
        // the tail rounds load-bearing).
        const Round saved = until;
        until = total_rounds;
        if (evaluate(plan, n, t)) {
          changed = true;
        } else {
          until = saved;
          return false;  // the whole window is needed; nothing to narrow
        }
      }
      // The from/until references point into `plan`, so each probe mutates
      // the window in place, evaluates, and rolls back on failure.
      while (until - from > 1 && budget_left(1)) {
        const Round mid = from + (until - from) / 2;
        const Round saved = until;
        until = mid;
        if (evaluate(plan, n, t)) {
          changed = true;
        } else {
          until = saved;
          break;
        }
      }
      while (until - from > 1 && budget_left(1)) {
        const Round mid = from + (until - from) / 2;
        const Round saved = from;
        from = mid;
        if (evaluate(plan, n, t)) {
          changed = true;
        } else {
          from = saved;
          break;
        }
      }
      return changed;
    };
    bool changed = true;
    while (changed && budget_left(1)) {
      changed = false;
      for (auto& e : plan.omissions) changed = narrow(e.from, e.until) || changed;
      for (auto& e : plan.links) changed = narrow(e.from, e.until) || changed;
      for (auto& e : plan.partitions) changed = narrow(e.from, e.until) || changed;
      // Delay coins are salted by (src, dst, min, max) only — never by the
      // window — so narrowing a delay window cannot reshuffle the lags of
      // the rounds that remain inside it.
      for (auto& e : plan.delays) changed = narrow(e.from, e.until) || changed;
    }
  }

  /// Pass 3: for each partition, ddmin the nodes it displaces from the
  /// majority group back into it.
  void shrink_partitions(FaultPlan& plan, NodeId n, std::int64_t t) {
    for (std::size_t p = 0; p < plan.partitions.size(); ++p) {
      auto& spec = plan.partitions[p];
      if (spec.group_of.empty()) continue;
      // The majority group id (ties broken toward the smaller id).
      std::vector<std::size_t> count;
      for (const std::uint32_t g : spec.group_of) {
        if (g >= count.size()) count.resize(g + 1, 0);
        ++count[g];
      }
      const auto majority = static_cast<std::uint32_t>(
          std::max_element(count.begin(), count.end()) - count.begin());
      std::vector<std::size_t> displaced;
      for (std::size_t v = 0; v < spec.group_of.size(); ++v) {
        if (spec.group_of[v] != majority) displaced.push_back(v);
      }
      if (displaced.size() <= 1) continue;
      const auto keep = ddmin(
          displaced.size(), n, t, [&](const std::vector<char>& mask) {
            FaultPlan candidate = plan;
            auto& groups = candidate.partitions[p].group_of;
            for (std::size_t k = 0; k < displaced.size(); ++k) {
              if (mask[k] == 0) groups[displaced[k]] = majority;
            }
            return candidate;
          });
      for (std::size_t k = 0; k < displaced.size(); ++k) {
        if (keep[k] == 0) spec.group_of[displaced[k]] = majority;
      }
    }
  }

  /// Pass 4: shrink n itself while the repro still fits and still fails.
  void shrink_size(FaultPlan& plan, NodeId& n, std::int64_t& t) {
    const auto t_for = [this](NodeId size, std::int64_t current) {
      return problem_.t_of ? problem_.t_of(size) : current;
    };
    bool improved = true;
    while (improved && n > options_.min_n && budget_left(1)) {
      improved = false;
      for (const auto& [num, den] : {std::pair{1, 2}, std::pair{3, 4}, std::pair{7, 8}}) {
        const NodeId candidate_n = std::max(options_.min_n, n * num / den);
        if (candidate_n >= n) continue;
        const auto resized = resize_plan(plan, candidate_n);
        if (!resized) continue;
        const std::int64_t candidate_t = t_for(candidate_n, t);
        if (evaluate(*resized, candidate_n, candidate_t)) {
          plan = *resized;
          n = candidate_n;
          t = candidate_t;
          improved = true;
          break;
        }
        if (!budget_left(1)) break;
      }
    }
  }

 private:
  const ShrinkProblem& problem_;
  const ShrinkOptions& options_;
  sim::FleetRunner fleet_;
  std::int64_t evaluations_ = 0;
};

}  // namespace

std::int64_t plan_event_count(const FaultPlan& plan) {
  return static_cast<std::int64_t>(plan.crashes.size() + plan.omissions.size() +
                                   plan.links.size() + plan.partitions.size() +
                                   plan.takeovers.size() + plan.delays.size() +
                                   plan.gsts.size());
}

ShrinkProblem scenario_problem(const scenarios::Scenario& scenario, sim::FaultPlan plan,
                               std::uint64_t seed, NodeId n, std::int64_t t) {
  LFT_ASSERT_MSG(scenario.run_plan != nullptr,
                 "scenario_problem: scenario has no plan-parameterized runner");
  ShrinkProblem problem;
  const scenarios::Scenario* s = &scenario;  // registry scenarios are static
  problem.run = [s](const FaultPlan& candidate, std::uint64_t run_seed, NodeId size,
                    std::int64_t budget, const core::RunOptions& run_options) {
    return s->run_plan(run_seed, size, budget, candidate, run_options);
  };
  problem.plan = std::move(plan);
  problem.seed = seed;
  problem.n = n < 0 ? scenario.n : n;
  problem.t = t < 0 ? (problem.n == scenario.n ? scenario.t : scenario.scaled_t(problem.n))
                    : t;
  problem.t_of = [s](NodeId size) { return s->scaled_t(size); };
  return problem;
}

ShrinkResult shrink(const ShrinkProblem& problem, const ShrinkOptions& options) {
  LFT_ASSERT_MSG(problem.run != nullptr, "shrink: a PlanRunner is required");
  ShrinkResult result;
  result.plan = problem.plan;
  result.n = problem.n;
  result.t = problem.t;
  result.initial_events = plan_event_count(problem.plan);

  Shrinker shrinker(problem, options);

  // The input must reproduce before there is anything to minimize; record a
  // trace of it while checking (its length also clamps open-ended windows).
  TraceRecorder baseline;
  core::RunOptions baseline_options;
  baseline_options.threads = options.threads;
  baseline_options.trace = &baseline;
  ScenarioResult first =
      problem.run(problem.plan, problem.seed, problem.n, problem.t, baseline_options);
  if (!(problem.violates ? problem.violates(first) : !first.ok)) {
    result.violating = false;
    result.final_events = result.initial_events;
    result.trace = baseline.take();
    result.trace.meta.seed = problem.seed;
    result.trace.meta.n = problem.n;
    result.trace.meta.t = problem.t;
    result.trace.meta.threads = options.threads;
    result.trace.report_fingerprint = scenarios::fingerprint(first.report);
    result.result = std::move(first);
    result.evaluations = 1;
    return result;
  }
  const auto total_rounds = static_cast<Round>(baseline.trace().rounds.size());

  FaultPlan plan = problem.plan;
  NodeId n = problem.n;
  std::int64_t t = problem.t;

  shrinker.shrink_events(plan, n, t);
  if (options.shrink_windows) shrinker.shrink_windows(plan, n, t, total_rounds);
  if (options.shrink_partitions) shrinker.shrink_partitions(plan, n, t);
  if (options.shrink_size) shrinker.shrink_size(plan, n, t);
  // The window/partition/size passes can make further events redundant;
  // one more (cheap — the plan is small now) event pass restores
  // 1-minimality.
  shrinker.shrink_events(plan, n, t);

  // Re-verify the minimal repro serially with a recorder, then once more
  // through the parallel stepper: the traces must be bit-identical.
  TraceRecorder serial;
  core::RunOptions serial_options;
  serial_options.trace = &serial;
  result.result = problem.run(plan, problem.seed, n, t, serial_options);
  result.violating =
      problem.violates ? problem.violates(result.result) : !result.result.ok;
  result.trace = serial.take();
  result.trace.meta.seed = problem.seed;
  result.trace.meta.n = n;
  result.trace.meta.t = t;
  result.trace.meta.threads = 1;
  result.trace.report_fingerprint = scenarios::fingerprint(result.result.report);

  TraceRecorder parallel;
  core::RunOptions parallel_options;
  parallel_options.threads = 4;
  parallel_options.trace = &parallel;
  ScenarioResult parallel_result = problem.run(plan, problem.seed, n, t, parallel_options);
  Trace parallel_trace = parallel.take();
  parallel_trace.report_fingerprint = scenarios::fingerprint(parallel_result.report);
  result.parallel_divergence = diff(result.trace, parallel_trace);

  result.plan = std::move(plan);
  result.n = n;
  result.t = t;
  result.final_events = plan_event_count(result.plan);
  result.evaluations = shrinker.evaluations() + 3;  // + baseline + two verifies
  result.budget_exhausted = shrinker.evaluations() >= options.max_evaluations;
  return result;
}

// ---- built-in shrink cases -------------------------------------------------

namespace {

// A deliberately fragile rotating-coordinator consensus (the classical
// baseline shape): t+1 phases, the phase-p coordinator broadcasts its
// current value, everyone adopts what they hear, and all nodes decide after
// phase t. It tolerates exactly t crashes — silence all t+1 coordinators
// and the mixed inputs never converge, which is precisely the kind of
// over-budget counterexample the shrinker exists to minimize.
constexpr std::uint32_t kTagFragileCoord = core::kTagBaseline + 32;

class FragileCoordinator final : public sim::Process {
 public:
  FragileCoordinator(NodeId n, std::int64_t t, int input)
      : n_(n), t_(t), value_(static_cast<std::uint64_t>(input)) {}

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    for (const auto& m : inbox) {
      if (m.tag == kTagFragileCoord) value_ = m.value;
    }
    const Round phase = ctx.round();
    if (phase <= t_) {
      if (ctx.self() == static_cast<NodeId>(phase % n_)) {
        for (NodeId v = 0; v < n_; ++v) {
          if (v != ctx.self()) ctx.send(v, kTagFragileCoord, value_, 1);
        }
      }
      return;
    }
    ctx.decide(value_);
    ctx.halt();
  }

 private:
  NodeId n_;
  std::int64_t t_;
  std::uint64_t value_;
};

/// Runs the fragile coordinator under an arbitrary plan with adversary
/// budgets opened up to n (the "over-budget adversary": the protocol is
/// built for t faults, the plan may spend many more). The oracle invariant
/// is agreement alone — termination is unconditional in this protocol.
ScenarioResult run_fragile_coordinator(const FaultPlan& plan, std::uint64_t seed, NodeId n,
                                       std::int64_t t, const core::RunOptions& options) {
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) inputs[static_cast<std::size_t>(v)] = v % 2;

  sim::EngineConfig config;
  config.max_rounds = static_cast<Round>(t) + 8;
  config.crash_budget = n;
  config.omission_budget = n;
  config.threads = options.threads;
  config.scratch = options.scratch;
  config.trace = options.trace;
  config.telemetry = options.telemetry;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, std::make_unique<FragileCoordinator>(
                              n, t, inputs[static_cast<std::size_t>(v)]));
  }
  FaultPlan seeded = plan;
  seeded.with_seed(seed);
  if (plan_event_count(seeded) > 0) {
    engine.add_fault_injector(sim::make_plan_injector(std::move(seeded)));
  }
  auto outcome = core::evaluate_consensus(engine.run(), inputs);
  ScenarioResult result;
  result.ok = outcome.agreement;
  result.detail = std::string("agreement=") + (outcome.agreement ? "yes" : "NO") +
                  " termination=" + (outcome.termination ? "yes" : "NO");
  result.report = std::move(outcome.report);
  return result;
}

std::vector<ShrinkCase> build_cases() {
  std::vector<ShrinkCase> cases;

  cases.push_back(ShrinkCase{
      "coordinator_collapse",
      "rotating coordinator (n=32, t=2) under 12 crash events; the minimal core is the 3 "
      "clean coordinator crashes at round 0",
      [](std::uint64_t seed) {
        ShrinkProblem problem;
        problem.run = run_fragile_coordinator;
        problem.seed = seed;
        problem.n = 32;
        problem.t = 2;
        // The violating core: silence every coordinator before it speaks.
        problem.plan.crash_at(0, 0, 0.0).crash_at(1, 0, 0.0).crash_at(2, 0, 0.0);
        // Nine decoys — non-coordinator crashes that change nothing about
        // agreement but quadruple the counterexample's size.
        for (int i = 0; i < 9; ++i) {
          problem.plan.crash_at(static_cast<NodeId>(5 + 2 * i),
                                static_cast<Round>(i % 3), 0.5);
        }
        return problem;
      }});

  cases.push_back(ShrinkCase{
      "coordinator_blackout",
      "rotating coordinator (n=32, t=2) under 12 send-omission windows; the minimal core "
      "is 3 windows narrowed to the coordinators' broadcast rounds",
      [](std::uint64_t seed) {
        ShrinkProblem problem;
        problem.run = run_fragile_coordinator;
        problem.seed = seed;
        problem.n = 32;
        problem.t = 2;
        // The violating core: black out each coordinator's sends across a
        // window far wider than the one round that matters.
        for (NodeId v = 0; v < 3; ++v) {
          problem.plan.omission(v, 0, 24, /*send=*/true, /*recv=*/false);
        }
        // Nine decoy windows on non-coordinators.
        for (int i = 0; i < 9; ++i) {
          problem.plan.omission(static_cast<NodeId>(5 + 2 * i), 0, 16, /*send=*/true,
                                /*recv=*/false);
        }
        return problem;
      }});

  cases.push_back(ShrinkCase{
      "coordinator_lag",
      "rotating coordinator (n=32, t=2) under 10 delay events; the minimal core is one "
      "all-links delay window that lags every coordinator broadcast past the decide round",
      [](std::uint64_t seed) {
        ShrinkProblem problem;
        problem.run = run_fragile_coordinator;
        problem.seed = seed;
        problem.n = 32;
        problem.t = 2;
        // The violating core: one wildcard rule lagging every message by 6
        // rounds. Broadcasts from phases 0..2 become readable only after
        // everyone has decided at round 3 and halted, so the mixed inputs
        // never converge. The window [0, 8) is deliberately wider than the
        // 3 broadcast rounds that matter — narrowing should pull it in.
        problem.plan.delay_all(/*from=*/0, /*until=*/8, /*min_delay=*/6,
                               /*max_delay=*/6);
        // Nine decoy per-link rules pinned to sources that never send
        // (non-coordinators stay silent in this protocol), so they are
        // dead weight the event ddmin must strip.
        for (int i = 0; i < 9; ++i) {
          problem.plan.delay(/*src=*/static_cast<NodeId>(10 + i), /*dst=*/kNoNode,
                             /*from=*/0, /*until=*/6, /*min_delay=*/1,
                             /*max_delay=*/1);
        }
        return problem;
      }});

  return cases;
}

}  // namespace

const std::vector<ShrinkCase>& shrink_cases() {
  static const std::vector<ShrinkCase> registry = build_cases();
  return registry;
}

const ShrinkCase* find_shrink_case(const std::string& name) {
  for (const auto& c : shrink_cases()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace lft::forensics
