// Replay verification: re-execute a recorded run and localize the *first
// divergent round and digest component* instead of reporting only that the
// final fingerprints differ. `diff` compares two traces; `replay` re-runs a
// scenario from a trace's metadata (optionally under a perturbed or shrunk
// fault plan via Scenario::run_plan) and diffs the fresh trace against the
// recording. Components within a round are compared in pipeline order —
// fault actions (the pre-round/post-step causes) before message fates
// (their effects) before the active-set and payload hashes — so the
// reported component is the earliest observable difference in the round
// pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "forensics/trace.hpp"
#include "scenarios/scenarios.hpp"

namespace lft::forensics {

/// The digest component a divergence was localized to, in comparison order.
enum class Component : std::uint8_t {
  kFaultActions,  ///< crash/omission/link/partition/takeover/delay action counts
  kSent,          ///< messages produced this round
  kLostCrash,     ///< messages lost to sender crashes
  kLostFault,     ///< messages lost in transit (omission/partition/link)
  kLostDead,      ///< messages dropped at a crashed/halted receiver
  kDelayed,       ///< messages parked in the due-round delay queue (timing faults)
  kDelivered,     ///< messages that reached an inbox
  kActiveSet,     ///< hash of the stepped active set
  kPayload,       ///< commutative digest of the delivered batch's headers
  kBodies,        ///< store-time hash of the round's sent message bodies
  kRoundCount,    ///< one trace has more rounds than the other
  kFingerprint,   ///< every round matches but the final Report digest differs
  kNone,          ///< no divergence
};

/// Stable lower_snake_case name for a component (used by the CLI, JSON
/// output, and the docs cross-check).
[[nodiscard]] const char* component_name(Component component);

/// The localization result: the first round whose digests differ and the
/// first differing component within it (see Component order). For
/// kRoundCount, `round` is the common prefix length (the first round only
/// one execution reached); -1 only in the no-divergence default.
struct Divergence {
  bool diverged = false;
  Round round = -1;
  Component component = Component::kNone;
  std::uint64_t expected = 0;              ///< the recorded value
  std::uint64_t actual = 0;                ///< the re-executed value
  std::string detail;                      ///< human-readable one-liner
};

/// Compares two traces digest-by-digest; `expected` is the recording,
/// `actual` the re-execution. Metadata is not compared — callers replay on
/// purpose with different thread counts.
[[nodiscard]] Divergence diff(const Trace& expected, const Trace& actual);

/// A freshly recorded execution: the trace (metadata + fingerprint filled
/// in) and the scenario outcome it came from.
struct RecordedRun {
  Trace trace;
  scenarios::ScenarioResult result;
};

/// Runs `scenario` at (seed, n, t) with a recorder attached and returns the
/// complete trace. Negative n/t mean "the registered default".
[[nodiscard]] RecordedRun record(const scenarios::Scenario& scenario, std::uint64_t seed,
                                 int threads, NodeId n = -1, std::int64_t t = -1);

/// Replay outcome: where (if anywhere) the re-execution diverged from the
/// recording, plus the fresh trace and scenario outcome for inspection.
struct ReplayResult {
  Divergence divergence;
  Trace trace;                       ///< the re-executed run's trace
  scenarios::ScenarioResult result;  ///< the re-executed run's outcome
};

/// Re-executes `recorded.meta`'s scenario shape and localizes any
/// divergence. The scenario is looked up by the recorded name; aborts if it
/// is not in the registry (resolve first for graceful CLI errors).
[[nodiscard]] ReplayResult replay(const Trace& recorded, int threads);

/// Replays against an explicit plan instead of the scenario's registered
/// one (the perturbation path: flip one fault event, find the first round
/// where the executions part ways). Requires scenario.run_plan.
[[nodiscard]] ReplayResult replay_plan(const scenarios::Scenario& scenario,
                                       const Trace& recorded, sim::FaultPlan plan,
                                       int threads);

}  // namespace lft::forensics
