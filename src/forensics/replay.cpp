#include "forensics/replay.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace lft::forensics {

namespace {

std::string u64_str(std::uint64_t v) { return std::to_string(v); }

Divergence component_divergence(Round round, Component component, std::uint64_t expected,
                                std::uint64_t actual) {
  Divergence d;
  d.diverged = true;
  d.round = round;
  d.component = component;
  d.expected = expected;
  d.actual = actual;
  d.detail = "round " + std::to_string(round) + ": " + component_name(component) +
             " expected " + u64_str(expected) + ", got " + u64_str(actual);
  return d;
}

/// Compares the six per-class action counters; on a mismatch returns a
/// kFaultActions divergence whose expected/actual are the first differing
/// counter's values and whose detail names the class.
std::optional<Divergence> diff_fault_actions(Round round, const sim::RoundDigest& e,
                                             const sim::RoundDigest& a) {
  const std::pair<const char*, std::pair<std::uint32_t, std::uint32_t>> classes[] = {
      {"crashes", {e.crashes, a.crashes}},
      {"omissions", {e.omissions, a.omissions}},
      {"links", {e.links, a.links}},
      {"partitions", {e.partitions, a.partitions}},
      {"takeovers", {e.takeovers, a.takeovers}},
      {"delays", {e.delays, a.delays}},
  };
  for (const auto& [name, counts] : classes) {
    if (counts.first == counts.second) continue;
    Divergence d =
        component_divergence(round, Component::kFaultActions, counts.first, counts.second);
    d.detail = "round " + std::to_string(round) + ": fault_actions (" + name +
               ") expected " + u64_str(counts.first) + ", got " + u64_str(counts.second);
    return d;
  }
  return std::nullopt;
}

}  // namespace

const char* component_name(Component component) {
  switch (component) {
    case Component::kFaultActions: return "fault_actions";
    case Component::kSent: return "sent";
    case Component::kLostCrash: return "lost_crash";
    case Component::kLostFault: return "lost_fault";
    case Component::kLostDead: return "lost_dead";
    case Component::kDelayed: return "delayed";
    case Component::kDelivered: return "delivered";
    case Component::kActiveSet: return "active_set";
    case Component::kPayload: return "payload";
    case Component::kBodies: return "bodies";
    case Component::kRoundCount: return "round_count";
    case Component::kFingerprint: return "fingerprint";
    case Component::kNone: return "none";
  }
  return "unknown";
}

Divergence diff(const Trace& expected, const Trace& actual) {
  const std::size_t common = std::min(expected.rounds.size(), actual.rounds.size());
  for (std::size_t i = 0; i < common; ++i) {
    const sim::RoundDigest& e = expected.rounds[i];
    const sim::RoundDigest& a = actual.rounds[i];
    const Round round = e.round;
    // Pipeline order: the fault plane acts first each round, then sends are
    // collected and filtered into fates, then the batch lands in inboxes.
    if (auto d = diff_fault_actions(round, e, a)) return *d;
    if (e.sent != a.sent) {
      return component_divergence(round, Component::kSent, e.sent, a.sent);
    }
    if (e.lost_crash != a.lost_crash) {
      return component_divergence(round, Component::kLostCrash, e.lost_crash, a.lost_crash);
    }
    if (e.lost_fault != a.lost_fault) {
      return component_divergence(round, Component::kLostFault, e.lost_fault, a.lost_fault);
    }
    if (e.lost_dead != a.lost_dead) {
      return component_divergence(round, Component::kLostDead, e.lost_dead, a.lost_dead);
    }
    if (e.delayed != a.delayed) {
      return component_divergence(round, Component::kDelayed, e.delayed, a.delayed);
    }
    if (e.delivered != a.delivered) {
      return component_divergence(round, Component::kDelivered, e.delivered, a.delivered);
    }
    if (e.active_hash != a.active_hash) {
      return component_divergence(round, Component::kActiveSet, e.active_hash, a.active_hash);
    }
    if (e.payload_hash != a.payload_hash) {
      return component_divergence(round, Component::kPayload, e.payload_hash, a.payload_hash);
    }
    if (e.body_hash != a.body_hash) {
      return component_divergence(round, Component::kBodies, e.body_hash, a.body_hash);
    }
  }
  if (expected.rounds.size() != actual.rounds.size()) {
    Divergence d = component_divergence(static_cast<Round>(common), Component::kRoundCount,
                                        expected.rounds.size(), actual.rounds.size());
    d.detail = "executions agree through round " + std::to_string(common) +
               " but ran for " + std::to_string(expected.rounds.size()) + " vs " +
               std::to_string(actual.rounds.size()) + " rounds";
    return d;
  }
  if (expected.report_fingerprint != actual.report_fingerprint) {
    // Every per-round digest matched: the difference is confined to Report
    // fields the digests do not cover (e.g. decisions never sent anywhere).
    Divergence d = component_divergence(
        expected.rounds.empty() ? 0 : expected.rounds.back().round, Component::kFingerprint,
        expected.report_fingerprint, actual.report_fingerprint);
    d.detail = "every round digest matches but the final Report fingerprints differ";
    return d;
  }
  return Divergence{};
}

RecordedRun record(const scenarios::Scenario& scenario, std::uint64_t seed, int threads,
                   NodeId n, std::int64_t t) {
  if (n < 0) n = scenario.n;
  if (t < 0) t = n == scenario.n ? scenario.t : scenario.scaled_t(n);
  TraceRecorder recorder;
  RecordedRun run;
  core::RunOptions options;
  options.threads = threads;
  options.trace = &recorder;
  run.result = scenario.run_at(seed, n, t, options);
  run.trace = recorder.take();
  run.trace.meta.scenario = scenario.name;
  run.trace.meta.seed = seed;
  run.trace.meta.n = n;
  run.trace.meta.t = t;
  run.trace.meta.threads = threads;
  run.trace.report_fingerprint = scenarios::fingerprint(run.result.report);
  return run;
}

ReplayResult replay(const Trace& recorded, int threads) {
  const scenarios::Scenario* scenario = scenarios::find_scenario(recorded.meta.scenario);
  LFT_ASSERT_MSG(scenario != nullptr, "replay: trace names an unknown scenario");
  RecordedRun fresh =
      record(*scenario, recorded.meta.seed, threads, recorded.meta.n, recorded.meta.t);
  ReplayResult result;
  result.divergence = diff(recorded, fresh.trace);
  result.trace = std::move(fresh.trace);
  result.result = std::move(fresh.result);
  return result;
}

ReplayResult replay_plan(const scenarios::Scenario& scenario, const Trace& recorded,
                         sim::FaultPlan plan, int threads) {
  LFT_ASSERT_MSG(scenario.run_plan != nullptr,
                 "replay_plan: scenario has no plan-parameterized runner");
  TraceRecorder recorder;
  ReplayResult result;
  core::RunOptions options;
  options.threads = threads;
  options.trace = &recorder;
  result.result = scenario.run_plan(recorded.meta.seed, recorded.meta.n, recorded.meta.t,
                                    std::move(plan), options);
  result.trace = recorder.take();
  result.trace.meta = recorded.meta;
  result.trace.meta.threads = threads;
  result.trace.report_fingerprint = scenarios::fingerprint(result.result.report);
  result.divergence = diff(recorded, result.trace);
  return result;
}

}  // namespace lft::forensics
