// The io_uring implementation of net::Reactor, built on the raw
// io_uring_setup/io_uring_enter syscalls (no liburing). Readiness is
// modeled with oneshot IORING_OP_POLL_ADD requests: every watched fd gets a
// poll SQE, completions are reaped from the CQ ring and dispatched, and the
// fired fds are re-armed on the next wait() — one batched io_uring_enter
// per wait-cycle replaces one epoll_ctl per arm plus one epoll_wait.
// Stale completions (a cancel racing a fired poll, a re-added fd) are
// filtered by a generation tag packed into user_data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/reactor.hpp"

struct io_uring_sqe;  // <linux/io_uring.h>, kept out of this header
struct io_uring_cqe;

namespace lft::net {

class IoUringReactor final : public Reactor {
 public:
  /// Aborts if the kernel refuses the ring — gate construction on
  /// io_uring_available() (make_reactor does).
  IoUringReactor();
  ~IoUringReactor() override;
  IoUringReactor(const IoUringReactor&) = delete;
  IoUringReactor& operator=(const IoUringReactor&) = delete;

  void add(int fd, std::uint32_t events, Callback cb) override;
  void modify(int fd, std::uint32_t events) override;
  void remove(int fd) override;
  int wait(int timeout_ms) override;

  [[nodiscard]] std::size_t watched() const noexcept override {
    return watches_.size();
  }

  [[nodiscard]] const char* name() const noexcept override { return "io_uring"; }

 private:
  struct Watch {
    std::uint32_t events = 0;  // requested mask, EPOLL* bit values
    std::uint32_t gen = 0;     // tag carried in user_data; stale CQEs ignored
    bool armed = false;        // a poll SQE for this generation is in flight
    Callback cb;
  };

  struct Completion {
    std::uint64_t user_data = 0;
    std::int32_t res = 0;
  };

  io_uring_sqe* stage_sqe();
  void stage_poll(int fd, Watch& w);
  void stage_cancel(std::uint64_t target_user_data);
  /// Submits staged SQEs and (with min_complete > 0) blocks in the kernel
  /// until that many CQEs arrive (or the timeout, when supported).
  void enter(unsigned min_complete, int timeout_ms);
  /// Moves posted CQEs off the ring into ready_ without dispatching — safe
  /// to call from enter() under CQ backpressure.
  void collect_cqes();
  /// Dispatches ready_ entries (stale-filtering by generation) and clears it.
  int dispatch_ready();

  int ring_fd_ = -1;
  unsigned features_ = 0;

  // SQ ring mapping
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;

  // CQ ring mapping (aliases sq_ring_ under IORING_FEAT_SINGLE_MMAP)
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  // SQE array mapping
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  unsigned staged_ = 0;  // SQEs appended since the last io_uring_enter

  std::unordered_map<int, Watch> watches_;
  std::vector<Completion> ready_;  // collected, not-yet-dispatched CQEs
  std::vector<int> rearm_;  // fds whose oneshot poll fired (or was never armed)
  std::uint32_t next_gen_ = 1;
};

}  // namespace lft::net
