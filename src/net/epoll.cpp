#include "net/epoll.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>

#include "common/assert.hpp"

namespace lft::net {

namespace {
constexpr int kWaitBatch = 64;
}  // namespace

EpollLoop::EpollLoop() : epoll_fd_(::epoll_create1(0)) {
  LFT_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1() failed");
}

EpollLoop::~EpollLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollLoop::add(int fd, std::uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  LFT_ASSERT_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0, "epoll add failed");
  callbacks_[fd] = std::move(cb);
}

void EpollLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  LFT_ASSERT_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0, "epoll mod failed");
}

void EpollLoop::remove(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EpollLoop::wait(int timeout_ms) {
  int dispatched = 0;
  int wait_ms = timeout_ms;
  for (;;) {
    epoll_event events[kWaitBatch];
    int n = 0;
    do {
      n = ::epoll_wait(epoll_fd_, events, kWaitBatch, wait_ms);
    } while (n < 0 && errno == EINTR);
    LFT_ASSERT_MSG(n >= 0, "epoll_wait failed");
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      // A callback earlier in this batch may have removed this fd.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      // Copy: the callback may remove itself (invalidating the map slot).
      Callback cb = it->second;
      cb(events[i].events);
      ++dispatched;
    }
    // A short batch means the ready list is drained; a full batch may have
    // left ready fds behind, so poll again without blocking.
    if (n < kWaitBatch) break;
    wait_ms = 0;
  }
  return dispatched;
}

}  // namespace lft::net
