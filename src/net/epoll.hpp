// A minimal epoll reactor: register fds with callbacks, dispatch one
// wait-batch at a time. Single-threaded by design — the service server and
// the transport hub both run one reactor on one thread, which is what keeps
// their behavior deterministic enough to twin against the sim engine.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace lft::net {

class EpollLoop {
 public:
  /// Called with the ready event mask (EPOLLIN | EPOLLHUP | ...).
  using Callback = std::function<void(std::uint32_t events)>;

  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Registers `fd` (not owned) for `events` (EPOLLIN etc.).
  void add(int fd, std::uint32_t events, Callback cb);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);

  /// Waits up to `timeout_ms` (-1 blocks) and dispatches every ready
  /// callback once. Returns the number of events dispatched. Callbacks may
  /// add/remove fds, including removing themselves.
  int wait(int timeout_ms);

  [[nodiscard]] std::size_t watched() const noexcept { return callbacks_.size(); }

 private:
  int epoll_fd_ = -1;
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace lft::net
