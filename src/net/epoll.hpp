// The epoll implementation of net::Reactor: register fds with callbacks,
// dispatch one wait-batch at a time. Single-threaded by design — the service
// server and the transport hub both run one reactor on one thread, which is
// what keeps their behavior deterministic enough to twin against the sim
// engine.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/reactor.hpp"

namespace lft::net {

class EpollLoop final : public Reactor {
 public:
  EpollLoop();
  ~EpollLoop() override;
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  void add(int fd, std::uint32_t events, Callback cb) override;
  void modify(int fd, std::uint32_t events) override;
  void remove(int fd) override;

  /// Waits up to `timeout_ms` (-1 blocks) and dispatches every ready
  /// callback once. The ready list is drained fully — when a wait-batch
  /// comes back at capacity, epoll_wait is polled again (timeout 0) until
  /// the batch is short, so a burst of >64 ready sessions can't starve
  /// late-registered fds for a dispatch cycle.
  int wait(int timeout_ms) override;

  [[nodiscard]] std::size_t watched() const noexcept override {
    return callbacks_.size();
  }

  [[nodiscard]] const char* name() const noexcept override { return "epoll"; }

 private:
  int epoll_fd_ = -1;
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace lft::net
