#include "net/iouring.hpp"

#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/epoll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "net/epoll.hpp"

namespace lft::net {

namespace {

constexpr unsigned kEntries = 256;  // SQ slots; CQ defaults to 2x

// user_data for cancel SQEs: never matches a (gen << 32 | fd) watch tag
// because fds are nonnegative.
constexpr std::uint64_t kCancelTag = ~std::uint64_t{0};

// epoll mode bits that poll masks must not carry. Oneshot polls re-armed
// per wait are edge-like already, so dropping EPOLLET/EPOLLONESHOT
// preserves the caller-visible contract.
constexpr std::uint32_t kEpollModeBits =
    (1u << 31) | (1u << 30) | (1u << 29) | (1u << 28);  // ET|ONESHOT|WAKEUP|EXCLUSIVE

std::uint64_t watch_tag(int fd, std::uint32_t gen) {
  return (std::uint64_t{gen} << 32) | static_cast<std::uint32_t>(fd);
}

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

long sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                        unsigned flags, const void* arg, std::size_t argsz) {
  return ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg,
                   argsz);
}

}  // namespace

bool io_uring_available() {
  static const bool available = [] {
    // Kill switch: LFT_IOURING=0 force-disables the backend even when the
    // kernel supports it.
    if (const char* env = std::getenv("LFT_IOURING");
        env != nullptr && std::strcmp(env, "0") == 0) {
      return false;
    }
    io_uring_params params{};
    const int fd = sys_io_uring_setup(8, &params);
    if (fd < 0) return false;
    ::close(fd);
    // NODROP (5.5+) guarantees overflowed CQEs are queued, never dropped —
    // the reactor counts on completions being lossless.
    return (params.features & IORING_FEAT_NODROP) != 0;
  }();
  return available;
}

std::unique_ptr<Reactor> make_reactor(ReactorBackend backend) {
  const bool want_uring =
      backend == ReactorBackend::kAuto || backend == ReactorBackend::kIoUring;
  if (want_uring && io_uring_available()) return std::make_unique<IoUringReactor>();
  return std::make_unique<EpollLoop>();
}

bool parse_backend(std::string_view name, ReactorBackend& out) {
  if (name == "auto") {
    out = ReactorBackend::kAuto;
    return true;
  }
  if (name == "epoll") {
    out = ReactorBackend::kEpoll;
    return true;
  }
  if (name == "io_uring" || name == "iouring") {
    out = ReactorBackend::kIoUring;
    return true;
  }
  return false;
}

IoUringReactor::IoUringReactor() {
  io_uring_params params{};
  ring_fd_ = sys_io_uring_setup(kEntries, &params);
  LFT_ASSERT_MSG(ring_fd_ >= 0,
                 "io_uring_setup failed — gate construction on io_uring_available()");
  features_ = params.features;
  sq_entries_ = params.sq_entries;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  LFT_ASSERT_MSG(sq_ring_ != MAP_FAILED, "io_uring SQ ring mmap failed");
  if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    LFT_ASSERT_MSG(cq_ring_ != MAP_FAILED, "io_uring CQ ring mmap failed");
  }

  auto* sqb = static_cast<unsigned char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sqb + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sqb + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sqb + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sqb + params.sq_off.array);

  auto* cqb = static_cast<unsigned char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cqb + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cqb + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cqb + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cqb + params.cq_off.cqes);

  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_bytes_,
                                            PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                                            IORING_OFF_SQES));
  LFT_ASSERT_MSG(sqes_ != reinterpret_cast<io_uring_sqe*>(MAP_FAILED),
                 "io_uring SQE array mmap failed");
}

IoUringReactor::~IoUringReactor() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_bytes_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);  // in-flight polls die with the ring
}

io_uring_sqe* IoUringReactor::stage_sqe() {
  if (staged_ == sq_entries_) enter(0, 0);  // SQ full: flush a batch early
  const unsigned tail = *sq_tail_;  // single-threaded: we are the only writer
  const unsigned idx = tail & sq_mask_;
  io_uring_sqe* sqe = &sqes_[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[idx] = idx;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  ++staged_;
  return sqe;
}

void IoUringReactor::stage_poll(int fd, Watch& w) {
  io_uring_sqe* sqe = stage_sqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  // Oneshot poll is level-triggered at arm time: an fd with bytes already
  // pending completes on the next enter, so lazily armed watches never miss
  // buffered data.
  sqe->poll32_events = w.events & ~kEpollModeBits;
  sqe->user_data = watch_tag(fd, w.gen);
  w.armed = true;
}

void IoUringReactor::stage_cancel(std::uint64_t target_user_data) {
  io_uring_sqe* sqe = stage_sqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_user_data;
  sqe->user_data = kCancelTag;
}

void IoUringReactor::enter(unsigned min_complete, int timeout_ms) {
  for (;;) {
    long ret = 0;
    if (min_complete > 0 && timeout_ms > 0 &&
        (features_ & IORING_FEAT_EXT_ARG) != 0) {
      __kernel_timespec ts{};
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      ret = sys_io_uring_enter(ring_fd_, staged_, min_complete,
                               IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                               &arg, sizeof(arg));
    } else {
      ret = sys_io_uring_enter(ring_fd_, staged_, min_complete,
                               IORING_ENTER_GETEVENTS, nullptr, 0);
    }
    if (ret >= 0) {
      staged_ -= static_cast<unsigned>(ret);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == ETIME) return;  // bounded wait expired (nothing was staged)
    if (errno == EBUSY || errno == EAGAIN) {
      // CQ backpressure: collect completions (dispatch happens in wait())
      // and retry the submission.
      collect_cqes();
      continue;
    }
    LFT_ASSERT_MSG(false, "io_uring_enter failed");
  }
}

void IoUringReactor::collect_cqes() {
  unsigned head = *cq_head_;  // single-threaded: we are the only reader
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  while (head != tail) {
    const io_uring_cqe& cqe = cqes_[head & cq_mask_];
    ready_.push_back(Completion{cqe.user_data, cqe.res});
    ++head;
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
}

int IoUringReactor::dispatch_ready() {
  int dispatched = 0;
  // Index loop: callbacks may stage SQEs whose flush collects more CQEs
  // into ready_ (and may reallocate it).
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    const Completion c = ready_[i];
    if (c.user_data == kCancelTag) continue;  // cancel SQE's own completion
    const int fd = static_cast<int>(c.user_data & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(c.user_data >> 32);
    const auto it = watches_.find(fd);
    if (it == watches_.end() || it->second.gen != gen) continue;  // stale
    it->second.armed = false;
    if (c.res < 0) {
      // A failed poll with a live generation (not a filtered cancel):
      // surface it once as EPOLLERR and leave the watch un-armed so a
      // broken fd can't spin the re-arm loop.
      Callback cb = it->second.cb;
      cb(EPOLLERR);
      ++dispatched;
      continue;
    }
    rearm_.push_back(fd);
    // Copy: the callback may remove its own watch (invalidating the slot).
    Callback cb = it->second.cb;
    cb(static_cast<std::uint32_t>(c.res));
    ++dispatched;
  }
  ready_.clear();
  return dispatched;
}

void IoUringReactor::add(int fd, std::uint32_t events, Callback cb) {
  Watch& w = watches_[fd];
  w.events = events;
  w.cb = std::move(cb);
  w.gen = next_gen_++;  // orphans any poll in flight for a recycled fd
  w.armed = false;
  rearm_.push_back(fd);
}

void IoUringReactor::modify(int fd, std::uint32_t events) {
  const auto it = watches_.find(fd);
  LFT_ASSERT_MSG(it != watches_.end(), "modify() on unwatched fd");
  Watch& w = it->second;
  w.events = events;
  if (w.armed) {
    // The old-mask poll may complete concurrently; the generation bump
    // stale-filters its CQE either way.
    stage_cancel(watch_tag(fd, w.gen));
    w.gen = next_gen_++;
    w.armed = false;
  }
  rearm_.push_back(fd);
}

void IoUringReactor::remove(int fd) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  if (it->second.armed) stage_cancel(watch_tag(fd, it->second.gen));
  watches_.erase(it);  // rearm_/ready_ leftovers are filtered by lookup
}

int IoUringReactor::wait(int timeout_ms) {
  // Re-arm every watch whose oneshot poll fired since the last wait (or
  // that was just added/modified). Duplicates in rearm_ collapse via the
  // armed flag.
  for (const int fd : rearm_) {
    const auto it = watches_.find(fd);
    if (it == watches_.end() || it->second.armed) continue;
    stage_poll(fd, it->second);
  }
  rearm_.clear();

  // One batched submission; reap whatever already completed.
  enter(0, 0);
  collect_cqes();
  int dispatched = dispatch_ready();
  if (dispatched > 0 || timeout_ms == 0) return dispatched;

  // Nothing ready and the caller wants to block: wait in the kernel for the
  // first completion (bounded by timeout_ms when EXT_ARG is supported; the
  // server only ever blocks unbounded or polls).
  enter(1, timeout_ms);
  collect_cqes();
  return dispatch_ready();
}

}  // namespace lft::net
