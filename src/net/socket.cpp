#include "net/socket.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"

namespace lft::net {

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd listen_tcp(std::uint16_t& port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  LFT_ASSERT_MSG(fd.valid(), "socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  LFT_ASSERT_MSG(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "bind() failed");
  LFT_ASSERT_MSG(::listen(fd.get(), backlog) == 0, "listen() failed");

  socklen_t len = sizeof(addr);
  LFT_ASSERT(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port = ntohs(addr.sin_port);
  return fd;
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  LFT_ASSERT_MSG(fd.valid(), "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Fd{};
  }
  set_nodelay(fd);
  return fd;
}

Fd accept_one(const Fd& listener) {
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd < 0) return Fd{};
  Fd accepted(fd);
  set_nodelay(accepted);
  return accepted;
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2] = {-1, -1};
  LFT_ASSERT_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0, "socketpair() failed");
  return {Fd(fds[0]), Fd(fds[1])};
}

void set_nonblocking(const Fd& fd, bool nonblocking) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  LFT_ASSERT(flags >= 0);
  const int updated = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  LFT_ASSERT(::fcntl(fd.get(), F_SETFL, updated) == 0);
}

void set_nodelay(const Fd& fd) {
  const int one = 1;
  // Fails harmlessly on non-TCP sockets (AF_UNIX pairs).
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool send_all(const Fd& fd, std::span<const std::byte> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t k =
        ::send(fd.get(), bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    sent += static_cast<std::size_t>(k);
  }
  return true;
}

IoResult recv_some(const Fd& fd, std::span<std::byte> buf) {
  for (;;) {
    const ssize_t k = ::recv(fd.get(), buf.data(), buf.size(), MSG_DONTWAIT);
    if (k > 0) return {static_cast<std::size_t>(k), false};
    if (k == 0) return {0, true};  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false};
    return {0, true};
  }
}

IoResult writev_some(const Fd& fd, std::span<const std::byte> a,
                     std::span<const std::byte> b) {
  iovec iov[2];
  int iovcnt = 0;
  if (!a.empty()) {
    iov[iovcnt].iov_base = const_cast<std::byte*>(a.data());
    iov[iovcnt].iov_len = a.size();
    ++iovcnt;
  }
  if (!b.empty()) {
    iov[iovcnt].iov_base = const_cast<std::byte*>(b.data());
    iov[iovcnt].iov_len = b.size();
    ++iovcnt;
  }
  if (iovcnt == 0) return {0, false};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  for (;;) {
    const ssize_t k = ::sendmsg(fd.get(), &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (k >= 0) return {static_cast<std::size_t>(k), false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false};
    return {0, true};
  }
}

bool recv_all(const Fd& fd, std::span<std::byte> bytes) {
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t k = ::recv(fd.get(), bytes.data() + got, bytes.size() - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    got += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace lft::net
