// A growable byte ring buffer for per-session output queues: frames are
// appended at the tail, the kernel drains from the head, and the two
// readable spans (the wrap) map straight onto one writev/sendmsg call.
// Power-of-two capacity; grows by re-linearizing, which only happens while
// a session is backlogged.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

namespace lft::net {

class ByteRing {
 public:
  void append(std::span<const std::byte> bytes) {
    if (bytes.empty()) return;
    reserve(size_ + bytes.size());
    const std::size_t cap = buf_.size();
    const std::size_t tail = (head_ + size_) & (cap - 1);
    const std::size_t first = std::min(bytes.size(), cap - tail);
    std::memcpy(buf_.data() + tail, bytes.data(), first);
    if (first < bytes.size()) {
      std::memcpy(buf_.data(), bytes.data() + first, bytes.size() - first);
    }
    size_ += bytes.size();
  }

  /// The readable bytes as at most two spans (second is the wrapped part);
  /// valid until the next append()/consume().
  [[nodiscard]] std::array<std::span<const std::byte>, 2> readable() const {
    if (size_ == 0) return {};
    const std::size_t cap = buf_.size();
    const std::size_t first = std::min(size_, cap - head_);
    return {std::span<const std::byte>(buf_.data() + head_, first),
            std::span<const std::byte>(buf_.data(), size_ - first)};
  }

  void consume(std::size_t n) {
    head_ = buf_.empty() ? 0 : (head_ + n) & (buf_.size() - 1);
    size_ -= n;
    if (size_ == 0) head_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  void reserve(std::size_t need) {
    if (need <= buf_.size()) return;
    std::size_t cap = buf_.empty() ? 4096 : buf_.size();
    while (cap < need) cap *= 2;
    std::vector<std::byte> grown(cap);
    const auto spans = readable();
    std::size_t at = 0;
    for (const auto& s : spans) {
      if (s.empty()) continue;
      std::memcpy(grown.data() + at, s.data(), s.size());
      at += s.size();
    }
    buf_ = std::move(grown);
    head_ = 0;
  }

  std::vector<std::byte> buf_;  // power-of-two capacity
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lft::net
