// SocketTransport: the live implementation of core::Transport. Every node's
// Program runs on its own replica thread behind an AF_UNIX socketpair and
// speaks a length-prefixed binary protocol (net/frame.hpp + common/codec)
// with the hub: one request frame per round carrying the node's delivered
// batch, one response frame carrying its sends and lifecycle effects. The
// hub assembles responses in ascending node order, so the batch handed back
// to the RoundDriver is byte-identical to LoopbackTransport's — same
// Programs, same Report, same trace digests, different wire.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "net/socket.hpp"
#include "sim/payload.hpp"

namespace lft::net {

class SocketTransport final : public core::Transport {
 public:
  /// Takes ownership of the Programs and spawns one replica thread each.
  explicit SocketTransport(std::vector<std::unique_ptr<core::Program>> programs);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  void step_round(Round round, std::span<const NodeId> active,
                  std::span<const std::span<const sim::Message>> inboxes,
                  std::vector<sim::Message>& outbox,
                  std::span<core::StepResult> results) override;

 private:
  struct Replica {
    Fd hub_end;
    std::thread thread;
  };

  std::vector<Replica> replicas_;
  sim::PayloadArena arena_[2];          // bodies for the round's collected batch
  std::vector<std::byte> request_;      // reused encode buffer
  std::vector<std::byte> response_;     // reused decode buffer
};

}  // namespace lft::net
