// Thin POSIX socket layer for the live transport and the service plane:
// RAII fds, localhost TCP helpers, socketpair endpoints, and whole-buffer
// send/recv loops. Everything here is Linux-flavored (epoll lives next door
// in net/epoll.hpp); SIGPIPE is suppressed per send with MSG_NOSIGNAL.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace lft::net {

/// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 picks a free port); on return `port` holds
/// the actual bound port. Aborts on resource exhaustion (these are
/// fail-fast developer tools, not a hardened server core).
[[nodiscard]] Fd listen_tcp(std::uint16_t& port, int backlog = 64);

/// Blocking connect to 127.0.0.1:`port`; invalid Fd on refusal.
[[nodiscard]] Fd connect_tcp(std::uint16_t port);

/// Accepts one pending connection; invalid Fd if none is pending.
[[nodiscard]] Fd accept_one(const Fd& listener);

/// A connected AF_UNIX stream pair (hub end, replica end).
[[nodiscard]] std::pair<Fd, Fd> socket_pair();

void set_nonblocking(const Fd& fd, bool nonblocking);
/// Disables Nagle on TCP sockets (no-op on AF_UNIX): round-trip latency
/// dominates the lock-step protocol, not throughput.
void set_nodelay(const Fd& fd);

/// Blocking whole-buffer send; returns false when the peer is gone.
[[nodiscard]] bool send_all(const Fd& fd, std::span<const std::byte> bytes);
/// Blocking whole-buffer receive; returns false on EOF or error.
[[nodiscard]] bool recv_all(const Fd& fd, std::span<std::byte> bytes);

/// Result of one nonblocking I/O attempt: `n` bytes moved (0 when the
/// socket would block) or closed/error.
struct IoResult {
  std::size_t n = 0;
  bool closed = false;  // EOF or hard error: drop the connection
};

/// One nonblocking recv into `buf`; n == 0 with !closed means EAGAIN.
[[nodiscard]] IoResult recv_some(const Fd& fd, std::span<std::byte> buf);

/// One nonblocking vectored send of up to two spans (a wrapped ring
/// buffer's readable halves) in a single syscall; may write fewer bytes
/// than offered. SIGPIPE suppressed via MSG_NOSIGNAL.
[[nodiscard]] IoResult writev_some(const Fd& fd, std::span<const std::byte> a,
                                   std::span<const std::byte> b = {});

}  // namespace lft::net
