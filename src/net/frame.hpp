// Length-prefixed framing over stream sockets: every frame is a u32
// little-endian payload length followed by the payload bytes. The parser is
// incremental — feed it whatever the socket produced and drain complete
// frames — so it composes with both blocking reads (replica endpoints) and
// epoll-driven nonblocking reads (the service server and the transport hub).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/socket.hpp"

namespace lft::net {

/// Frames larger than this are treated as protocol corruption (a desynced
/// or malicious peer), not as a request for a 4 GiB allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;  // 64 MiB

/// Appends [u32 len][payload] to `out`.
void append_frame(std::vector<std::byte>& out, std::span<const std::byte> payload);

/// Blocking whole-frame send/receive for lock-step endpoints. recv_frame
/// returns false on EOF, error, or an oversized length prefix.
[[nodiscard]] bool send_frame(const Fd& fd, std::span<const std::byte> payload);
[[nodiscard]] bool recv_frame(const Fd& fd, std::vector<std::byte>& payload);

/// Incremental frame parser for nonblocking streams. Two fill paths:
/// feed() copies bytes in, or writable()/commit() exposes the buffer tail
/// so the socket read lands directly in the parser (one copy fewer on the
/// hot path). Two drain paths: next() copies the payload out, next_view()
/// hands back a view into the buffer.
class FrameParser {
 public:
  /// Appends raw stream bytes to the internal buffer.
  void feed(std::span<const std::byte> bytes);

  /// Direct-fill: returns a writable tail span of at least `min_bytes`
  /// (compacting/growing as needed). Read from the socket into it, then
  /// commit() however many bytes actually arrived. Invalidates next_view()
  /// spans.
  [[nodiscard]] std::span<std::byte> writable(std::size_t min_bytes);
  void commit(std::size_t n);

  /// Copies the next complete frame's payload into `payload` and consumes
  /// it; false when no complete frame is buffered.
  [[nodiscard]] bool next(std::vector<std::byte>& payload);

  /// Zero-copy variant: `payload` views the internal buffer and stays
  /// valid until the next feed()/writable() call.
  [[nodiscard]] bool next_view(std::span<const std::byte>& payload);

  /// True when the buffered length prefix exceeds kMaxFrameBytes: the
  /// stream is desynced and the connection should be dropped.
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

  [[nodiscard]] std::size_t buffered() const noexcept { return end_ - pos_; }

 private:
  void compact_or_grow(std::size_t tail_needed);
  [[nodiscard]] bool frame_ready(std::uint32_t& len);

  // Manual size/capacity management: the vector's size would have to be
  // extended (zero-filling the tail) before every direct socket read, so
  // the valid region is tracked explicitly instead.
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  std::size_t end_ = 0;  // valid bytes: buf_[pos_, end_)
  bool corrupt_ = false;
};

}  // namespace lft::net
