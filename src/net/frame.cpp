#include "net/frame.hpp"

#include <cstring>

namespace lft::net {

namespace {

std::uint32_t read_len(const std::byte* p) {
  std::uint32_t len = 0;
  std::memcpy(&len, p, sizeof(len));
  return len;  // little-endian hosts only, like common/codec
}

}  // namespace

void append_frame(std::vector<std::byte>& out, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const auto* p = reinterpret_cast<const std::byte*>(&len);
  out.insert(out.end(), p, p + sizeof(len));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool send_frame(const Fd& fd, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::byte prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  return send_all(fd, std::span<const std::byte>(prefix, sizeof(len))) &&
         send_all(fd, payload);
}

bool recv_frame(const Fd& fd, std::vector<std::byte>& payload) {
  std::byte prefix[sizeof(std::uint32_t)];
  if (!recv_all(fd, std::span<std::byte>(prefix, sizeof(prefix)))) return false;
  const std::uint32_t len = read_len(prefix);
  if (len > kMaxFrameBytes) return false;
  payload.resize(len);
  return len == 0 || recv_all(fd, std::span<std::byte>(payload.data(), len));
}

void FrameParser::feed(std::span<const std::byte> bytes) {
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // linear without re-copying on every frame.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

bool FrameParser::next(std::vector<std::byte>& payload) {
  if (corrupt_) return false;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < sizeof(std::uint32_t)) return false;
  const std::uint32_t len = read_len(buf_.data() + pos_);
  if (len > kMaxFrameBytes) {
    corrupt_ = true;
    return false;
  }
  if (avail < sizeof(std::uint32_t) + len) return false;
  payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + sizeof(std::uint32_t)),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + sizeof(std::uint32_t) + len));
  pos_ += sizeof(std::uint32_t) + len;
  return true;
}

}  // namespace lft::net
