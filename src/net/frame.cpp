#include "net/frame.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace lft::net {

namespace {

std::uint32_t read_len(const std::byte* p) {
  std::uint32_t len = 0;
  std::memcpy(&len, p, sizeof(len));
  return len;  // little-endian hosts only, like common/codec
}

}  // namespace

void append_frame(std::vector<std::byte>& out, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const auto* p = reinterpret_cast<const std::byte*>(&len);
  out.insert(out.end(), p, p + sizeof(len));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool send_frame(const Fd& fd, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::byte prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  return send_all(fd, std::span<const std::byte>(prefix, sizeof(len))) &&
         send_all(fd, payload);
}

bool recv_frame(const Fd& fd, std::vector<std::byte>& payload) {
  std::byte prefix[sizeof(std::uint32_t)];
  if (!recv_all(fd, std::span<std::byte>(prefix, sizeof(prefix)))) return false;
  const std::uint32_t len = read_len(prefix);
  if (len > kMaxFrameBytes) return false;
  payload.resize(len);
  return len == 0 || recv_all(fd, std::span<std::byte>(payload.data(), len));
}

void FrameParser::compact_or_grow(std::size_t tail_needed) {
  // Compact once the consumed prefix dominates, keeping fills amortized
  // linear without re-copying on every frame.
  if (pos_ > 0 && (pos_ >= end_ - pos_ || buf_.size() - end_ < tail_needed)) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (buf_.size() - end_ < tail_needed) {
    buf_.resize(std::max(buf_.size() * 2, end_ + tail_needed));
  }
}

void FrameParser::feed(std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  compact_or_grow(bytes.size());
  std::memcpy(buf_.data() + end_, bytes.data(), bytes.size());
  end_ += bytes.size();
}

std::span<std::byte> FrameParser::writable(std::size_t min_bytes) {
  compact_or_grow(min_bytes);
  return {buf_.data() + end_, buf_.size() - end_};
}

void FrameParser::commit(std::size_t n) {
  end_ += n;
  LFT_ASSERT_MSG(end_ <= buf_.size(), "commit() past the writable() span");
}

bool FrameParser::frame_ready(std::uint32_t& len) {
  if (corrupt_) return false;
  const std::size_t avail = end_ - pos_;
  if (avail < sizeof(std::uint32_t)) return false;
  len = read_len(buf_.data() + pos_);
  if (len > kMaxFrameBytes) {
    corrupt_ = true;
    return false;
  }
  return avail >= sizeof(std::uint32_t) + len;
}

bool FrameParser::next(std::vector<std::byte>& payload) {
  std::uint32_t len = 0;
  if (!frame_ready(len)) return false;
  const std::byte* body = buf_.data() + pos_ + sizeof(std::uint32_t);
  payload.assign(body, body + len);
  pos_ += sizeof(std::uint32_t) + len;
  return true;
}

bool FrameParser::next_view(std::span<const std::byte>& payload) {
  std::uint32_t len = 0;
  if (!frame_ready(len)) return false;
  payload = {buf_.data() + pos_ + sizeof(std::uint32_t), len};
  pos_ += sizeof(std::uint32_t) + len;
  return true;
}

}  // namespace lft::net
