// The reactor seam: readiness multiplexing behind one interface so the
// service server (and anything else that watches fds) runs unchanged over
// either backend. Two implementations exist — the epoll reactor
// (net/epoll.hpp) and a liburing-free io_uring reactor (net/iouring.hpp)
// that batches poll submissions through raw io_uring_setup/io_uring_enter
// syscalls. Event masks use the EPOLL* constants in both cases (poll and
// epoll share bit values for IN/OUT/ERR/HUP/RDHUP); mode bits like EPOLLET
// are honored by epoll and harmlessly stripped by io_uring, whose oneshot
// re-arm discipline is edge-like by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

namespace lft::net {

/// Single-threaded readiness reactor: register fds with callbacks, dispatch
/// one wait-batch at a time.
class Reactor {
 public:
  /// Called with the ready event mask (EPOLLIN | EPOLLHUP | ...).
  using Callback = std::function<void(std::uint32_t events)>;

  virtual ~Reactor() = default;

  /// Registers `fd` (not owned) for `events` (EPOLLIN etc.).
  virtual void add(int fd, std::uint32_t events, Callback cb) = 0;
  virtual void modify(int fd, std::uint32_t events) = 0;
  virtual void remove(int fd) = 0;

  /// Waits up to `timeout_ms` (-1 blocks, 0 polls) and dispatches every
  /// ready callback once. Returns the number of callbacks dispatched.
  /// Callbacks may add/remove fds, including removing themselves.
  virtual int wait(int timeout_ms) = 0;

  [[nodiscard]] virtual std::size_t watched() const noexcept = 0;

  /// Backend identifier: "epoll" or "io_uring".
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

enum class ReactorBackend {
  kAuto,     // io_uring when the kernel supports it, else epoll
  kEpoll,    // always epoll
  kIoUring,  // io_uring if available, graceful fallback to epoll
};

/// Runtime probe: true when the kernel accepts io_uring_setup with the
/// features this reactor needs (NODROP). Cached after the first call.
/// `LFT_IOURING=0` in the environment force-disables it (kill switch).
[[nodiscard]] bool io_uring_available();

/// Builds the requested reactor. kAuto and kIoUring degrade to epoll when
/// io_uring_available() is false — callers can check `name()` to see which
/// backend actually serves.
[[nodiscard]] std::unique_ptr<Reactor> make_reactor(
    ReactorBackend backend = ReactorBackend::kAuto);

/// Parses "auto" | "epoll" | "io_uring"; false on anything else.
[[nodiscard]] bool parse_backend(std::string_view name, ReactorBackend& out);

}  // namespace lft::net
