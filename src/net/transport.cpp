#include "net/transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "net/frame.hpp"

namespace lft::net {

namespace {

// Round request:  [u64 round][u32 count][count x message]
// Round response: [u64 round][u8 decided][u64 decision][u8 halted]
//                 [u64 wake_at + 1][u64 fallback_pulls][u32 count][messages]
// Shutdown: an empty request payload.

void put_message(ByteWriter& w, const sim::Message& m) {
  w.put_u32(static_cast<std::uint32_t>(m.from));
  w.put_u32(static_cast<std::uint32_t>(m.to));
  w.put_u32(m.tag);
  w.put_u64(m.value);
  w.put_u64(m.bits);
  w.put_u32(m.body_len);
  if (m.body_len != 0) w.put_bytes(m.body());
}

/// Decodes one message; bodies view `reader`'s backing buffer.
[[nodiscard]] bool get_message(ByteReader& reader, sim::Message& m) {
  const auto from = reader.get_u32();
  const auto to = reader.get_u32();
  const auto tag = reader.get_u32();
  const auto value = reader.get_u64();
  const auto bits = reader.get_u64();
  const auto body_len = reader.get_u32();
  if (!from || !to || !tag || !value || !bits || !body_len) return false;
  m = sim::Message{};
  m.from = static_cast<NodeId>(*from);
  m.to = static_cast<NodeId>(*to);
  m.tag = *tag;
  m.value = *value;
  m.bits = *bits;
  if (*body_len != 0) {
    const auto body = reader.get_bytes(*body_len);
    if (!body) return false;
    m.set_body(*body);
  }
  return true;
}

/// The replica thread: one Program behind one socketpair end, stepped by
/// round frames until the hub sends the empty shutdown frame.
void replica_main(Fd fd, std::unique_ptr<core::Program> program, NodeId self) {
  std::vector<std::byte> payload;
  std::vector<sim::Message> inbox;
  std::vector<sim::Message> outbox;
  sim::PayloadArena arena;  // single-buffered: bodies only live until encode
  std::vector<std::byte> scratch;
  for (;;) {
    if (!recv_frame(fd, payload) || payload.empty()) return;
    ByteReader reader(payload);
    const auto round_word = reader.get_u64();
    const auto count = reader.get_u32();
    LFT_ASSERT_MSG(round_word && count, "replica: malformed round frame");
    inbox.clear();
    inbox.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      sim::Message m;
      LFT_ASSERT_MSG(get_message(reader, m), "replica: malformed message");
      inbox.push_back(m);
    }

    outbox.clear();
    arena.clear();
    core::StepResult result;
    core::BatchIo io(self, arena, outbox, result);
    program->run_round(static_cast<Round>(*round_word), inbox, io);

    ByteWriter writer(scratch);
    writer.put_u64(*round_word);
    writer.put_u8(result.decided ? 1 : 0);
    writer.put_u64(result.decision);
    writer.put_u8(result.halted ? 1 : 0);
    writer.put_u64(static_cast<std::uint64_t>(result.wake_at + 1));
    writer.put_u64(static_cast<std::uint64_t>(result.fallback_pulls));
    writer.put_u32(static_cast<std::uint32_t>(outbox.size()));
    for (const sim::Message& m : outbox) put_message(writer, m);
    if (!send_frame(fd, writer.view())) return;
  }
}

}  // namespace

SocketTransport::SocketTransport(std::vector<std::unique_ptr<core::Program>> programs) {
  replicas_.reserve(programs.size());
  for (std::size_t v = 0; v < programs.size(); ++v) {
    auto [hub_end, replica_end] = socket_pair();
    Replica r;
    r.hub_end = std::move(hub_end);
    r.thread = std::thread(replica_main, std::move(replica_end), std::move(programs[v]),
                           static_cast<NodeId>(v));
    replicas_.push_back(std::move(r));
  }
}

SocketTransport::~SocketTransport() {
  for (auto& r : replicas_) {
    (void)send_frame(r.hub_end, {});  // empty frame = shutdown
  }
  for (auto& r : replicas_) {
    if (r.thread.joinable()) r.thread.join();
  }
}

void SocketTransport::step_round(Round round, std::span<const NodeId> active,
                                 std::span<const std::span<const sim::Message>> inboxes,
                                 std::vector<sim::Message>& outbox,
                                 std::span<core::StepResult> results) {
  // Phase 1: ship every active node its round frame. Strict lock-step makes
  // blocking sends deadlock-free: every replica is parked in recv_frame
  // (its previous response was fully consumed last round), so it drains.
  for (std::size_t i = 0; i < active.size(); ++i) {
    ByteWriter writer(request_);
    writer.put_u64(static_cast<std::uint64_t>(round));
    writer.put_u32(static_cast<std::uint32_t>(inboxes[i].size()));
    for (const sim::Message& m : inboxes[i]) put_message(writer, m);
    LFT_ASSERT_MSG(send_frame(replicas_[static_cast<std::size_t>(active[i])].hub_end,
                              writer.view()),
                   "transport: replica hung up");
  }

  // Phase 2: collect responses in ascending node order — replicas compute
  // concurrently regardless of read order, and ascending assembly is what
  // reproduces the engine's ascending-sender batch shape bit for bit.
  sim::PayloadArena& arena = arena_[static_cast<std::size_t>(round) & 1];
  arena.clear();
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Fd& fd = replicas_[static_cast<std::size_t>(active[i])].hub_end;
    LFT_ASSERT_MSG(recv_frame(fd, response_) && !response_.empty(),
                   "transport: replica died mid-round");
    ByteReader reader(response_);
    const auto round_word = reader.get_u64();
    LFT_ASSERT_MSG(round_word &&
                       static_cast<Round>(*round_word) == round,
                   "transport: response round mismatch");
    const auto decided = reader.get_u8();
    const auto decision = reader.get_u64();
    const auto halted = reader.get_u8();
    const auto wake_word = reader.get_u64();
    const auto pulls = reader.get_u64();
    const auto count = reader.get_u32();
    LFT_ASSERT_MSG(decided && decision && halted && wake_word && pulls && count,
                   "transport: malformed response");
    core::StepResult& r = results[i];
    r.decided = *decided != 0;
    r.decision = *decision;
    r.halted = *halted != 0;
    r.wake_at = static_cast<Round>(*wake_word) - 1;
    r.fallback_pulls = static_cast<std::int64_t>(*pulls);
    for (std::uint32_t k = 0; k < *count; ++k) {
      sim::Message m;
      LFT_ASSERT_MSG(get_message(reader, m), "transport: malformed response message");
      // Re-home the body: the decode buffer is reused for the next replica,
      // but the batch must survive until the next step_round returns.
      if (m.has_body()) m.set_body(arena.store(m.body()));
      outbox.push_back(m);
    }
  }
}

}  // namespace lft::net
