#include "crypto/auth.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace lft::crypto {

Digest digest_bytes(std::span<const std::byte> bytes) noexcept { return hash_bytes(bytes); }

Digest digest_words(std::span<const std::uint64_t> words) noexcept {
  return hash_words(words);
}

Signature Signer::sign(Digest digest) const noexcept {
  return Signature{id_, hash_combine(secret_, digest)};
}

std::uint64_t KeyRegistry::secret_of(NodeId v) const noexcept {
  return hash_combine(mix64(seed_ ^ 0x5349474e4b455953ULL),  // "SIGNKEYS"
                      static_cast<std::uint64_t>(v));
}

Signer KeyRegistry::signer_for(NodeId v) const noexcept {
  LFT_ASSERT(v >= 0 && v < n_);
  return Signer(v, secret_of(v));
}

bool KeyRegistry::verify(const Signature& sig, Digest digest) const noexcept {
  if (sig.signer < 0 || sig.signer >= n_) return false;
  return sig.tag == hash_combine(secret_of(sig.signer), digest);
}

}  // namespace lft::crypto
