// Authentication substrate for the authenticated-Byzantine model (Section 7).
// The paper assumes unforgeable signatures: "a node faulty in the
// authenticated Byzantine sense may undergo arbitrary state transitions but
// it cannot forge messages claiming that they are forwarded from other
// nodes". We realize this with a keyed-hash MAC scheme: each node's secret
// lives only inside its Signer (handed out once by the KeyRegistry), and
// Byzantine behaviors receive only their own Signer, so forging another
// node's signature requires guessing a 64-bit tag — impossible by
// construction within the simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace lft::crypto {

/// 64-bit content digest.
using Digest = std::uint64_t;

[[nodiscard]] Digest digest_bytes(std::span<const std::byte> bytes) noexcept;
[[nodiscard]] Digest digest_words(std::span<const std::uint64_t> words) noexcept;

struct Signature {
  NodeId signer = kNoNode;
  std::uint64_t tag = 0;

  friend bool operator==(const Signature&, const Signature&) = default;
};

class KeyRegistry;

/// Signing capability of a single node. Only obtainable from the registry.
class Signer {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Signature sign(Digest digest) const noexcept;

 private:
  friend class KeyRegistry;
  Signer(NodeId id, std::uint64_t secret) noexcept : id_(id), secret_(secret) {}
  NodeId id_;
  std::uint64_t secret_;
};

/// Trusted key-distribution and verification authority (the PKI the
/// authenticated model presumes). Deterministic in (n, seed).
class KeyRegistry {
 public:
  KeyRegistry(NodeId n, std::uint64_t seed) noexcept : n_(n), seed_(seed) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

  /// Hands out node v's signer; call once per node when wiring processes.
  [[nodiscard]] Signer signer_for(NodeId v) const noexcept;

  /// Verifies that `sig` is node sig.signer's authentic signature on digest.
  [[nodiscard]] bool verify(const Signature& sig, Digest digest) const noexcept;

 private:
  [[nodiscard]] std::uint64_t secret_of(NodeId v) const noexcept;
  NodeId n_;
  std::uint64_t seed_;
};

}  // namespace lft::crypto
