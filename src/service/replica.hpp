// ReplicaGroup: the service's replication core. Each committed batch runs
// one consensus slot (service/ordering.hpp) over a live Transport —
// LoopbackTransport inline, or net::SocketTransport across replica threads —
// and is then applied to every replica's StateMachine; the group asserts all
// replicas applied identically (equal log digests) before acknowledging.
// When `trace_path` is set, the first slot records its per-round digests and
// saves an LFTTRACE file that `lft_forensics replay` re-executes under the
// engine: the live service's black box recorder.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "service/ordering.hpp"
#include "service/state_machine.hpp"

namespace lft::service {

struct ReplicaGroupOptions {
  NodeId n = kDefaultGroupSize;
  std::int64_t t = kDefaultFaultBudget;
  /// false: slot Programs run inline (LoopbackTransport); true: each replica
  /// runs on its own thread behind a socketpair (net::SocketTransport).
  bool use_sockets = false;
  /// When non-empty, the first slot's execution is recorded and saved here
  /// as an LFTTRACE frame replayable by `lft_forensics replay`.
  std::string trace_path;
};

/// Outcome of one committed batch.
struct CommitResult {
  std::vector<Applied> applied;    ///< per command, in batch order
  Round slot_rounds = 0;           ///< rounds the consensus slot took
  std::int64_t slot_messages = 0;  ///< messages the slot exchanged
};

class ReplicaGroup {
 public:
  explicit ReplicaGroup(ReplicaGroupOptions options = {});

  /// Orders `batch` through one consensus slot and applies it to all n
  /// replicas. Aborts (assert) if the slot fails to commit or any replica's
  /// log digest diverges — either means the replication core is broken.
  CommitResult commit(std::span<const Command> batch);

  /// Replica 0's state machine (identical to every other replica's).
  [[nodiscard]] const StateMachine& machine() const noexcept { return machines_[0]; }
  [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }
  [[nodiscard]] NodeId n() const noexcept { return options_.n; }
  [[nodiscard]] bool trace_saved() const noexcept { return trace_saved_; }

 private:
  ReplicaGroupOptions options_;
  std::vector<StateMachine> machines_;
  std::uint64_t slots_ = 0;
  bool trace_saved_ = false;
};

}  // namespace lft::service
