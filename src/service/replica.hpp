// ReplicaGroup: the service's replication core. Each committed batch runs
// one consensus slot (service/ordering.hpp) over a live Transport —
// LoopbackTransport inline, or net::SocketTransport across replica threads —
// and is then applied to every replica's StateMachine; the group asserts all
// replicas applied identically (equal log digests) before acknowledging.
//
// Slots run through a pipeline of depth D (ReplicaGroupOptions::pipeline):
// enqueue() admits a batch while earlier slots are still running their
// consensus rounds, step() advances every in-flight slot one lock-step
// round, and take_head() retires slots strictly in enqueue order — the
// cross-slot total order is the FIFO, so pipelining changes throughput, not
// the log. Slot contexts (Programs + transport + driver scratch) are pooled
// and reset between slots instead of reconstructed.
//
// When `trace_path` is set, the first slot's execution is recorded and saved
// as an LFTTRACE file that `lft_forensics replay` re-executes under the
// engine: the live service's black box recorder.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "service/ordering.hpp"
#include "service/state_machine.hpp"

namespace lft::service {

struct ReplicaGroupOptions {
  NodeId n = kDefaultGroupSize;
  std::int64_t t = kDefaultFaultBudget;
  /// false: slot Programs run inline (LoopbackTransport); true: each replica
  /// runs on its own thread behind a socketpair (net::SocketTransport).
  bool use_sockets = false;
  /// When non-empty, the first slot's execution is recorded and saved here
  /// as an LFTTRACE frame replayable by `lft_forensics replay`.
  std::string trace_path;
  /// Slot pipeline depth D: how many consensus slots may be in flight at
  /// once. 1 reproduces the strictly serial commit path.
  int pipeline = 1;
};

/// Outcome of one committed batch.
struct CommitResult {
  std::vector<Applied> applied;    ///< per command, in batch order
  Round slot_rounds = 0;           ///< rounds the consensus slot took
  std::int64_t slot_messages = 0;  ///< messages the slot exchanged
  std::uint64_t slot_fingerprint = 0;  ///< the slot Report's fingerprint
};

class ReplicaGroup {
 public:
  explicit ReplicaGroup(ReplicaGroupOptions options = {});
  ~ReplicaGroup();

  /// Synchronous path: orders `batch` through one consensus slot and applies
  /// it to all n replicas. Requires an idle pipeline (no slots in flight).
  /// Aborts (assert) if the slot fails to commit or any replica's log digest
  /// diverges — either means the replication core is broken.
  CommitResult commit(std::span<const Command> batch);

  // --- pipelined interface -------------------------------------------------
  // The server overlaps consensus with I/O: enqueue batches while the
  // pipeline has room, step() between reactor polls, retire finished heads.

  [[nodiscard]] bool can_enqueue() const noexcept {
    return live_.size() < static_cast<std::size_t>(depth());
  }
  /// Admits `batch` as the next slot (FIFO). Asserts can_enqueue().
  void enqueue(std::vector<Command> batch);
  /// Advances every in-flight slot one consensus round.
  void step();
  /// True when the oldest in-flight slot has finished its consensus rounds.
  [[nodiscard]] bool head_ready() const noexcept;
  /// Retires the oldest slot: asserts it committed, applies its batch to
  /// every replica, returns the result. Slots retire strictly in enqueue
  /// order — only the head is ever accessible.
  [[nodiscard]] CommitResult take_head();
  [[nodiscard]] std::size_t in_flight() const noexcept { return live_.size(); }
  [[nodiscard]] int depth() const noexcept {
    return options_.pipeline < 1 ? 1 : options_.pipeline;
  }

  /// Replica 0's state machine (identical to every other replica's).
  [[nodiscard]] const StateMachine& machine() const noexcept { return machines_[0]; }
  [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }
  [[nodiscard]] NodeId n() const noexcept { return options_.n; }
  [[nodiscard]] bool trace_saved() const noexcept { return trace_saved_; }

 private:
  struct Slot;

  std::unique_ptr<Slot> acquire_slot();

  ReplicaGroupOptions options_;
  std::vector<StateMachine> machines_;
  std::deque<std::unique_ptr<Slot>> live_;   // FIFO: front is the oldest slot
  std::vector<std::unique_ptr<Slot>> pool_;  // finished contexts, ready to reset
  std::uint64_t slots_ = 0;
  bool trace_saved_ = false;
  bool trace_pending_ = false;  // a recording slot is in flight
};

}  // namespace lft::service
