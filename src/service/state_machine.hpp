// The replicated state machine: an append-only command log with per-client
// request deduplication and a chained digest. Every replica applies the
// same committed batches in the same order, so equal digests across the
// group certify byte-identical logs — the service's linearizability anchor.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace lft::service {

/// One client request: (client_id, request_id) identifies it for dedup,
/// `payload` is the opaque command body the service totally orders.
struct Command {
  std::uint64_t client_id = 0;
  std::uint64_t request_id = 0;
  std::vector<std::byte> payload;
};

/// Result of applying one command.
struct Applied {
  std::uint64_t index = 0;  ///< log index the command lives at
  bool duplicate = false;   ///< replayed request: nothing was appended
};

class StateMachine {
 public:
  /// Appends `cmd` unless (client_id, request_id) was already applied.
  /// Dedup window is one request per client — the at-most-once contract a
  /// client with one outstanding request per connection needs: a replayed
  /// request_id equal to the client's last one returns the original index;
  /// an older one is dropped as a stale duplicate.
  Applied apply(const Command& cmd);

  [[nodiscard]] std::uint64_t size() const noexcept { return log_.size(); }
  [[nodiscard]] const Command& entry(std::uint64_t index) const { return log_[index]; }

  /// Chained digest over every applied command, in order: replicas with
  /// equal digests hold byte-identical logs.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// The last request this client had applied (0 if none) — what kWelcome
  /// reports so a reconnecting client knows where it left off.
  [[nodiscard]] std::uint64_t last_request_of(std::uint64_t client_id) const;

 private:
  struct ClientMark {
    std::uint64_t request_id = 0;
    std::uint64_t index = 0;
  };
  std::vector<Command> log_;
  std::unordered_map<std::uint64_t, ClientMark> latest_;
  std::uint64_t digest_ = 0x4c46545345525645ULL;  // "LFTSERVE"
};

}  // namespace lft::service
