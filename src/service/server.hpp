// lft_serve's server: a single-threaded reactor (net::Reactor — epoll or
// io_uring) multiplexing client sessions over TCP, group-committing
// proposals through the ReplicaGroup's slot pipeline. Proposals that arrive
// while the pipeline has room ride the next consensus slot (one slot per
// dispatch batch, not per request); while a slot's acks are being flushed,
// the next slot is already running its consensus rounds. Sessions are
// nonblocking and edge-triggered: input lands directly in each session's
// FrameParser, output coalesces into a per-session ring buffer flushed with
// one vectored write (EPOLLOUT re-arms on partial writes), and a bounded
// pending-proposal queue pauses sessions when the service falls behind —
// the wire protocol is src/service/wire.hpp over net/frame.hpp frames.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/reactor.hpp"
#include "net/ring.hpp"
#include "net/socket.hpp"
#include "obs/obs.hpp"
#include "service/replica.hpp"

namespace lft::service {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 picks a free port; see Server::port()
  NodeId n = kDefaultGroupSize;
  std::int64_t t = kDefaultFaultBudget;
  /// Replica Programs behind socketpair threads (net::SocketTransport)
  /// instead of inline (core::LoopbackTransport).
  bool use_sockets = false;
  /// Honor kShutdown frames (tests and benches stop the server this way).
  bool allow_shutdown = true;
  /// When set, the first commit slot is recorded as an LFTTRACE file.
  std::string trace_path;
  /// Readiness backend; kAuto picks io_uring when the kernel supports it.
  net::ReactorBackend backend = net::ReactorBackend::kAuto;
  /// Slot pipeline depth D (ReplicaGroupOptions::pipeline).
  int pipeline = 4;
  /// Backpressure bound: once this many proposals are queued ahead of the
  /// pipeline, proposing sessions are paused (their bytes stay in the
  /// kernel socket buffer) until the pipeline catches up.
  std::size_t max_pending = 16384;
  /// When set, the server periodically writes its telemetry snapshot to
  /// this path (overwritten in place): JSON rows for a `.json` path,
  /// Prometheus text exposition otherwise. A final dump happens at
  /// shutdown. An idle server wakes every interval to stay current.
  std::string stats_dump_path;
  std::int64_t stats_dump_interval_ms = 1000;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// The bound port (useful with options.port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves until a kShutdown frame arrives (allow_shutdown) — the reactor
  /// loop, typically run on its own thread by tests and lft_serve.
  void run();

  [[nodiscard]] const ReplicaGroup& group() const noexcept { return group_; }

  /// The readiness backend actually serving ("epoll" or "io_uring") — kAuto
  /// and kIoUring degrade to epoll on kernels without io_uring.
  [[nodiscard]] const char* backend() const noexcept { return reactor_->name(); }

  struct Stats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t proposals = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t commit_batches = 0;
    std::uint64_t commit_entries = 0;
    std::uint64_t session_pauses = 0;  ///< backpressure activations
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The telemetry registry's snapshot plus the Stats counters as
  /// `lft_service_*_total` rows — what a kStatsReply frame carries and what
  /// --stats-dump writes. See docs/observability.md for the catalogue.
  [[nodiscard]] obs::Snapshot telemetry() const;

 private:
  struct Session {
    net::Fd fd;
    net::FrameParser parser;
    net::ByteRing out;
    std::uint64_t client_id = 0;
    bool hello_done = false;
    bool subscribed = false;
    bool want_write = false;  ///< EPOLLOUT armed (ring flushed partially)
    bool paused = false;      ///< backpressure: input processing suspended
    bool dirty = false;       ///< queued output not yet offered to the kernel
    std::uint64_t next_commit_index = 0;  ///< subscription push cursor
    std::uint64_t paused_at_ns = 0;       ///< backpressure pause start (telemetry)
  };
  struct Pending {
    int fd = -1;  ///< proposer's session (may have closed by commit time)
    std::uint64_t arrival_ns = 0;  ///< frame-arrival stamp (request latency)
    Command cmd;
  };
  /// What retire_head() needs to ack a command — the payload itself moved
  /// into the slot's batch.
  struct PendingMeta {
    int fd = -1;
    std::uint64_t request_id = 0;
    std::uint64_t arrival_ns = 0;
  };

  void accept_ready();
  void session_event(int fd, std::uint32_t events);
  void session_readable(int fd);
  /// Drains parsed frames; false when the session was dropped.
  [[nodiscard]] bool process_frames(int fd, Session& session);
  void handle_frame(Session& session, std::span<const std::byte> payload);
  /// Overlap engine: admit pending batches, advance in-flight slots one
  /// round, retire finished heads, resume paused sessions, flush output.
  void pump();
  void enqueue_batch();
  void retire_head();
  void resume_paused();
  void drain_shutdown();
  void push_commits(Session& session);
  void pause(int fd, Session& session);
  void drop_session(int fd);
  void queue_frame(int fd, Session& session, std::span<const std::byte> payload);
  void queue_error(int fd, Session& session, const std::string& message);
  void flush_session(int fd);
  void flush_dirty();
  void resume_session(Session& session);
  void write_stats_dump() const;

  /// Hot-path instrument handles, resolved once at construction so no
  /// record ever looks a metric up by name.
  struct Instruments {
    explicit Instruments(obs::Registry& registry);
    obs::Histogram& request_ns;       ///< kPropose arrival -> ack enqueue
    obs::Histogram& pump_enqueue_ns;  ///< pump phase timings
    obs::Histogram& pump_step_ns;
    obs::Histogram& pump_retire_ns;
    obs::Histogram& pump_flush_ns;
    obs::Histogram& pipeline_depth;   ///< slots in flight, sampled per pump
    obs::Histogram& pause_ns;         ///< backpressure pause durations
    obs::Histogram& reactor_wait_ns;  ///< time inside Reactor::wait
    obs::Histogram& reactor_batch;    ///< callbacks dispatched per wait
    obs::Gauge& ring_high_water;      ///< max queued output bytes, any session
    obs::Counter& stats_requests;     ///< kStatsRequest frames served
  };

  ServerOptions options_;
  ReplicaGroup group_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<net::Reactor> reactor_;
  std::unordered_map<int, Session> sessions_;
  std::vector<Pending> pending_;                  // waiting for a pipeline slot
  std::deque<std::vector<PendingMeta>> inflight_;  // parallel to the group's slots
  std::vector<int> paused_;  // sessions suspended by backpressure
  std::vector<int> dirty_;   // sessions with queued output to flush
  std::vector<std::byte> scratch_;  ///< reused frame encode buffer
  Stats stats_;
  obs::Registry registry_;  ///< single-writer: the reactor thread
  Instruments obs_;         ///< references into registry_ (declared after it)
  bool stop_ = false;
};

}  // namespace lft::service
