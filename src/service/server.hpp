// lft_serve's server: a single-threaded epoll reactor multiplexing client
// sessions over TCP, group-committing proposals through the ReplicaGroup.
// All proposals that arrive within one epoll dispatch batch ride the same
// consensus slot (one slot per batch, not per request), then each proposer
// gets its kAck and every subscriber the new kCommit entries — the wire
// protocol is src/service/wire.hpp over net/frame.hpp frames.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/epoll.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/replica.hpp"

namespace lft::service {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 picks a free port; see Server::port()
  NodeId n = kDefaultGroupSize;
  std::int64_t t = kDefaultFaultBudget;
  /// Replica Programs behind socketpair threads (net::SocketTransport)
  /// instead of inline (core::LoopbackTransport).
  bool use_sockets = false;
  /// Honor kShutdown frames (tests and benches stop the server this way).
  bool allow_shutdown = true;
  /// When set, the first commit slot is recorded as an LFTTRACE file.
  std::string trace_path;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// The bound port (useful with options.port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves until a kShutdown frame arrives (allow_shutdown) — the epoll
  /// loop, typically run on its own thread by tests and lft_serve.
  void run();

  [[nodiscard]] const ReplicaGroup& group() const noexcept { return group_; }

  struct Stats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t proposals = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t commit_batches = 0;
    std::uint64_t commit_entries = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Session {
    net::Fd fd;
    net::FrameParser parser;
    std::uint64_t client_id = 0;
    bool hello_done = false;
    bool subscribed = false;
    std::uint64_t next_commit_index = 0;  ///< subscription push cursor
  };
  struct Pending {
    int fd = -1;  ///< proposer's session (may have closed by commit time)
    Command cmd;
  };

  void accept_ready();
  void session_ready(int fd);
  void handle_frame(Session& session, std::span<const std::byte> payload);
  void flush_pending();
  void push_commits(Session& session);
  void drop_session(int fd);
  void send_to(Session& session, std::span<const std::byte> payload);
  void send_error(Session& session, const std::string& message);

  ServerOptions options_;
  ReplicaGroup group_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  net::EpollLoop loop_;
  std::unordered_map<int, Session> sessions_;
  std::vector<Pending> pending_;
  std::vector<std::byte> scratch_;  ///< reused frame encode buffer
  Stats stats_;
  bool stop_ = false;
};

}  // namespace lft::service
