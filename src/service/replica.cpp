#include "service/replica.hpp"

#include <utility>

#include "common/assert.hpp"
#include "forensics/trace.hpp"
#include "scenarios/scenarios.hpp"

namespace lft::service {

/// One in-flight commit slot: a pooled execution context plus the batch it
/// orders and the optional black-box recorder.
struct ReplicaGroup::Slot {
  Slot(NodeId n, std::int64_t t, bool use_sockets) : ctx(n, t, use_sockets) {}

  SlotContext ctx;
  std::vector<Command> batch;
  forensics::TraceRecorder recorder;
  bool record = false;
  bool done = false;
};

ReplicaGroup::ReplicaGroup(ReplicaGroupOptions options) : options_(std::move(options)) {
  LFT_ASSERT_MSG(options_.n >= 1 && options_.t >= 0 && options_.t < options_.n,
                 "replica group needs 0 <= t < n");
  machines_.resize(static_cast<std::size_t>(options_.n));
}

ReplicaGroup::~ReplicaGroup() = default;

std::unique_ptr<ReplicaGroup::Slot> ReplicaGroup::acquire_slot() {
  if (!pool_.empty()) {
    auto slot = std::move(pool_.back());
    pool_.pop_back();
    return slot;
  }
  return std::make_unique<Slot>(options_.n, options_.t, options_.use_sockets);
}

void ReplicaGroup::enqueue(std::vector<Command> batch) {
  LFT_ASSERT_MSG(can_enqueue(), "slot pipeline is full");
  auto slot = acquire_slot();
  slot->batch = std::move(batch);
  slot->done = false;
  // The black box records the first slot only; while that slot is still in
  // flight no other slot may start recording.
  slot->record = !options_.trace_path.empty() && !trace_saved_ && !trace_pending_;
  if (slot->record) {
    trace_pending_ = true;
    slot->recorder = forensics::TraceRecorder{};
  }
  slot->ctx.begin(slot->record ? &slot->recorder : nullptr);
  live_.push_back(std::move(slot));
}

bool ReplicaGroup::head_ready() const noexcept {
  return !live_.empty() && live_.front()->done;
}

void ReplicaGroup::step() {
  for (auto& slot : live_) {
    if (!slot->done) slot->done = !slot->ctx.step();
  }
}

CommitResult ReplicaGroup::take_head() {
  LFT_ASSERT_MSG(head_ready(), "take_head() without a finished head slot");
  auto slot = std::move(live_.front());
  live_.pop_front();

  auto outcome = slot->ctx.finish();
  // The slot is the ordering barrier — its unanimous decision 1 is what
  // authorizes applying the batch at the same log position on every replica.
  LFT_ASSERT_MSG(outcome.committed, "consensus slot failed to commit");

  if (slot->record) {
    forensics::Trace trace = slot->recorder.take();
    trace.meta.scenario = kSlotScenarioName;
    trace.meta.seed = 0;  // the slot is seed-independent
    trace.meta.n = options_.n;
    trace.meta.t = options_.t;
    trace.meta.threads = 1;
    trace.report_fingerprint = scenarios::fingerprint(outcome.report);
    trace_saved_ = save_trace(trace, options_.trace_path);
    LFT_ASSERT_MSG(trace_saved_, "failed to save service slot trace");
    trace_pending_ = false;
    slot->record = false;
  }

  CommitResult result;
  result.slot_rounds = outcome.report.rounds;
  result.slot_messages = outcome.report.metrics.messages_total;
  result.slot_fingerprint = scenarios::fingerprint(outcome.report);
  // Machine-major apply order: each replica's log and dedup map stay hot
  // across the whole batch (command-major order bounces all n working sets
  // per command). The cross-replica agreement check is unchanged.
  result.applied.reserve(slot->batch.size());
  for (const Command& cmd : slot->batch) {
    result.applied.push_back(machines_[0].apply(cmd));
  }
  for (std::size_t v = 1; v < machines_.size(); ++v) {
    StateMachine& m = machines_[v];
    for (std::size_t i = 0; i < slot->batch.size(); ++i) {
      const Applied a = m.apply(slot->batch[i]);
      LFT_ASSERT_MSG(a.index == result.applied[i].index &&
                         a.duplicate == result.applied[i].duplicate,
                     "replica state machines diverged on apply");
    }
  }
  const std::uint64_t digest = machines_[0].digest();
  for (const StateMachine& m : machines_) {
    LFT_ASSERT_MSG(m.digest() == digest, "replica log digests diverged");
  }
  ++slots_;

  slot->batch.clear();
  pool_.push_back(std::move(slot));
  return result;
}

CommitResult ReplicaGroup::commit(std::span<const Command> batch) {
  LFT_ASSERT_MSG(live_.empty(), "commit() requires an idle pipeline");
  enqueue(std::vector<Command>(batch.begin(), batch.end()));
  while (!head_ready()) step();
  return take_head();
}

}  // namespace lft::service
