#include "service/replica.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "core/driver.hpp"
#include "forensics/trace.hpp"
#include "net/transport.hpp"
#include "scenarios/scenarios.hpp"

namespace lft::service {

ReplicaGroup::ReplicaGroup(ReplicaGroupOptions options) : options_(std::move(options)) {
  LFT_ASSERT_MSG(options_.n >= 1 && options_.t >= 0 && options_.t < options_.n,
                 "replica group needs 0 <= t < n");
  machines_.resize(static_cast<std::size_t>(options_.n));
}

CommitResult ReplicaGroup::commit(std::span<const Command> batch) {
  // One consensus slot per batch: fresh Programs, fresh transport. The slot
  // is the ordering barrier — its unanimous decision 1 is what authorizes
  // applying the batch at the same log position on every replica.
  auto programs = make_slot_programs(options_.n, options_.t);
  std::unique_ptr<core::Transport> transport;
  if (options_.use_sockets) {
    transport = std::make_unique<net::SocketTransport>(std::move(programs));
  } else {
    transport = std::make_unique<core::LoopbackTransport>(std::move(programs));
  }

  const bool record = !options_.trace_path.empty() && !trace_saved_;
  forensics::TraceRecorder recorder;
  core::RunOptions slot_options;
  if (record) slot_options.trace = &recorder;

  auto outcome = run_slot(options_.n, *transport, slot_options);
  LFT_ASSERT_MSG(outcome.committed, "consensus slot failed to commit");

  if (record) {
    forensics::Trace trace = recorder.take();
    trace.meta.scenario = kSlotScenarioName;
    trace.meta.seed = 0;  // the slot is seed-independent
    trace.meta.n = options_.n;
    trace.meta.t = options_.t;
    trace.meta.threads = 1;
    trace.report_fingerprint = scenarios::fingerprint(outcome.report);
    trace_saved_ = save_trace(trace, options_.trace_path);
    LFT_ASSERT_MSG(trace_saved_, "failed to save service slot trace");
  }

  CommitResult result;
  result.slot_rounds = outcome.report.rounds;
  result.slot_messages = outcome.report.metrics.messages_total;
  result.applied.reserve(batch.size());
  for (const Command& cmd : batch) {
    Applied first{};
    for (std::size_t v = 0; v < machines_.size(); ++v) {
      const Applied a = machines_[v].apply(cmd);
      if (v == 0) {
        first = a;
      } else {
        LFT_ASSERT_MSG(a.index == first.index && a.duplicate == first.duplicate,
                       "replica state machines diverged on apply");
      }
    }
    result.applied.push_back(first);
  }
  const std::uint64_t digest = machines_[0].digest();
  for (const StateMachine& m : machines_) {
    LFT_ASSERT_MSG(m.digest() == digest, "replica log digests diverged");
  }
  ++slots_;
  return result;
}

}  // namespace lft::service
