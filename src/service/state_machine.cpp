#include "service/state_machine.hpp"

#include "common/hash.hpp"

namespace lft::service {

Applied StateMachine::apply(const Command& cmd) {
  const auto it = latest_.find(cmd.client_id);
  if (it != latest_.end() && cmd.request_id <= it->second.request_id) {
    // Replay of the client's last request (or older): answer with the index
    // the original occupies — do not append again.
    return Applied{it->second.index, /*duplicate=*/true};
  }
  const std::uint64_t index = log_.size();
  digest_ = hash_combine(digest_, mix64(cmd.client_id));
  digest_ = hash_combine(digest_, mix64(cmd.request_id));
  digest_ = hash_combine(digest_, hash_bytes(cmd.payload));
  latest_[cmd.client_id] = ClientMark{cmd.request_id, index};
  log_.push_back(cmd);
  return Applied{index, /*duplicate=*/false};
}

std::uint64_t StateMachine::last_request_of(std::uint64_t client_id) const {
  const auto it = latest_.find(client_id);
  return it == latest_.end() ? 0 : it->second.request_id;
}

}  // namespace lft::service
