#include "service/client.hpp"

#include <sys/socket.h>

#include <cerrno>

#include "service/wire.hpp"

namespace lft::service {

namespace {

/// Blocking recv budget per refill of the frame parser.
constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

Client::Client(std::uint16_t port, std::uint64_t client_id) : client_id_(client_id) {
  fd_ = net::connect_tcp(port);
  if (!fd_.valid()) return;
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kHello));
  w.put_u64(client_id);
  std::vector<std::byte> payload;
  if (!send_payload(w.view()) ||
      !recv_expect(static_cast<std::uint8_t>(MsgType::kWelcome), payload)) {
    fd_.reset();
    return;
  }
  ByteReader reader(payload);
  const auto echoed = reader.get_u64();
  const auto last = reader.get_u64();
  if (!echoed || !last || *echoed != client_id) {
    fd_.reset();
    return;
  }
  welcome_last_request_ = *last;
}

std::optional<Applied> Client::propose(std::uint64_t request_id,
                                       std::span<const std::byte> payload) {
  if (!send_propose(request_id, payload)) return std::nullopt;
  const auto ack = recv_ack();
  if (!ack || ack->request_id != request_id) return std::nullopt;
  return ack->applied;
}

bool Client::send_propose(std::uint64_t request_id, std::span<const std::byte> payload) {
  queue_propose(request_id, payload);
  return flush();
}

void Client::queue_propose(std::uint64_t request_id, std::span<const std::byte> payload) {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kPropose));
  w.put_u64(request_id);
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_bytes(payload);
  net::append_frame(out_, w.view());
}

bool Client::flush() {
  if (out_.empty()) return fd_.valid();
  const bool ok = fd_.valid() && net::send_all(fd_, out_);
  out_.clear();
  return ok;
}

std::optional<Client::Ack> Client::recv_ack() {
  std::vector<std::byte> response;
  if (!recv_expect(static_cast<std::uint8_t>(MsgType::kAck), response)) return std::nullopt;
  ByteReader reader(response);
  const auto echoed = reader.get_u64();
  const auto index = reader.get_u64();
  const auto duplicate = reader.get_u8();
  if (!echoed || !index || !duplicate) return std::nullopt;
  return Ack{*echoed, Applied{*index, *duplicate != 0}};
}

std::optional<Client::State> Client::read_state() {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kRead));
  std::vector<std::byte> response;
  if (!send_payload(w.view()) ||
      !recv_expect(static_cast<std::uint8_t>(MsgType::kState), response)) {
    return std::nullopt;
  }
  ByteReader reader(response);
  const auto size = reader.get_u64();
  const auto digest = reader.get_u64();
  const auto slots = reader.get_u64();
  if (!size || !digest || !slots) return std::nullopt;
  return State{*size, *digest, *slots};
}

bool Client::subscribe(std::uint64_t from_index) {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kSubscribe));
  w.put_u64(from_index);
  return send_payload(w.view());
}

std::optional<Client::CommitEvent> Client::next_commit() {
  while (commits_.empty()) {
    std::span<const std::byte> frame;
    if (!next_frame(frame)) return std::nullopt;
    ByteReader reader(frame);
    const auto type = reader.get_u8();
    if (!type || *type != static_cast<std::uint8_t>(MsgType::kCommit)) return std::nullopt;
    if (!parse_commit(reader)) return std::nullopt;
  }
  CommitEvent e = std::move(commits_.front());
  commits_.pop_front();
  return e;
}

std::optional<obs::Snapshot> Client::server_stats() {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
  std::vector<std::byte> response;
  if (!send_payload(w.view()) ||
      !recv_expect(static_cast<std::uint8_t>(MsgType::kStatsReply), response)) {
    return std::nullopt;
  }
  ByteReader reader(response);
  return obs::Snapshot::decode(reader);
}

bool Client::shutdown_server() {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kShutdown));
  std::vector<std::byte> response;
  return send_payload(w.view()) &&
         recv_expect(static_cast<std::uint8_t>(MsgType::kBye), response);
}

bool Client::next_frame(std::span<const std::byte>& payload) {
  for (;;) {
    if (parser_.next_view(payload)) return true;
    if (parser_.corrupt() || !fd_.valid()) return false;
    const std::span<std::byte> buf = parser_.writable(kRecvChunk);
    ssize_t r = 0;
    do {
      r = ::recv(fd_.get(), buf.data(), buf.size(), 0);
    } while (r < 0 && errno == EINTR);
    if (r <= 0) return false;  // EOF or error
    parser_.commit(static_cast<std::size_t>(r));
  }
}

bool Client::parse_commit(ByteReader& reader) {
  const auto index = reader.get_u64();
  const auto client = reader.get_u64();
  const auto request = reader.get_u64();
  const auto len = reader.get_u32();
  if (!index || !client || !request || !len) return false;
  const auto body = reader.get_bytes(*len);
  if (!body) return false;
  CommitEvent e;
  e.index = *index;
  e.client_id = *client;
  e.request_id = *request;
  e.payload.assign(body->begin(), body->end());
  commits_.push_back(std::move(e));
  return true;
}

bool Client::recv_expect(std::uint8_t want, std::vector<std::byte>& out) {
  for (;;) {
    std::span<const std::byte> frame;
    if (!next_frame(frame)) return false;
    ByteReader reader(frame);
    const auto type = reader.get_u8();
    if (!type) return false;
    if (*type == static_cast<std::uint8_t>(MsgType::kCommit)) {
      // A subscription push interleaved with our response: queue it.
      if (!parse_commit(reader)) return false;
      continue;
    }
    if (*type != want) return false;
    out.assign(frame.begin() + 1, frame.end());
    return true;
  }
}

bool Client::send_payload(std::span<const std::byte> payload) {
  std::vector<std::byte> framed;
  net::append_frame(framed, payload);
  return net::send_all(fd_, framed);
}

}  // namespace lft::service
