#include "service/server.hpp"

#include <sys/epoll.h>

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "service/wire.hpp"

namespace lft::service {

namespace {

/// Per-recv budget. Edge-triggered sessions drain the socket in chunks of
/// this size until EAGAIN (a short read on a stream socket means the buffer
/// is empty, so the next edge re-arms us).
constexpr std::size_t kRecvChunk = 64 * 1024;

void put_commit(ByteWriter& w, std::uint64_t index, const Command& cmd) {
  w.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
  w.put_u64(index);
  w.put_u64(cmd.client_id);
  w.put_u64(cmd.request_id);
  w.put_u32(static_cast<std::uint32_t>(cmd.payload.size()));
  w.put_bytes(cmd.payload);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      group_(ReplicaGroupOptions{options_.n, options_.t, options_.use_sockets,
                                 options_.trace_path, options_.pipeline}),
      reactor_(net::make_reactor(options_.backend)) {
  port_ = options_.port;
  listener_ = net::listen_tcp(port_);
  net::set_nonblocking(listener_, true);
  reactor_->add(listener_.get(), EPOLLIN, [this](std::uint32_t) { accept_ready(); });
}

void Server::run() {
  while (!stop_) {
    // Block only when the pipeline is idle; while slots are in flight, poll
    // so consensus rounds overlap network I/O.
    const bool busy = group_.in_flight() > 0 || !pending_.empty();
    (void)reactor_->wait(busy ? 0 : -1);
    pump();
  }
  drain_shutdown();
}

void Server::pump() {
  while (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
  if (group_.in_flight() > 0) group_.step();
  while (group_.head_ready()) {
    retire_head();
    if (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
  }
  if (pending_.size() < options_.max_pending) resume_paused();
  // Resumed sessions may have refilled the queue with pipeline room left.
  while (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
  flush_dirty();
}

void Server::enqueue_batch() {
  // Group commit: everything queued right now shares one consensus slot.
  std::vector<Command> commands;
  commands.reserve(pending_.size());
  std::vector<PendingMeta> metas;
  metas.reserve(pending_.size());
  for (Pending& p : pending_) {
    metas.push_back(PendingMeta{p.fd, p.cmd.request_id});
    commands.push_back(std::move(p.cmd));
  }
  pending_.clear();
  inflight_.push_back(std::move(metas));
  group_.enqueue(std::move(commands));
}

void Server::retire_head() {
  const CommitResult result = group_.take_head();
  LFT_ASSERT_MSG(!inflight_.empty(), "retired a slot with no pending metadata");
  std::vector<PendingMeta> metas = std::move(inflight_.front());
  inflight_.pop_front();
  ++stats_.commit_batches;
  stats_.commit_entries += metas.size();

  // Acks to each proposer still connected — coalesced into its session ring,
  // so the whole batch reaches the kernel in one vectored write per session.
  for (std::size_t i = 0; i < metas.size(); ++i) {
    const Applied& a = result.applied[i];
    if (a.duplicate) ++stats_.duplicates;
    const auto it = sessions_.find(metas[i].fd);
    if (it == sessions_.end()) continue;  // proposer left; the commit stands
    ByteWriter w(scratch_);
    w.put_u8(static_cast<std::uint8_t>(MsgType::kAck));
    w.put_u64(metas[i].request_id);
    w.put_u64(a.index);
    w.put_u8(a.duplicate ? 1 : 0);
    queue_frame(metas[i].fd, it->second, w.view());
  }

  // New log entries to every subscriber.
  for (auto& [fd, session] : sessions_) {
    if (session.subscribed) push_commits(session);
  }
}

void Server::accept_ready() {
  for (;;) {
    net::Fd fd = net::accept_one(listener_);
    if (!fd.valid()) return;
    net::set_nodelay(fd);
    net::set_nonblocking(fd, true);
    const int raw = fd.get();
    Session session;
    session.fd = std::move(fd);
    sessions_.emplace(raw, std::move(session));
    reactor_->add(raw, EPOLLIN | EPOLLET,
                  [this, raw](std::uint32_t events) { session_event(raw, events); });
    ++stats_.sessions_accepted;
  }
}

void Server::session_event(int fd, std::uint32_t events) {
  if ((events & EPOLLIN) != 0) {
    session_readable(fd);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_session(fd);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    drop_session(fd);
  }
}

void Server::session_readable(int fd) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.paused) return;  // backpressure: leave bytes in the kernel

  // Frames parsed before a pause may still be buffered (resume path).
  if (!process_frames(fd, session)) return;

  while (!session.paused) {
    const std::span<std::byte> buf = session.parser.writable(kRecvChunk);
    const net::IoResult r = net::recv_some(session.fd, buf);
    if (r.closed) {
      drop_session(fd);
      return;
    }
    if (r.n == 0) break;  // EAGAIN: drained
    session.parser.commit(r.n);
    if (!process_frames(fd, session)) return;
    if (r.n < buf.size()) break;  // short read: socket buffer is empty
  }
}

bool Server::process_frames(int fd, Session& session) {
  std::span<const std::byte> payload;
  while (!session.paused && session.parser.next_view(payload)) {
    handle_frame(session, payload);
    // The frame may have dropped its own session (protocol error).
    if (sessions_.find(fd) == sessions_.end()) return false;
  }
  if (session.parser.corrupt()) {
    drop_session(fd);
    return false;
  }
  return true;
}

void Server::handle_frame(Session& session, std::span<const std::byte> payload) {
  const int fd = session.fd.get();
  ByteReader reader(payload);
  const auto type = reader.get_u8();
  if (!type) {
    queue_error(fd, session, "empty frame");
    return;
  }
  switch (static_cast<MsgType>(*type)) {
    case MsgType::kHello: {
      const auto client_id = reader.get_u64();
      if (!client_id) {
        queue_error(fd, session, "malformed hello");
        return;
      }
      session.client_id = *client_id;
      session.hello_done = true;
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kWelcome));
      w.put_u64(*client_id);
      w.put_u64(group_.machine().last_request_of(*client_id));
      queue_frame(fd, session, w.view());
      return;
    }
    case MsgType::kPropose: {
      const auto request_id = reader.get_u64();
      const auto len = reader.get_u32();
      if (!session.hello_done || !request_id || !len) {
        queue_error(fd, session, "propose before hello or malformed propose");
        return;
      }
      const auto body = reader.get_bytes(*len);
      if (!body) {
        queue_error(fd, session, "malformed propose payload");
        return;
      }
      Pending p;
      p.fd = fd;
      p.cmd.client_id = session.client_id;
      p.cmd.request_id = *request_id;
      p.cmd.payload.assign(body->begin(), body->end());
      pending_.push_back(std::move(p));
      ++stats_.proposals;
      if (pending_.size() >= options_.max_pending) pause(fd, session);
      return;
    }
    case MsgType::kRead: {
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kState));
      w.put_u64(group_.machine().size());
      w.put_u64(group_.machine().digest());
      w.put_u64(group_.slots());
      queue_frame(fd, session, w.view());
      return;
    }
    case MsgType::kSubscribe: {
      const auto from_index = reader.get_u64();
      if (!from_index) {
        queue_error(fd, session, "malformed subscribe");
        return;
      }
      session.subscribed = true;
      session.next_commit_index = *from_index;
      push_commits(session);  // catch up on already-committed entries
      return;
    }
    case MsgType::kShutdown: {
      if (!options_.allow_shutdown) {
        queue_error(fd, session, "shutdown disabled");
        return;
      }
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kBye));
      queue_frame(fd, session, w.view());
      stop_ = true;
      return;
    }
    default:
      queue_error(fd, session, "unknown message type");
      return;
  }
}

void Server::push_commits(Session& session) {
  const StateMachine& machine = group_.machine();
  const int fd = session.fd.get();
  while (session.next_commit_index < machine.size()) {
    const std::uint64_t index = session.next_commit_index++;
    ByteWriter w(scratch_);
    put_commit(w, index, machine.entry(index));
    queue_frame(fd, session, w.view());
  }
}

void Server::pause(int fd, Session& session) {
  if (session.paused) return;
  session.paused = true;
  paused_.push_back(fd);
  ++stats_.session_pauses;
}

void Server::resume_paused() {
  if (paused_.empty()) return;
  std::vector<int> paused;
  paused.swap(paused_);  // pause() re-adds anyone who fills the queue again
  for (const int fd : paused) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    it->second.paused = false;
    session_readable(fd);
    if (pending_.size() >= options_.max_pending) break;  // queue is full again
  }
}

void Server::queue_frame(int fd, Session& session, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::byte hdr[sizeof(len)];
  std::memcpy(hdr, &len, sizeof(len));  // little-endian hosts, like common/codec
  session.out.append(std::span<const std::byte>(hdr, sizeof(hdr)));
  session.out.append(payload);
  if (!session.dirty) {
    session.dirty = true;
    dirty_.push_back(fd);
  }
}

void Server::queue_error(int fd, Session& session, const std::string& message) {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kError));
  w.put_u32(static_cast<std::uint32_t>(message.size()));
  w.put_bytes(std::as_bytes(std::span<const char>(message.data(), message.size())));
  queue_frame(fd, session, w.view());
}

void Server::flush_session(int fd) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  while (!session.out.empty()) {
    const auto spans = session.out.readable();
    const net::IoResult w = net::writev_some(session.fd, spans[0], spans[1]);
    if (w.closed) {
      drop_session(fd);
      return;
    }
    if (w.n == 0) break;  // kernel buffer full: wait for EPOLLOUT
    session.out.consume(w.n);
  }
  const std::uint32_t want =
      session.out.empty() ? (EPOLLIN | EPOLLET) : (EPOLLIN | EPOLLOUT | EPOLLET);
  const bool want_write = !session.out.empty();
  if (want_write != session.want_write) {
    session.want_write = want_write;
    reactor_->modify(fd, want);
  }
}

void Server::flush_dirty() {
  if (dirty_.empty()) return;
  std::vector<int> dirty;
  dirty.swap(dirty_);
  for (const int fd : dirty) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    it->second.dirty = false;
    flush_session(fd);
  }
}

void Server::drain_shutdown() {
  // Run the pipeline dry: frames parsed on paused sessions still commit, but
  // no new bytes are read off any socket once stop_ is set.
  for (;;) {
    if (!paused_.empty() && pending_.size() < options_.max_pending) {
      std::vector<int> paused;
      paused.swap(paused_);
      for (const int fd : paused) {
        const auto it = sessions_.find(fd);
        if (it == sessions_.end()) continue;
        it->second.paused = false;
        (void)process_frames(fd, it->second);
      }
    }
    if (group_.in_flight() == 0 && pending_.empty()) break;
    while (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
    group_.step();
    while (group_.head_ready()) retire_head();
  }
  // Final flush: blocking sends so the last acks and the kBye reach peers.
  for (auto& [fd, session] : sessions_) {
    if (session.out.empty()) continue;
    net::set_nonblocking(session.fd, false);
    const auto spans = session.out.readable();
    if (net::send_all(session.fd, spans[0]) && !spans[1].empty()) {
      (void)net::send_all(session.fd, spans[1]);
    }
    session.out.consume(session.out.size());
  }
}

void Server::drop_session(int fd) {
  reactor_->remove(fd);
  sessions_.erase(fd);  // Fd RAII closes the socket
}

}  // namespace lft::service
