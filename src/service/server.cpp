#include "service/server.hpp"

#include <sys/epoll.h>

#include <cstring>
#include <fstream>
#include <utility>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "service/wire.hpp"

namespace lft::service {

namespace {

/// Per-recv budget. Edge-triggered sessions drain the socket in chunks of
/// this size until EAGAIN (a short read on a stream socket means the buffer
/// is empty, so the next edge re-arms us).
constexpr std::size_t kRecvChunk = 64 * 1024;

void put_commit(ByteWriter& w, std::uint64_t index, const Command& cmd) {
  w.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
  w.put_u64(index);
  w.put_u64(cmd.client_id);
  w.put_u64(cmd.request_id);
  w.put_u32(static_cast<std::uint32_t>(cmd.payload.size()));
  w.put_bytes(cmd.payload);
}

}  // namespace

Server::Instruments::Instruments(obs::Registry& registry)
    : request_ns(registry.histogram("lft_service_request_ns")),
      pump_enqueue_ns(registry.histogram("lft_service_pump_enqueue_ns")),
      pump_step_ns(registry.histogram("lft_service_pump_step_ns")),
      pump_retire_ns(registry.histogram("lft_service_pump_retire_ns")),
      pump_flush_ns(registry.histogram("lft_service_pump_flush_ns")),
      pipeline_depth(registry.histogram("lft_service_pipeline_depth")),
      pause_ns(registry.histogram("lft_service_pause_ns")),
      reactor_wait_ns(registry.histogram("lft_service_reactor_wait_ns")),
      reactor_batch(registry.histogram("lft_service_reactor_batch")),
      ring_high_water(registry.gauge("lft_service_ring_high_water")),
      stats_requests(registry.counter("lft_service_stats_requests_total")) {}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      group_(ReplicaGroupOptions{options_.n, options_.t, options_.use_sockets,
                                 options_.trace_path, options_.pipeline}),
      reactor_(net::make_reactor(options_.backend)),
      obs_(registry_) {
  port_ = options_.port;
  listener_ = net::listen_tcp(port_);
  net::set_nonblocking(listener_, true);
  reactor_->add(listener_.get(), EPOLLIN, [this](std::uint32_t) { accept_ready(); });
}

void Server::run() {
  const bool dumping = !options_.stats_dump_path.empty();
  const auto interval_ns =
      static_cast<std::uint64_t>(options_.stats_dump_interval_ms) * 1000000u;
  std::uint64_t next_dump_ns = dumping ? obs::now_ns() + interval_ns : 0;
  while (!stop_) {
    // Block only when the pipeline is idle; while slots are in flight, poll
    // so consensus rounds overlap network I/O. A stats-dumping server never
    // blocks forever — it wakes each interval to keep the dump current.
    const bool busy = group_.in_flight() > 0 || !pending_.empty();
    int timeout_ms = busy ? 0 : -1;
    if (dumping && !busy) timeout_ms = static_cast<int>(options_.stats_dump_interval_ms);
    const std::uint64_t wait_start = obs::now_ns();
    const int dispatched = reactor_->wait(timeout_ms);
    obs_.reactor_wait_ns.record(obs::now_ns() - wait_start);
    obs_.reactor_batch.record(static_cast<std::uint64_t>(dispatched));
    pump();
    if (dumping && obs::now_ns() >= next_dump_ns) {
      write_stats_dump();
      next_dump_ns = obs::now_ns() + interval_ns;
    }
  }
  drain_shutdown();
  if (dumping) write_stats_dump();
}

void Server::pump() {
  std::uint64_t mark = obs::now_ns();
  while (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
  obs_.pipeline_depth.record(static_cast<std::uint64_t>(group_.in_flight()));
  obs_.pump_enqueue_ns.record(obs::now_ns() - mark);

  mark = obs::now_ns();
  if (group_.in_flight() > 0) group_.step();
  obs_.pump_step_ns.record(obs::now_ns() - mark);

  mark = obs::now_ns();
  while (group_.head_ready()) {
    retire_head();
    if (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
  }
  if (pending_.size() < options_.max_pending) resume_paused();
  // Resumed sessions may have refilled the queue with pipeline room left.
  while (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
  obs_.pump_retire_ns.record(obs::now_ns() - mark);

  mark = obs::now_ns();
  flush_dirty();
  obs_.pump_flush_ns.record(obs::now_ns() - mark);
}

void Server::enqueue_batch() {
  // Group commit: everything queued right now shares one consensus slot.
  std::vector<Command> commands;
  commands.reserve(pending_.size());
  std::vector<PendingMeta> metas;
  metas.reserve(pending_.size());
  for (Pending& p : pending_) {
    metas.push_back(PendingMeta{p.fd, p.cmd.request_id, p.arrival_ns});
    commands.push_back(std::move(p.cmd));
  }
  pending_.clear();
  inflight_.push_back(std::move(metas));
  group_.enqueue(std::move(commands));
}

void Server::retire_head() {
  const CommitResult result = group_.take_head();
  LFT_ASSERT_MSG(!inflight_.empty(), "retired a slot with no pending metadata");
  std::vector<PendingMeta> metas = std::move(inflight_.front());
  inflight_.pop_front();
  ++stats_.commit_batches;
  stats_.commit_entries += metas.size();

  // Acks to each proposer still connected — coalesced into its session ring,
  // so the whole batch reaches the kernel in one vectored write per session.
  const std::uint64_t ack_ns = obs::now_ns();
  for (std::size_t i = 0; i < metas.size(); ++i) {
    const Applied& a = result.applied[i];
    if (a.duplicate) ++stats_.duplicates;
    obs_.request_ns.record(ack_ns - metas[i].arrival_ns);
    const auto it = sessions_.find(metas[i].fd);
    if (it == sessions_.end()) continue;  // proposer left; the commit stands
    ByteWriter w(scratch_);
    w.put_u8(static_cast<std::uint8_t>(MsgType::kAck));
    w.put_u64(metas[i].request_id);
    w.put_u64(a.index);
    w.put_u8(a.duplicate ? 1 : 0);
    queue_frame(metas[i].fd, it->second, w.view());
  }

  // New log entries to every subscriber.
  for (auto& [fd, session] : sessions_) {
    if (session.subscribed) push_commits(session);
  }
}

void Server::accept_ready() {
  for (;;) {
    net::Fd fd = net::accept_one(listener_);
    if (!fd.valid()) return;
    net::set_nodelay(fd);
    net::set_nonblocking(fd, true);
    const int raw = fd.get();
    Session session;
    session.fd = std::move(fd);
    sessions_.emplace(raw, std::move(session));
    reactor_->add(raw, EPOLLIN | EPOLLET,
                  [this, raw](std::uint32_t events) { session_event(raw, events); });
    ++stats_.sessions_accepted;
  }
}

void Server::session_event(int fd, std::uint32_t events) {
  if ((events & EPOLLIN) != 0) {
    session_readable(fd);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_session(fd);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    drop_session(fd);
  }
}

void Server::session_readable(int fd) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.paused) return;  // backpressure: leave bytes in the kernel

  // Frames parsed before a pause may still be buffered (resume path).
  if (!process_frames(fd, session)) return;

  while (!session.paused) {
    const std::span<std::byte> buf = session.parser.writable(kRecvChunk);
    const net::IoResult r = net::recv_some(session.fd, buf);
    if (r.closed) {
      drop_session(fd);
      return;
    }
    if (r.n == 0) break;  // EAGAIN: drained
    session.parser.commit(r.n);
    if (!process_frames(fd, session)) return;
    if (r.n < buf.size()) break;  // short read: socket buffer is empty
  }
}

bool Server::process_frames(int fd, Session& session) {
  std::span<const std::byte> payload;
  while (!session.paused && session.parser.next_view(payload)) {
    handle_frame(session, payload);
    // The frame may have dropped its own session (protocol error).
    if (sessions_.find(fd) == sessions_.end()) return false;
  }
  if (session.parser.corrupt()) {
    drop_session(fd);
    return false;
  }
  return true;
}

void Server::handle_frame(Session& session, std::span<const std::byte> payload) {
  const int fd = session.fd.get();
  ByteReader reader(payload);
  const auto type = reader.get_u8();
  if (!type) {
    queue_error(fd, session, "empty frame");
    return;
  }
  switch (static_cast<MsgType>(*type)) {
    case MsgType::kHello: {
      const auto client_id = reader.get_u64();
      if (!client_id) {
        queue_error(fd, session, "malformed hello");
        return;
      }
      session.client_id = *client_id;
      session.hello_done = true;
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kWelcome));
      w.put_u64(*client_id);
      w.put_u64(group_.machine().last_request_of(*client_id));
      queue_frame(fd, session, w.view());
      return;
    }
    case MsgType::kPropose: {
      const auto request_id = reader.get_u64();
      const auto len = reader.get_u32();
      if (!session.hello_done || !request_id || !len) {
        queue_error(fd, session, "propose before hello or malformed propose");
        return;
      }
      const auto body = reader.get_bytes(*len);
      if (!body) {
        queue_error(fd, session, "malformed propose payload");
        return;
      }
      Pending p;
      p.fd = fd;
      p.arrival_ns = obs::now_ns();
      p.cmd.client_id = session.client_id;
      p.cmd.request_id = *request_id;
      p.cmd.payload.assign(body->begin(), body->end());
      pending_.push_back(std::move(p));
      ++stats_.proposals;
      if (pending_.size() >= options_.max_pending) pause(fd, session);
      return;
    }
    case MsgType::kRead: {
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kState));
      w.put_u64(group_.machine().size());
      w.put_u64(group_.machine().digest());
      w.put_u64(group_.slots());
      queue_frame(fd, session, w.view());
      return;
    }
    case MsgType::kSubscribe: {
      const auto from_index = reader.get_u64();
      if (!from_index) {
        queue_error(fd, session, "malformed subscribe");
        return;
      }
      session.subscribed = true;
      session.next_commit_index = *from_index;
      push_commits(session);  // catch up on already-committed entries
      return;
    }
    case MsgType::kStatsRequest: {
      // Read-only and allowed before kHello: monitoring shouldn't need a
      // client identity.
      obs_.stats_requests.inc();
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kStatsReply));
      telemetry().encode(w);
      queue_frame(fd, session, w.view());
      return;
    }
    case MsgType::kShutdown: {
      if (!options_.allow_shutdown) {
        queue_error(fd, session, "shutdown disabled");
        return;
      }
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kBye));
      queue_frame(fd, session, w.view());
      stop_ = true;
      return;
    }
    default:
      queue_error(fd, session, "unknown message type");
      return;
  }
}

void Server::push_commits(Session& session) {
  const StateMachine& machine = group_.machine();
  const int fd = session.fd.get();
  while (session.next_commit_index < machine.size()) {
    const std::uint64_t index = session.next_commit_index++;
    ByteWriter w(scratch_);
    put_commit(w, index, machine.entry(index));
    queue_frame(fd, session, w.view());
  }
}

void Server::pause(int fd, Session& session) {
  if (session.paused) return;
  session.paused = true;
  session.paused_at_ns = obs::now_ns();
  paused_.push_back(fd);
  ++stats_.session_pauses;
}

void Server::resume_session(Session& session) {
  session.paused = false;
  obs_.pause_ns.record(obs::now_ns() - session.paused_at_ns);
}

void Server::resume_paused() {
  if (paused_.empty()) return;
  std::vector<int> paused;
  paused.swap(paused_);  // pause() re-adds anyone who fills the queue again
  for (const int fd : paused) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    resume_session(it->second);
    session_readable(fd);
    if (pending_.size() >= options_.max_pending) break;  // queue is full again
  }
}

void Server::queue_frame(int fd, Session& session, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::byte hdr[sizeof(len)];
  std::memcpy(hdr, &len, sizeof(len));  // little-endian hosts, like common/codec
  session.out.append(std::span<const std::byte>(hdr, sizeof(hdr)));
  session.out.append(payload);
  obs_.ring_high_water.set_max(static_cast<std::int64_t>(session.out.size()));
  if (!session.dirty) {
    session.dirty = true;
    dirty_.push_back(fd);
  }
}

void Server::queue_error(int fd, Session& session, const std::string& message) {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kError));
  w.put_u32(static_cast<std::uint32_t>(message.size()));
  w.put_bytes(std::as_bytes(std::span<const char>(message.data(), message.size())));
  queue_frame(fd, session, w.view());
}

void Server::flush_session(int fd) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  while (!session.out.empty()) {
    const auto spans = session.out.readable();
    const net::IoResult w = net::writev_some(session.fd, spans[0], spans[1]);
    if (w.closed) {
      drop_session(fd);
      return;
    }
    if (w.n == 0) break;  // kernel buffer full: wait for EPOLLOUT
    session.out.consume(w.n);
  }
  const std::uint32_t want =
      session.out.empty() ? (EPOLLIN | EPOLLET) : (EPOLLIN | EPOLLOUT | EPOLLET);
  const bool want_write = !session.out.empty();
  if (want_write != session.want_write) {
    session.want_write = want_write;
    reactor_->modify(fd, want);
  }
}

void Server::flush_dirty() {
  if (dirty_.empty()) return;
  std::vector<int> dirty;
  dirty.swap(dirty_);
  for (const int fd : dirty) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    it->second.dirty = false;
    flush_session(fd);
  }
}

void Server::drain_shutdown() {
  // Run the pipeline dry: frames parsed on paused sessions still commit, but
  // no new bytes are read off any socket once stop_ is set.
  for (;;) {
    if (!paused_.empty() && pending_.size() < options_.max_pending) {
      std::vector<int> paused;
      paused.swap(paused_);
      for (const int fd : paused) {
        const auto it = sessions_.find(fd);
        if (it == sessions_.end()) continue;
        resume_session(it->second);
        (void)process_frames(fd, it->second);
      }
    }
    if (group_.in_flight() == 0 && pending_.empty()) break;
    while (!pending_.empty() && group_.can_enqueue()) enqueue_batch();
    group_.step();
    while (group_.head_ready()) retire_head();
  }
  // Final flush: blocking sends so the last acks and the kBye reach peers.
  for (auto& [fd, session] : sessions_) {
    if (session.out.empty()) continue;
    net::set_nonblocking(session.fd, false);
    const auto spans = session.out.readable();
    if (net::send_all(session.fd, spans[0]) && !spans[1].empty()) {
      (void)net::send_all(session.fd, spans[1]);
    }
    session.out.consume(session.out.size());
  }
}

void Server::drop_session(int fd) {
  reactor_->remove(fd);
  sessions_.erase(fd);  // Fd RAII closes the socket
}

obs::Snapshot Server::telemetry() const {
  obs::Snapshot snap = registry_.snapshot();
  snap.counters.push_back({"lft_service_sessions_accepted_total", stats_.sessions_accepted});
  snap.counters.push_back({"lft_service_proposals_total", stats_.proposals});
  snap.counters.push_back({"lft_service_duplicates_total", stats_.duplicates});
  snap.counters.push_back({"lft_service_commit_batches_total", stats_.commit_batches});
  snap.counters.push_back({"lft_service_commit_entries_total", stats_.commit_entries});
  snap.counters.push_back({"lft_service_session_pauses_total", stats_.session_pauses});
  snap.gauges.push_back({"lft_service_sessions", static_cast<std::int64_t>(sessions_.size())});
  return snap;
}

void Server::write_stats_dump() const {
  const std::string& path = options_.stats_dump_path;
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return;  // dump is best-effort; serving goes on
  const obs::Snapshot snap = telemetry();
  out << (path.ends_with(".json") ? snap.to_json() : snap.to_prometheus());
}

}  // namespace lft::service
