#include "service/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "service/wire.hpp"

namespace lft::service {

namespace {

/// One recv per EPOLLIN event: level-triggered epoll re-arms while bytes
/// remain buffered, so a single bounded read per dispatch keeps every
/// session making progress without starving the rest.
constexpr std::size_t kRecvChunk = 64 * 1024;

void put_commit(ByteWriter& w, std::uint64_t index, const Command& cmd) {
  w.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
  w.put_u64(index);
  w.put_u64(cmd.client_id);
  w.put_u64(cmd.request_id);
  w.put_u32(static_cast<std::uint32_t>(cmd.payload.size()));
  w.put_bytes(cmd.payload);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      group_(ReplicaGroupOptions{options_.n, options_.t, options_.use_sockets,
                                 options_.trace_path}) {
  port_ = options_.port;
  listener_ = net::listen_tcp(port_);
  net::set_nonblocking(listener_, true);
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { accept_ready(); });
}

void Server::run() {
  while (!stop_) {
    (void)loop_.wait(/*timeout_ms=*/-1);
    // Group commit: every proposal that arrived in this dispatch batch
    // shares one consensus slot.
    if (!pending_.empty()) flush_pending();
  }
}

void Server::accept_ready() {
  for (;;) {
    net::Fd fd = net::accept_one(listener_);
    if (!fd.valid()) return;
    net::set_nodelay(fd);
    const int raw = fd.get();
    Session session;
    session.fd = std::move(fd);
    sessions_.emplace(raw, std::move(session));
    loop_.add(raw, EPOLLIN, [this, raw](std::uint32_t) { session_ready(raw); });
    ++stats_.sessions_accepted;
  }
}

void Server::session_ready(int fd) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  std::byte buf[kRecvChunk];
  ssize_t r = 0;
  do {
    r = ::recv(fd, buf, sizeof buf, 0);
  } while (r < 0 && errno == EINTR);
  if (r <= 0) {
    drop_session(fd);
    return;
  }
  session.parser.feed(std::span<const std::byte>(buf, static_cast<std::size_t>(r)));
  if (session.parser.corrupt()) {
    drop_session(fd);
    return;
  }
  std::vector<std::byte> payload;
  while (session.parser.next(payload)) {
    handle_frame(session, payload);
    // The frame may have dropped its own session (protocol error).
    if (sessions_.find(fd) == sessions_.end()) return;
  }
}

void Server::handle_frame(Session& session, std::span<const std::byte> payload) {
  ByteReader reader(payload);
  const auto type = reader.get_u8();
  if (!type) {
    send_error(session, "empty frame");
    return;
  }
  switch (static_cast<MsgType>(*type)) {
    case MsgType::kHello: {
      const auto client_id = reader.get_u64();
      if (!client_id) {
        send_error(session, "malformed hello");
        return;
      }
      session.client_id = *client_id;
      session.hello_done = true;
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kWelcome));
      w.put_u64(*client_id);
      w.put_u64(group_.machine().last_request_of(*client_id));
      send_to(session, w.view());
      return;
    }
    case MsgType::kPropose: {
      const auto request_id = reader.get_u64();
      const auto len = reader.get_u32();
      if (!session.hello_done || !request_id || !len) {
        send_error(session, "propose before hello or malformed propose");
        return;
      }
      const auto body = reader.get_bytes(*len);
      if (!body) {
        send_error(session, "malformed propose payload");
        return;
      }
      Pending p;
      p.fd = session.fd.get();
      p.cmd.client_id = session.client_id;
      p.cmd.request_id = *request_id;
      p.cmd.payload.assign(body->begin(), body->end());
      pending_.push_back(std::move(p));
      ++stats_.proposals;
      return;
    }
    case MsgType::kRead: {
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kState));
      w.put_u64(group_.machine().size());
      w.put_u64(group_.machine().digest());
      w.put_u64(group_.slots());
      send_to(session, w.view());
      return;
    }
    case MsgType::kSubscribe: {
      const auto from_index = reader.get_u64();
      if (!from_index) {
        send_error(session, "malformed subscribe");
        return;
      }
      session.subscribed = true;
      session.next_commit_index = *from_index;
      push_commits(session);  // catch up on already-committed entries
      return;
    }
    case MsgType::kShutdown: {
      if (!options_.allow_shutdown) {
        send_error(session, "shutdown disabled");
        return;
      }
      ByteWriter w(scratch_);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kBye));
      send_to(session, w.view());
      stop_ = true;
      return;
    }
    default:
      send_error(session, "unknown message type");
      return;
  }
}

void Server::flush_pending() {
  std::vector<Pending> batch;
  batch.swap(pending_);
  std::vector<Command> commands;
  commands.reserve(batch.size());
  for (const Pending& p : batch) commands.push_back(p.cmd);

  const CommitResult result = group_.commit(commands);
  ++stats_.commit_batches;
  stats_.commit_entries += commands.size();

  // Acks to each proposer still connected.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto it = sessions_.find(batch[i].fd);
    if (it == sessions_.end()) continue;  // proposer left; the commit stands
    const Applied& a = result.applied[i];
    if (a.duplicate) ++stats_.duplicates;
    ByteWriter w(scratch_);
    w.put_u8(static_cast<std::uint8_t>(MsgType::kAck));
    w.put_u64(batch[i].cmd.request_id);
    w.put_u64(a.index);
    w.put_u8(a.duplicate ? 1 : 0);
    send_to(it->second, w.view());
  }

  // New log entries to every subscriber.
  for (auto& [fd, session] : sessions_) {
    if (session.subscribed) push_commits(session);
  }
}

void Server::push_commits(Session& session) {
  const StateMachine& machine = group_.machine();
  while (session.next_commit_index < machine.size()) {
    const std::uint64_t index = session.next_commit_index++;
    ByteWriter w(scratch_);
    put_commit(w, index, machine.entry(index));
    send_to(session, w.view());
  }
}

void Server::drop_session(int fd) {
  loop_.remove(fd);
  sessions_.erase(fd);  // Fd RAII closes the socket
}

void Server::send_to(Session& session, std::span<const std::byte> payload) {
  std::vector<std::byte> frame;
  net::append_frame(frame, payload);
  // Blocking write; a vanished peer surfaces on its next EPOLLIN as EOF.
  (void)net::send_all(session.fd, frame);
}

void Server::send_error(Session& session, const std::string& message) {
  ByteWriter w(scratch_);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kError));
  w.put_u32(static_cast<std::uint32_t>(message.size()));
  w.put_bytes(std::as_bytes(std::span<const char>(message.data(), message.size())));
  send_to(session, w.view());
}

}  // namespace lft::service
