#include "service/ordering.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/consensus.hpp"
#include "core/params.hpp"
#include "net/transport.hpp"

namespace lft::service {

std::vector<std::unique_ptr<core::Program>> make_slot_programs(NodeId n, std::int64_t t) {
  const auto params = core::ConsensusParams::practical(n, t);
  std::vector<std::unique_ptr<core::Program>> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(core::make_few_crashes_process(params, v, /*input=*/1));
  }
  return programs;
}

SlotOutcome evaluate_slot(sim::Report report) {
  SlotOutcome out;
  out.committed = report.completed;
  for (const auto& node : report.nodes) {
    out.committed = out.committed && node.decided && node.decision == 1;
  }
  out.report = std::move(report);
  return out;
}

SlotOutcome run_slot(NodeId n, core::Transport& transport, const core::RunOptions& options) {
  core::RoundDriver driver(n, transport, options);
  return evaluate_slot(driver.run());
}

SlotOutcome run_slot_on_engine(NodeId n, std::int64_t t, const core::RunOptions& options) {
  const auto params = core::ConsensusParams::practical(n, t);
  auto factory = [&](NodeId v) {
    return core::make_few_crashes_process(params, v, /*input=*/1);
  };
  return evaluate_slot(core::run_system(n, t, factory, /*adversary=*/nullptr, options));
}

SlotContext::SlotContext(NodeId n, std::int64_t t, bool use_sockets)
    : n_(n), t_(t), use_sockets_(use_sockets) {
  rebuild();
}

void SlotContext::rebuild() {
  const auto params = core::ConsensusParams::practical(n_, t_);
  processes_.clear();
  std::vector<std::unique_ptr<core::Program>> programs;
  programs.reserve(static_cast<std::size_t>(n_));
  for (NodeId v = 0; v < n_; ++v) {
    auto proc = core::make_few_crashes_process(params, v, /*input=*/1);
    if (!use_sockets_) processes_.push_back(proc.get());
    programs.push_back(std::move(proc));
  }
  if (use_sockets_) {
    transport_ = std::make_unique<net::SocketTransport>(std::move(programs));
  } else {
    transport_ = std::make_unique<core::LoopbackTransport>(std::move(programs));
  }
  driver_ = std::make_unique<core::RoundDriver>(n_, *transport_);
}

void SlotContext::begin(sim::TraceSink* trace) {
  if (!fresh_) {
    // Reuse path: rewind the pooled Programs and driver scratch in place.
    // Sockets mode rebuilds — its Programs were moved into replica threads —
    // as does the (currently unreachable) case of a stage without reset
    // support.
    bool reusable = !use_sockets_;
    if (reusable) {
      const auto params = core::ConsensusParams::practical(n_, t_);
      for (core::StageProcess* proc : processes_) {
        if (!core::reset_few_crashes_process(*proc, params, /*input=*/1)) {
          reusable = false;
          break;
        }
      }
    }
    if (reusable) {
      driver_->reset();
    } else {
      rebuild();
    }
  }
  driver_->set_trace(trace);
  fresh_ = false;
}

}  // namespace lft::service
