#include "service/ordering.hpp"

#include <utility>

#include "core/consensus.hpp"
#include "core/params.hpp"

namespace lft::service {

std::vector<std::unique_ptr<core::Program>> make_slot_programs(NodeId n, std::int64_t t) {
  const auto params = core::ConsensusParams::practical(n, t);
  std::vector<std::unique_ptr<core::Program>> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(core::make_few_crashes_process(params, v, /*input=*/1));
  }
  return programs;
}

SlotOutcome evaluate_slot(sim::Report report) {
  SlotOutcome out;
  out.committed = report.completed;
  for (const auto& node : report.nodes) {
    out.committed = out.committed && node.decided && node.decision == 1;
  }
  out.report = std::move(report);
  return out;
}

SlotOutcome run_slot(NodeId n, core::Transport& transport, const core::RunOptions& options) {
  core::RoundDriver driver(n, transport, options);
  return evaluate_slot(driver.run());
}

SlotOutcome run_slot_on_engine(NodeId n, std::int64_t t, const core::RunOptions& options) {
  const auto params = core::ConsensusParams::practical(n, t);
  auto factory = [&](NodeId v) {
    return core::make_few_crashes_process(params, v, /*input=*/1);
  };
  return evaluate_slot(core::run_system(n, t, factory, /*adversary=*/nullptr, options));
}

}  // namespace lft::service
