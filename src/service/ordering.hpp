// The service's ordering engine: each commit slot is one fault-free
// Few-Crashes-Consensus execution (Figure 3) over the replica group, every
// input 1 ("commit the pending batch"). The slot is seed-independent by
// construction, so a trace recorded from a *live* RoundDriver execution
// replays bit-for-bit against the registered "service_slot_commit" scenario
// under sim::Engine — the bridge that puts live service bugs in reach of
// the forensics plane (lft_forensics replay / shrink).
#pragma once

#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "core/io.hpp"
#include "core/run_options.hpp"
#include "sim/engine.hpp"

namespace lft::service {

/// Default replica group shape: 7 replicas tolerating 1 crash.
inline constexpr NodeId kDefaultGroupSize = 7;
inline constexpr std::int64_t kDefaultFaultBudget = 1;

/// The scenario registry name live slot traces carry in their metadata —
/// what lets `lft_forensics replay` re-execute them under the engine.
inline constexpr const char* kSlotScenarioName = "service_slot_commit";

/// Builds the consensus Programs for one commit slot: Few-Crashes-Consensus
/// at ConsensusParams::practical(n, t), every node's input 1.
[[nodiscard]] std::vector<std::unique_ptr<core::Program>> make_slot_programs(NodeId n,
                                                                             std::int64_t t);

/// Verdict of one slot.
struct SlotOutcome {
  sim::Report report;
  bool committed = false;  ///< completed and every replica decided 1
};

[[nodiscard]] SlotOutcome evaluate_slot(sim::Report report);

/// Runs one slot over a live Transport (whose Programs must come from
/// make_slot_programs at the same shape) under the RoundDriver's lock-step.
[[nodiscard]] SlotOutcome run_slot(NodeId n, core::Transport& transport,
                                   const core::RunOptions& options = {});

/// The deterministic twin: the same slot under sim::Engine, fault-free.
/// Bit-identical Report and trace digests to run_slot — the equivalence the
/// twin tests pin down and the forensics replay path depends on.
[[nodiscard]] SlotOutcome run_slot_on_engine(NodeId n, std::int64_t t,
                                             const core::RunOptions& options = {});

/// A pooled slot execution context: the consensus Programs, the Transport,
/// and the RoundDriver scratch for one slot, reusable across slots. This is
/// what makes the slot pipeline cheap — begin() *resets* the pooled
/// StageProcesses and rewinds the driver instead of reconstructing them
/// (loopback; the sockets transport pins its Programs to replica threads,
/// so that path rebuilds per slot). A reset context executes bit-identically
/// to a freshly built one — the pipelined twin tests pin this down.
class SlotContext {
 public:
  SlotContext(NodeId n, std::int64_t t, bool use_sockets);

  /// Prepares a fresh slot execution, recording digests into `trace` when
  /// non-null. Must be called before the first step() of every slot.
  void begin(sim::TraceSink* trace = nullptr);

  /// Advances one lock-step consensus round; false once the slot finished.
  [[nodiscard]] bool step() { return driver_->step(); }

  /// Evaluates the finished slot. Call after step() returns false.
  [[nodiscard]] SlotOutcome finish() { return evaluate_slot(driver_->finish()); }

 private:
  void rebuild();

  NodeId n_;
  std::int64_t t_;
  bool use_sockets_;
  bool fresh_ = true;
  /// Borrowed views into the loopback transport's Programs, for reset();
  /// empty in sockets mode.
  std::vector<core::StageProcess*> processes_;
  std::unique_ptr<core::Transport> transport_;
  std::unique_ptr<core::RoundDriver> driver_;
};

}  // namespace lft::service
