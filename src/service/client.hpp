// Blocking client for the lft_serve wire protocol — the building block of
// tests/test_service.cpp and the closed-loop load generator
// (examples/lft_bench_client.cpp). One outstanding request per Client; a
// connection that also subscribes has kCommit frames interleaved with its
// responses, which the client transparently queues for next_commit().
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/codec.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/obs.hpp"
#include "service/state_machine.hpp"

namespace lft::service {

class Client {
 public:
  /// Connects to 127.0.0.1:`port` and performs the kHello/kWelcome
  /// handshake. Check connected() before use.
  Client(std::uint16_t port, std::uint64_t client_id);

  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
  [[nodiscard]] std::uint64_t client_id() const noexcept { return client_id_; }
  /// From the kWelcome: the last request the service applied for this
  /// client (0 if none) — where a reconnecting client resumes.
  [[nodiscard]] std::uint64_t welcome_last_request() const noexcept {
    return welcome_last_request_;
  }

  /// kPropose → kAck round trip; nullopt when the connection died.
  [[nodiscard]] std::optional<Applied> propose(std::uint64_t request_id,
                                               std::span<const std::byte> payload);

  /// Pipelined half-calls for windowed closed loops (lft_bench_client):
  /// send up to W proposes, then collect acks as they arrive. Acks come
  /// back in request order (the connection is FIFO and the log is total).
  [[nodiscard]] bool send_propose(std::uint64_t request_id,
                                  std::span<const std::byte> payload);

  /// Corked variant: queues the propose frame in a local buffer instead of
  /// writing it. flush() sends everything queued in one vectored-size write —
  /// a pipelined window of W proposes costs one syscall, not W.
  void queue_propose(std::uint64_t request_id, std::span<const std::byte> payload);
  [[nodiscard]] bool flush();
  struct Ack {
    std::uint64_t request_id = 0;
    Applied applied;
  };
  [[nodiscard]] std::optional<Ack> recv_ack();

  struct State {
    std::uint64_t size = 0;
    std::uint64_t digest = 0;
    std::uint64_t slots = 0;
  };
  /// kRead → kState round trip.
  [[nodiscard]] std::optional<State> read_state();

  /// Registers for kCommit pushes starting at log index `from_index`.
  [[nodiscard]] bool subscribe(std::uint64_t from_index);

  struct CommitEvent {
    std::uint64_t index = 0;
    std::uint64_t client_id = 0;
    std::uint64_t request_id = 0;
    std::vector<std::byte> payload;
  };
  /// Next committed entry (queued or read from the socket); nullopt on a
  /// dead connection.
  [[nodiscard]] std::optional<CommitEvent> next_commit();

  /// kStatsRequest → kStatsReply: the server's live telemetry snapshot
  /// (request-latency histograms, pump timings, counters — see
  /// docs/observability.md). nullopt on a dead connection or a reply this
  /// client's codec version cannot decode.
  [[nodiscard]] std::optional<obs::Snapshot> server_stats();

  /// kShutdown → kBye; returns false if the server refused or vanished.
  [[nodiscard]] bool shutdown_server();

 private:
  /// Next whole frame payload out of the buffered parser, blocking on the
  /// socket as needed. The span is valid until the next next_frame() call.
  [[nodiscard]] bool next_frame(std::span<const std::byte>& payload);
  /// Reads frames until one of type `want` arrives, queueing kCommit pushes
  /// encountered on the way; the payload (sans type byte) lands in `out`.
  [[nodiscard]] bool recv_expect(std::uint8_t want, std::vector<std::byte>& out);
  [[nodiscard]] bool parse_commit(ByteReader& reader);
  [[nodiscard]] bool send_payload(std::span<const std::byte> payload);

  net::Fd fd_;
  std::uint64_t client_id_ = 0;
  std::uint64_t welcome_last_request_ = 0;
  std::deque<CommitEvent> commits_;
  net::FrameParser parser_;         ///< buffered inbound bytes
  std::vector<std::byte> out_;      ///< corked outbound frames (flush())
  std::vector<std::byte> scratch_;  ///< reused encode buffer
};

}  // namespace lft::service
