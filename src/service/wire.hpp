// lft_serve client wire protocol: length-prefixed frames (net/frame.hpp)
// whose payload is [u8 MsgType][codec fields]. Documented field by field in
// docs/service.md — keep the two in sync (tests/test_docs.cpp spot-checks
// the doc against this header's enumerators).
//
//   client -> server            server -> client
//   kHello [client_id]          kWelcome [client_id][last_request_id]
//   kPropose [request_id]       kAck [request_id][log_index][duplicate]
//            [len][payload]
//   kRead                       kState [size][digest][slots]
//   kSubscribe [from_index]     kCommit [index][client_id][request_id]
//                                       [len][payload]   (one per entry)
//   kShutdown                   kBye
//   kStatsRequest               kStatsReply [obs::Snapshot binary codec]
//                               kError [len][message]
#pragma once

#include <cstdint>

namespace lft::service {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kPropose = 3,
  kAck = 4,
  kRead = 5,
  kState = 6,
  kSubscribe = 7,
  kCommit = 8,
  kShutdown = 9,
  kBye = 10,
  kError = 11,
  kStatsRequest = 12,
  kStatsReply = 13,
};

}  // namespace lft::service
