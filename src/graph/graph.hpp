// Immutable simple undirected graph in compressed-sparse-row form. Overlay
// topologies are built once per protocol configuration and shared read-only
// by all simulated nodes, matching the paper's model where every node derives
// the overlay from the public parameters (n, t).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace lft::graph {

class Graph {
 public:
  Graph() = default;

  /// Builds a simple undirected graph on n vertices from an edge list.
  /// Self-loops and duplicate edges are dropped; each neighbor list is sorted.
  static Graph from_edges(NodeId n, std::span<const std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] NodeId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(adjacency_.size()) / 2;
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[static_cast<std::size_t>(v)],
            adjacency_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  [[nodiscard]] int degree(NodeId v) const noexcept {
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// O(log degree) membership test (neighbor lists are sorted).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] int min_degree() const noexcept;
  [[nodiscard]] int max_degree() const noexcept;
  [[nodiscard]] bool is_regular() const noexcept { return min_degree() == max_degree(); }

 private:
  NodeId n_ = 0;
  std::vector<std::int64_t> offsets_;  // n_ + 1 entries
  std::vector<NodeId> adjacency_;
};

}  // namespace lft::graph
