#include "graph/overlay.hpp"

#include <map>
#include <mutex>
#include <tuple>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"
#include "graph/properties.hpp"
#include "graph/random_regular.hpp"
#include "graph/spectral.hpp"

namespace lft::graph {

namespace {

constexpr std::uint64_t kOverlayPurpose = 0x4c46544f56455231ULL;  // "LFTOVER1"

// Spectral certification is statistically meaningful only for graphs that
// are not almost-complete; tiny instances are accepted on connectivity alone.
constexpr NodeId kSpectralMinVertices = 24;
constexpr double kSpectralSlack = 1.25;
constexpr int kMaxAttempts = 32;

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::tuple<NodeId, int, std::uint64_t>, std::shared_ptr<const Graph>>& cache() {
  static std::map<std::tuple<NodeId, int, std::uint64_t>, std::shared_ptr<const Graph>> c;
  return c;
}

}  // namespace

Graph make_overlay(NodeId n, int degree, std::uint64_t tag) {
  LFT_ASSERT(n >= 1);
  LFT_ASSERT(degree >= 1);
  if (n == 1) return Graph::from_edges(1, {});
  if (degree >= n - 1) return complete_graph(n);

  int d = degree;
  if ((static_cast<std::int64_t>(n) * d) % 2 != 0) {
    ++d;
    if (d >= n - 1) return complete_graph(n);
  }

  // Degree <= 2 graphs (matchings, cycle unions) cannot be certified as
  // expanders; they only arise in degenerate configurations (t = 0 caps),
  // where any simple regular graph serves.
  if (d <= 2) {
    return random_regular_graph(
        n, d, make_seed(kOverlayPurpose, static_cast<std::uint64_t>(n),
                        static_cast<std::uint64_t>(d), tag));
  }

  // Power-iteration cost scales with n*d*iters, and the 1.25 certification
  // slack tolerates a coarser estimate (which converges from below), so
  // large overlays use fewer iterations.
  const int spectral_iters = n >= 20000 ? 60 : 150;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::uint64_t seed =
        make_seed(kOverlayPurpose, static_cast<std::uint64_t>(n),
                  static_cast<std::uint64_t>(d), tag ^ static_cast<std::uint64_t>(attempt));
    Graph g = random_regular_graph(n, d, seed);
    if (!is_connected(g)) continue;
    if (n >= kSpectralMinVertices && d >= 3 &&
        second_eigenvalue_estimate(g, spectral_iters) > ramanujan_bound(d) * kSpectralSlack) {
      continue;
    }
    return g;
  }
  LFT_ASSERT_MSG(false, "failed to certify an expander overlay");
  return Graph{};
}

std::shared_ptr<const Graph> shared_overlay(NodeId n, int degree, std::uint64_t tag) {
  const auto key = std::make_tuple(n, degree, tag);
  {
    std::lock_guard<std::mutex> lock(cache_mutex());
    auto it = cache().find(key);
    if (it != cache().end()) return it->second;
  }
  auto g = std::make_shared<const Graph>(make_overlay(n, degree, tag));
  std::lock_guard<std::mutex> lock(cache_mutex());
  return cache().emplace(key, std::move(g)).first->second;
}

void clear_overlay_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

}  // namespace lft::graph
