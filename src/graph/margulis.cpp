#include "graph/margulis.hpp"

#include <vector>

#include "common/assert.hpp"

namespace lft::graph {

Graph margulis_graph(NodeId m) {
  LFT_ASSERT(m >= 2);
  const NodeId n = m * m;
  auto id = [m](NodeId x, NodeId y) { return x * m + y; };
  auto norm = [m](NodeId v) { return ((v % m) + m) % m; };

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * 4);
  for (NodeId x = 0; x < m; ++x) {
    for (NodeId y = 0; y < m; ++y) {
      const NodeId u = id(x, y);
      // The four forward generators; the BFS over undirected edges supplies
      // the four inverses.
      edges.emplace_back(u, id(norm(x + 2 * y), y));
      edges.emplace_back(u, id(norm(x + 2 * y + 1), y));
      edges.emplace_back(u, id(x, norm(y + 2 * x)));
      edges.emplace_back(u, id(x, norm(y + 2 * x + 1)));
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace lft::graph
