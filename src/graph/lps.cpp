#include "graph/lps.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace lft::graph {

namespace {

// 2x2 matrix over F_q.
struct Mat {
  std::uint64_t a, b, c, d;
};

Mat mat_mul(const Mat& x, const Mat& y, std::uint64_t q) {
  return Mat{
      (mulmod(x.a, y.a, q) + mulmod(x.b, y.c, q)) % q,
      (mulmod(x.a, y.b, q) + mulmod(x.b, y.d, q)) % q,
      (mulmod(x.c, y.a, q) + mulmod(x.d, y.c, q)) % q,
      (mulmod(x.c, y.b, q) + mulmod(x.d, y.d, q)) % q,
  };
}

// Canonical representative of the projective class of m: scale so the first
// nonzero entry (scanning a, b, c, d) equals 1.
Mat projective_canon(const Mat& m, std::uint64_t q) {
  std::uint64_t lead = m.a != 0 ? m.a : (m.b != 0 ? m.b : (m.c != 0 ? m.c : m.d));
  LFT_ASSERT(lead != 0);
  const std::uint64_t inv = invmod(lead, q);
  return Mat{mulmod(m.a, inv, q), mulmod(m.b, inv, q), mulmod(m.c, inv, q),
             mulmod(m.d, inv, q)};
}

std::uint64_t mat_key(const Mat& m) {
  // q < 2^16 in all catalog sizes, so 16 bits per entry are enough.
  return (m.a << 48) | (m.b << 32) | (m.c << 16) | m.d;
}

// All integer solutions of a0^2+a1^2+a2^2+a3^2 = p with a0 > 0 odd and
// a1, a2, a3 even. Jacobi's theorem gives exactly p + 1 of them for a prime
// p == 1 (mod 4).
std::vector<std::array<std::int64_t, 4>> sum_of_four_squares(std::int64_t p) {
  std::vector<std::array<std::int64_t, 4>> out;
  const auto r = static_cast<std::int64_t>(std::sqrt(static_cast<double>(p))) + 1;
  const std::int64_t e = r - (r % 2);  // largest even value <= r
  for (std::int64_t a0 = 1; a0 * a0 <= p; a0 += 2) {
    for (std::int64_t a1 = -e; a1 <= e; a1 += 2) {
      for (std::int64_t a2 = -e; a2 <= e; a2 += 2) {
        const std::int64_t rest = p - a0 * a0 - a1 * a1 - a2 * a2;
        if (rest < 0) continue;
        const auto a3 = static_cast<std::int64_t>(
            std::llround(std::sqrt(static_cast<double>(rest))));
        if (a3 * a3 != rest || a3 % 2 != 0) continue;
        out.push_back({a0, a1, a2, a3});
        if (a3 != 0) out.push_back({a0, a1, a2, -a3});
      }
    }
  }
  return out;
}

std::uint64_t to_fq(std::int64_t v, std::uint64_t q) {
  std::int64_t m = v % static_cast<std::int64_t>(q);
  if (m < 0) m += static_cast<std::int64_t>(q);
  return static_cast<std::uint64_t>(m);
}

}  // namespace

std::int64_t lps_vertex_count(std::uint64_t p, std::uint64_t q) {
  const auto qq = static_cast<std::int64_t>(q);
  const std::int64_t pgl = qq * (qq * qq - 1);
  return legendre(p, q) == 1 ? pgl / 2 : pgl;
}

LpsResult lps_graph(std::uint64_t p, std::uint64_t q) {
  LFT_ASSERT(is_prime(p) && is_prime(q) && p != q);
  LFT_ASSERT(p % 4 == 1 && q % 4 == 1);
  LFT_ASSERT_MSG(static_cast<double>(q) > 2.0 * std::sqrt(static_cast<double>(p)),
                 "q > 2*sqrt(p) required for a simple graph");
  LFT_ASSERT_MSG(q < (1ULL << 16), "q too large for packed matrix keys");

  // i with i^2 == -1 (mod q); exists since q == 1 (mod 4).
  const std::uint64_t iu = sqrtmod(q - 1, q);

  const auto sols = sum_of_four_squares(static_cast<std::int64_t>(p));
  LFT_ASSERT_MSG(sols.size() == p + 1, "expected exactly p+1 generator solutions");

  // Generator matrices g = [[a0 + i*a1, a2 + i*a3], [-a2 + i*a3, a0 - i*a1]].
  std::vector<Mat> gens;
  gens.reserve(sols.size());
  for (const auto& s : sols) {
    const std::uint64_t a0 = to_fq(s[0], q), a1 = to_fq(s[1], q), a2 = to_fq(s[2], q),
                        a3 = to_fq(s[3], q);
    Mat g{
        (a0 + mulmod(iu, a1, q)) % q,
        (a2 + mulmod(iu, a3, q)) % q,
        (q - a2 + mulmod(iu, a3, q)) % q,
        (a0 + q - mulmod(iu, a1, q) % q) % q,
    };
    gens.push_back(projective_canon(g, q));
  }

  // BFS over the Cayley graph from the identity. When (p/q) = 1 the
  // generators lie in PSL(2,q), so BFS explores exactly the PSL coset inside
  // PGL(2,q); otherwise it covers all of PGL(2,q) and the graph is bipartite.
  const bool in_psl = legendre(p, q) == 1;
  std::unordered_map<std::uint64_t, NodeId> index;
  std::vector<Mat> vertices;
  std::vector<std::pair<NodeId, NodeId>> edges;

  const Mat identity{1, 0, 0, 1};
  index.emplace(mat_key(identity), 0);
  vertices.push_back(identity);
  std::queue<NodeId> frontier;
  frontier.push(0);

  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    const Mat mu = vertices[static_cast<std::size_t>(u)];
    for (const Mat& g : gens) {
      const Mat w = projective_canon(mat_mul(g, mu, q), q);
      const std::uint64_t key = mat_key(w);
      auto [it, inserted] = index.emplace(key, static_cast<NodeId>(vertices.size()));
      if (inserted) {
        vertices.push_back(w);
        frontier.push(it->second);
      }
      if (u <= it->second) edges.emplace_back(u, it->second);
    }
  }

  const std::int64_t expected = lps_vertex_count(p, q);
  LFT_ASSERT_MSG(static_cast<std::int64_t>(vertices.size()) == expected,
                 "LPS BFS covered an unexpected number of vertices");

  LpsResult result;
  result.graph = Graph::from_edges(static_cast<NodeId>(vertices.size()), edges);
  result.bipartite = !in_psl;
  result.degree = static_cast<int>(p) + 1;
  return result;
}

std::vector<LpsParams> lps_catalog(std::int64_t max_vertices) {
  std::vector<LpsParams> out;
  for (std::uint64_t p : {5ULL, 13ULL, 17ULL, 29ULL, 37ULL, 41ULL}) {
    for (std::uint64_t q : {13ULL, 17ULL, 29ULL, 37ULL, 41ULL, 53ULL, 61ULL, 73ULL, 89ULL,
                            97ULL}) {
      if (p == q) continue;
      if (static_cast<double>(q) <= 2.0 * std::sqrt(static_cast<double>(p))) continue;
      if (legendre(p, q) != 1) continue;  // catalog lists the PSL (non-bipartite) graphs
      const std::int64_t v = lps_vertex_count(p, q);
      if (v <= max_vertices) out.push_back({p, q, v});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LpsParams& a, const LpsParams& b) { return a.vertices < b.vertices; });
  return out;
}

}  // namespace lft::graph
