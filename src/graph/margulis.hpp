// Margulis-Gabber-Galil expander: an explicit 8-regular expander on the
// torus Z_m x Z_m (second eigenvalue at most 5*sqrt(2) < 8). A fully
// deterministic, construction-free-of-randomness alternative overlay used in
// ablation benches and property tests.
#pragma once

#include "graph/graph.hpp"

namespace lft::graph {

/// Builds the MGG expander on m*m vertices (m >= 2). Parallel edges are
/// collapsed, so a few vertices can have degree slightly below 8.
[[nodiscard]] Graph margulis_graph(NodeId m);

}  // namespace lft::graph
