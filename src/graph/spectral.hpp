// Spectral certification of expanders. For a d-regular graph the paper's
// Ramanujan condition is lambda = max(|lambda_2|, |lambda_n|) <= 2*sqrt(d-1);
// we estimate lambda with power iteration on the adjacency operator after
// deflating the all-ones top eigenvector.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace lft::graph {

/// Estimate of lambda = max(|lambda_2|, |lambda_n|). Deterministic in seed.
/// The estimate converges from below; `iters` around 150 gives ~1% accuracy
/// on well-separated spectra.
[[nodiscard]] double second_eigenvalue_estimate(const Graph& g, int iters = 150,
                                                std::uint64_t seed = 0x5eed);

/// Ramanujan bound 2*sqrt(d-1) for degree d.
[[nodiscard]] double ramanujan_bound(int degree);

/// True iff the estimated lambda is within `slack_factor` of the Ramanujan
/// bound (slack_factor = 1.0 tests the exact bound; certification uses a
/// small tolerance because random regular graphs are *near*-Ramanujan).
[[nodiscard]] bool is_near_ramanujan(const Graph& g, double slack_factor = 1.15);

/// Cheeger-style lower bound on the edge expansion of a d-regular graph:
/// h(G) >= (d - lambda_2) / 2 >= (d - lambda) / 2.
[[nodiscard]] double edge_expansion_lower_bound(const Graph& g);

}  // namespace lft::graph
