#include "graph/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::graph {

Graph Graph::from_edges(NodeId n, std::span<const std::pair<NodeId, NodeId>> edges) {
  LFT_ASSERT(n >= 0);
  Graph g;
  g.n_ = n;

  // Collect both directions, drop self-loops, then sort + unique.
  std::vector<std::pair<NodeId, NodeId>> directed;
  directed.reserve(edges.size() * 2);
  for (auto [u, v] : edges) {
    LFT_ASSERT(u >= 0 && u < n && v >= 0 && v < n);
    if (u == v) continue;
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()), directed.end());

  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [u, v] : directed) {
    (void)v;
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.reserve(directed.size());
  for (auto [u, v] : directed) {
    (void)u;
    g.adjacency_.push_back(v);
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

int Graph::min_degree() const noexcept {
  if (n_ == 0) return 0;
  int m = degree(0);
  for (NodeId v = 1; v < n_; ++v) m = std::min(m, degree(v));
  return m;
}

int Graph::max_degree() const noexcept {
  int m = 0;
  for (NodeId v = 0; v < n_; ++v) m = std::max(m, degree(v));
  return m;
}

}  // namespace lft::graph
