#include "graph/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::graph {

Graph Graph::from_edges(NodeId n, std::span<const std::pair<NodeId, NodeId>> edges) {
  LFT_ASSERT(n >= 0);
  Graph g;
  g.n_ = n;

  // Counting-sort CSR build: a global sort of the 2m directed edges is the
  // hot spot at bench scale, so instead count degrees, scatter into place,
  // then sort + dedup each (short) neighbor list.
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [u, v] : edges) {
    LFT_ASSERT(u >= 0 && u < n && v >= 0 && v < n);
    if (u == v) continue;
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(static_cast<std::size_t>(g.offsets_[static_cast<std::size_t>(n)]));
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : edges) {
    if (u == v) continue;
    g.adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    g.adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }

  // Sort each neighbor list and drop duplicate edges, compacting in place
  // (the write position never passes the read position).
  std::int64_t write = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto begin = g.adjacency_.begin() + g.offsets_[static_cast<std::size_t>(v)];
    const auto end = g.adjacency_.begin() + g.offsets_[static_cast<std::size_t>(v) + 1];
    std::sort(begin, end);
    const auto unique_end = std::unique(begin, end);
    g.offsets_[static_cast<std::size_t>(v)] = write;
    write += std::distance(begin, unique_end);
    std::move(begin, unique_end, g.adjacency_.begin() + g.offsets_[static_cast<std::size_t>(v)]);
  }
  g.offsets_[static_cast<std::size_t>(n)] = write;
  g.adjacency_.resize(static_cast<std::size_t>(write));
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

int Graph::min_degree() const noexcept {
  if (n_ == 0) return 0;
  int m = degree(0);
  for (NodeId v = 1; v < n_; ++v) m = std::min(m, degree(v));
  return m;
}

int Graph::max_degree() const noexcept {
  int m = 0;
  for (NodeId v = 0; v < n_; ++v) m = std::max(m, degree(v));
  return m;
}

}  // namespace lft::graph
