#include "graph/random_regular.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_set64.hpp"
#include "common/rng.hpp"

namespace lft::graph {

namespace {

std::uint64_t edge_key(NodeId u, NodeId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

Graph random_regular_graph(NodeId n, int d, std::uint64_t seed) {
  LFT_ASSERT(n > 0 && d > 0 && d < n);
  LFT_ASSERT_MSG((static_cast<std::int64_t>(n) * d) % 2 == 0, "n*d must be even");

  Rng rng(seed);

  // Configuration model: pair up n*d stubs, then repair self-loops and
  // duplicate edges with random edge switches until the multigraph is simple.
  const std::size_t stubs_count = static_cast<std::size_t>(n) * static_cast<std::size_t>(d);
  std::vector<NodeId> stubs(stubs_count);
  for (std::size_t i = 0; i < stubs_count; ++i) {
    stubs[i] = static_cast<NodeId>(i / static_cast<std::size_t>(d));
  }
  rng.shuffle(std::span<NodeId>(stubs));

  const std::size_t m = stubs_count / 2;
  std::vector<std::pair<NodeId, NodeId>> pairs(m);
  for (std::size_t i = 0; i < m; ++i) pairs[i] = {stubs[2 * i], stubs[2 * i + 1]};

  FlatSet64 present(m);
  std::vector<char> good(m, 0);

  // First pass: register conflict-free edges, queue the rest for repair.
  std::vector<std::size_t> bad;
  for (std::size_t i = 0; i < m; ++i) {
    const auto [u, v] = pairs[i];
    const bool conflict = (u == v) || present.contains(edge_key(u, v));
    if (conflict) {
      bad.push_back(i);
    } else {
      present.insert(edge_key(u, v));
      good[i] = 1;
    }
  }

  // Repair: switch each bad pair with a random good pair so both end valid.
  std::uint64_t guard = 0;
  const std::uint64_t guard_limit = stubs_count * 1000ULL + 100000ULL;
  while (!bad.empty()) {
    LFT_ASSERT_MSG(++guard < guard_limit, "edge-switch repair did not converge");
    const std::size_t i = bad.back();
    const std::size_t j = static_cast<std::size_t>(rng.uniform(m));
    if (j == i || good[j] == 0) continue;
    auto [a, b] = pairs[i];
    auto [c, e] = pairs[j];
    // Proposed switch: (a,c) and (b,e).
    if (a == c || b == e) continue;
    const std::uint64_t k1 = edge_key(a, c);
    const std::uint64_t k2 = edge_key(b, e);
    if (k1 == k2 || present.contains(k1) || present.contains(k2)) continue;
    present.erase(edge_key(c, e));
    pairs[i] = {a, c};
    pairs[j] = {b, e};
    present.insert(k1);
    present.insert(k2);
    good[i] = 1;
    bad.pop_back();
  }

  return Graph::from_edges(n, pairs);
}

}  // namespace lft::graph
