#include "graph/spectral.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace lft::graph {

namespace {

// Removes the component along the all-ones direction and normalizes.
void deflate_and_normalize(std::vector<double>& x) {
  const auto n = static_cast<double>(x.size());
  double mean = 0;
  for (double v : x) mean += v;
  mean /= n;
  double norm = 0;
  for (double& v : x) {
    v -= mean;
    norm += v * v;
  }
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& v : x) v /= norm;
  }
}

}  // namespace

double second_eigenvalue_estimate(const Graph& g, int iters, std::uint64_t seed) {
  const NodeId n = g.num_vertices();
  LFT_ASSERT(n >= 2);
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = static_cast<double>(rng.uniform(1u << 20)) / (1u << 20) - 0.5;
  deflate_and_normalize(x);

  std::vector<double> y(static_cast<std::size_t>(n));
  double lambda = 0;
  for (int it = 0; it < iters; ++it) {
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0;
      for (NodeId w : g.neighbors(v)) acc += x[static_cast<std::size_t>(w)];
      y[static_cast<std::size_t>(v)] = acc;
    }
    double norm = 0;
    for (double v : y) norm += v * v;
    lambda = std::sqrt(norm);  // ||A x|| with ||x|| = 1
    x.swap(y);
    deflate_and_normalize(x);
  }
  return lambda;
}

double ramanujan_bound(int degree) {
  LFT_ASSERT(degree >= 2);
  return 2.0 * std::sqrt(static_cast<double>(degree - 1));
}

bool is_near_ramanujan(const Graph& g, double slack_factor) {
  const int d = g.max_degree();
  if (d <= 1) return false;
  return second_eigenvalue_estimate(g) <= ramanujan_bound(d) * slack_factor;
}

double edge_expansion_lower_bound(const Graph& g) {
  const double lambda = second_eigenvalue_estimate(g);
  const double d = g.max_degree();
  const double bound = (d - lambda) / 2.0;
  return bound > 0 ? bound : 0.0;
}

}  // namespace lft::graph
