// Reference graph families: complete, ring, star, hypercube, grid. Complete
// graphs serve as degenerate overlays when the requested expander degree
// reaches n-1; the others are baselines and test fixtures.
#pragma once

#include "graph/graph.hpp"

namespace lft::graph {

[[nodiscard]] Graph complete_graph(NodeId n);
[[nodiscard]] Graph ring_graph(NodeId n);
[[nodiscard]] Graph star_graph(NodeId n);  // vertex 0 is the hub
/// Hypercube on 2^dim vertices.
[[nodiscard]] Graph hypercube_graph(int dim);
/// 2-D torus grid on rows*cols vertices.
[[nodiscard]] Graph torus_graph(NodeId rows, NodeId cols);

}  // namespace lft::graph
