#include "graph/phase_graph.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

#include "common/assert.hpp"
#include "common/flat_set64.hpp"
#include "common/rng.hpp"

namespace lft::graph {

namespace {

using StrideKey = std::tuple<NodeId, int, std::uint64_t>;

std::mutex& stride_cache_mutex() {
  static std::mutex m;
  return m;
}

std::map<StrideKey, std::shared_ptr<const std::vector<NodeId>>>& stride_cache() {
  static std::map<StrideKey, std::shared_ptr<const std::vector<NodeId>>> c;
  return c;
}

std::shared_ptr<const std::vector<NodeId>> shared_strides(NodeId n, int degree,
                                                          std::uint64_t seed) {
  const StrideKey key{n, degree, seed};
  {
    std::lock_guard<std::mutex> lock(stride_cache_mutex());
    auto it = stride_cache().find(key);
    if (it != stride_cache().end()) return it->second;
  }
  const auto stride_count = static_cast<std::size_t>(degree / 2);
  const auto stride_range = static_cast<std::uint64_t>((n - 1) / 2);
  LFT_ASSERT(stride_count <= stride_range);
  Rng rng(seed);
  FlatSet64 seen(stride_count);
  auto strides = std::make_shared<std::vector<NodeId>>();
  strides->reserve(stride_count);
  while (strides->size() < stride_count) {
    const auto s = static_cast<NodeId>(1 + rng.uniform(stride_range));
    if (seen.insert(static_cast<std::uint64_t>(s))) strides->push_back(s);
  }
  std::sort(strides->begin(), strides->end());
  std::lock_guard<std::mutex> lock(stride_cache_mutex());
  return stride_cache().emplace(key, std::move(strides)).first->second;
}

}  // namespace

PhaseGraph::PhaseGraph(std::shared_ptr<const Graph> g) : graph_(std::move(g)) {
  LFT_ASSERT(graph_ != nullptr);
  n_ = graph_->num_vertices();
}

PhaseGraph PhaseGraph::circulant(NodeId n, int degree, std::uint64_t seed) {
  LFT_ASSERT(n >= 3);
  LFT_ASSERT(degree >= 2 && degree < n - 1);
  PhaseGraph g;
  g.n_ = n;
  g.strides_ = shared_strides(n, degree, seed);
  return g;
}

PhaseGraph PhaseGraph::complete(NodeId n) {
  LFT_ASSERT(n >= 1);
  PhaseGraph g;
  g.n_ = n;
  g.complete_ = true;
  return g;
}

NodeId PhaseGraph::num_vertices() const noexcept { return n_; }

int PhaseGraph::max_degree() const noexcept {
  if (graph_ != nullptr) return graph_->max_degree();
  if (complete_) return static_cast<int>(n_ - 1);
  return static_cast<int>(2 * strides_->size());
}

void PhaseGraph::append_neighbors(NodeId v, std::vector<NodeId>& out) const {
  for_each_neighbor(v, [&out](NodeId w) { out.push_back(w); });
}

}  // namespace lft::graph
