#include "graph/families.hpp"

#include <vector>

#include "common/assert.hpp"

namespace lft::graph {

Graph complete_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph ring_graph(NodeId n) {
  LFT_ASSERT(n >= 3);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph star_graph(NodeId n) {
  LFT_ASSERT(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph hypercube_graph(int dim) {
  LFT_ASSERT(dim >= 1 && dim < 30);
  const NodeId n = NodeId{1} << dim;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(dim) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (int b = 0; b < dim; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph torus_graph(NodeId rows, NodeId cols) {
  LFT_ASSERT(rows >= 3 && cols >= 3);
  const NodeId n = rows * cols;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace lft::graph
