// Lubotzky-Phillips-Sarnak Ramanujan graphs X^{p,q}: (p+1)-regular Cayley
// graphs of PSL(2,q) (when p is a quadratic residue mod q) or PGL(2,q)
// (otherwise), for distinct primes p, q == 1 (mod 4). These are the graphs
// the paper's Section 3 analyzes; we construct them exactly at the vertex
// counts where they exist and use them to validate Theorems 1-4 directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lft::graph {

struct LpsResult {
  Graph graph;
  bool bipartite = false;  // true for the PGL (non-residue) case
  int degree = 0;          // p + 1
};

/// Builds X^{p,q}. Requirements: p, q distinct primes, p % 4 == q % 4 == 1,
/// q > 2 * sqrt(p) (simplicity condition).
[[nodiscard]] LpsResult lps_graph(std::uint64_t p, std::uint64_t q);

/// Vertex count of X^{p,q}: |PSL(2,q)| = q(q^2-1)/2 when (p/q) = 1, else
/// |PGL(2,q)| = q(q^2-1).
[[nodiscard]] std::int64_t lps_vertex_count(std::uint64_t p, std::uint64_t q);

struct LpsParams {
  std::uint64_t p = 0;
  std::uint64_t q = 0;
  std::int64_t vertices = 0;
};

/// Enumerates (p, q) pairs whose PSL variant has at most max_vertices
/// vertices, sorted by vertex count. Useful for picking test/bench sizes.
[[nodiscard]] std::vector<LpsParams> lps_catalog(std::int64_t max_vertices);

}  // namespace lft::graph
