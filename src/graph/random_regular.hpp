// Deterministic seeded random d-regular graphs (configuration model with
// conflict-repairing edge switches). Random regular graphs are
// near-Ramanujan with overwhelming probability (Friedman's theorem); the
// overlay provider certifies each instance spectrally, so the combination is
// a deterministic function of (n, d, seed) that stands in for the paper's
// Ramanujan graphs G(n, d) at degrees that are actually instantiable.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace lft::graph {

/// Builds a simple d-regular graph on n vertices. Requires 0 < d < n and
/// n * d even. Deterministic in (n, d, seed).
[[nodiscard]] Graph random_regular_graph(NodeId n, int d, std::uint64_t seed);

}  // namespace lft::graph
