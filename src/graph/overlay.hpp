// Certified deterministic expander factory. The paper's algorithms assume
// every node can derive the same Ramanujan overlay from the public
// parameters (n, t); this factory realizes that: the returned graph is a
// pure function of (n, degree, tag). Instances are certified spectrally
// (near-Ramanujan) and for connectivity, retrying seeds deterministically,
// and cached so repeated protocol configurations share one graph.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.hpp"

namespace lft::graph {

/// Builds (or retrieves from cache) a near-Ramanujan `degree`-regular graph
/// on n vertices. Degree is clamped to n-1 (complete graph) and bumped by one
/// when n*degree is odd. `tag` separates overlays used for different purposes
/// so protocols never accidentally share topology.
[[nodiscard]] std::shared_ptr<const Graph> shared_overlay(NodeId n, int degree,
                                                          std::uint64_t tag);

/// Non-cached variant, mainly for tests.
[[nodiscard]] Graph make_overlay(NodeId n, int degree, std::uint64_t tag);

/// Drops the overlay cache (test isolation / memory reclamation).
void clear_overlay_cache();

}  // namespace lft::graph
