#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace lft::graph {

DynamicBitset survival_subset(const Graph& g, const DynamicBitset& b, int delta) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  LFT_ASSERT(b.size() == n);

  DynamicBitset core = b;
  std::vector<int> deg(n, 0);
  core.for_each([&](std::size_t v) {
    int d = 0;
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      if (core.test(static_cast<std::size_t>(w))) ++d;
    }
    deg[v] = d;
  });

  std::queue<NodeId> peel;
  core.for_each([&](std::size_t v) {
    if (deg[v] < delta) peel.push(static_cast<NodeId>(v));
  });

  while (!peel.empty()) {
    const NodeId v = peel.front();
    peel.pop();
    if (!core.test(static_cast<std::size_t>(v))) continue;
    core.set(static_cast<std::size_t>(v), false);
    for (NodeId w : g.neighbors(v)) {
      const auto wi = static_cast<std::size_t>(w);
      if (core.test(wi) && --deg[wi] < delta) peel.push(w);
    }
  }
  return core;
}

namespace {

// Peels the ball N^gamma(v) | alive down to its maximal (gamma, delta)-dense
// subset: vertices within distance gamma-1 of v must keep >= delta neighbors
// in the set (the outermost shell is exempt, per the paper's definition).
DynamicBitset dense_candidate(const Graph& g, NodeId v, int gamma, int delta,
                              const DynamicBitset& alive) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  LFT_ASSERT(alive.size() == n);
  if (!alive.test(static_cast<std::size_t>(v))) return DynamicBitset(n);

  // BFS distances within alive, bounded by gamma.
  std::vector<int> dist(n, -1);
  std::queue<NodeId> bfs;
  dist[static_cast<std::size_t>(v)] = 0;
  bfs.push(v);
  DynamicBitset s(n);
  s.set(static_cast<std::size_t>(v));
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    const int du = dist[static_cast<std::size_t>(u)];
    if (du == gamma) continue;
    for (NodeId w : g.neighbors(u)) {
      const auto wi = static_cast<std::size_t>(w);
      if (!alive.test(wi) || dist[wi] >= 0) continue;
      dist[wi] = du + 1;
      s.set(wi);
      bfs.push(w);
    }
  }

  // Peel inner-shell vertices (distance <= gamma-1) whose degree in S drops
  // below delta.
  std::vector<int> deg(n, 0);
  s.for_each([&](std::size_t u) {
    int d = 0;
    for (NodeId w : g.neighbors(static_cast<NodeId>(u))) {
      if (s.test(static_cast<std::size_t>(w))) ++d;
    }
    deg[u] = d;
  });
  std::queue<NodeId> peel;
  s.for_each([&](std::size_t u) {
    if (dist[u] <= gamma - 1 && deg[u] < delta) peel.push(static_cast<NodeId>(u));
  });
  while (!peel.empty()) {
    const NodeId u = peel.front();
    peel.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (!s.test(ui)) continue;
    s.set(ui, false);
    for (NodeId w : g.neighbors(u)) {
      const auto wi = static_cast<std::size_t>(w);
      if (s.test(wi) && --deg[wi] < delta && dist[wi] <= gamma - 1) peel.push(w);
    }
  }
  return s;
}

}  // namespace

bool has_dense_neighborhood(const Graph& g, NodeId v, int gamma, int delta,
                            const DynamicBitset& alive) {
  const DynamicBitset s = dense_candidate(g, v, gamma, delta, alive);
  return s.test(static_cast<std::size_t>(v));
}

std::size_t dense_neighborhood_size(const Graph& g, NodeId v, int gamma, int delta,
                                    const DynamicBitset& alive) {
  const DynamicBitset s = dense_candidate(g, v, gamma, delta, alive);
  return s.test(static_cast<std::size_t>(v)) ? s.count() : 0;
}

DynamicBitset neighborhood_ball(const Graph& g, NodeId seed, int radius,
                                const DynamicBitset& alive) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  DynamicBitset ball(n);
  if (!alive.test(static_cast<std::size_t>(seed))) return ball;
  std::vector<int> dist(n, -1);
  std::queue<NodeId> bfs;
  dist[static_cast<std::size_t>(seed)] = 0;
  ball.set(static_cast<std::size_t>(seed));
  bfs.push(seed);
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    if (dist[static_cast<std::size_t>(u)] == radius) continue;
    for (NodeId w : g.neighbors(u)) {
      const auto wi = static_cast<std::size_t>(w);
      if (!alive.test(wi) || dist[wi] >= 0) continue;
      dist[wi] = dist[static_cast<std::size_t>(u)] + 1;
      ball.set(wi);
      bfs.push(w);
    }
  }
  return ball;
}

std::int64_t edges_between(const Graph& g, const DynamicBitset& a, const DynamicBitset& b) {
  std::int64_t count = 0;
  a.for_each([&](std::size_t u) {
    for (NodeId w : g.neighbors(static_cast<NodeId>(u))) {
      if (b.test(static_cast<std::size_t>(w))) ++count;
    }
  });
  return count;
}

std::int64_t volume(const Graph& g, const DynamicBitset& s) {
  std::int64_t twice = 0;
  s.for_each([&](std::size_t u) {
    for (NodeId w : g.neighbors(static_cast<NodeId>(u))) {
      if (s.test(static_cast<std::size_t>(w))) ++twice;
    }
  });
  return twice / 2;
}

std::int64_t edge_boundary(const Graph& g, const DynamicBitset& s) {
  std::int64_t count = 0;
  s.for_each([&](std::size_t u) {
    for (NodeId w : g.neighbors(static_cast<NodeId>(u))) {
      if (!s.test(static_cast<std::size_t>(w))) ++count;
    }
  });
  return count;
}

std::int64_t external_neighbor_count(const Graph& g, const DynamicBitset& s) {
  DynamicBitset ext(s.size());
  s.for_each([&](std::size_t u) {
    for (NodeId w : g.neighbors(static_cast<NodeId>(u))) {
      if (!s.test(static_cast<std::size_t>(w))) ext.set(static_cast<std::size_t>(w));
    }
  });
  return static_cast<std::int64_t>(ext.count());
}

std::vector<int> connected_components(const Graph& g, const DynamicBitset& alive) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  LFT_ASSERT(alive.size() == n);
  std::vector<int> label(n, -1);
  int next = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (!alive.test(start) || label[start] >= 0) continue;
    const int c = next++;
    std::queue<NodeId> bfs;
    label[start] = c;
    bfs.push(static_cast<NodeId>(start));
    while (!bfs.empty()) {
      const NodeId u = bfs.front();
      bfs.pop();
      for (NodeId w : g.neighbors(u)) {
        const auto wi = static_cast<std::size_t>(w);
        if (alive.test(wi) && label[wi] < 0) {
          label[wi] = c;
          bfs.push(w);
        }
      }
    }
  }
  return label;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  DynamicBitset all(static_cast<std::size_t>(g.num_vertices()));
  all.set_all();
  const auto labels = connected_components(g, all);
  return std::all_of(labels.begin(), labels.end(), [](int l) { return l == 0; });
}

namespace {

// BFS-ordered list of the first `ell` vertices around seed (a "ball"), the
// adversarial shape for refuting expansion in low-diameter-free graphs.
DynamicBitset bfs_ball_of_size(const Graph& g, NodeId seed, std::int64_t ell) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  DynamicBitset ball(n);
  std::queue<NodeId> bfs;
  ball.set(static_cast<std::size_t>(seed));
  bfs.push(seed);
  std::int64_t taken = 1;
  while (!bfs.empty() && taken < ell) {
    const NodeId u = bfs.front();
    bfs.pop();
    for (NodeId w : g.neighbors(u)) {
      const auto wi = static_cast<std::size_t>(w);
      if (ball.test(wi)) continue;
      ball.set(wi);
      bfs.push(w);
      if (++taken == ell) break;
    }
  }
  return ball;
}

}  // namespace

bool sampled_ell_expansion(const Graph& g, std::int64_t ell, int samples, std::uint64_t seed) {
  const NodeId n = g.num_vertices();
  if (2 * ell > n) return true;  // vacuous: no two disjoint ell-sets exist
  Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;

  DynamicBitset all(static_cast<std::size_t>(n));
  all.set_all();

  for (int s = 0; s < samples; ++s) {
    DynamicBitset a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
    if (s % 2 == 0) {
      // Random disjoint sets.
      rng.shuffle(std::span<NodeId>(perm));
      for (std::int64_t i = 0; i < ell; ++i) {
        a.set(static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]));
        b.set(static_cast<std::size_t>(perm[static_cast<std::size_t>(ell + i)]));
      }
    } else {
      // Adversarial shape: a BFS ball around a random seed vs. a ball around
      // a most-distant vertex (catches rings, grids, and other thin graphs).
      const NodeId seed_v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
      a = bfs_ball_of_size(g, seed_v, ell);
      // Farthest vertex from the seed.
      DynamicBitset reached = neighborhood_ball(g, seed_v, 0, all);
      NodeId far = seed_v;
      for (int radius = 1; radius <= n; ++radius) {
        DynamicBitset next = neighborhood_ball(g, seed_v, radius, all);
        if (next.count() == reached.count()) break;
        const DynamicBitset shell = next.minus(reached);
        far = static_cast<NodeId>(shell.find_first());
        reached = std::move(next);
      }
      b = bfs_ball_of_size(g, far, ell);
      const DynamicBitset overlap = a.minus(a.minus(b));
      if (overlap.count() > 0) continue;  // balls met: not a disjoint witness
    }
    if (edges_between(g, a, b) == 0) return false;
  }
  return true;
}

}  // namespace lft::graph
