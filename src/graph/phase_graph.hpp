// Overlay handle for the inquiry phases (Part 2 of Figure 2 / Part 3 of
// Figure 4), whose degrees double per phase up to n-1. Low-degree phases use
// a materialized, spectrally certified expander; high-degree phases would
// need O(n * d) CSR storage (gigabytes at bench scale), so they switch to an
// implicit representation — a random circulant (neighbors v +- s_j mod n for
// pseudorandom distinct strides) or the complete graph — with O(degree)
// neighbor enumeration and O(degree) state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace lft::graph {

class PhaseGraph {
 public:
  PhaseGraph() = default;
  /// Wraps a materialized graph (implicit conversion is intentional so
  /// existing shared_ptr-based call sites keep working).
  PhaseGraph(std::shared_ptr<const Graph> g);  // NOLINT(google-explicit-constructor)

  /// Implicit circulant on n vertices: degree is rounded down to even, and
  /// the degree/2 distinct strides are drawn deterministically from seed.
  /// Stride sets are cached per (n, degree, seed) and shared by every copy,
  /// so handing one PhaseGraph to each of n nodes costs O(1) per node.
  [[nodiscard]] static PhaseGraph circulant(NodeId n, int degree, std::uint64_t seed);
  /// Implicit complete graph on n vertices.
  [[nodiscard]] static PhaseGraph complete(NodeId n);

  [[nodiscard]] bool is_materialized() const noexcept { return graph_ != nullptr; }
  [[nodiscard]] const Graph& materialized() const noexcept { return *graph_; }

  [[nodiscard]] NodeId num_vertices() const noexcept;
  [[nodiscard]] int max_degree() const noexcept;

  /// Calls f(w) for each neighbor w of v; no allocation on the implicit
  /// paths.
  template <class F>
  void for_each_neighbor(NodeId v, F&& f) const {
    if (graph_ != nullptr) {
      for (const NodeId w : graph_->neighbors(v)) f(w);
      return;
    }
    if (complete_) {
      for (NodeId u = 0; u < n_; ++u) {
        if (u != v) f(u);
      }
      return;
    }
    for (const NodeId s : *strides_) {
      f((v + s) % n_);
      f((v + n_ - s) % n_);  // distinct from v+s: strides stay below n/2
    }
  }

  /// Appends v's neighbors to out.
  void append_neighbors(NodeId v, std::vector<NodeId>& out) const;

 private:
  std::shared_ptr<const Graph> graph_;
  NodeId n_ = 0;
  bool complete_ = false;
  std::shared_ptr<const std::vector<NodeId>> strides_;  // distinct, in [1, (n-1)/2]
};

}  // namespace lft::graph
