// The paper's Section 2-3 graph machinery, implemented as executable
// definitions: delta-survival subsets (the fixed-point operator F of
// Theorem 2 is exactly iterated low-degree peeling), (gamma, delta)-dense
// neighborhoods, generalized neighborhoods N^i, edge counts between sets,
// and sampled ell-expansion checks. Protocol tests use these to verify, per
// instance, the properties the complexity proofs rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.hpp"
#include "graph/graph.hpp"

namespace lft::graph {

/// The largest subset C of B in which every vertex has at least delta
/// neighbors inside C (the delta-core of G|B). This is the complement of the
/// fixed point B* of the paper's operator F_B (Theorem 2): C = B \ B*.
/// Returned as a bitset over all vertices.
[[nodiscard]] DynamicBitset survival_subset(const Graph& g, const DynamicBitset& b, int delta);

/// True iff vertex v has a (gamma, delta)-dense-neighborhood inside the
/// vertex set `alive`: a maximal S within N^gamma(v) | alive such that every
/// vertex of S within distance gamma-1 of v keeps >= delta neighbors in S,
/// still containing v after peeling.
[[nodiscard]] bool has_dense_neighborhood(const Graph& g, NodeId v, int gamma, int delta,
                                          const DynamicBitset& alive);

/// Size of the maximal (gamma, delta)-dense candidate set around v (0 if v
/// itself is peeled away). Used to validate Theorem 3's growth claim.
[[nodiscard]] std::size_t dense_neighborhood_size(const Graph& g, NodeId v, int gamma,
                                                  int delta, const DynamicBitset& alive);

/// Generalized neighborhood N^radius(seed) within `alive` (seed included if
/// alive), as a bitset.
[[nodiscard]] DynamicBitset neighborhood_ball(const Graph& g, NodeId seed, int radius,
                                              const DynamicBitset& alive);

/// Number of edges with one endpoint in a and the other in b (a, b disjoint).
[[nodiscard]] std::int64_t edges_between(const Graph& g, const DynamicBitset& a,
                                         const DynamicBitset& b);

/// Number of edges inside s (the paper's vol(S)).
[[nodiscard]] std::int64_t volume(const Graph& g, const DynamicBitset& s);

/// Number of edges leaving s (the edge boundary).
[[nodiscard]] std::int64_t edge_boundary(const Graph& g, const DynamicBitset& s);

/// Number of vertices outside s adjacent to some vertex of s.
[[nodiscard]] std::int64_t external_neighbor_count(const Graph& g, const DynamicBitset& s);

/// Connected-component labels of the subgraph induced by `alive`; vertices
/// outside `alive` get label -1. Labels are 0-based and contiguous.
[[nodiscard]] std::vector<int> connected_components(const Graph& g, const DynamicBitset& alive);

[[nodiscard]] bool is_connected(const Graph& g);

/// Randomized check of the ell-expansion property (any two disjoint
/// ell-subsets joined by an edge): draws `samples` disjoint pairs and
/// reports whether all were connected. Deterministic in seed.
[[nodiscard]] bool sampled_ell_expansion(const Graph& g, std::int64_t ell, int samples,
                                         std::uint64_t seed);

}  // namespace lft::graph
