#include "byzantine/dolev_strong.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/tags.hpp"

namespace lft::byzantine {

DsNode::DsNode(std::shared_ptr<const crypto::KeyRegistry> registry, crypto::Signer signer,
               NodeId little_count, std::int64_t t)
    : registry_(std::move(registry)),
      signer_(signer),
      little_count_(little_count),
      t_(t),
      accepted_(static_cast<std::size_t>(little_count)) {}

void DsNode::set_own_value(std::uint64_t value) { own_value_ = value; }

void DsNode::accept_and_maybe_relay(const SignedRelay& relay, Round k) {
  auto& acc = accepted_[static_cast<std::size_t>(relay.origin)];
  if (acc.size() >= 2) return;  // source already exposed as faulty
  if (std::find(acc.begin(), acc.end(), relay.value) != acc.end()) return;
  acc.push_back(relay.value);
  // Relaying at engine round k arrives at k+1 and then carries >= k+1
  // signatures; past classical round t+1 nothing more can be accepted.
  if (k > t_) return;
  // Do not countersign twice (we could appear in a longer chain already).
  for (const auto& sig : relay.chain) {
    if (sig.signer == signer_.id()) return;
  }
  SignedRelay out = relay;
  out.chain.push_back(signer_.sign(SignedRelay::payload_digest(out.origin, out.value)));
  pending_.push_back(std::move(out));
}

sim::PayloadView DsNode::step(Round k, std::span<const sim::Message> inbox) {
  LFT_ASSERT(k >= 0 && k < duration());
  if (k == 0 && own_value_.has_value()) {
    SignedRelay relay;
    relay.origin = signer_.id();
    relay.value = *own_value_;
    relay.chain.push_back(signer_.sign(SignedRelay::payload_digest(relay.origin, relay.value)));
    accepted_[static_cast<std::size_t>(relay.origin)].push_back(relay.value);
    pending_.push_back(std::move(relay));
  }

  for (const auto& m : inbox) {
    if (m.tag != core::kTagDsRelay) continue;
    ByteReader reader(m.body());
    const auto count = reader.get_varint();
    if (!count || *count > static_cast<std::uint64_t>(2 * little_count_)) continue;
    for (std::uint64_t i = 0; i < *count; ++i) {
      auto relay = SignedRelay::decode(reader, little_count_,
                                       static_cast<std::size_t>(t_) + 2);
      if (!relay) break;  // malformed remainder: drop
      // Classical acceptance at round k: at least k distinct valid
      // signatures, origin first.
      if (static_cast<Round>(relay->chain.size()) < k) continue;
      if (!relay->valid(*registry_, little_count_)) continue;
      accept_and_maybe_relay(*relay, k);
    }
  }

  out_buf_.clear();
  if (!pending_.empty()) {
    ByteWriter w(out_buf_);
    w.put_varint(pending_.size());
    for (const auto& relay : pending_) relay.encode(w);
    pending_.clear();
  }
  return sim::PayloadView(out_buf_.data(), out_buf_.size());
}

ValueSet DsNode::result() const {
  ValueSet set(little_count_);
  for (NodeId origin = 0; origin < little_count_; ++origin) {
    const auto& acc = accepted_[static_cast<std::size_t>(origin)];
    set.set_value(origin, acc.size() == 1 ? acc.front() : kNullValue);
  }
  return set;
}

}  // namespace lft::byzantine
