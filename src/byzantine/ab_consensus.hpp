// AB-Consensus (Figure 7, Theorem 11): consensus under authenticated
// Byzantine faults, t < n/2 (with the little group of min(5t, n) nodes).
//   Part 1: 5t parallel Dolev-Strong broadcasts among little nodes with
//           combined messages, then a certification exchange in which every
//           little node signs its ACS digest; >= little-t matching
//           signatures form the certificate (the paper's ">= 4t valid
//           little signatures").
//   Part 2: little nodes send the certified set to their related nodes.
//   Part 3: slow propagation over the constant-degree graph H.
//   Part 4: authenticated inquiries to the little group.
// Decision: the maximum value in the certified set.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "byzantine/acs.hpp"
#include "byzantine/dolev_strong.hpp"
#include "core/io.hpp"
#include "core/run_options.hpp"
#include "graph/graph.hpp"
#include "sim/engine.hpp"

namespace lft::byzantine {

struct AbParams {
  NodeId n = 0;
  std::int64_t t = 0;
  NodeId little_count = 0;    // min(5t, n), at least 1
  NodeId cert_threshold = 0;  // little_count - t
  int spread_degree = 12;
  Round spread_rounds = 0;
  std::uint64_t registry_seed = 0x42595a414e54ULL;  // "BYZANT"
  std::uint64_t overlay_tag = 0xAB;

  [[nodiscard]] static AbParams practical(NodeId n, std::int64_t t);
};

struct AbConfig {
  AbParams params;
  std::shared_ptr<const crypto::KeyRegistry> registry;
  std::shared_ptr<const graph::Graph> spread_h;

  [[nodiscard]] static std::shared_ptr<const AbConfig> build(const AbParams& params);
  [[nodiscard]] Round duration() const;
};

/// Honest protocol logic at one node (a core::Program: engine- and
/// transport-agnostic, driven through ProtocolIo).
class AbConsensusProcess final : public sim::Process, public core::Program {
 public:
  AbConsensusProcess(std::shared_ptr<const AbConfig> cfg, NodeId self, std::uint64_t input);
  void run_round(Round r, std::span<const sim::Message> inbox, core::ProtocolIo& io) override;
  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override;

  [[nodiscard]] bool has_certified() const noexcept { return certified_.has_value(); }
  [[nodiscard]] const CertifiedSet& certified() const { return *certified_; }

 private:
  [[nodiscard]] bool is_little() const noexcept;
  void adopt(const sim::Message& m, core::ProtocolIo& io, bool forward);
  void forward_certified(core::ProtocolIo& io);

  std::shared_ptr<const AbConfig> cfg_;
  NodeId self_;
  std::uint64_t input_;
  crypto::Signer signer_;
  DsNode ds_;
  std::optional<ValueSet> acs_;           // little: own DS outcome
  std::optional<CertifiedSet> certified_;  // adopted certified set
  std::vector<crypto::Signature> cert_sigs_;
  bool forwarded_ = false;
};

/// A Byzantine behavior factory: kind in {"silent", "equivocate", "flood"}.
[[nodiscard]] std::unique_ptr<sim::Process> make_byzantine_process(
    const std::string& kind, std::shared_ptr<const AbConfig> cfg, NodeId self,
    std::uint64_t seed);

struct AbOutcome {
  sim::Report report;
  bool termination = false;  // every honest node decided
  bool agreement = false;    // all honest decisions equal
  std::optional<std::uint64_t> decision;
  /// With no Byzantine little nodes the decision must equal the maximum
  /// little input (the Figure 7 rule); meaningless otherwise.
  bool max_rule_holds = true;
};

/// Runs AB-Consensus: inputs[v] is node v's binary input; byzantine maps
/// node id -> behavior kind for the faulty nodes (size <= t). Implemented as
/// a fault plan whose takeovers fire at round 0.
[[nodiscard]] AbOutcome run_ab_consensus(
    const AbParams& params, std::span<const std::uint64_t> inputs,
    const std::vector<std::pair<NodeId, std::string>>& byzantine);

/// Runs AB-Consensus against a declarative fault plan. Takeover kinds in the
/// plan are resolved through make_byzantine_process ("silent", "equivocate",
/// "flood"); crash/omission/partition/link events apply as scheduled, each
/// fault class budgeted at t. Execution knobs travel in core::RunOptions.
[[nodiscard]] AbOutcome run_ab_consensus_plan(const AbParams& params,
                                              std::span<const std::uint64_t> inputs,
                                              sim::FaultPlan plan,
                                              const core::RunOptions& options = {});

}  // namespace lft::byzantine
