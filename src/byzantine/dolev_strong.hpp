// Dolev-Strong authenticated broadcast [24], the Part 1 sub-routine of
// AB-Consensus: t+1 relay rounds; a value is accepted at (classical) round r
// only if it carries r distinct valid little-node signatures starting with
// the origin's; acceptors append their signature and relay. All little
// instances run in parallel with per-link combined messages, as Figure 7
// prescribes. With the engine's send->next-round delivery, an instance
// occupies t+2 engine rounds.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "byzantine/acs.hpp"
#include "crypto/auth.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace lft::byzantine {

/// Per-node state of the 5t parallel Dolev-Strong instances.
class DsNode {
 public:
  DsNode(std::shared_ptr<const crypto::KeyRegistry> registry, crypto::Signer signer,
         NodeId little_count, std::int64_t t);

  [[nodiscard]] Round duration() const noexcept { return t_ + 2; }

  /// Registers this node's own instance value (sources call before round 0).
  void set_own_value(std::uint64_t value);

  /// Processes DS round k: validates arrived relays (kTagDsRelay bodies),
  /// accepts values per the chain-length rule, and returns the serialized
  /// combined relays to broadcast to every little node (empty if none). The
  /// view references a buffer owned by this node, valid until the next
  /// step() call — senders copy it out immediately.
  [[nodiscard]] sim::PayloadView step(Round k, std::span<const sim::Message> inbox);

  /// After `duration()` rounds: the per-origin outcome (unique accepted
  /// value, or null on silence/equivocation).
  [[nodiscard]] ValueSet result() const;

 private:
  void accept_and_maybe_relay(const SignedRelay& relay, Round k);

  std::shared_ptr<const crypto::KeyRegistry> registry_;
  crypto::Signer signer_;
  NodeId little_count_;
  std::int64_t t_;
  std::optional<std::uint64_t> own_value_;
  std::vector<std::vector<std::uint64_t>> accepted_;  // per origin, capped at 2
  std::vector<SignedRelay> pending_;
  std::vector<std::byte> out_buf_;  // combined-relay build buffer, reused per step
};

}  // namespace lft::byzantine
