#include "byzantine/ab_consensus.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/stages.hpp"
#include "core/tags.hpp"
#include "graph/overlay.hpp"

namespace lft::byzantine {

using core::kTagAbCert;
using core::kTagAbInquiry;
using core::kTagAbNotify;
using core::kTagAbReply;
using core::kTagAbSpread;
using core::kTagDsRelay;

namespace {

crypto::Digest inquiry_digest(NodeId who) {
  return hash_combine(0x61625f696e717579ULL /* "ab_inquy" */,
                      static_cast<std::uint64_t>(who));
}

}  // namespace

AbParams AbParams::practical(NodeId n, std::int64_t t) {
  LFT_ASSERT(n >= 1 && t >= 0 && 2 * t < n);
  AbParams p;
  p.n = n;
  p.t = t;
  p.little_count =
      static_cast<NodeId>(std::clamp<std::int64_t>(5 * t, 1, static_cast<std::int64_t>(n)));
  p.cert_threshold = static_cast<NodeId>(std::max<std::int64_t>(1, p.little_count - t));
  p.spread_rounds = std::max<Round>(1, 3 * lg_rounds(static_cast<std::uint64_t>(n)));
  return p;
}

std::shared_ptr<const AbConfig> AbConfig::build(const AbParams& params) {
  auto cfg = std::make_shared<AbConfig>();
  cfg->params = params;
  cfg->registry = std::make_shared<crypto::KeyRegistry>(params.n, params.registry_seed);
  const int degree = std::max(1, std::min<int>(params.spread_degree, params.n - 1));
  cfg->spread_h =
      graph::shared_overlay(params.n, degree, params.overlay_tag ^ core::kOverlaySpreadH);
  return cfg;
}

Round AbConfig::duration() const {
  // DS (t+2) + cert sign/collect (2) + notify send/receive (2) +
  // spread (spread_rounds + 1) + inquiry/reply/adopt (3).
  return (params.t + 2) + 2 + 2 + (params.spread_rounds + 1) + 3;
}

AbConsensusProcess::AbConsensusProcess(std::shared_ptr<const AbConfig> cfg, NodeId self,
                                       std::uint64_t input)
    : cfg_(std::move(cfg)),
      self_(self),
      input_(input),
      signer_(cfg_->registry->signer_for(self)),
      ds_(cfg_->registry, signer_, cfg_->params.little_count, cfg_->params.t) {
  if (is_little()) ds_.set_own_value(input_);
}

bool AbConsensusProcess::is_little() const noexcept {
  return self_ < cfg_->params.little_count;
}

void AbConsensusProcess::adopt(const sim::Message& m, core::ProtocolIo& io, bool forward) {
  if (certified_.has_value()) return;
  ByteReader reader(m.body());
  auto set = CertifiedSet::decode(reader, cfg_->params.little_count);
  if (!set ||
      !set->valid(*cfg_->registry, cfg_->params.little_count, cfg_->params.cert_threshold)) {
    return;
  }
  certified_ = std::move(*set);
  io.decide(certified_->values.max_value());
  if (forward) forward_certified(io);
}

void AbConsensusProcess::forward_certified(core::ProtocolIo& io) {
  if (forwarded_ || !certified_.has_value()) return;
  forwarded_ = true;
  ByteWriter w;
  certified_->encode(w);
  for (NodeId nb : cfg_->spread_h->neighbors(self_)) {
    io.send(nb, kTagAbSpread, 0, std::max<std::uint64_t>(1, w.size() * 8), w.view());
  }
}

void AbConsensusProcess::run_round(Round r, std::span<const sim::Message> inbox,
                                   core::ProtocolIo& io) {
  const auto& p = cfg_->params;
  const Round ds_end = p.t + 2;              // rounds [0, ds_end): DS
  const Round cert_sign = ds_end;            // sign + broadcast digest sig
  const Round cert_collect = ds_end + 1;     // collect quorum
  const Round notify_send = ds_end + 2;      // little -> related
  const Round notify_recv = ds_end + 3;
  const Round spread_begin = ds_end + 4;     // flooding over H
  const Round spread_end = spread_begin + p.spread_rounds;  // adopt-only round
  const Round inquire = spread_end + 1;
  const Round reply = spread_end + 2;
  const Round finish = spread_end + 3;

  if (r < ds_end) {
    if (is_little()) {
      auto combined = ds_.step(r, inbox);
      if (!combined.empty()) {
        for (NodeId w = 0; w < p.little_count; ++w) {
          if (w != self_) {
            io.send(w, kTagDsRelay, 0,
                     std::max<std::uint64_t>(1, combined.size() * 8), combined);
          }
        }
      }
    }
    return;
  }

  if (r == cert_sign) {
    if (is_little()) {
      acs_ = ds_.result();
      const crypto::Signature sig = signer_.sign(acs_->digest());
      cert_sigs_.push_back(sig);  // own signature counts toward the quorum
      ByteWriter w;
      w.put_varint(static_cast<std::uint64_t>(sig.signer));
      w.put_u64(sig.tag);
      for (NodeId v = 0; v < p.little_count; ++v) {
        if (v != self_) io.send(v, kTagAbCert, 0, 128, w.view());
      }
    }
    return;
  }

  if (r == cert_collect) {
    if (is_little() && acs_.has_value()) {
      const crypto::Digest digest = acs_->digest();
      for (const auto& m : inbox) {
        if (m.tag != kTagAbCert) continue;
        ByteReader reader(m.body());
        const auto signer = reader.get_varint();
        const auto tag = reader.get_u64();
        if (!signer || !tag) continue;
        const crypto::Signature sig{static_cast<NodeId>(*signer), *tag};
        if (sig.signer >= 0 && sig.signer < p.little_count &&
            cfg_->registry->verify(sig, digest)) {
          cert_sigs_.push_back(sig);
        }
      }
      std::sort(cert_sigs_.begin(), cert_sigs_.end(),
                [](const auto& a, const auto& b) { return a.signer < b.signer; });
      cert_sigs_.erase(std::unique(cert_sigs_.begin(), cert_sigs_.end()), cert_sigs_.end());
      if (static_cast<NodeId>(cert_sigs_.size()) >= p.cert_threshold) {
        certified_ = CertifiedSet{*acs_, cert_sigs_};
        io.decide(certified_->values.max_value());
      }
    }
    return;
  }

  if (r == notify_send) {
    if (is_little() && certified_.has_value()) {
      ByteWriter w;
      certified_->encode(w);
      for (NodeId j = self_ + p.little_count; j < p.n; j += p.little_count) {
        io.send(j, kTagAbNotify, 0, std::max<std::uint64_t>(1, w.size() * 8), w.view());
      }
    }
    return;
  }

  if (r == notify_recv) {
    for (const auto& m : inbox) {
      if (m.tag == kTagAbNotify) adopt(m, io, /*forward=*/false);
    }
    return;
  }

  if (r >= spread_begin && r <= spread_end) {
    for (const auto& m : inbox) {
      if (m.tag == kTagAbSpread) adopt(m, io, /*forward=*/r < spread_end);
    }
    if (r == spread_begin) forward_certified(io);
    return;
  }

  if (r == inquire) {
    if (!certified_.has_value()) {
      const crypto::Signature sig = signer_.sign(inquiry_digest(self_));
      ByteWriter w;
      w.put_varint(static_cast<std::uint64_t>(sig.signer));
      w.put_u64(sig.tag);
      for (NodeId v = 0; v < p.little_count; ++v) {
        if (v != self_) io.send(v, kTagAbInquiry, 0, 128, w.view());
      }
    }
    return;
  }

  if (r == reply) {
    if (is_little() && certified_.has_value()) {
      ByteWriter set_bytes;
      certified_->encode(set_bytes);
      for (const auto& m : inbox) {
        if (m.tag != kTagAbInquiry) continue;
        ByteReader reader(m.body());
        const auto signer = reader.get_varint();
        const auto tag = reader.get_u64();
        if (!signer || !tag) continue;
        const crypto::Signature sig{static_cast<NodeId>(*signer), *tag};
        // Authenticated inquiry: the claimed sender must have signed it.
        if (sig.signer != m.from || !cfg_->registry->verify(sig, inquiry_digest(m.from))) {
          continue;
        }
        io.send(m.from, kTagAbReply, 0,
                 std::max<std::uint64_t>(1, set_bytes.size() * 8), set_bytes.view());
      }
    }
    return;
  }

  if (r >= finish) {
    for (const auto& m : inbox) {
      if (m.tag == kTagAbReply) adopt(m, io, /*forward=*/false);
    }
    io.halt();
  }
}

void AbConsensusProcess::on_round(sim::Context& ctx, const sim::Inbox& inbox) {
  core::drive_on_engine(*this, ctx, inbox);
}

// ---- Byzantine behaviors -------------------------------------------------------

namespace {

/// Sends nothing, ever.
class SilentByz final : public sim::Process {
 public:
  void on_round(sim::Context& ctx, const sim::Inbox&) override {
    if (ctx.round() > 64) ctx.halt();
  }
};

/// A little source that signs value 0 for odd little nodes and value 1 for
/// even ones in DS round 0, then stays silent: the classical equivocation
/// attack that authentication must resolve to a consistent outcome.
class EquivocatorByz final : public sim::Process {
 public:
  EquivocatorByz(std::shared_ptr<const AbConfig> cfg, NodeId self)
      : cfg_(std::move(cfg)), self_(self), signer_(cfg_->registry->signer_for(self)) {}

  void on_round(sim::Context& ctx, const sim::Inbox&) override {
    const auto& p = cfg_->params;
    if (ctx.round() == 0 && self_ < p.little_count) {
      for (NodeId w = 0; w < p.little_count; ++w) {
        if (w == self_) continue;
        SignedRelay relay;
        relay.origin = self_;
        relay.value = static_cast<std::uint64_t>(w % 2);
        relay.chain.push_back(
            signer_.sign(SignedRelay::payload_digest(relay.origin, relay.value)));
        ByteWriter writer;
        writer.put_varint(1);
        relay.encode(writer);
        ctx.send(w, kTagDsRelay, 0, std::max<std::uint64_t>(1, writer.size() * 8),
                 writer.view());
      }
    }
    if (ctx.round() > cfg_->duration()) ctx.halt();
  }

 private:
  std::shared_ptr<const AbConfig> cfg_;
  NodeId self_;
  crypto::Signer signer_;
};

/// Floods honest nodes with malformed bodies, forged chains (invalid tags),
/// and self-signed values for *other* origins — all of which verification
/// must reject.
class FloodByz final : public sim::Process {
 public:
  FloodByz(std::shared_ptr<const AbConfig> cfg, NodeId self, std::uint64_t seed)
      : cfg_(std::move(cfg)),
        self_(self),
        signer_(cfg_->registry->signer_for(self)),
        rng_(seed) {}

  void on_round(sim::Context& ctx, const sim::Inbox&) override {
    const auto& p = cfg_->params;
    if (ctx.round() > cfg_->duration()) {
      ctx.halt();
      return;
    }
    for (int k = 0; k < 4; ++k) {
      const auto target = static_cast<NodeId>(rng_.uniform(static_cast<std::uint64_t>(p.n)));
      if (target == self_) continue;
      switch (rng_.uniform(3)) {
        case 0: {  // random garbage
          std::vector<std::byte> junk(rng_.uniform(40) + 1);
          for (auto& b : junk) b = static_cast<std::byte>(rng_.next());
          const std::uint64_t junk_bits = junk.size() * 8;
          ctx.send(target, kTagDsRelay, 0, junk_bits, junk);
          break;
        }
        case 1: {  // forged chain: random tags claiming other signers
          SignedRelay relay;
          relay.origin = static_cast<NodeId>(
              rng_.uniform(static_cast<std::uint64_t>(p.little_count)));
          relay.value = rng_.uniform(2);
          const int len = static_cast<int>(rng_.uniform(3)) + 1;
          for (int i = 0; i < len; ++i) {
            relay.chain.push_back(crypto::Signature{
                static_cast<NodeId>(rng_.uniform(static_cast<std::uint64_t>(p.little_count))),
                rng_.next()});
          }
          ByteWriter w;
          w.put_varint(1);
          relay.encode(w);
          ctx.send(target, kTagDsRelay, 0, w.size() * 8, w.view());
          break;
        }
        default: {  // fake certified set with a bogus quorum
          ValueSet values(p.little_count);
          for (NodeId i = 0; i < p.little_count; ++i) values.set_value(i, rng_.uniform(2));
          CertifiedSet set{values, {}};
          for (NodeId i = 0; i < p.cert_threshold; ++i) {
            set.quorum.push_back(crypto::Signature{i, rng_.next()});
          }
          ByteWriter w;
          set.encode(w);
          ctx.send(target, kTagAbSpread, 0, w.size() * 8, w.view());
          break;
        }
      }
    }
  }

 private:
  std::shared_ptr<const AbConfig> cfg_;
  NodeId self_;
  crypto::Signer signer_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<sim::Process> make_byzantine_process(const std::string& kind,
                                                     std::shared_ptr<const AbConfig> cfg,
                                                     NodeId self, std::uint64_t seed) {
  if (kind == "silent") return std::make_unique<SilentByz>();
  if (kind == "equivocate") return std::make_unique<EquivocatorByz>(std::move(cfg), self);
  if (kind == "flood") return std::make_unique<FloodByz>(std::move(cfg), self, seed);
  LFT_ASSERT_MSG(false, "unknown Byzantine behavior kind");
  return nullptr;
}

AbOutcome run_ab_consensus(const AbParams& params, std::span<const std::uint64_t> inputs,
                           const std::vector<std::pair<NodeId, std::string>>& byzantine) {
  LFT_ASSERT(static_cast<std::int64_t>(byzantine.size()) <= params.t);
  // The static byzantine set is the degenerate fault plan: every takeover
  // fires in the pre-round phase of round 0, before any honest send.
  sim::FaultPlan plan;
  for (const auto& [node, kind] : byzantine) plan.takeover(node, 0, kind);
  return run_ab_consensus_plan(params, inputs, std::move(plan));
}

AbOutcome run_ab_consensus_plan(const AbParams& params, std::span<const std::uint64_t> inputs,
                                sim::FaultPlan plan, const core::RunOptions& options) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == params.n);
  auto cfg = AbConfig::build(params);

  sim::EngineConfig engine_config;
  engine_config.max_rounds = cfg->duration() + 8;
  engine_config.crash_budget = params.t;
  engine_config.omission_budget = params.t;
  engine_config.byzantine_budget = params.t;
  engine_config.threads = options.threads;
  engine_config.scratch = options.scratch;
  engine_config.trace = options.trace;
  engine_config.simd = options.simd;
  engine_config.telemetry = options.telemetry;
  sim::Engine engine(params.n, engine_config);

  for (NodeId v = 0; v < params.n; ++v) {
    engine.set_process(
        v, std::make_unique<AbConsensusProcess>(cfg, v, inputs[static_cast<std::size_t>(v)]));
  }
  if (!plan.crashes.empty() || !plan.omissions.empty() || !plan.links.empty() ||
      !plan.partitions.empty() || !plan.takeovers.empty()) {
    engine.add_fault_injector(sim::make_plan_injector(
        std::move(plan), [&cfg](NodeId node, const std::string& kind) {
          return make_byzantine_process(kind, cfg, node, make_seed(0xBAD, node));
        }));
  }

  AbOutcome out;
  out.report = engine.run();
  out.termination = true;
  out.agreement = true;
  for (NodeId v = 0; v < params.n; ++v) {
    const auto& s = out.report.nodes[static_cast<std::size_t>(v)];
    if (s.byzantine || s.crashed || s.omission) continue;  // faulty nodes are exempt
    if (!s.decided) {
      out.termination = false;
      continue;
    }
    if (out.decision && *out.decision != s.decision) out.agreement = false;
    out.decision = s.decision;
  }
  // The Figure 7 max rule, checkable when every little node is honest.
  bool any_little_faulty = false;
  std::uint64_t max_input = 0;
  for (NodeId v = 0; v < params.little_count; ++v) {
    const auto& s = out.report.nodes[static_cast<std::size_t>(v)];
    if (s.byzantine || s.crashed || s.omission) any_little_faulty = true;
    max_input = std::max(max_input, inputs[static_cast<std::size_t>(v)]);
  }
  if (!any_little_faulty && out.decision) {
    out.max_rule_holds = (*out.decision == max_input);
  }
  return out;
}

}  // namespace lft::byzantine
