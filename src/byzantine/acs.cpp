#include "byzantine/acs.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace lft::byzantine {

crypto::Digest SignedRelay::payload_digest(NodeId origin, std::uint64_t value) {
  return hash_combine(hash_combine(0x64735f7061796c64ULL,  // "ds_payld"
                                   static_cast<std::uint64_t>(origin)),
                      value);
}

void SignedRelay::encode(ByteWriter& w) const {
  w.put_varint(static_cast<std::uint64_t>(origin));
  w.put_u64(value);
  w.put_varint(chain.size());
  for (const auto& sig : chain) {
    w.put_varint(static_cast<std::uint64_t>(sig.signer));
    w.put_u64(sig.tag);
  }
}

std::optional<SignedRelay> SignedRelay::decode(ByteReader& r, NodeId n,
                                               std::size_t max_chain) {
  SignedRelay relay;
  const auto origin = r.get_varint();
  if (!origin || *origin >= static_cast<std::uint64_t>(n)) return std::nullopt;
  relay.origin = static_cast<NodeId>(*origin);
  const auto value = r.get_u64();
  if (!value) return std::nullopt;
  relay.value = *value;
  const auto count = r.get_varint();
  if (!count || *count > max_chain) return std::nullopt;
  relay.chain.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto signer = r.get_varint();
    if (!signer || *signer >= static_cast<std::uint64_t>(n)) return std::nullopt;
    const auto tag = r.get_u64();
    if (!tag) return std::nullopt;
    relay.chain.push_back(crypto::Signature{static_cast<NodeId>(*signer), *tag});
  }
  return relay;
}

bool SignedRelay::valid(const crypto::KeyRegistry& registry, NodeId little_count) const {
  if (origin < 0 || origin >= little_count) return false;
  if (chain.empty() || chain.front().signer != origin) return false;
  const crypto::Digest digest = payload_digest(origin, value);
  std::vector<NodeId> signers;
  signers.reserve(chain.size());
  for (const auto& sig : chain) {
    if (sig.signer < 0 || sig.signer >= little_count) return false;
    if (!registry.verify(sig, digest)) return false;
    signers.push_back(sig.signer);
  }
  std::sort(signers.begin(), signers.end());
  return std::adjacent_find(signers.begin(), signers.end()) == signers.end();
}

std::uint64_t ValueSet::max_value() const noexcept {
  std::uint64_t best = 0;
  for (std::uint64_t v : values_) {
    if (v != kNullValue) best = std::max(best, v);
  }
  return best;
}

crypto::Digest ValueSet::digest() const noexcept {
  std::uint64_t h = 0x6163735f64696773ULL;  // "acs_digs"
  for (std::uint64_t v : values_) h = hash_combine(h, v);
  return h;
}

void ValueSet::encode(ByteWriter& w) const {
  w.put_varint(values_.size());
  for (std::uint64_t v : values_) w.put_u64(v);
}

std::optional<ValueSet> ValueSet::decode(ByteReader& r, NodeId little_count) {
  const auto count = r.get_varint();
  if (!count || *count != static_cast<std::uint64_t>(little_count)) return std::nullopt;
  ValueSet set(little_count);
  for (NodeId i = 0; i < little_count; ++i) {
    const auto v = r.get_u64();
    if (!v) return std::nullopt;
    set.set_value(i, *v);
  }
  return set;
}

void CertifiedSet::encode(ByteWriter& w) const {
  values.encode(w);
  w.put_varint(quorum.size());
  for (const auto& sig : quorum) {
    w.put_varint(static_cast<std::uint64_t>(sig.signer));
    w.put_u64(sig.tag);
  }
}

std::optional<CertifiedSet> CertifiedSet::decode(ByteReader& r, NodeId little_count) {
  auto values = ValueSet::decode(r, little_count);
  if (!values) return std::nullopt;
  const auto count = r.get_varint();
  if (!count || *count > static_cast<std::uint64_t>(little_count)) return std::nullopt;
  CertifiedSet set{std::move(*values), {}};
  set.quorum.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto signer = r.get_varint();
    if (!signer) return std::nullopt;
    const auto tag = r.get_u64();
    if (!tag) return std::nullopt;
    set.quorum.push_back(crypto::Signature{static_cast<NodeId>(*signer), *tag});
  }
  return set;
}

bool CertifiedSet::valid(const crypto::KeyRegistry& registry, NodeId little_count,
                         NodeId threshold) const {
  if (values.little_count() != little_count) return false;
  const crypto::Digest digest = values.digest();
  std::vector<NodeId> signers;
  for (const auto& sig : quorum) {
    if (sig.signer < 0 || sig.signer >= little_count) continue;
    if (!registry.verify(sig, digest)) continue;
    signers.push_back(sig.signer);
  }
  std::sort(signers.begin(), signers.end());
  signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
  return static_cast<NodeId>(signers.size()) >= threshold;
}

}  // namespace lft::byzantine
