// Authenticated data structures for Section 7: signed relay chains (the
// Dolev-Strong message format) and the "authenticated common set of values"
// (ACS) little nodes assemble after the parallel broadcasts, certified by a
// quorum of little-node signatures over its digest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/auth.hpp"

namespace lft::byzantine {

/// The paper's "null" outcome for an instance whose source equivocated or
/// stayed silent.
inline constexpr std::uint64_t kNullValue = ~std::uint64_t{0};

/// One Dolev-Strong relay: (origin-instance, value, signature chain). The
/// first signature must be the origin's; each relayer appends its own.
struct SignedRelay {
  NodeId origin = kNoNode;
  std::uint64_t value = 0;
  std::vector<crypto::Signature> chain;

  /// Digest the chain signs: binds origin and value.
  [[nodiscard]] static crypto::Digest payload_digest(NodeId origin, std::uint64_t value);

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<SignedRelay> decode(ByteReader& r, NodeId n,
                                                         std::size_t max_chain);

  /// Full validity check: origin in [0, little), first signer is the origin,
  /// signers distinct little nodes, every signature verifies the payload
  /// digest.
  [[nodiscard]] bool valid(const crypto::KeyRegistry& registry, NodeId little_count) const;
};

/// The set of per-origin outcomes of the parallel broadcasts.
class ValueSet {
 public:
  explicit ValueSet(NodeId little_count)
      : values_(static_cast<std::size_t>(little_count), kNullValue) {}

  [[nodiscard]] NodeId little_count() const noexcept {
    return static_cast<NodeId>(values_.size());
  }
  [[nodiscard]] std::uint64_t value(NodeId origin) const {
    return values_[static_cast<std::size_t>(origin)];
  }
  void set_value(NodeId origin, std::uint64_t v) {
    values_[static_cast<std::size_t>(origin)] = v;
  }

  /// The decision rule of Figure 7: the maximum non-null value (0 if all
  /// instances resolved to null).
  [[nodiscard]] std::uint64_t max_value() const noexcept;

  [[nodiscard]] crypto::Digest digest() const noexcept;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<ValueSet> decode(ByteReader& r, NodeId little_count);

  friend bool operator==(const ValueSet&, const ValueSet&) = default;

 private:
  std::vector<std::uint64_t> values_;
};

/// A ValueSet plus a quorum of little-node signatures over its digest — the
/// paper's "authenticated common set of values".
struct CertifiedSet {
  ValueSet values;
  std::vector<crypto::Signature> quorum;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<CertifiedSet> decode(ByteReader& r, NodeId little_count);

  /// Verifies >= threshold distinct little-node signatures on the digest.
  [[nodiscard]] bool valid(const crypto::KeyRegistry& registry, NodeId little_count,
                           NodeId threshold) const;
};

}  // namespace lft::byzantine
