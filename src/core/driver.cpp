#include "core/driver.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::core {

void BatchIo::send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits,
                   sim::PayloadView body) {
  LFT_ASSERT(to >= 0);
  LFT_ASSERT(bits >= 1);
  sim::Message m;
  m.from = self_;
  m.to = to;
  m.tag = tag;
  m.value = value;
  m.bits = bits;
  if (!body.empty()) m.set_body(arena_->store(body));
  out_->push_back(m);
}

void BatchIo::decide(std::uint64_t value) {
  if (result_->decided) {
    LFT_ASSERT_MSG(result_->decision == value, "decision is irrevocable");
    return;
  }
  result_->decided = true;
  result_->decision = value;
}

void LoopbackTransport::step_round(Round round, std::span<const NodeId> active,
                                   std::span<const std::span<const sim::Message>> inboxes,
                                   std::vector<sim::Message>& outbox,
                                   std::span<StepResult> results) {
  // This round's parity arena is recycled; the other one backs `inboxes`
  // (last round's sends) and is cleared on the next call.
  sim::PayloadArena& arena = arena_[static_cast<std::size_t>(round) & 1];
  arena.clear();
  for (std::size_t i = 0; i < active.size(); ++i) {
    const NodeId v = active[i];
    BatchIo io(v, arena, outbox, results[i]);
    programs_[static_cast<std::size_t>(v)]->run_round(round, inboxes[i], io);
  }
}

RoundDriver::RoundDriver(NodeId n, Transport& transport, const RunOptions& options)
    : n_(n), transport_(&transport), options_(options),
      tier_(simd::resolve_tier(options.simd)) {
  LFT_ASSERT(n > 0);
  status_.resize(static_cast<std::size_t>(n));
  active_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) active_[static_cast<std::size_t>(v)] = v;
  sleeping_.assign(static_cast<std::size_t>(n), 0);
  wake_at_.assign(static_cast<std::size_t>(n), 0);
}

void RoundDriver::wake_by(NodeId v, Round round) {
  auto& wake = wake_at_[static_cast<std::size_t>(v)];
  if (wake <= round) return;
  wake = round;
  if (sleeping_[static_cast<std::size_t>(v)] != 0) sleep_heap_.emplace(round, v);
}

void RoundDriver::deliver_batch() {
  // The engine's fault-free delivery pass: account every message (no crash
  // or fault filters here), drop the ones whose receiver already halted,
  // wake every recipient. Header/body digests are commutative sums/XORs, so
  // computing them over the collected batch here equals the engine's
  // accumulation message for message: the header sum is one vectorized pass
  // over the packed 40-byte records (same kernel the engine dispatches),
  // and only messages that actually carry a body pay a body digest.
  const bool traced = options_.trace != nullptr;
  std::uint64_t dropped_sum = 0;
  std::uint64_t header_sum = 0;
  if (traced) {
    digest_.sent = outbox_.size();
    header_sum = simd::sum_headers40(
        tier_, reinterpret_cast<const std::byte*>(outbox_.data()), outbox_.size());
    for (const sim::Message& m : outbox_) {
      if (m.has_body()) {
        digest_.body_hash ^= sim::digest_body(tier_, sim::digest_header(m), m.body());
      }
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < outbox_.size(); ++i) {
    const sim::Message& m = outbox_[i];
    LFT_ASSERT(m.to >= 0 && m.to < n_);
    metrics_.messages_total += 1;
    metrics_.bits_total += static_cast<std::int64_t>(m.bits);
    metrics_.messages_honest += 1;
    metrics_.bits_honest += static_cast<std::int64_t>(m.bits);
    status_[static_cast<std::size_t>(m.from)].sends += 1;
    const auto to = static_cast<std::size_t>(m.to);
    if (status_[to].crashed || status_[to].halted) {  // never received
      if (traced) {
        ++digest_.lost_dead;
        dropped_sum += sim::digest_header(m);
      }
      continue;
    }
    wake_by(m.to, round_ + 1);  // delivery always wakes the recipient
    if (kept != i) outbox_[kept] = m;
    ++kept;
  }
  outbox_.resize(kept);
  if (traced) {
    digest_.payload_hash = sim::digest_messages_final(header_sum - dropped_sum, kept);
  }
  metrics_.peak_round_messages =
      std::max(metrics_.peak_round_messages, static_cast<std::int64_t>(kept));

  // Delivery normal form: group by (receiver, tag). The batch arrived in
  // ascending sender order and stable_sort keeps ties in input order, so
  // each (receiver, tag) run stays sorted by sender with per-sender send
  // order preserved — the engine's radix normal form exactly.
  std::stable_sort(outbox_.begin(), outbox_.end(),
                   [](const sim::Message& a, const sim::Message& b) {
                     return a.to != b.to ? a.to < b.to : a.tag < b.tag;
                   });
  inbox_.swap(outbox_);
  outbox_.clear();
}

sim::Report RoundDriver::run() {
  while (step()) {
  }
  return finish();
}

bool RoundDriver::step() {
  if (finished_) return false;
  if (round_ >= options_.max_rounds) {
    finished_ = true;
    return false;
  }
  {
    // 0. Wake sleepers whose timer (or a message) is due; heap entries are
    //    lazily invalidated.
    woken_.clear();
    while (!sleep_heap_.empty() && sleep_heap_.top().first <= round_) {
      const NodeId v = sleep_heap_.top().second;
      sleep_heap_.pop();
      const auto vi = static_cast<std::size_t>(v);
      if (sleeping_[vi] == 0 || wake_at_[vi] > round_) continue;
      sleeping_[vi] = 0;
      --sleeping_count_;
      woken_.push_back(v);
    }
    if (!woken_.empty()) {
      std::sort(woken_.begin(), woken_.end());
      const auto old_size = active_.size();
      active_.insert(active_.end(), woken_.begin(), woken_.end());
      std::inplace_merge(active_.begin(),
                         active_.begin() + static_cast<std::ptrdiff_t>(old_size),
                         active_.end());
    }

    // 1. Slice the delivered batch per active node (both ascend by id) and
    //    step everyone through the transport.
    inbox_spans_.clear();
    inbox_spans_.reserve(active_.size());
    std::size_t cursor = 0;
    for (const NodeId v : active_) {
      std::size_t lo = cursor;
      while (lo < inbox_.size() && inbox_[lo].to < v) ++lo;
      std::size_t hi = lo;
      while (hi < inbox_.size() && inbox_[hi].to == v) ++hi;
      cursor = hi;
      inbox_spans_.emplace_back(inbox_.data() + lo, hi - lo);
    }
    results_.assign(active_.size(), StepResult{});
    transport_->step_round(round_, active_, inbox_spans_, outbox_, results_);

    // 2. Apply lifecycle effects. In the engine these land during the step
    //    via Context; they are per-node and order-independent, so applying
    //    them after the batch returns is equivalent.
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const auto vi = static_cast<std::size_t>(active_[i]);
      const StepResult& r = results_[i];
      auto& s = status_[vi];
      if (r.decided) {
        if (s.decided) {
          LFT_ASSERT_MSG(s.decision == r.decision, "decision is irrevocable");
        } else {
          s.decided = true;
          s.decision = r.decision;
        }
      }
      if (r.halted) s.halted = true;
      if (r.wake_at != StepResult::kNoWake) wake_at_[vi] = r.wake_at;
      metrics_.fallback_pulls += r.fallback_pulls;
    }

    // 3. Filter, account, and sort this round's batch for delivery.
    deliver_batch();

    // 3b. Emit this round's trace digest (inbox_ now holds the delivered
    //     batch in normal form; active_ is still the set that was stepped).
    if (options_.trace != nullptr) {
      digest_.round = round_;
      digest_.delivered = inbox_.size();
      digest_.active_hash = sim::digest_nodes(active_);
      options_.trace->on_round(digest_);
      digest_ = sim::RoundDigest{};
    }

    // 4. Drop halted nodes from the active set and park sleepers; done when
    //    nobody is active or sleeping.
    std::erase_if(active_, [this](NodeId v) {
      const auto vi = static_cast<std::size_t>(v);
      if (status_[vi].crashed || status_[vi].halted) return true;
      if (wake_at_[vi] > round_ + 1) {
        sleeping_[vi] = 1;
        ++sleeping_count_;
        sleep_heap_.emplace(wake_at_[vi], v);
        return true;
      }
      return false;
    });
    if (active_.empty() && sleeping_count_ == 0) {
      completed_ = true;
      ++round_;  // this round still counts
      finished_ = true;
      return false;
    }
  }
  ++round_;
  if (round_ >= options_.max_rounds) {
    finished_ = true;
    return false;
  }
  return true;
}

sim::Report RoundDriver::finish() const {
  sim::Report report;
  sim::Metrics metrics = metrics_;
  for (const auto& s : status_) {
    metrics.max_sends_per_node = std::max(metrics.max_sends_per_node, s.sends);
  }
  metrics.rounds = round_;
  report.rounds = round_;
  report.completed = completed_;
  report.metrics = metrics;
  report.nodes = status_;
  return report;
}

void RoundDriver::reset() {
  round_ = 0;
  finished_ = false;
  completed_ = false;
  std::fill(status_.begin(), status_.end(), sim::NodeStatus{});
  active_.resize(static_cast<std::size_t>(n_));
  for (NodeId v = 0; v < n_; ++v) active_[static_cast<std::size_t>(v)] = v;
  woken_.clear();
  std::fill(sleeping_.begin(), sleeping_.end(), std::uint8_t{0});
  std::fill(wake_at_.begin(), wake_at_.end(), Round{0});
  sleeping_count_ = 0;
  while (!sleep_heap_.empty()) sleep_heap_.pop();
  inbox_.clear();
  outbox_.clear();
  inbox_spans_.clear();
  results_.clear();
  metrics_ = sim::Metrics{};
  digest_ = sim::RoundDigest{};
}

}  // namespace lft::core
