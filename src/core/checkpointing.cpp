#include "core/checkpointing.hpp"

#include "common/assert.hpp"

namespace lft::core {

CheckpointParams CheckpointParams::practical(NodeId n, std::int64_t t) {
  CheckpointParams p;
  p.gossip = GossipParams::practical(n, t);
  p.gossip.rumor_bits = 1;  // dummy rumor
  p.consensus = ConsensusParams::practical(n, t);
  // Keep checkpointing's overlays separate from any concurrently cached
  // plain-consensus run at the same (n, t).
  p.gossip.overlay_tag = 0xC0DE;
  p.consensus.overlay_tag = 0xC0DE;
  return p;
}

CheckpointProcess::CheckpointProcess(std::shared_ptr<const GossipConfig> gossip_cfg,
                                     std::shared_ptr<const VectorConsensusConfig> vec_cfg,
                                     NodeId self)
    : gossip_state_(gossip_cfg->params.n, self, /*rumor=*/1),
      vector_state_(vec_cfg->params.n) {
  driver_.add(std::make_unique<GossipBuildStage>(gossip_cfg, self, gossip_state_));
  driver_.add(std::make_unique<GossipShareStage>(gossip_cfg, self, gossip_state_));
  driver_.add(std::make_unique<GossipFinishStage>(gossip_cfg, self, gossip_state_,
                                                  /*decide_at_end=*/false));
  // Seed the vectorized consensus input from the gossip result: instance i
  // gets input 1 iff node i is present in the local extant set.
  add_vector_consensus_stages(driver_, vec_cfg, self, vector_state_,
                              [this]() { return gossip_state_.extant.known(); });
}

void CheckpointProcess::run_round(Round round, std::span<const sim::Message> inbox,
                                  ProtocolIo& io) {
  if (driver_.drive(round, inbox, io)) io.halt();
}

void CheckpointProcess::on_round(sim::Context& ctx, const sim::Inbox& inbox) {
  drive_on_engine(*this, ctx, inbox);
}

const DynamicBitset& CheckpointProcess::decided_set() const {
  LFT_ASSERT(vector_state_.has_value);
  return *vector_state_.value;
}

CheckpointOutcome run_checkpointing(const CheckpointParams& params,
                                    std::unique_ptr<sim::FaultInjector> adversary,
                                    const RunOptions& options) {
  auto gossip_cfg = GossipConfig::build(params.gossip);
  auto vec_cfg = VectorConsensusConfig::build(params.consensus);

  sim::EngineConfig engine_config;
  engine_config.crash_budget = params.consensus.t;
  engine_config.omission_budget = params.consensus.t;
  engine_config.threads = options.threads;
  engine_config.scratch = options.scratch;
  engine_config.trace = options.trace;
  engine_config.simd = options.simd;
  engine_config.telemetry = options.telemetry;
  sim::Engine engine(params.consensus.n, engine_config);
  for (NodeId v = 0; v < params.consensus.n; ++v) {
    engine.set_process(v, std::make_unique<CheckpointProcess>(gossip_cfg, vec_cfg, v));
  }
  if (adversary != nullptr) engine.add_fault_injector(std::move(adversary));

  CheckpointOutcome out;
  out.report = engine.run();
  out.termination = out.report.completed;
  out.condition1 = true;
  out.condition2 = true;
  out.condition3 = true;

  const DynamicBitset* reference = nullptr;
  for (NodeId v = 0; v < params.consensus.n; ++v) {
    const auto& status = out.report.nodes[static_cast<std::size_t>(v)];
    // Omission-faulty holders are exempt, as in gossip: their decided sets
    // may legitimately be incomplete.
    if (status.crashed || status.omission) continue;
    const auto& proc = static_cast<const CheckpointProcess&>(engine.process(v));
    if (!proc.vector_state().decided) {
      out.termination = false;
      continue;
    }
    const DynamicBitset& set = proc.decided_set();
    if (reference == nullptr) {
      reference = &set;
    } else if (!(*reference == set)) {
      out.condition3 = false;
    }
    for (NodeId j = 0; j < params.consensus.n; ++j) {
      const auto& js = out.report.nodes[static_cast<std::size_t>(j)];
      if (js.crashed && js.sends == 0 && set.test(static_cast<std::size_t>(j))) {
        out.condition1 = false;
      }
      // Condition (2) exempts omission-faulty nodes, as in gossip: their
      // checkpoints may have been lost in transit.
      if (!js.crashed && !js.omission && !set.test(static_cast<std::size_t>(j))) {
        out.condition2 = false;
      }
    }
  }
  return out;
}

}  // namespace lft::core
