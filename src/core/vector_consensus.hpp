// Vectorized Few-Crashes-Consensus: n concurrent binary consensus instances
// executed with combined messages, exactly as Checkpointing (Figure 6)
// prescribes ("a node transmits messages over a link simultaneously for each
// instance of consensus, and these messages are combined into one big
// message"). The candidate is a bitset; flooding sends per-link deltas of
// newly raised instances; probing piggybacks deltas on heartbeats; value
// spreading and inquiries carry the full vector.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/growset.hpp"
#include "core/io.hpp"
#include "core/local_probe.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "graph/phase_graph.hpp"

namespace lft::core {

struct VectorState {
  explicit VectorState(NodeId n) : candidate(static_cast<std::size_t>(n)) {}
  GrowingBitset candidate;
  std::size_t broadcast_mark = 0;  // candidate log watermark for flooding
  bool survived_probe = false;
  bool has_value = false;
  std::optional<DynamicBitset> value;
  bool decided = false;
};

/// Shared topology for a vectorized consensus run (mirrors Figure 3's parts).
/// `instances` is the number of concurrent binary instances; checkpointing
/// uses n (one per node name), the majority/counting extension uses 2n.
struct VectorConsensusConfig {
  ConsensusParams params;
  NodeId instances = 0;
  std::shared_ptr<const graph::Graph> little_g;
  std::shared_ptr<const graph::Graph> spread_h;
  std::vector<graph::PhaseGraph> inquiry;

  [[nodiscard]] static std::shared_ptr<const VectorConsensusConfig> build(
      const ConsensusParams& params, NodeId instances = 0);
};

/// Optional initializer evaluated at the stage's first round (used by
/// checkpointing to seed the candidate from the gossip extant set).
using VectorInit = std::function<DynamicBitset()>;

/// Part 1: flooding of raised instances among little nodes.
class VecFloodStage final : public Stage {
 public:
  VecFloodStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                VectorState& state, VectorInit init);
  [[nodiscard]] Round duration() const override;
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;

 private:
  std::shared_ptr<const VectorConsensusConfig> cfg_;
  NodeId self_;
  VectorState* state_;
  VectorInit init_;
  std::vector<std::byte> scratch_;  // payload build buffer, reused per send
};

/// Part 2: local probing; survivors decide on their candidate vector.
class VecProbeStage final : public Stage {
 public:
  VecProbeStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                VectorState& state);
  [[nodiscard]] Round duration() const override;
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;

 private:
  std::shared_ptr<const VectorConsensusConfig> cfg_;
  NodeId self_;
  VectorState* state_;
  LocalProbe probe_;
  std::vector<std::byte> scratch_;  // payload build buffer, reused per send
};

/// Part 3: little deciders notify related nodes with the full vector.
class VecNotifyStage final : public Stage {
 public:
  VecNotifyStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                 VectorState& state);
  [[nodiscard]] Round duration() const override { return 2; }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;

 private:
  std::shared_ptr<const VectorConsensusConfig> cfg_;
  NodeId self_;
  VectorState* state_;
  std::vector<std::byte> scratch_;  // payload build buffer, reused per send
};

/// SCV Part 1 analogue: holders flood the decided vector over H once.
class VecSpreadStage final : public Stage {
 public:
  VecSpreadStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                 VectorState& state);
  [[nodiscard]] Round duration() const override;
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;

 private:
  std::shared_ptr<const VectorConsensusConfig> cfg_;
  NodeId self_;
  VectorState* state_;
  bool forwarded_ = false;
  std::vector<std::byte> scratch_;  // payload build buffer, reused per send
};

/// SCV Part 2 analogue: inquiry phases (or the all-littles pull when
/// t^2 <= n) plus the certified-pull epilogue; replies carry the vector.
class VecInquiryStage final : public Stage {
 public:
  /// mode 0: inquiry phases over cfg->inquiry; mode 1: pull from the little
  /// group (paper branch); mode 2: fallback pull (counts activations).
  VecInquiryStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                  VectorState& state, int mode);
  [[nodiscard]] Round duration() const override;
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;

 private:
  void adopt(const sim::Message& m, ProtocolIo& io);
  std::shared_ptr<const VectorConsensusConfig> cfg_;
  NodeId self_;
  VectorState* state_;
  int mode_;
  std::vector<std::byte> scratch_;  // payload build buffer, reused per send
};

/// Appends the full vectorized-consensus pipeline to a driver.
void add_vector_consensus_stages(StageDriver& driver,
                                 std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                                 VectorState& state, VectorInit init);

}  // namespace lft::core
