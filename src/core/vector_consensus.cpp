#include "core/vector_consensus.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/consensus.hpp"
#include "core/stages.hpp"
#include "core/tags.hpp"
#include "graph/overlay.hpp"

namespace lft::core {

namespace {

std::uint64_t bitset_bits(const DynamicBitset& b) {
  return std::max<std::uint64_t>(1, b.size());
}

/// Serializes `b` into `scratch` and returns a view of it (valid until the
/// scratch buffer is reused — the engine copies it out during send).
sim::PayloadView encode_bitset(const DynamicBitset& b, std::vector<std::byte>& scratch) {
  ByteWriter w(scratch);
  w.put_bitset(b);
  return w.view();
}

std::optional<DynamicBitset> decode_bitset(const sim::Message& m, NodeId n) {
  ByteReader r(m.body());
  return r.get_bitset(static_cast<std::size_t>(n));
}

}  // namespace

std::shared_ptr<const VectorConsensusConfig> VectorConsensusConfig::build(
    const ConsensusParams& params, NodeId instances) {
  auto cfg = std::make_shared<VectorConsensusConfig>();
  cfg->params = params;
  cfg->instances = instances > 0 ? instances : params.n;
  const int little_degree =
      std::max(1, std::min<int>(params.probe_degree_little, params.little_count - 1));
  cfg->little_g = graph::shared_overlay(params.little_count, little_degree,
                                        params.overlay_tag ^ kOverlayLittleG);
  const int spread_degree = std::max(1, std::min<int>(params.spread_degree, params.n - 1));
  cfg->spread_h =
      graph::shared_overlay(params.n, spread_degree, params.overlay_tag ^ kOverlaySpreadH);
  if (!params.use_little_pull) {
    cfg->inquiry = inquiry_graphs(params, params.scv_phases,
                                  params.overlay_tag ^ (kOverlayInquiryBase + 900));
  }
  return cfg;
}

// ---- VecFloodStage -----------------------------------------------------------

VecFloodStage::VecFloodStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                             VectorState& state, VectorInit init)
    : cfg_(std::move(cfg)), self_(self), state_(&state), init_(std::move(init)) {}

Round VecFloodStage::duration() const { return cfg_->params.flood_rounds_little; }

void VecFloodStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  if (self_ >= cfg_->params.little_count) return;
  if (r == 0 && init_) state_->candidate.merge(init_());
  for (const auto& m : inbox) {
    if (m.tag == kTagVecRumor) {
      ByteReader reader(m.body());
      (void)state_->candidate.apply(reader);
    }
  }
  if (state_->candidate.log_size() > state_->broadcast_mark) {
    // One delta per round, broadcast to every neighbor: encode once.
    ByteWriter w(scratch_);
    (void)state_->candidate.encode_delta(state_->broadcast_mark, w);
    for (NodeId nb : cfg_->little_g->neighbors(self_)) {
      io.send(nb, kTagVecRumor, 0, std::max<std::uint64_t>(1, w.size() * 8), w.view());
    }
    state_->broadcast_mark = state_->candidate.log_size();
  }
}

// ---- VecProbeStage -------------------------------------------------------------

VecProbeStage::VecProbeStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                             VectorState& state)
    : cfg_(std::move(cfg)),
      self_(self),
      state_(&state),
      probe_(cfg_->params.probe_gamma_little, cfg_->params.probe_delta_little) {}

Round VecProbeStage::duration() const { return probe_.duration(); }

void VecProbeStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  if (self_ >= cfg_->params.little_count) return;
  int heartbeats = 0;
  for (const auto& m : inbox) {
    if (m.tag == kTagVecProbe) {
      ++heartbeats;
      if (m.has_body()) {
        ByteReader reader(m.body());
        (void)state_->candidate.apply(reader);
      }
    } else if (m.tag == kTagVecRumor) {
      ByteReader reader(m.body());
      (void)state_->candidate.apply(reader);
    }
  }
  if (probe_.step(heartbeats)) {
    ByteWriter w(scratch_);
    (void)state_->candidate.encode_delta(state_->broadcast_mark, w);
    for (NodeId nb : cfg_->little_g->neighbors(self_)) {
      io.send(nb, kTagVecProbe, 0, std::max<std::uint64_t>(1, w.size() * 8), w.view());
    }
    state_->broadcast_mark = state_->candidate.log_size();
  }
  if (r + 1 == duration() && probe_.survived()) {
    state_->survived_probe = true;
    state_->has_value = true;
    state_->value = state_->candidate.bits();
    state_->decided = true;
    io.decide(state_->candidate.digest());
  }
}

// ---- VecNotifyStage --------------------------------------------------------------

VecNotifyStage::VecNotifyStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                               VectorState& state)
    : cfg_(std::move(cfg)), self_(self), state_(&state) {}

void VecNotifyStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  const NodeId little = cfg_->params.little_count;
  if (r == 0) {
    if (self_ < little && state_->has_value) {
      const sim::PayloadView body = encode_bitset(*state_->value, scratch_);
      for (NodeId j = self_ + little; j < cfg_->params.n; j += little) {
        io.send(j, kTagVecNotify, 0, bitset_bits(*state_->value), body);
      }
    }
    return;
  }
  if (self_ >= little && !state_->has_value) {
    for (const auto& m : inbox) {
      if (m.tag != kTagVecNotify) continue;
      auto decoded = decode_bitset(m, cfg_->instances);
      if (!decoded) continue;
      state_->has_value = true;
      state_->value = std::move(*decoded);
      state_->decided = true;
      GrowingBitset g(state_->value->size());
      g.merge(*state_->value);
      io.decide(g.digest());
      break;
    }
  }
}

// ---- VecSpreadStage ----------------------------------------------------------------

VecSpreadStage::VecSpreadStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                               VectorState& state)
    : cfg_(std::move(cfg)), self_(self), state_(&state) {}

Round VecSpreadStage::duration() const { return cfg_->params.spread_rounds + 1; }

void VecSpreadStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  bool adopted = false;
  for (const auto& m : inbox) {
    if (m.tag != kTagVecSpread || state_->has_value) continue;
    auto decoded = decode_bitset(m, cfg_->instances);
    if (!decoded) continue;
    state_->has_value = true;
    state_->value = std::move(*decoded);
    state_->decided = true;
    GrowingBitset g(state_->value->size());
    g.merge(*state_->value);
    io.decide(g.digest());
    adopted = true;
  }
  const bool start = (r == 0 && state_->has_value);
  if ((start || adopted) && !forwarded_ && r < cfg_->params.spread_rounds) {
    forwarded_ = true;
    const sim::PayloadView body = encode_bitset(*state_->value, scratch_);
    for (NodeId nb : cfg_->spread_h->neighbors(self_)) {
      io.send(nb, kTagVecSpread, 0, bitset_bits(*state_->value), body);
    }
  }
}

// ---- VecInquiryStage -----------------------------------------------------------------

VecInquiryStage::VecInquiryStage(std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                                 VectorState& state, int mode)
    : cfg_(std::move(cfg)), self_(self), state_(&state), mode_(mode) {
  LFT_ASSERT(mode_ >= 0 && mode_ <= 2);
  LFT_ASSERT(mode_ != 0 || !cfg_->inquiry.empty());
}

Round VecInquiryStage::duration() const {
  return mode_ == 0 ? 2 * static_cast<Round>(cfg_->inquiry.size()) + 1 : 3;
}

void VecInquiryStage::adopt(const sim::Message& m, ProtocolIo& io) {
  if (state_->has_value) return;
  auto decoded = decode_bitset(m, cfg_->instances);
  if (!decoded) return;
  state_->has_value = true;
  state_->value = std::move(*decoded);
  state_->decided = true;
  GrowingBitset g(state_->value->size());
  g.merge(*state_->value);
  io.decide(g.digest());
}

void VecInquiryStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  for (const auto& m : inbox) {
    if (m.tag == kTagVecReply || m.tag == kTagVecPullReply) adopt(m, io);
  }
  if (mode_ == 0) {
    if (r == 2 * static_cast<Round>(cfg_->inquiry.size())) return;
    const auto phase = static_cast<std::size_t>(r / 2);
    const graph::PhaseGraph& gi = cfg_->inquiry[phase];
    if (r % 2 == 0) {
      if (!state_->has_value) {
        gi.for_each_neighbor(self_, [&io](NodeId nb) { io.send(nb, kTagVecInquiry, 0, 1); });
      }
    } else if (state_->has_value) {
      const sim::PayloadView body = encode_bitset(*state_->value, scratch_);
      for (const auto& m : inbox) {
        if (m.tag == kTagVecInquiry) {
          io.send(m.from, kTagVecReply, 0, bitset_bits(*state_->value), body);
        }
      }
    }
    return;
  }
  // Pull modes.
  switch (r) {
    case 0:
      if (!state_->has_value) {
        if (mode_ == 2) io.count_fallback();
        for (NodeId j = 0; j < cfg_->params.little_count; ++j) {
          if (j != self_) io.send(j, kTagVecPull, 0, 1);
        }
      }
      break;
    case 1:
      if (state_->has_value) {
        const sim::PayloadView body = encode_bitset(*state_->value, scratch_);
        for (const auto& m : inbox) {
          if (m.tag == kTagVecPull) {
            io.send(m.from, kTagVecPullReply, 0, bitset_bits(*state_->value), body);
          }
        }
      }
      break;
    default:
      break;  // adoption handled at the top
  }
}

// ---- pipeline ---------------------------------------------------------------------------

void add_vector_consensus_stages(StageDriver& driver,
                                 std::shared_ptr<const VectorConsensusConfig> cfg, NodeId self,
                                 VectorState& state, VectorInit init) {
  driver.add(std::make_unique<VecFloodStage>(cfg, self, state, std::move(init)));
  driver.add(std::make_unique<VecProbeStage>(cfg, self, state));
  driver.add(std::make_unique<VecNotifyStage>(cfg, self, state));
  driver.add(std::make_unique<VecSpreadStage>(cfg, self, state));
  if (cfg->params.use_little_pull) {
    driver.add(std::make_unique<VecInquiryStage>(cfg, self, state, 1));
  } else {
    driver.add(std::make_unique<VecInquiryStage>(cfg, self, state, 0));
    if (cfg->params.guarantee_termination) {
      driver.add(std::make_unique<VecInquiryStage>(cfg, self, state, 2));
    }
  }
}

}  // namespace lft::core
