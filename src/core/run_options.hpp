// Execution options shared by every protocol runner (run_system, run_gossip,
// run_checkpointing, run_ab_consensus_plan) and by the scenario registry's
// runner signatures. One struct instead of a trailing-default-parameter tail:
// call sites name only the knobs they set, and adding an engine knob no
// longer touches every runner signature in the tree.
//
// None of these options changes any Report bit — they select *how* an
// execution runs (round cap, stepper parallelism, buffer recycling, trace
// recording), never what it computes.
#pragma once

#include "common/simd.hpp"
#include "common/types.hpp"

namespace lft::obs {
class Registry;
}  // namespace lft::obs

namespace lft::sim {
struct EngineScratch;
class TraceSink;
}  // namespace lft::sim

namespace lft::core {

/// Per-execution knobs, defaulting to a cold serial untraced run.
struct RunOptions {
  /// Safety cap on executed rounds; Report::completed is false when hit.
  Round max_rounds = Round{1} << 22;
  /// Worker threads for the engine's deterministic parallel stepper;
  /// 1 = serial. Reports are bit-identical for every value.
  int threads = 1;
  /// Optional recycled engine buffers (fleet mode); non-owning, may back at
  /// most one live engine at a time. nullptr = allocate fresh.
  sim::EngineScratch* scratch = nullptr;
  /// Optional per-round digest hook (forensics plane); non-owning. nullptr
  /// records nothing and keeps the delivery hot path untouched.
  sim::TraceSink* trace = nullptr;
  /// SIMD dispatch tier for the engine's delivery sweep and digest kernels
  /// (forwarded to EngineConfig::simd). kAuto = best supported tier, after
  /// the LFT_SIMD environment override; explicit tiers are clamped to what
  /// the CPU can execute. Bit-identical Reports on every tier — speed only.
  simd::Tier simd = simd::Tier::kAuto;
  /// Optional telemetry registry (forwarded to EngineConfig::telemetry):
  /// when set, the engine records per-round `lft_engine_*` metrics into it,
  /// strictly out-of-band. Like every other option, it never changes a
  /// Report bit. Non-owning; nullptr records nothing.
  obs::Registry* telemetry = nullptr;
};

}  // namespace lft::core
