// Live execution of Programs: the second implementation of the transport
// seam declared in core/io.hpp. A Transport steps every active node through
// one round — inline on this thread (LoopbackTransport) or across real
// sockets (net::SocketTransport) — and the RoundDriver wraps that stepping
// in the exact lock-step semantics of sim::Engine: delivery normal form,
// sleep/wake bookkeeping, Metrics accounting, and per-round trace digests.
// A fault-free execution driven here produces a sim::Report (and, when
// traced, a digest stream) bit-identical to the same Programs run under the
// engine — which is what lets live service executions be replayed and
// shrunk by the forensics plane.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/io.hpp"
#include "core/run_options.hpp"
#include "sim/engine.hpp"
#include "sim/payload.hpp"
#include "sim/trace.hpp"

namespace lft::core {

/// Lifecycle effects of one node's round, reported back by a Transport.
struct StepResult {
  bool decided = false;
  std::uint64_t decision = 0;
  bool halted = false;
  /// Latest sleep_until() argument this round, or kNoWake when the node did
  /// not request parking (matches the engine: do_sleep assigns wake_at
  /// unconditionally, and only the last call survives the round).
  Round wake_at = kNoWake;
  std::int64_t fallback_pulls = 0;

  static constexpr Round kNoWake = -1;
};

/// ProtocolIo that buffers one node's round into a message batch and a
/// StepResult — the building block of every live Transport endpoint.
/// Payload bytes are copied into `arena` before send() returns, mirroring
/// the engine's round-scoped payload ownership.
class BatchIo final : public ProtocolIo {
 public:
  BatchIo(NodeId self, sim::PayloadArena& arena, std::vector<sim::Message>& out,
          StepResult& result)
      : self_(self), arena_(&arena), out_(&out), result_(&result) {}

  void send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits,
            sim::PayloadView body) override;
  void decide(std::uint64_t value) override;
  void halt() override { result_->halted = true; }
  void sleep_until(Round wake_round) override { result_->wake_at = wake_round; }
  void count_fallback() override { result_->fallback_pulls += 1; }

 private:
  NodeId self_;
  sim::PayloadArena* arena_;
  std::vector<sim::Message>* out_;
  StepResult* result_;
};

/// Steps all active nodes through one round. The driver owns delivery,
/// bookkeeping, and digests; the transport owns only where the Programs run.
///
/// Contract:
///  - `inboxes[i]` is the delivered batch for `active[i]`, already in the
///    delivery normal form; implementations must not retain the spans.
///  - Each node's sends are appended to `outbox` grouped by sender in
///    ascending `active` order (the engine's ascending-sender batch shape),
///    preserving per-sender send order.
///  - Message bodies appended to `outbox` must stay valid until the NEXT
///    step_round call returns (they back next round's inboxes). Double
///    buffering on `round & 1` — as the engine and LoopbackTransport do —
///    satisfies this.
///  - `results[i]` reports the lifecycle effects of `active[i]`.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void step_round(Round round, std::span<const NodeId> active,
                          std::span<const std::span<const sim::Message>> inboxes,
                          std::vector<sim::Message>& outbox,
                          std::span<StepResult> results) = 0;
};

/// The trivial Transport: owns the Programs and steps them inline on the
/// calling thread. The deterministic twin of net::SocketTransport — and the
/// reference any Transport implementation must be bit-identical to.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::vector<std::unique_ptr<Program>> programs)
      : programs_(std::move(programs)) {}

  void step_round(Round round, std::span<const NodeId> active,
                  std::span<const std::span<const sim::Message>> inboxes,
                  std::vector<sim::Message>& outbox,
                  std::span<StepResult> results) override;

  [[nodiscard]] const Program& program(NodeId v) const {
    return *programs_[static_cast<std::size_t>(v)];
  }

 private:
  std::vector<std::unique_ptr<Program>> programs_;
  sim::PayloadArena arena_[2];  // parity round & 1, exactly like the engine
};

/// Runs n Programs in lock-step over a Transport until every node halts,
/// reproducing the fault-free sim::Engine execution exactly: the same
/// rounds, the same Metrics, the same per-node statuses, and — when
/// options.trace is set — the same per-round RoundDigest stream. Faults are
/// the engine's domain; the driver has no fault plane (options.scratch and
/// options.threads are likewise engine-only knobs and are ignored here).
class RoundDriver {
 public:
  RoundDriver(NodeId n, Transport& transport, const RunOptions& options = {});

  /// Runs to completion: while (step()) {} then finish().
  [[nodiscard]] sim::Report run();

  /// Incremental execution for slot pipelining: advances one lock-step
  /// round per call; returns false once the execution finished (every node
  /// halted or the round cap hit) — the finishing round still executes on
  /// the call that returns false. run() is exactly this loop, so stepping
  /// produces bit-identical Reports and digest streams.
  [[nodiscard]] bool step();
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The final Report; call after step() returns false. Idempotent.
  [[nodiscard]] sim::Report finish() const;

  /// Rewinds all bookkeeping for a fresh execution over the same transport,
  /// keeping allocated buffers — the pooled-scratch path of the service
  /// plane's slot pipeline. The transport's Programs must be reset (or
  /// rebuilt) by the caller.
  void reset();

  /// Swaps the trace sink for the next execution (a pooled slot records
  /// only when asked to).
  void set_trace(sim::TraceSink* trace) noexcept { options_.trace = trace; }

 private:
  void deliver_batch();

  NodeId n_;
  Transport* transport_;
  RunOptions options_;
  simd::Tier tier_ = simd::Tier::kScalar;  // resolved from options_.simd
  Round round_ = 0;
  bool finished_ = false;
  bool completed_ = false;
  std::vector<sim::NodeStatus> status_;
  std::vector<NodeId> active_;  // ascending
  std::vector<NodeId> woken_;
  std::vector<std::uint8_t> sleeping_;
  std::vector<Round> wake_at_;
  std::int64_t sleeping_count_ = 0;
  std::priority_queue<std::pair<Round, NodeId>, std::vector<std::pair<Round, NodeId>>,
                      std::greater<>>
      sleep_heap_;
  std::vector<sim::Message> inbox_;
  std::vector<sim::Message> outbox_;
  std::vector<std::span<const sim::Message>> inbox_spans_;
  std::vector<StepResult> results_;
  sim::Metrics metrics_;
  sim::RoundDigest digest_;

  void wake_by(NodeId v, Round round);
};

}  // namespace lft::core
