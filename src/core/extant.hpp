// The extant set of the gossiping/checkpointing problems (Section 2): a
// collection of (node, rumor) pairs, monotonically growing. Supports full
// and delta serialization; deltas are safe because knowledge only grows and
// link delivery is reliable (a crashed sender never resumes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"

namespace lft::core {

class ExtantSet {
 public:
  explicit ExtantSet(NodeId n);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] bool contains(NodeId id) const noexcept {
    return known_.test(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::uint64_t rumor(NodeId id) const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return known_.count(); }
  [[nodiscard]] const DynamicBitset& known() const noexcept { return known_; }

  /// Adds a pair; returns true iff it was new. Re-adding an existing id is a
  /// no-op (first rumor wins; rumors are immutable per node).
  bool add(NodeId id, std::uint64_t rumor);

  /// Insertion log: pairs in the order they were learned. Watermarks into
  /// this log drive delta encoding.
  [[nodiscard]] std::size_t log_size() const noexcept { return order_.size(); }

  /// Serializes pairs with log index >= from (a delta), returns new watermark.
  std::size_t encode_delta(std::size_t from, ByteWriter& w) const;
  /// Serializes the complete set.
  void encode_full(ByteWriter& w) const;

  /// Applies a delta or full encoding; returns false on malformed input.
  /// Returns true (and reports via `changed`) otherwise.
  bool apply(ByteReader& r, bool* changed = nullptr);

  /// Order-independent content digest (for decision bookkeeping and tests).
  [[nodiscard]] std::uint64_t digest() const noexcept;

  friend bool operator==(const ExtantSet& a, const ExtantSet& b) noexcept {
    if (a.n_ != b.n_ || !(a.known_ == b.known_)) return false;
    bool equal = true;
    a.known_.for_each([&](std::size_t i) {
      if (a.rumor_[i] != b.rumor_[i]) equal = false;
    });
    return equal;
  }

 private:
  NodeId n_;
  DynamicBitset known_;
  std::vector<std::uint64_t> rumor_;
  std::vector<NodeId> order_;
};

}  // namespace lft::core
