#include "core/extensions.hpp"

#include "common/assert.hpp"

namespace lft::core {

namespace {

/// Gossip the inputs as rumors, then vectorized consensus over 2n instances:
/// [0, n) membership, [n, 2n) membership-with-input-1.
class AggregateProcess final : public sim::Process, public Program {
 public:
  AggregateProcess(std::shared_ptr<const GossipConfig> gossip_cfg,
                   std::shared_ptr<const VectorConsensusConfig> vec_cfg, NodeId self,
                   int input)
      : n_(gossip_cfg->params.n),
        gossip_state_(n_, self, static_cast<std::uint64_t>(input)),
        vector_state_(vec_cfg->instances) {
    driver_.add(std::make_unique<GossipBuildStage>(gossip_cfg, self, gossip_state_));
    driver_.add(std::make_unique<GossipShareStage>(gossip_cfg, self, gossip_state_));
    driver_.add(std::make_unique<GossipFinishStage>(gossip_cfg, self, gossip_state_,
                                                    /*decide_at_end=*/false));
    add_vector_consensus_stages(driver_, vec_cfg, self, vector_state_, [this]() {
      DynamicBitset seed(2 * static_cast<std::size_t>(n_));
      gossip_state_.extant.known().for_each([&](std::size_t j) {
        seed.set(j);
        if (gossip_state_.extant.rumor(static_cast<NodeId>(j)) == 1) {
          seed.set(static_cast<std::size_t>(n_) + j);
        }
      });
      return seed;
    });
  }

  void run_round(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) override {
    if (driver_.drive(round, inbox, io)) io.halt();
  }

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    drive_on_engine(*this, ctx, inbox);
  }

  [[nodiscard]] const VectorState& vector_state() const noexcept { return vector_state_; }

  /// Derived aggregates, valid when decided. An instance n+j may be raised
  /// while instance j is not (per-instance flooding is independent), so the
  /// ones-count intersects both halves.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> aggregates() const {
    LFT_ASSERT(vector_state_.has_value);
    const DynamicBitset& v = *vector_state_.value;
    std::int64_t members = 0;
    std::int64_t ones = 0;
    for (NodeId j = 0; j < n_; ++j) {
      if (!v.test(static_cast<std::size_t>(j))) continue;
      ++members;
      if (v.test(static_cast<std::size_t>(n_ + j))) ++ones;
    }
    return {members, ones};
  }

 private:
  NodeId n_;
  GossipState gossip_state_;
  VectorState vector_state_;
  StageDriver driver_;
};

}  // namespace

AggregateOutcome run_majority_consensus(const CheckpointParams& params,
                                        std::span<const int> inputs,
                                        std::unique_ptr<sim::FaultInjector> adversary) {
  const NodeId n = params.consensus.n;
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == n);
  auto gossip_cfg = GossipConfig::build(params.gossip);
  auto vec_cfg = VectorConsensusConfig::build(params.consensus, 2 * n);

  sim::EngineConfig engine_config;
  engine_config.crash_budget = params.consensus.t;
  engine_config.omission_budget = params.consensus.t;
  sim::Engine engine(n, engine_config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, std::make_unique<AggregateProcess>(gossip_cfg, vec_cfg, v,
                                                             inputs[static_cast<std::size_t>(v)]));
  }
  if (adversary != nullptr) engine.add_fault_injector(std::move(adversary));

  AggregateOutcome out;
  out.report = engine.run();
  out.termination = out.report.completed;
  out.agreement = true;
  for (NodeId v = 0; v < n; ++v) {
    const auto& vs = out.report.nodes[static_cast<std::size_t>(v)];
    if (vs.crashed || vs.omission) continue;  // faulty nodes are exempt
    const auto& proc = static_cast<const AggregateProcess&>(engine.process(v));
    if (!proc.vector_state().decided) {
      out.termination = false;
      continue;
    }
    const auto [members, ones] = proc.aggregates();
    if (out.members < 0) {
      out.members = members;
      out.ones = ones;
    } else if (out.members != members || out.ones != ones) {
      out.agreement = false;
    }
  }
  if (out.members >= 0) out.majority = (2 * out.ones > out.members) ? 1 : 0;
  return out;
}

}  // namespace lft::core
