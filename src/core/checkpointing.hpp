// Checkpointing (Figure 6, Theorem 10): gossip the node names with a dummy
// rumor, then run n concurrent instances of Few-Crashes-Consensus — one per
// node name, input 1 iff the name is present in the local extant set — with
// per-link combined messages (the vectorized consensus of
// vector_consensus.hpp). All non-faulty nodes decide the same extant set.
#pragma once

#include <memory>

#include "core/gossip.hpp"
#include "core/vector_consensus.hpp"

namespace lft::core {

struct CheckpointParams {
  GossipParams gossip;
  ConsensusParams consensus;

  [[nodiscard]] static CheckpointParams practical(NodeId n, std::int64_t t);
};

class CheckpointProcess final : public sim::Process, public Program {
 public:
  CheckpointProcess(std::shared_ptr<const GossipConfig> gossip_cfg,
                    std::shared_ptr<const VectorConsensusConfig> vec_cfg, NodeId self);

  void run_round(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override;

  [[nodiscard]] const GossipState& gossip_state() const noexcept { return gossip_state_; }
  [[nodiscard]] const VectorState& vector_state() const noexcept { return vector_state_; }
  [[nodiscard]] Round duration() const { return driver_.total_duration(); }

  /// The decided extant set (valid when vector_state().decided).
  [[nodiscard]] const DynamicBitset& decided_set() const;

 private:
  GossipState gossip_state_;
  VectorState vector_state_;
  StageDriver driver_;
};

/// Runs checkpointing and evaluates its three conditions:
///  (1) a node that crashed before sending anything is in no decided set,
///  (2) a node that halted operational is in every decided set,
///  (3) all decided extant sets are equal,
/// plus termination.
struct CheckpointOutcome {
  sim::Report report;
  bool termination = false;
  bool condition1 = false;
  bool condition2 = false;
  bool condition3 = false;

  [[nodiscard]] bool all_good() const {
    return termination && condition1 && condition2 && condition3;
  }
};

/// Execution knobs (parallel stepper, scratch recycling, trace recording)
/// travel in core::RunOptions; none of them changes any Report bit.
[[nodiscard]] CheckpointOutcome run_checkpointing(const CheckpointParams& params,
                                                  std::unique_ptr<sim::FaultInjector> adversary,
                                                  const RunOptions& options = {});

}  // namespace lft::core
