// A monotonically growing bit set over [0, n) with an insertion log for
// delta serialization. Used for vectorized consensus candidates (Section 6)
// and gossip completion sets (Section 5): both only ever gain members, so
// per-link deltas are sound under reliable delivery.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bitset.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"

namespace lft::core {

class GrowingBitset {
 public:
  explicit GrowingBitset(std::size_t n) : bits_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] bool test(std::size_t i) const noexcept { return bits_.test(i); }
  [[nodiscard]] std::size_t count() const noexcept { return bits_.count(); }
  [[nodiscard]] const DynamicBitset& bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t log_size() const noexcept { return order_.size(); }

  bool add(std::size_t i) {
    LFT_ASSERT(i < bits_.size());
    if (bits_.test(i)) return false;
    bits_.set(i);
    order_.push_back(static_cast<std::uint32_t>(i));
    return true;
  }

  /// Adds every set bit of `other`; returns true iff anything was new.
  bool merge(const DynamicBitset& other) {
    LFT_ASSERT(other.size() == bits_.size());
    bool changed = false;
    other.for_each([&](std::size_t i) { changed |= add(i); });
    return changed;
  }

  /// Serializes entries with log index >= from; returns the new watermark.
  std::size_t encode_delta(std::size_t from, ByteWriter& w) const {
    LFT_ASSERT(from <= order_.size());
    w.put_varint(order_.size() - from);
    for (std::size_t i = from; i < order_.size(); ++i) w.put_varint(order_[i]);
    return order_.size();
  }

  /// Applies an encoded delta; returns false on malformed input.
  bool apply(ByteReader& r, bool* changed = nullptr) {
    if (changed != nullptr) *changed = false;
    const auto count = r.get_varint();
    if (!count || *count > bits_.size()) return false;
    for (std::uint64_t k = 0; k < *count; ++k) {
      const auto i = r.get_varint();
      if (!i || *i >= bits_.size()) return false;
      if (add(static_cast<std::size_t>(*i)) && changed != nullptr) *changed = true;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t digest() const noexcept {
    std::uint64_t h = 0x67726f7773657431ULL;  // "growset1"
    bits_.for_each([&](std::size_t i) { h = hash_combine(h, static_cast<std::uint64_t>(i)); });
    return h;
  }

 private:
  DynamicBitset bits_;
  std::vector<std::uint32_t> order_;
};

}  // namespace lft::core
