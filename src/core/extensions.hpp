// Extensions sketched in the paper's Discussion (Section 9): "the newly
// discovered properties of Ramanujan graphs could be applied to streamline
// ... problems like gossip, counting, and majority consensus." Both are
// built from the paper's own machinery: gossip the inputs, then run 2n
// concurrent consensus instances with combined messages — instances [0, n)
// agree on the operational member set, instances [n, 2n) agree on the
// members that hold input 1. Every non-faulty node then derives the same
// count and the same majority value locally.
#pragma once

#include <memory>
#include <span>

#include "core/checkpointing.hpp"

namespace lft::core {

struct AggregateOutcome {
  sim::Report report;
  bool termination = false;  // every non-faulty node decided
  bool agreement = false;    // all decided (members, ones) pairs equal
  std::int64_t members = -1; // agreed count of operational nodes
  std::int64_t ones = -1;    // agreed count of members with input 1
  int majority = -1;         // 1 iff ones * 2 > members

  [[nodiscard]] bool all_good() const { return termination && agreement; }
};

/// Counting + majority consensus over binary inputs, tolerating up to t
/// crashes (t < n/5). Uses CheckpointParams for the gossip and consensus
/// sub-protocols.
[[nodiscard]] AggregateOutcome run_majority_consensus(
    const CheckpointParams& params, std::span<const int> inputs,
    std::unique_ptr<sim::FaultInjector> adversary);

}  // namespace lft::core
