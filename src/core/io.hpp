// Protocol/stage abstractions. The paper's algorithms are sequences of
// time-separated parts (flooding, local probing, notification, value
// spreading, inquiry phases); each part is a Stage driven round by round.
// Stages are engine-agnostic: the multi-port StageProcess drives them on the
// sim::Engine, and the single-port adapter (src/singleport) expands each
// stage round into send/poll slots using the stage's declared link plans —
// the Section 8 construction.
//
// ProtocolIo is the transport seam: it carries the complete per-round
// surface a protocol participant needs (send, decide, halt, sleep,
// fallback accounting), so protocol code never touches sim::Context
// directly. A Program is one participant driven round by round through
// that seam; the same Program object runs under the sim::Engine (via the
// ContextIo adapter) and under a live core::RoundDriver transport (see
// core/driver.hpp) — which is what lets the service plane serve real
// traffic with the identical, unforked protocol implementations.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace lft::core {

/// What a protocol participant can do to the outside world during a round.
/// This is the full per-node surface: both the engine's Context and the live
/// RoundDriver implement it, so protocol code written against ProtocolIo is
/// transport-agnostic.
class ProtocolIo {
 public:
  virtual ~ProtocolIo() = default;
  /// Payload bytes are copied out before send returns (into the engine's
  /// round arena or the adapter's block pool), so `body` may view scratch
  /// storage that is reused right after the call.
  virtual void send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits = 1,
                    sim::PayloadView body = {}) = 0;
  /// Irrevocable decision (forwarded to the driver's bookkeeping).
  virtual void decide(std::uint64_t value) = 0;
  /// Voluntarily stops participating from the next round on.
  virtual void halt() = 0;
  /// Requests that this node not be stepped again before `wake_round`
  /// unless a message for it is delivered first (delivery always wakes the
  /// recipient). Purely a stepping optimization: drivers may ignore it
  /// only if they step every round anyway.
  virtual void sleep_until(Round wake_round) = 0;
  /// Marks one activation of a certified-pull epilogue (see DESIGN.md).
  virtual void count_fallback() = 0;
};

/// One protocol participant, driven round by round through ProtocolIo. The
/// inbox span is the node's delivered batch in the delivery normal form
/// (grouped by tag ascending, sorted by sender within each tag group).
/// Implementations signal completion via io.halt() and may request
/// event-driven parking via io.sleep_until(); they must not retain the
/// inbox span or any payload view beyond the call.
class Program {
 public:
  virtual ~Program() = default;
  virtual void run_round(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) = 0;
};

/// Bridges a Program to the engine: the one place protocol code meets
/// sim::Context. Every protocol Process::on_round forwards here.
void drive_on_engine(Program& program, sim::Context& ctx, const sim::Inbox& inbox);

/// Static per-round link bounds (identical at every node), used by the
/// single-port adapter to size its send/poll slots.
struct LinkBudget {
  int max_out = 0;
  int max_in = 0;
};

/// This node's usable links at a given stage round: `out` lists targets it
/// may send to (superset of actual sends), `in` lists sources whose messages
/// sent this round it must poll for.
struct LinkPlan {
  std::vector<NodeId> out;
  std::vector<NodeId> in;
};

/// One time-separated part of a protocol at one node.
class Stage {
 public:
  virtual ~Stage() = default;

  /// Number of rounds this stage occupies. Must be the same at every node.
  [[nodiscard]] virtual Round duration() const = 0;

  /// Drives local round r (0-based within the stage). `inbox` contains only
  /// messages sent during this stage's rounds (stages own disjoint tag
  /// ranges and are time-separated).
  virtual void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) = 0;

  /// Single-port support: global per-round link bounds...
  [[nodiscard]] virtual LinkBudget link_budget(Round /*r*/) const { return {}; }
  /// ...and this node's link plan for round r.
  [[nodiscard]] virtual LinkPlan link_plan(Round /*r*/) const { return {}; }

  /// Event-driven support: called after on_round(r), returns the earliest
  /// stage-local round at which this node must be activated again absent
  /// incoming messages (message delivery always reactivates a node). The
  /// default r + 1 keeps the node stepped every round; returning duration()
  /// parks it for the rest of the stage. Only override when skipped rounds
  /// provably have no spontaneous action AND the stage's on_round tolerates
  /// round jumps.
  [[nodiscard]] virtual Round quiescent_until(Round r) const { return r + 1; }

  /// Pooling support: restores the stage to its freshly-constructed state so
  /// the same object can run another execution without reallocation. Returns
  /// false when unsupported (the default) — callers must then rebuild the
  /// process instead. Overrides must leave the stage indistinguishable from
  /// a new construction with the same arguments (shared immutable graphs are
  /// kept; only per-execution scratch rewinds).
  [[nodiscard]] virtual bool reset() { return false; }
};

/// Shared per-node protocol state threaded through consecutive stages.
struct BinaryState {
  int candidate = 0;          // current candidate decision value (0/1)
  bool has_value = false;     // holds the common value (has decided)
  std::uint64_t value = 0;    // the common value once acquired
  bool survived_probe = false;
  bool is_little = false;
};

/// Sequences stages over engine rounds (round offsets are implicit in the
/// stage durations). Shared by all multi-port protocol processes.
class StageDriver {
 public:
  void add(std::unique_ptr<Stage> stage) {
    stages_.push_back(std::move(stage));
    total_cached_ = -1;
  }

  [[nodiscard]] Round total_duration() const;
  [[nodiscard]] const Stage& stage(std::size_t i) const { return *stages_[i]; }
  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }

  /// Drives the stage owning `round`; returns true when this was the last
  /// round of the last stage (the caller should halt).
  bool drive(Round round, std::span<const sim::Message> inbox, ProtocolIo& io);

  /// Absolute round before which the node driven at `round` needs no further
  /// activation absent messages (see Stage::quiescent_until). Capped at the
  /// final protocol round so halting rounds match the always-stepped
  /// execution.
  [[nodiscard]] Round quiescent_until(Round round) const;

  /// Rewinds the round cursor and resets every stage; false when any stage
  /// declines (the driver is then in a torn state and must be discarded).
  [[nodiscard]] bool reset_stages() {
    current_ = 0;
    stage_start_ = 0;
    for (auto& stage : stages_) {
      if (!stage->reset()) return false;
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::size_t current_ = 0;
  Round stage_start_ = 0;
  mutable Round total_cached_ = -1;
};

/// Multi-port driver process for protocols whose shared state is a
/// BinaryState (AEA, SCV, both consensus algorithms). Implements Program,
/// so the same object runs under the engine and under a live RoundDriver.
class StageProcess final : public sim::Process, public Program {
 public:
  explicit StageProcess(NodeId self) : self_(self) {}

  void add_stage(std::unique_ptr<Stage> stage) { driver_.add(std::move(stage)); }

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] Round total_duration() const { return driver_.total_duration(); }
  [[nodiscard]] StageDriver& driver() noexcept { return driver_; }

  void run_round(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    drive_on_engine(*this, ctx, inbox);
  }

  /// Post-run inspection.
  [[nodiscard]] const BinaryState& state() const noexcept { return state_; }
  [[nodiscard]] BinaryState& state() noexcept { return state_; }
  [[nodiscard]] const Stage& stage(std::size_t i) const { return driver_.stage(i); }

  /// Pooling support: rewinds the process for a fresh execution — stage
  /// cursor to 0, every stage reset, shared state to `initial`. False when
  /// any stage lacks reset support; the process must then be rebuilt.
  [[nodiscard]] bool reset(const BinaryState& initial) {
    if (!driver_.reset_stages()) return false;
    state_ = initial;
    return true;
  }

 private:
  NodeId self_;
  StageDriver driver_;
  BinaryState state_;
};

/// Adapts the engine context to ProtocolIo: one of the two transport-seam
/// implementations (the other is the RoundDriver's buffering io in
/// core/driver.hpp). A zero-cost forwarding shim — every method inlines to
/// the corresponding Context call, so driving protocols through the seam
/// costs nothing on the engine hot path.
class ContextIo final : public ProtocolIo {
 public:
  explicit ContextIo(sim::Context& ctx) : ctx_(&ctx) {}
  void send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits,
            sim::PayloadView body) override {
    ctx_->send(to, tag, value, bits, body);
  }
  void decide(std::uint64_t value) override { ctx_->decide(value); }
  void halt() override { ctx_->halt(); }
  void sleep_until(Round wake_round) override { ctx_->sleep_until(wake_round); }
  void count_fallback() override { ctx_->count_fallback(); }

 private:
  sim::Context* ctx_;
};

}  // namespace lft::core
