#include "core/extant.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace lft::core {

ExtantSet::ExtantSet(NodeId n)
    : n_(n), known_(static_cast<std::size_t>(n)), rumor_(static_cast<std::size_t>(n), 0) {}

std::uint64_t ExtantSet::rumor(NodeId id) const noexcept {
  LFT_ASSERT(contains(id));
  return rumor_[static_cast<std::size_t>(id)];
}

bool ExtantSet::add(NodeId id, std::uint64_t rumor) {
  LFT_ASSERT(id >= 0 && id < n_);
  const auto i = static_cast<std::size_t>(id);
  if (known_.test(i)) return false;
  known_.set(i);
  rumor_[i] = rumor;
  order_.push_back(id);
  return true;
}

std::size_t ExtantSet::encode_delta(std::size_t from, ByteWriter& w) const {
  LFT_ASSERT(from <= order_.size());
  w.put_varint(order_.size() - from);
  for (std::size_t i = from; i < order_.size(); ++i) {
    const NodeId id = order_[i];
    w.put_varint(static_cast<std::uint64_t>(id));
    w.put_u64(rumor_[static_cast<std::size_t>(id)]);
  }
  return order_.size();
}

void ExtantSet::encode_full(ByteWriter& w) const { (void)encode_delta(0, w); }

std::uint64_t ExtantSet::digest() const noexcept {
  std::uint64_t h = 0x6578746e74736574ULL;  // "extntset"
  known_.for_each([&](std::size_t i) {
    h = hash_combine(h, static_cast<std::uint64_t>(i));
    h = hash_combine(h, rumor_[i]);
  });
  return h;
}

bool ExtantSet::apply(ByteReader& r, bool* changed) {
  if (changed != nullptr) *changed = false;
  const auto count = r.get_varint();
  if (!count || *count > static_cast<std::uint64_t>(n_)) return false;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto id = r.get_varint();
    if (!id || *id >= static_cast<std::uint64_t>(n_)) return false;
    const auto rum = r.get_u64();
    if (!rum) return false;
    if (add(static_cast<NodeId>(*id), *rum) && changed != nullptr) *changed = true;
  }
  return true;
}

}  // namespace lft::core
