// Message tags. Each protocol stage owns a disjoint tag set; stages are also
// time-separated, so tags double as a safety net against cross-stage leaks.
#pragma once

#include <cstdint>

namespace lft::core {

enum Tag : std::uint32_t {
  kTagRumor = 1,      // Part 1 flooding of rumor 1
  kTagProbe = 2,      // local probing heartbeat (value = candidate)
  kTagNotify = 3,     // AEA Part 3: little -> related nodes
  kTagSpread = 4,     // SCV Part 1: flooding the common value
  kTagInquiry = 5,    // inquiry about a decision
  kTagReply = 6,      // reply carrying the decision value
  kTagPull = 7,       // certified-pull epilogue request
  kTagPullReply = 8,  // certified-pull epilogue response

  kTagGossipInquiry = 16,  // gossip Part 1: ask an absent node for its pair
  kTagGossipPair = 17,     // gossip: reply carrying (id, rumor)
  kTagGossipProbe = 18,    // gossip probing heartbeat (+ extant-set delta)
  kTagGossipSet = 19,      // gossip Part 2: certified extant set
  kTagGossipComplete = 20, // gossip Part 2 probing (+ completion-set delta)
  kTagGossipPull = 21,     // gossip epilogue pull
  kTagGossipSetReply = 22, // gossip epilogue response

  kTagVecRumor = 32,   // vectorized consensus flooding delta
  kTagVecProbe = 33,   // vectorized consensus probing heartbeat (+ delta)
  kTagVecNotify = 34,  // vectorized consensus little -> related (full vector)
  kTagVecSpread = 35,  // vectorized value spreading
  kTagVecInquiry = 36,
  kTagVecReply = 37,
  kTagVecPull = 38,
  kTagVecPullReply = 39,

  kTagDsRelay = 64,     // Dolev-Strong signed relay
  kTagAbNotify = 65,    // AB-Consensus Part 2: little -> related
  kTagAbSpread = 66,    // AB-Consensus Part 3: flooding common sets
  kTagAbInquiry = 67,   // AB-Consensus Part 4: authenticated inquiry
  kTagAbReply = 68,     // AB-Consensus Part 4: reply with common set
  kTagAbCert = 69,      // AB-Consensus Part 1: signature over the ACS digest

  kTagBaseline = 128,  // baselines use kTagBaseline + k
};

}  // namespace lft::core
