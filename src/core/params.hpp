// Protocol parameter policies. `paper_formulas` documents the constants the
// proofs use (degree 5^8 etc.; not instantiable at feasible n, see DESIGN.md
// substitution 1); `practical` produces calibrated constants whose required
// graph properties (compactness, expansion, survival) are verified directly
// by the property tests and benches.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace lft::core {

struct ConsensusParams {
  NodeId n = 0;
  std::int64_t t = 0;

  NodeId little_count = 0;   // 5t clamped to [1, n]; AEA/SCV little group
  int probe_degree_little = 16;  // degree of overlay G among little nodes
  int probe_degree_all = 16;     // degree of overlay G on all nodes (Many);
                                 // scales with 1/(1-alpha) like the paper's d(alpha)
  int probe_delta_little = 4;  // delta for probing among little nodes
  int probe_delta_all = 4;     // delta for probing among all nodes (Many)
  int probe_gamma_little = 0;  // 2 + lg(little_count)
  int probe_gamma_all = 0;     // 2 + lg n
  Round flood_rounds_little = 0;  // 5t - 1 (AEA Part 1)
  Round flood_rounds_all = 0;     // n - 1 (Many Part 1)

  int spread_degree = 12;     // degree of overlay H (SCV Part 1)
  Round spread_rounds = 0;    // ceil(log_{4/3}((2n/5)/max(t, n/t))) clamped

  int inquiry_base = 10;      // G_i degree = inquiry_base * 2^i (Lemma 5)
  int inquiry_cap = 0;        // degree cap (n-1; 3t+1 in single-port mode)
  int scv_phases = 0;         // ceil(lg(t+1)) + 1
  int many_phases = 0;        // phases of Many-Crashes Part 3
  bool use_little_pull = false;  // SCV Part 2 branch for t^2 <= n

  bool guarantee_termination = true;  // certified direct-pull epilogue
  std::uint64_t overlay_tag = 0;      // namespace for overlay graphs

  /// Calibrated constants for instantiable overlays. Requires 0 <= t and
  /// 5t < n for protocols that use the little group.
  [[nodiscard]] static ConsensusParams practical(NodeId n, std::int64_t t);

  /// Variant used by the single-port adaptation (Section 8): inquiry degrees
  /// capped at 3t+1 and the all-little pull disabled.
  [[nodiscard]] static ConsensusParams single_port(NodeId n, std::int64_t t);
};

/// The paper's exact parameter formulas, for documentation and for the
/// bench that reports what they would require.
struct PaperFormulas {
  static double aea_degree() { return 390625.0; }  // 5^8
  static double many_degree(double alpha);          // (4/(1-alpha))^8
  static double ell(double n, double d);            // 4 n d^{-1/8}
  static double delta(double d);                    // (d^{7/8} - d^{5/8}) / 2
};

}  // namespace lft::core
