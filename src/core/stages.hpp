// The paper's protocol parts as composable stages:
//   FloodRumorStage    — Part 1 of Figures 1 and 4 (flooding rumor 1)
//   ProbeStage         — Part 2 of Figures 1 and 4 (local probing + decide)
//   NotifyRelatedStage — Part 3 of Figure 1 (little -> related star)
//   SpreadFloodStage   — Part 1 of Figure 2 (flooding the common value on H)
//   InquiryPhasesStage — Part 2 of Figure 2 / Part 3 of Figure 4
//   PullStage          — the t^2 <= n all-littles inquiry of Figure 2, and
//                        the certified-pull epilogue (DESIGN.md subst. 4)
// Assemblies (AEA, SCV, Few-/Many-Crashes-Consensus) live in consensus.hpp.
#pragma once

#include <memory>

#include "core/io.hpp"
#include "core/local_probe.hpp"
#include "core/tags.hpp"
#include "graph/graph.hpp"
#include "graph/phase_graph.hpp"

namespace lft::core {

/// Overlay namespace tags (combined with ConsensusParams::overlay_tag).
enum OverlayTag : std::uint64_t {
  kOverlayLittleG = 101,
  kOverlayAllG = 102,
  kOverlaySpreadH = 103,
  kOverlayInquiryBase = 1000,  // + phase index
  kOverlayGossipBase = 3000,   // + phase index
};

/// Part 1 flooding: members (ids < member_count) flood rumor 1 over `g` for
/// `rounds` rounds; a member forwards the first time its candidate flips to 1.
class FloodRumorStage final : public Stage {
 public:
  FloodRumorStage(NodeId self, NodeId member_count, std::shared_ptr<const graph::Graph> g,
                  Round rounds, BinaryState& state);

  [[nodiscard]] Round duration() const override { return rounds_; }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;
  /// Flooding acts only on receipt (message wake) or at round 0.
  [[nodiscard]] Round quiescent_until(Round /*r*/) const override { return duration(); }
  [[nodiscard]] bool reset() override {
    sent_ = false;
    return true;
  }

 private:
  [[nodiscard]] bool is_member() const noexcept { return self_ < members_; }
  NodeId self_;
  NodeId members_;
  std::shared_ptr<const graph::Graph> g_;
  Round rounds_;
  BinaryState* state_;
  bool sent_ = false;
};

/// Part 2 local probing among members over `g`; survivors optionally decide
/// on their candidate (Figures 1 and 4). Also applies the pseudocode's
/// stipulation (b): receiving rumor 1 lifts a 0 candidate.
class ProbeStage final : public Stage {
 public:
  ProbeStage(NodeId self, NodeId member_count, std::shared_ptr<const graph::Graph> g,
             int gamma, int delta, BinaryState& state, bool decide_on_survive);

  [[nodiscard]] Round duration() const override { return probe_.duration(); }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;
  /// The probe automaton counts rounds, so members step every round;
  /// non-members are inert for the whole stage.
  [[nodiscard]] Round quiescent_until(Round r) const override {
    return is_member() ? r + 1 : duration();
  }
  [[nodiscard]] bool reset() override {
    probe_.reset();
    return true;
  }

 private:
  [[nodiscard]] bool is_member() const noexcept { return self_ < members_; }
  NodeId self_;
  NodeId members_;
  std::shared_ptr<const graph::Graph> g_;
  LocalProbe probe_;
  BinaryState* state_;
  bool decide_on_survive_;
};

/// Part 3 of Figure 1: little deciders notify their related nodes (same
/// residue mod little_count); recipients adopt and decide.
class NotifyRelatedStage final : public Stage {
 public:
  NotifyRelatedStage(NodeId self, NodeId n, NodeId little_count, BinaryState& state);

  [[nodiscard]] Round duration() const override { return 2; }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;
  /// Notifications go out at round 0 only; adoption rides the message wake.
  [[nodiscard]] Round quiescent_until(Round /*r*/) const override { return duration(); }
  /// All state lives in the shared BinaryState, which the process resets.
  [[nodiscard]] bool reset() override { return true; }

 private:
  NodeId self_;
  NodeId n_;
  NodeId little_;
  BinaryState* state_;
};

/// Part 1 of Figure 2: nodes holding the common value flood it over H; a
/// node adopts (and decides) on first receipt and forwards once. The final
/// round only adopts, keeping the stage self-contained.
class SpreadFloodStage final : public Stage {
 public:
  SpreadFloodStage(NodeId self, std::shared_ptr<const graph::Graph> h, Round rounds,
                   BinaryState& state, std::uint64_t value_bits = 1);

  [[nodiscard]] Round duration() const override { return rounds_ + 1; }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;
  /// Spreads only on acquiring the value (message wake) or at round 0.
  [[nodiscard]] Round quiescent_until(Round /*r*/) const override { return duration(); }
  [[nodiscard]] bool reset() override {
    forwarded_ = false;
    return true;
  }

 private:
  NodeId self_;
  std::shared_ptr<const graph::Graph> h_;
  Round rounds_;
  BinaryState* state_;
  std::uint64_t value_bits_;
  bool forwarded_ = false;
};

/// Part 2 of Figure 2 / Part 3 of Figure 4: 2-round inquiry phases over a
/// family of graphs G_i of geometrically growing degree; undecided nodes
/// inquire, decided neighbors reply with the value.
class InquiryPhasesStage final : public Stage {
 public:
  InquiryPhasesStage(NodeId self, std::vector<graph::PhaseGraph> graphs,
                     BinaryState& state, std::uint64_t value_bits = 1);

  [[nodiscard]] Round duration() const override {
    return 2 * static_cast<Round>(graphs_.size()) + 1;
  }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;
  /// Undecided nodes inquire at every even round; decided nodes only answer
  /// inquiries, which arrive as message wakes.
  [[nodiscard]] Round quiescent_until(Round r) const override;
  /// All state lives in the shared BinaryState, which the process resets.
  [[nodiscard]] bool reset() override { return true; }

 private:
  NodeId self_;
  std::vector<graph::PhaseGraph> graphs_;
  BinaryState* state_;
  std::uint64_t value_bits_;
};

/// Direct pull from the first `target_count` nodes: the t^2 <= n branch of
/// Figure 2's Part 2 (targets = little nodes, fallback_metric = false) and
/// the certified-pull epilogue (fallback_metric = true, DESIGN.md subst. 4).
class PullStage final : public Stage {
 public:
  PullStage(NodeId self, NodeId target_count, BinaryState& state, bool fallback_metric,
            std::uint64_t value_bits = 1);

  [[nodiscard]] Round duration() const override { return 3; }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  /// Pulls go out at round 0; replies and adoption ride the message wakes.
  [[nodiscard]] Round quiescent_until(Round /*r*/) const override { return duration(); }
  /// All state lives in the shared BinaryState, which the process resets.
  [[nodiscard]] bool reset() override { return true; }

 private:
  NodeId self_;
  NodeId targets_;
  BinaryState* state_;
  bool fallback_metric_;
  std::uint64_t value_bits_;
};

}  // namespace lft::core
