// Assemblies of the paper's crash-model algorithms from stages:
//   Almost-Everywhere-Agreement  (Figure 1, Theorem 5)
//   Spread-Common-Value          (Figure 2, Theorem 6)
//   Few-Crashes-Consensus        (Figure 3, Theorem 7)
//   Many-Crashes-Consensus       (Figure 4, Theorem 8, Corollary 1)
// plus runner helpers that execute a full system and evaluate the consensus
// invariants (agreement, validity, termination).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/io.hpp"
#include "core/params.hpp"
#include "core/run_options.hpp"
#include "graph/graph.hpp"
#include "graph/phase_graph.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"

namespace lft::core {

/// The inquiry graph family G_i (Lemma 5): degree inquiry_base * 2^(i+1)
/// capped at inquiry_cap, each phase on its own certified overlay.
[[nodiscard]] std::vector<graph::PhaseGraph> inquiry_graphs(
    const ConsensusParams& params, int phases, std::uint64_t tag_base);

/// Figure 1. `input` is the node's binary input.
[[nodiscard]] std::unique_ptr<StageProcess> make_aea_process(const ConsensusParams& params,
                                                             NodeId self, int input);

/// Figure 2. `initial` is the common value at initialized nodes, nullopt at
/// the rest (the problem's "null").
[[nodiscard]] std::unique_ptr<StageProcess> make_scv_process(
    const ConsensusParams& params, NodeId self, std::optional<std::uint64_t> initial);

/// Figure 3 (AEA followed by SCV in one timeline).
[[nodiscard]] std::unique_ptr<StageProcess> make_few_crashes_process(
    const ConsensusParams& params, NodeId self, int input);

/// Figure 4.
[[nodiscard]] std::unique_ptr<StageProcess> make_many_crashes_process(
    const ConsensusParams& params, NodeId self, int input);

/// Pooling support (the service plane's slot pipeline): rewinds a process
/// built by make_few_crashes_process to the state a fresh construction with
/// `input` would have — every stage reset, shared BinaryState reinitialized.
/// False when any stage lacks reset support; the caller rebuilds instead.
[[nodiscard]] bool reset_few_crashes_process(StageProcess& proc,
                                             const ConsensusParams& params, int input);

/// Consensus invariants evaluated over a finished execution.
struct ConsensusOutcome {
  sim::Report report;
  bool termination = false;  // completed and every non-faulty node decided
  bool agreement = false;    // no two non-faulty nodes decided differently
  bool validity = false;     // the decision equals some node's input
  std::optional<std::uint64_t> decision;

  [[nodiscard]] bool all_good() const { return termination && agreement && validity; }
};

[[nodiscard]] ConsensusOutcome evaluate_consensus(sim::Report report,
                                                  std::span<const int> inputs);

/// Builds the engine, installs processes from `factory(self)`, runs, and
/// evaluates. The adversary may be null. Execution knobs (round cap,
/// parallel stepper, scratch recycling, trace recording) travel in
/// core::RunOptions; none of them changes any Report bit.
using ProcessFactory = std::function<std::unique_ptr<sim::Process>(NodeId)>;
[[nodiscard]] sim::Report run_system(NodeId n, std::int64_t crash_budget,
                                     const ProcessFactory& factory,
                                     std::unique_ptr<sim::FaultInjector> adversary,
                                     const RunOptions& options = {});

[[nodiscard]] ConsensusOutcome run_few_crashes_consensus(
    const ConsensusParams& params, std::span<const int> inputs,
    std::unique_ptr<sim::FaultInjector> adversary);

[[nodiscard]] ConsensusOutcome run_many_crashes_consensus(
    const ConsensusParams& params, std::span<const int> inputs,
    std::unique_ptr<sim::FaultInjector> adversary);

/// Runs AEA alone and reports: decided-or-crashed count (the 3/5 n bound of
/// Theorem 5), agreement and validity over the decided nodes.
struct AeaOutcome {
  sim::Report report;
  std::int64_t decided_or_crashed = 0;
  bool agreement = false;
  bool validity = false;
};
[[nodiscard]] AeaOutcome run_aea(const ConsensusParams& params, std::span<const int> inputs,
                                 std::unique_ptr<sim::FaultInjector> adversary);

/// Runs SCV alone from an initialization mask and checks every non-faulty
/// node decided on the common value.
struct ScvOutcome {
  sim::Report report;
  bool all_decided_common = false;
};
[[nodiscard]] ScvOutcome run_scv(const ConsensusParams& params,
                                 std::span<const std::optional<std::uint64_t>> initials,
                                 std::unique_ptr<sim::FaultInjector> adversary);

}  // namespace lft::core
