#include "core/stages.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::core {

namespace {

LinkPlan graph_plan(const graph::Graph& g, NodeId self, bool member) {
  LinkPlan plan;
  if (!member) return plan;
  const auto ns = g.neighbors(self);
  plan.out.assign(ns.begin(), ns.end());
  plan.in = plan.out;
  return plan;
}

}  // namespace

// ---- FloodRumorStage ---------------------------------------------------------

FloodRumorStage::FloodRumorStage(NodeId self, NodeId member_count,
                                 std::shared_ptr<const graph::Graph> g, Round rounds,
                                 BinaryState& state)
    : self_(self), members_(member_count), g_(std::move(g)), rounds_(rounds), state_(&state) {
  LFT_ASSERT(rounds_ >= 1);
  LFT_ASSERT(g_->num_vertices() >= members_);
}

void FloodRumorStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  if (!is_member()) return;
  bool flipped = false;
  for (const auto& m : inbox) {
    if (m.tag == kTagRumor && m.value == 1 && state_->candidate == 0) {
      state_->candidate = 1;
      flipped = true;
    }
  }
  const bool start_broadcast = (r == 0 && state_->candidate == 1);
  if ((start_broadcast || flipped) && !sent_) {
    sent_ = true;
    for (NodeId nb : g_->neighbors(self_)) io.send(nb, kTagRumor, 1, 1);
  }
}

LinkBudget FloodRumorStage::link_budget(Round) const {
  return LinkBudget{g_->max_degree(), g_->max_degree()};
}

LinkPlan FloodRumorStage::link_plan(Round) const { return graph_plan(*g_, self_, is_member()); }

// ---- ProbeStage ----------------------------------------------------------------

ProbeStage::ProbeStage(NodeId self, NodeId member_count, std::shared_ptr<const graph::Graph> g,
                       int gamma, int delta, BinaryState& state, bool decide_on_survive)
    : self_(self),
      members_(member_count),
      g_(std::move(g)),
      probe_(gamma, delta),
      state_(&state),
      decide_on_survive_(decide_on_survive) {
  LFT_ASSERT(g_->num_vertices() >= members_);
}

void ProbeStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  if (!is_member()) return;
  int probe_count = 0;
  for (const auto& m : inbox) {
    if (m.tag == kTagProbe) ++probe_count;
    if ((m.tag == kTagProbe || m.tag == kTagRumor) && m.value == 1 && state_->candidate == 0) {
      state_->candidate = 1;  // pseudocode stipulation (b)
    }
  }
  if (probe_.step(probe_count)) {
    for (NodeId nb : g_->neighbors(self_)) {
      io.send(nb, kTagProbe, static_cast<std::uint64_t>(state_->candidate), 1);
    }
  }
  if (r + 1 == duration() && probe_.survived()) {
    state_->survived_probe = true;
    if (decide_on_survive_ && !state_->has_value) {
      state_->has_value = true;
      state_->value = static_cast<std::uint64_t>(state_->candidate);
      io.decide(state_->value);
    }
  }
}

LinkBudget ProbeStage::link_budget(Round) const {
  return LinkBudget{g_->max_degree(), g_->max_degree()};
}

LinkPlan ProbeStage::link_plan(Round) const { return graph_plan(*g_, self_, is_member()); }

// ---- NotifyRelatedStage ---------------------------------------------------------

NotifyRelatedStage::NotifyRelatedStage(NodeId self, NodeId n, NodeId little_count,
                                       BinaryState& state)
    : self_(self), n_(n), little_(little_count), state_(&state) {
  LFT_ASSERT(little_ >= 1 && little_ <= n_);
}

void NotifyRelatedStage::on_round(Round r, std::span<const sim::Message> inbox,
                                  ProtocolIo& io) {
  const bool is_little = self_ < little_;
  if (r == 0) {
    if (is_little && state_->has_value) {
      for (NodeId j = self_ + little_; j < n_; j += little_) {
        io.send(j, kTagNotify, state_->value, 1);
      }
    }
    return;
  }
  if (!is_little && !state_->has_value) {
    for (const auto& m : inbox) {
      if (m.tag == kTagNotify) {
        state_->has_value = true;
        state_->value = m.value;
        state_->candidate = static_cast<int>(m.value & 1);
        io.decide(state_->value);
        break;
      }
    }
  }
}

LinkBudget NotifyRelatedStage::link_budget(Round r) const {
  if (r != 0) return {};
  return LinkBudget{static_cast<int>((n_ + little_ - 1) / little_), 1};
}

LinkPlan NotifyRelatedStage::link_plan(Round r) const {
  LinkPlan plan;
  if (r != 0) return plan;
  if (self_ < little_) {
    for (NodeId j = self_ + little_; j < n_; j += little_) plan.out.push_back(j);
  } else {
    plan.in.push_back(self_ % little_);
  }
  return plan;
}

// ---- SpreadFloodStage --------------------------------------------------------------

SpreadFloodStage::SpreadFloodStage(NodeId self, std::shared_ptr<const graph::Graph> h,
                                   Round rounds, BinaryState& state, std::uint64_t value_bits)
    : self_(self), h_(std::move(h)), rounds_(rounds), state_(&state), value_bits_(value_bits) {
  LFT_ASSERT(rounds_ >= 1);
}

void SpreadFloodStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  bool adopted = false;
  for (const auto& m : inbox) {
    if (m.tag == kTagSpread && !state_->has_value) {
      state_->has_value = true;
      state_->value = m.value;
      state_->candidate = static_cast<int>(m.value & 1);
      io.decide(state_->value);
      adopted = true;
    }
  }
  const bool start_broadcast = (r == 0 && state_->has_value);
  if (start_broadcast) {
    // Nodes initialized with the common value count as decided on it.
    io.decide(state_->value);
  }
  if ((start_broadcast || adopted) && !forwarded_ && r < rounds_) {
    forwarded_ = true;
    for (NodeId nb : h_->neighbors(self_)) io.send(nb, kTagSpread, state_->value, value_bits_);
  }
}

LinkBudget SpreadFloodStage::link_budget(Round r) const {
  if (r >= rounds_) return {};
  return LinkBudget{h_->max_degree(), h_->max_degree()};
}

LinkPlan SpreadFloodStage::link_plan(Round r) const {
  if (r >= rounds_) return {};
  return graph_plan(*h_, self_, true);
}

// ---- InquiryPhasesStage --------------------------------------------------------------

InquiryPhasesStage::InquiryPhasesStage(NodeId self, std::vector<graph::PhaseGraph> graphs,
                                       BinaryState& state, std::uint64_t value_bits)
    : self_(self), graphs_(std::move(graphs)), state_(&state), value_bits_(value_bits) {
  LFT_ASSERT(!graphs_.empty());
}

void InquiryPhasesStage::on_round(Round r, std::span<const sim::Message> inbox,
                                  ProtocolIo& io) {
  // Replies from the previous phase arrive on even rounds (and on the final
  // absorb-only round).
  for (const auto& m : inbox) {
    if (m.tag == kTagReply && !state_->has_value) {
      state_->has_value = true;
      state_->value = m.value;
      state_->candidate = static_cast<int>(m.value & 1);
      io.decide(state_->value);
    }
  }
  if (r == 2 * static_cast<Round>(graphs_.size())) return;  // absorb-only
  const auto phase = static_cast<std::size_t>(r / 2);
  const graph::PhaseGraph& gi = graphs_[phase];
  if (r % 2 == 0) {
    if (!state_->has_value) {
      gi.for_each_neighbor(self_, [&io](NodeId nb) { io.send(nb, kTagInquiry, 0, 1); });
    }
  } else {
    if (state_->has_value) {
      for (const auto& m : inbox) {
        if (m.tag == kTagInquiry) io.send(m.from, kTagReply, state_->value, value_bits_);
      }
    }
  }
}

LinkBudget InquiryPhasesStage::link_budget(Round r) const {
  if (r == 2 * static_cast<Round>(graphs_.size())) return {};
  const auto phase = static_cast<std::size_t>(r / 2);
  const int d = graphs_[phase].max_degree();
  return LinkBudget{d, d};
}

Round InquiryPhasesStage::quiescent_until(Round r) const {
  if (state_->has_value) return duration();
  // Clamped so the absorb-only final round (even) cannot overshoot the stage
  // boundary and skip the next stage's round 0.
  return std::min(r % 2 == 0 ? r + 2 : r + 1, duration());
}

LinkPlan InquiryPhasesStage::link_plan(Round r) const {
  if (r == 2 * static_cast<Round>(graphs_.size())) return {};
  const auto phase = static_cast<std::size_t>(r / 2);
  LinkPlan plan;
  graphs_[phase].append_neighbors(self_, plan.out);
  plan.in = plan.out;
  return plan;
}

// ---- PullStage -----------------------------------------------------------------------

PullStage::PullStage(NodeId self, NodeId target_count, BinaryState& state, bool fallback_metric,
                     std::uint64_t value_bits)
    : self_(self),
      targets_(target_count),
      state_(&state),
      fallback_metric_(fallback_metric),
      value_bits_(value_bits) {
  LFT_ASSERT(targets_ >= 1);
}

void PullStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  switch (r) {
    case 0:
      if (!state_->has_value) {
        if (fallback_metric_) io.count_fallback();
        for (NodeId j = 0; j < targets_; ++j) {
          if (j != self_) io.send(j, kTagPull, 0, 1);
        }
      }
      break;
    case 1:
      if (state_->has_value) {
        for (const auto& m : inbox) {
          if (m.tag == kTagPull) io.send(m.from, kTagPullReply, state_->value, value_bits_);
        }
      }
      break;
    default:
      for (const auto& m : inbox) {
        if (m.tag == kTagPullReply && !state_->has_value) {
          state_->has_value = true;
          state_->value = m.value;
          state_->candidate = static_cast<int>(m.value & 1);
          io.decide(state_->value);
        }
      }
      break;
  }
}

}  // namespace lft::core
