#include "core/params.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace lft::core {

namespace {

// ceil(log_{4/3}(x)) for x >= 1; conservative base for the SCV Part 1
// shrinkage recurrence (the paper proves base 3/2 at its degree-64 H).
Round ceil_log_43(double x) {
  if (x <= 1.0) return 0;
  return static_cast<Round>(std::ceil(std::log(x) / std::log(4.0 / 3.0)));
}

}  // namespace

ConsensusParams ConsensusParams::practical(NodeId n, std::int64_t t) {
  LFT_ASSERT(n >= 1 && t >= 0 && t < n);
  ConsensusParams p;
  p.n = n;
  p.t = t;
  p.little_count =
      static_cast<NodeId>(std::clamp<std::int64_t>(5 * t, 1, static_cast<std::int64_t>(n)));

  p.probe_degree_little = 16;
  // Complete-overlay regime: everyone hears everyone alive, so the exact
  // threshold L-1-t is both achievable and tight.
  if (p.little_count - 1 <= p.probe_degree_little) {
    p.probe_delta_little =
        static_cast<int>(std::max<std::int64_t>(0, p.little_count - 1 - t));
  } else {
    p.probe_delta_little = p.probe_degree_little / 4;
  }
  // The all-nodes overlay must keep a survival core when only n-t nodes
  // remain; like the paper's d(alpha) = (4/(1-alpha))^8, the degree scales
  // with n/(n-t) so the expected alive-degree stays >= 12.
  {
    const std::int64_t survivors = std::max<std::int64_t>(1, static_cast<std::int64_t>(n) - t);
    const std::int64_t wanted =
        std::max<std::int64_t>(16, (12 * static_cast<std::int64_t>(n) + survivors - 1) / survivors);
    p.probe_degree_all = static_cast<int>(std::min<std::int64_t>(wanted, n - 1));
  }
  if (n - 1 <= p.probe_degree_all) {
    p.probe_delta_all = static_cast<int>(std::max<std::int64_t>(0, n - 1 - t));
  } else {
    const double alive_degree = static_cast<double>(p.probe_degree_all) *
                                static_cast<double>(n - t) / static_cast<double>(n);
    p.probe_delta_all = std::max(1, static_cast<int>(alive_degree / 3.0));
  }
  p.probe_gamma_little = 2 + lg_rounds(static_cast<std::uint64_t>(p.little_count));
  p.probe_gamma_all = 2 + lg_rounds(static_cast<std::uint64_t>(n));
  p.flood_rounds_little = std::max<Round>(1, static_cast<Round>(p.little_count) - 1);
  p.flood_rounds_all = std::max<Round>(1, static_cast<Round>(n) - 1);

  p.spread_degree = 12;
  // Paper: ceil(log((2n/5) / max(t, n/t))); the max is n for t = 0.
  const double denom =
      t == 0 ? static_cast<double>(n)
             : std::max(static_cast<double>(t), static_cast<double>(n) / static_cast<double>(t));
  p.spread_rounds = std::max<Round>(1, ceil_log_43(0.4 * static_cast<double>(n) / denom) + 2);

  p.inquiry_base = 10;
  p.inquiry_cap = static_cast<int>(n - 1);
  p.scv_phases = std::max(1, ceil_log2(static_cast<std::uint64_t>(t) + 1) + 1);
  // Many-Crashes Part 3: run until the inquiry degree reaches n-1, which
  // upper-bounds the paper's 1 + ceil(lg((1+3a)n/4)) phase count.
  p.many_phases =
      std::max(1, ceil_log2(static_cast<std::uint64_t>(std::max<NodeId>(2, n)) /
                            static_cast<std::uint64_t>(p.inquiry_base) +
                            1) +
                      1);
  p.use_little_pull = t * t <= static_cast<std::int64_t>(n);
  p.guarantee_termination = true;
  p.overlay_tag = 0;
  return p;
}

ConsensusParams ConsensusParams::single_port(NodeId n, std::int64_t t) {
  ConsensusParams p = practical(n, t);
  p.inquiry_cap = static_cast<int>(std::min<std::int64_t>(3 * t + 1, n - 1));
  p.use_little_pull = false;  // unbounded in-degree; Section 8 avoids it
  p.guarantee_termination = false;
  // With only the 3t little deciders seeding Part 1 of SCV (the t < sqrt(n)
  // regime skips the related-node star), the shrinkage starts from n-3t
  // undecided nodes, so flood long enough for that.
  p.spread_rounds =
      std::max<Round>(p.spread_rounds, ceil_log_43(static_cast<double>(n)) + 2);
  return p;
}

double PaperFormulas::many_degree(double alpha) { return std::pow(4.0 / (1.0 - alpha), 8.0); }

double PaperFormulas::ell(double n, double d) { return 4.0 * n * std::pow(d, -0.125); }

double PaperFormulas::delta(double d) {
  return 0.5 * (std::pow(d, 7.0 / 8.0) - std::pow(d, 5.0 / 8.0));
}

}  // namespace lft::core
