// Gossip (Figure 5, Theorem 9): little nodes absorb all rumors in Part 1
// (inquiry/response phases over growing graphs G_i, interleaved with local
// probing on G that merges extant sets), then propagate completed sets to
// everyone in Part 2 using shared completion sets to avoid duplicate
// coverage. Extant sets are *certified* when their owner survived the final
// Part 1 probing; nodes lacking a certified set pull one in a 2-round
// epilogue (DESIGN.md substitution 5).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/extant.hpp"
#include "core/growset.hpp"
#include "core/io.hpp"
#include "core/local_probe.hpp"
#include "core/params.hpp"
#include "core/run_options.hpp"
#include "graph/graph.hpp"
#include "sim/adversary.hpp"

namespace lft::core {

struct GossipParams {
  NodeId n = 0;
  std::int64_t t = 0;
  NodeId little_count = 0;
  int probe_degree = 16;
  int probe_delta = 4;
  int probe_gamma = 0;  // 2 + lg(little_count)
  int phases = 0;       // ceil(lg n)
  int inquiry_base = 10;
  bool guarantee_termination = true;
  std::uint64_t rumor_bits = 64;
  std::uint64_t overlay_tag = 0;

  [[nodiscard]] static GossipParams practical(NodeId n, std::int64_t t);
};

/// Immutable shared topology/config for a gossip run.
struct GossipConfig {
  GossipParams params;
  std::shared_ptr<const graph::Graph> little_g;
  std::vector<std::shared_ptr<const graph::Graph>> inquiry;  // per phase, on n vertices

  [[nodiscard]] static std::shared_ptr<const GossipConfig> build(const GossipParams& params);
};

struct GossipState {
  explicit GossipState(NodeId n, NodeId self, std::uint64_t rumor)
      : extant(n), completion(static_cast<std::size_t>(n)) {
    extant.add(self, rumor);
    completion.add(static_cast<std::size_t>(self));
  }
  ExtantSet extant;
  GrowingBitset completion;
  bool survived_last = false;  // survived the most recent probing instance
  bool certified = false;      // survived the final Part 1 probing
  bool has_certified = false;  // holds or received a certified set
  bool decided = false;
};

/// Part 1 of Figure 5 (build extant sets). Phase block layout:
/// round 0 inquiries, round 1 pair replies, rounds 2..gamma+2 local probing.
class GossipBuildStage final : public Stage {
 public:
  GossipBuildStage(std::shared_ptr<const GossipConfig> cfg, NodeId self, GossipState& state);
  [[nodiscard]] Round duration() const override;
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;

 private:
  [[nodiscard]] bool is_little() const noexcept;
  [[nodiscard]] Round block() const noexcept;
  std::shared_ptr<const GossipConfig> cfg_;
  NodeId self_;
  GossipState* state_;
  std::optional<LocalProbe> probe_;
  std::map<NodeId, std::size_t> watermark_;  // per-G-neighbor extant log index
  std::vector<std::byte> scratch_;           // payload build buffer, reused per send
};

/// Part 2 of Figure 5 (spread certified sets + completion bookkeeping).
class GossipShareStage final : public Stage {
 public:
  GossipShareStage(std::shared_ptr<const GossipConfig> cfg, NodeId self, GossipState& state);
  [[nodiscard]] Round duration() const override;
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  [[nodiscard]] LinkBudget link_budget(Round r) const override;
  [[nodiscard]] LinkPlan link_plan(Round r) const override;

 private:
  [[nodiscard]] bool is_little() const noexcept;
  [[nodiscard]] Round block() const noexcept;
  std::shared_ptr<const GossipConfig> cfg_;
  NodeId self_;
  GossipState* state_;
  std::optional<LocalProbe> probe_;
  std::map<NodeId, std::size_t> watermark_;  // per-G-neighbor completion log index
  std::vector<std::byte> scratch_;           // payload build buffer, reused per send
};

/// Epilogue: nodes without a certified set pull one from the little group,
/// then everyone decides. The pull is optional twice over: checkpointing
/// embeds gossip without deciding (decide_at_end = false), and the
/// single-port adaptation disables the pull (enable_pull = false) because
/// its little-node in-degree is unbounded — matching the multi-port
/// configuration where the pull is a metered, normally-dormant safety net.
class GossipFinishStage final : public Stage {
 public:
  GossipFinishStage(std::shared_ptr<const GossipConfig> cfg, NodeId self, GossipState& state,
                    bool decide_at_end, bool enable_pull = true);
  [[nodiscard]] Round duration() const override { return enable_pull_ ? 3 : 1; }
  void on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) override;

 private:
  std::shared_ptr<const GossipConfig> cfg_;
  NodeId self_;
  GossipState* state_;
  bool decide_at_end_;
  bool enable_pull_;
};

/// Full gossip protocol at one node (a Program: runs under the engine and
/// under a live core::RoundDriver transport unchanged).
class GossipProcess final : public sim::Process, public Program {
 public:
  GossipProcess(std::shared_ptr<const GossipConfig> cfg, NodeId self, std::uint64_t rumor);
  void run_round(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) override;
  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override;
  [[nodiscard]] const GossipState& state() const noexcept { return state_; }
  [[nodiscard]] Round duration() const { return driver_.total_duration(); }

 private:
  GossipState state_;
  StageDriver driver_;
};

/// Runs gossip and checks the problem's conditions:
///  (1) nodes that crashed before sending anything appear in no decided set,
///  (2) nodes that halted operational appear in every decided set,
///  plus termination (every non-faulty node decided).
struct GossipOutcome {
  sim::Report report;
  bool termination = false;
  bool condition1 = false;
  bool condition2 = false;
  bool rumors_intact = false;  // every decided pair carries the true rumor

  [[nodiscard]] bool all_good() const {
    return termination && condition1 && condition2 && rumors_intact;
  }
};

/// Execution knobs (parallel stepper, scratch recycling, trace recording)
/// travel in core::RunOptions; none of them changes any Report bit.
[[nodiscard]] GossipOutcome run_gossip(const GossipParams& params,
                                       std::span<const std::uint64_t> rumors,
                                       std::unique_ptr<sim::FaultInjector> adversary,
                                       const RunOptions& options = {});

}  // namespace lft::core
