#include "core/consensus.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/stages.hpp"
#include "graph/overlay.hpp"

namespace lft::core {

namespace {

std::shared_ptr<const graph::Graph> little_overlay(const ConsensusParams& p) {
  const int degree = std::min<int>(p.probe_degree_little, std::max<int>(1, p.little_count - 1));
  return graph::shared_overlay(p.little_count, std::max(1, degree),
                               p.overlay_tag ^ kOverlayLittleG);
}

std::shared_ptr<const graph::Graph> all_overlay(const ConsensusParams& p) {
  const int degree = std::min<int>(p.probe_degree_all, std::max<int>(1, p.n - 1));
  return graph::shared_overlay(p.n, std::max(1, degree), p.overlay_tag ^ kOverlayAllG);
}

std::shared_ptr<const graph::Graph> spread_overlay(const ConsensusParams& p) {
  const int degree = std::min<int>(p.spread_degree, std::max<int>(1, p.n - 1));
  return graph::shared_overlay(p.n, std::max(1, degree), p.overlay_tag ^ kOverlaySpreadH);
}

void add_aea_stages(StageProcess& proc, const ConsensusParams& p, NodeId self) {
  auto g = little_overlay(p);
  proc.add_stage(std::make_unique<FloodRumorStage>(self, p.little_count, g,
                                                   p.flood_rounds_little, proc.state()));
  proc.add_stage(std::make_unique<ProbeStage>(self, p.little_count, g, p.probe_gamma_little,
                                              p.probe_delta_little, proc.state(),
                                              /*decide_on_survive=*/true));
  proc.add_stage(std::make_unique<NotifyRelatedStage>(self, p.n, p.little_count, proc.state()));
}

void add_scv_stages(StageProcess& proc, const ConsensusParams& p, NodeId self) {
  proc.add_stage(std::make_unique<SpreadFloodStage>(self, spread_overlay(p), p.spread_rounds,
                                                    proc.state()));
  if (p.use_little_pull) {
    proc.add_stage(std::make_unique<PullStage>(self, p.little_count, proc.state(),
                                               /*fallback_metric=*/false));
  } else {
    proc.add_stage(std::make_unique<InquiryPhasesStage>(
        self, inquiry_graphs(p, p.scv_phases, p.overlay_tag ^ kOverlayInquiryBase),
        proc.state()));
    if (p.guarantee_termination) {
      proc.add_stage(std::make_unique<PullStage>(self, p.little_count, proc.state(),
                                                 /*fallback_metric=*/true));
    }
  }
}

}  // namespace

std::vector<graph::PhaseGraph> inquiry_graphs(const ConsensusParams& p, int phases,
                                              std::uint64_t tag_base) {
  LFT_ASSERT(phases >= 1);
  // Materialized (spectrally certified) overlays are capped at this many CSR
  // entries; beyond it a phase switches to an implicit representation whose
  // construction and storage are O(degree) instead of O(n * degree).
  constexpr std::int64_t kMaterializedEntryBudget = std::int64_t{1} << 22;
  std::vector<graph::PhaseGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(phases));
  for (int i = 0; i < phases; ++i) {
    const std::int64_t wanted = static_cast<std::int64_t>(p.inquiry_base) << (i + 1);
    const int degree = static_cast<int>(std::clamp<std::int64_t>(
        wanted, 1, std::min<std::int64_t>(p.inquiry_cap, p.n - 1)));
    const std::uint64_t tag = tag_base + static_cast<std::uint64_t>(i);
    if (static_cast<std::int64_t>(p.n) * degree <= kMaterializedEntryBudget) {
      graphs.push_back(graph::shared_overlay(p.n, std::max(1, degree), tag));
    } else if (degree >= p.n - 1) {
      graphs.push_back(graph::PhaseGraph::complete(p.n));
    } else {
      graphs.push_back(graph::PhaseGraph::circulant(
          p.n, degree, make_seed(0x4c4654494e515547ULL /* "LFTINQUG" */,
                                 static_cast<std::uint64_t>(p.n),
                                 static_cast<std::uint64_t>(degree), tag)));
    }
  }
  return graphs;
}

std::unique_ptr<StageProcess> make_aea_process(const ConsensusParams& p, NodeId self,
                                               int input) {
  LFT_ASSERT(input == 0 || input == 1);
  auto proc = std::make_unique<StageProcess>(self);
  proc->state().candidate = input;
  proc->state().is_little = self < p.little_count;
  add_aea_stages(*proc, p, self);
  return proc;
}

std::unique_ptr<StageProcess> make_scv_process(const ConsensusParams& p, NodeId self,
                                               std::optional<std::uint64_t> initial) {
  auto proc = std::make_unique<StageProcess>(self);
  if (initial.has_value()) {
    proc->state().has_value = true;
    proc->state().value = *initial;
    proc->state().candidate = static_cast<int>(*initial & 1);
  }
  proc->state().is_little = self < p.little_count;
  add_scv_stages(*proc, p, self);
  return proc;
}

std::unique_ptr<StageProcess> make_few_crashes_process(const ConsensusParams& p, NodeId self,
                                                       int input) {
  LFT_ASSERT(input == 0 || input == 1);
  LFT_ASSERT_MSG(5 * p.t < p.n, "Few-Crashes-Consensus requires t < n/5");
  auto proc = std::make_unique<StageProcess>(self);
  proc->state().candidate = input;
  proc->state().is_little = self < p.little_count;
  add_aea_stages(*proc, p, self);
  add_scv_stages(*proc, p, self);
  return proc;
}

bool reset_few_crashes_process(StageProcess& proc, const ConsensusParams& p, int input) {
  LFT_ASSERT(input == 0 || input == 1);
  BinaryState initial{};
  initial.candidate = input;
  initial.is_little = proc.self() < p.little_count;
  return proc.reset(initial);
}

std::unique_ptr<StageProcess> make_many_crashes_process(const ConsensusParams& p, NodeId self,
                                                        int input) {
  LFT_ASSERT(input == 0 || input == 1);
  auto proc = std::make_unique<StageProcess>(self);
  proc->state().candidate = input;
  auto g = all_overlay(p);
  proc->add_stage(std::make_unique<FloodRumorStage>(self, p.n, g, p.flood_rounds_all,
                                                    proc->state()));
  proc->add_stage(std::make_unique<ProbeStage>(self, p.n, g, p.probe_gamma_all,
                                               p.probe_delta_all, proc->state(),
                                               /*decide_on_survive=*/true));
  proc->add_stage(std::make_unique<InquiryPhasesStage>(
      self, inquiry_graphs(p, p.many_phases, p.overlay_tag ^ (kOverlayInquiryBase + 500)),
      proc->state()));
  if (p.guarantee_termination) {
    proc->add_stage(std::make_unique<PullStage>(self, p.n, proc->state(),
                                                /*fallback_metric=*/true));
  }
  return proc;
}

sim::Report run_system(NodeId n, std::int64_t crash_budget, const ProcessFactory& factory,
                       std::unique_ptr<sim::FaultInjector> adversary,
                       const RunOptions& options) {
  sim::EngineConfig config;
  config.crash_budget = crash_budget;
  // Each fault class gets the same budget t: omission faults are node faults
  // in the same adversary model (Dwork-Halpern-Waarts).
  config.omission_budget = crash_budget;
  config.max_rounds = options.max_rounds;
  config.threads = options.threads;
  config.scratch = options.scratch;
  config.trace = options.trace;
  config.simd = options.simd;
  config.telemetry = options.telemetry;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) engine.set_process(v, factory(v));
  if (adversary != nullptr) engine.add_fault_injector(std::move(adversary));
  return engine.run();
}

ConsensusOutcome evaluate_consensus(sim::Report report, std::span<const int> inputs) {
  ConsensusOutcome out;
  out.decision = report.agreed_value();
  out.agreement = true;
  std::optional<std::uint64_t> seen;
  bool everyone_decided = true;
  for (std::size_t v = 0; v < report.nodes.size(); ++v) {
    const auto& s = report.nodes[v];
    if (s.crashed || s.byzantine || s.omission) continue;
    if (!s.decided) {
      everyone_decided = false;
      continue;
    }
    if (seen && *seen != s.decision) out.agreement = false;
    seen = s.decision;
  }
  out.termination = report.completed && everyone_decided;
  if (seen) {
    out.validity = false;
    for (std::size_t v = 0; v < inputs.size(); ++v) {
      if (static_cast<std::uint64_t>(inputs[v]) == *seen) {
        out.validity = true;
        break;
      }
    }
  } else {
    out.validity = false;
  }
  out.report = std::move(report);
  return out;
}

ConsensusOutcome run_few_crashes_consensus(const ConsensusParams& params,
                                           std::span<const int> inputs,
                                           std::unique_ptr<sim::FaultInjector> adversary) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == params.n);
  auto report = run_system(
      params.n, params.t,
      [&](NodeId v) { return make_few_crashes_process(params, v, inputs[static_cast<std::size_t>(v)]); },
      std::move(adversary));
  return evaluate_consensus(std::move(report), inputs);
}

ConsensusOutcome run_many_crashes_consensus(const ConsensusParams& params,
                                            std::span<const int> inputs,
                                            std::unique_ptr<sim::FaultInjector> adversary) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == params.n);
  auto report = run_system(
      params.n, params.t,
      [&](NodeId v) { return make_many_crashes_process(params, v, inputs[static_cast<std::size_t>(v)]); },
      std::move(adversary));
  return evaluate_consensus(std::move(report), inputs);
}

AeaOutcome run_aea(const ConsensusParams& params, std::span<const int> inputs,
                   std::unique_ptr<sim::FaultInjector> adversary) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == params.n);
  AeaOutcome out;
  out.report = run_system(
      params.n, params.t,
      [&](NodeId v) { return make_aea_process(params, v, inputs[static_cast<std::size_t>(v)]); },
      std::move(adversary));
  out.agreement = true;
  std::optional<std::uint64_t> seen;
  for (const auto& s : out.report.nodes) {
    if (s.crashed || s.decided) ++out.decided_or_crashed;
    if (s.crashed || !s.decided) continue;
    if (seen && *seen != s.decision) out.agreement = false;
    seen = s.decision;
  }
  out.validity = !seen.has_value();
  if (seen) {
    for (std::size_t v = 0; v < inputs.size(); ++v) {
      if (static_cast<std::uint64_t>(inputs[v]) == *seen) {
        out.validity = true;
        break;
      }
    }
  }
  return out;
}

ScvOutcome run_scv(const ConsensusParams& params,
                   std::span<const std::optional<std::uint64_t>> initials,
                   std::unique_ptr<sim::FaultInjector> adversary) {
  LFT_ASSERT(static_cast<NodeId>(initials.size()) == params.n);
  std::optional<std::uint64_t> common;
  for (const auto& i : initials) {
    if (i) {
      LFT_ASSERT_MSG(!common || *common == *i, "SCV requires a single common value");
      common = i;
    }
  }
  ScvOutcome out;
  out.report = run_system(
      params.n, params.t,
      [&](NodeId v) { return make_scv_process(params, v, initials[static_cast<std::size_t>(v)]); },
      std::move(adversary));
  out.all_decided_common = out.report.completed;
  for (const auto& s : out.report.nodes) {
    if (s.crashed) continue;
    if (!s.decided || (common && s.decision != *common)) out.all_decided_common = false;
  }
  return out;
}

}  // namespace lft::core
