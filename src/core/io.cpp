#include "core/io.hpp"

namespace lft::core {

Round StageDriver::total_duration() const {
  Round total = 0;
  for (const auto& s : stages_) total += s->duration();
  return total;
}

bool StageDriver::drive(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) {
  while (current_ < stages_.size() && round - stage_start_ >= stages_[current_]->duration()) {
    stage_start_ += stages_[current_]->duration();
    ++current_;
  }
  if (current_ >= stages_.size()) return true;
  stages_[current_]->on_round(round - stage_start_, inbox, io);
  return current_ + 1 == stages_.size() &&
         round - stage_start_ + 1 >= stages_[current_]->duration();
}

void StageProcess::on_round(sim::Context& ctx, std::span<const sim::Message> inbox) {
  ContextIo io(ctx);
  if (driver_.drive(ctx.round(), inbox, io)) ctx.halt();
}

}  // namespace lft::core
