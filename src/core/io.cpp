#include "core/io.hpp"

#include <algorithm>

namespace lft::core {

Round StageDriver::total_duration() const {
  if (total_cached_ < 0) {
    Round total = 0;
    for (const auto& s : stages_) total += s->duration();
    total_cached_ = total;
  }
  return total_cached_;
}

Round StageDriver::quiescent_until(Round round) const {
  if (current_ >= stages_.size()) return round + 1;
  const Round wake =
      stage_start_ + stages_[current_]->quiescent_until(round - stage_start_);
  return std::min(wake, total_duration() - 1);
}

bool StageDriver::drive(Round round, std::span<const sim::Message> inbox, ProtocolIo& io) {
  while (current_ < stages_.size() && round - stage_start_ >= stages_[current_]->duration()) {
    stage_start_ += stages_[current_]->duration();
    ++current_;
  }
  if (current_ >= stages_.size()) return true;
  stages_[current_]->on_round(round - stage_start_, inbox, io);
  return current_ + 1 == stages_.size() &&
         round - stage_start_ + 1 >= stages_[current_]->duration();
}

void drive_on_engine(Program& program, sim::Context& ctx, const sim::Inbox& inbox) {
  ContextIo io(ctx);
  program.run_round(ctx.round(), inbox.all(), io);
}

void StageProcess::run_round(Round round, std::span<const sim::Message> inbox,
                             ProtocolIo& io) {
  if (driver_.drive(round, inbox, io)) {
    io.halt();
    return;
  }
  const Round wake = driver_.quiescent_until(round);
  if (wake > round + 1) io.sleep_until(wake);
}

}  // namespace lft::core
