// Local probing (Section 2, Proposition 1): gamma rounds in which a node
// sends to all overlay neighbors and pauses permanently the first time it
// receives fewer than delta probe messages in a round. Surviving an instance
// certifies membership in a (gamma, delta)-dense neighborhood.
//
// Engine normal form: a probe sent in round k is received in round k+1, so
// one instance occupies gamma+1 engine rounds — sends in rounds 0..gamma-1,
// receive checks in rounds 1..gamma. Round counts differ from the paper's
// same-round-delivery presentation by exactly one round per instance.
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace lft::core {

class LocalProbe {
 public:
  LocalProbe(int gamma, int delta) : gamma_(gamma), delta_(delta) {
    LFT_ASSERT(gamma >= 1 && delta >= 0);
  }

  /// Total engine rounds an instance occupies.
  [[nodiscard]] Round duration() const noexcept { return gamma_ + 1; }

  /// Processes one probing round; `received` is the number of probe messages
  /// in this round's inbox. Returns true iff the node should send probes to
  /// all neighbors this round.
  bool step(int received) {
    LFT_ASSERT_MSG(round_ <= gamma_, "probe instance already finished");
    if (round_ >= 1 && received < delta_) paused_ = true;
    const bool send_now = !paused_ && round_ < gamma_;
    ++round_;
    return send_now;
  }

  /// Rewinds to a fresh instance with the same (gamma, delta) — the probe
  /// automaton's whole mutable state is the round counter and pause flag.
  void reset() noexcept {
    round_ = 0;
    paused_ = false;
  }

  [[nodiscard]] bool finished() const noexcept { return round_ > gamma_; }
  [[nodiscard]] bool survived() const noexcept { return finished() && !paused_; }
  [[nodiscard]] bool paused() const noexcept { return paused_; }

 private:
  int gamma_;
  int delta_;
  int round_ = 0;
  bool paused_ = false;
};

}  // namespace lft::core
