#include "core/gossip.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/stages.hpp"
#include "core/tags.hpp"
#include "graph/overlay.hpp"

namespace lft::core {

GossipParams GossipParams::practical(NodeId n, std::int64_t t) {
  LFT_ASSERT(n >= 1 && t >= 0 && 5 * t < n);
  GossipParams p;
  p.n = n;
  p.t = t;
  p.little_count =
      static_cast<NodeId>(std::clamp<std::int64_t>(5 * t, 1, static_cast<std::int64_t>(n)));
  p.probe_degree = 16;
  if (p.little_count - 1 <= p.probe_degree) {
    p.probe_delta = static_cast<int>(std::max<std::int64_t>(0, p.little_count - 1 - t));
  } else {
    p.probe_delta = p.probe_degree / 4;
  }
  p.probe_gamma = 2 + lg_rounds(static_cast<std::uint64_t>(p.little_count));
  p.phases = std::max(1, ceil_log2(static_cast<std::uint64_t>(n)));
  return p;
}

std::shared_ptr<const GossipConfig> GossipConfig::build(const GossipParams& params) {
  auto cfg = std::make_shared<GossipConfig>();
  cfg->params = params;
  const int little_degree =
      std::max(1, std::min<int>(params.probe_degree, params.little_count - 1));
  cfg->little_g = graph::shared_overlay(params.little_count, little_degree,
                                        params.overlay_tag ^ kOverlayLittleG);
  cfg->inquiry.reserve(static_cast<std::size_t>(params.phases));
  for (int i = 0; i < params.phases; ++i) {
    const std::int64_t wanted = static_cast<std::int64_t>(params.inquiry_base) << (i + 1);
    const int degree =
        static_cast<int>(std::clamp<std::int64_t>(wanted, 1, params.n - 1));
    cfg->inquiry.push_back(graph::shared_overlay(
        params.n, degree, params.overlay_tag ^ (kOverlayGossipBase + static_cast<std::uint64_t>(i))));
  }
  return cfg;
}

// ---- GossipBuildStage --------------------------------------------------------

GossipBuildStage::GossipBuildStage(std::shared_ptr<const GossipConfig> cfg, NodeId self,
                                   GossipState& state)
    : cfg_(std::move(cfg)), self_(self), state_(&state) {}

bool GossipBuildStage::is_little() const noexcept { return self_ < cfg_->params.little_count; }

Round GossipBuildStage::block() const noexcept {
  return 2 + (cfg_->params.probe_gamma + 1);
}

Round GossipBuildStage::duration() const {
  return static_cast<Round>(cfg_->params.phases) * block();
}

void GossipBuildStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  const Round b = block();
  const auto phase = static_cast<std::size_t>(r / b);
  const Round k = r % b;
  const graph::Graph& gi = *cfg_->inquiry[phase];

  // Absorb incoming pairs and probe deltas regardless of sub-round.
  int probe_heartbeats = 0;
  for (const auto& m : inbox) {
    switch (m.tag) {
      case kTagGossipPair:
        state_->extant.add(m.from, m.value);
        break;
      case kTagGossipProbe: {
        ++probe_heartbeats;
        if (m.has_body()) {
          ByteReader reader(m.body());
          (void)state_->extant.apply(reader);
        }
        break;
      }
      default:
        break;
    }
  }

  if (k == 0) {
    // Inquiries to absent G_i-neighbors (little nodes that survived the
    // previous phase's probing; everyone is eligible in phase 0).
    if (is_little() && (phase == 0 || state_->survived_last)) {
      for (NodeId nb : gi.neighbors(self_)) {
        if (!state_->extant.contains(nb)) io.send(nb, kTagGossipInquiry, 0, 1);
      }
    }
    return;
  }
  if (k == 1) {
    // Respond to inquiries with own pair.
    for (const auto& m : inbox) {
      if (m.tag == kTagGossipInquiry) {
        io.send(m.from, kTagGossipPair, state_->extant.rumor(self_), cfg_->params.rumor_bits);
      }
    }
    return;
  }

  // Probing sub-rounds (k = 2 .. gamma+2) among little nodes on G.
  if (!is_little()) return;
  if (k == 2) probe_.emplace(cfg_->params.probe_gamma, cfg_->params.probe_delta);
  if (probe_->step(probe_heartbeats)) {
    for (NodeId nb : cfg_->little_g->neighbors(self_)) {
      ByteWriter w(scratch_);
      auto [it, inserted] = watermark_.try_emplace(nb, 0);
      it->second = state_->extant.encode_delta(it->second, w);
      const std::uint64_t bits = std::max<std::uint64_t>(1, w.size() * 8);
      io.send(nb, kTagGossipProbe, 0, bits, w.view());
    }
  }
  if (k == b - 1) {
    state_->survived_last = probe_->survived();
    if (phase + 1 == static_cast<std::size_t>(cfg_->params.phases)) {
      state_->certified = state_->survived_last;
      state_->has_certified = state_->certified;
    }
  }
}

LinkBudget GossipBuildStage::link_budget(Round r) const {
  const Round k = r % block();
  const auto phase = static_cast<std::size_t>(r / block());
  if (k <= 1) {
    const int d = cfg_->inquiry[phase]->max_degree();
    return LinkBudget{d, d};
  }
  const int d = cfg_->little_g->max_degree();
  return LinkBudget{d, d};
}

LinkPlan GossipBuildStage::link_plan(Round r) const {
  const Round k = r % block();
  const auto phase = static_cast<std::size_t>(r / block());
  LinkPlan plan;
  if (k <= 1) {
    const auto ns = cfg_->inquiry[phase]->neighbors(self_);
    plan.out.assign(ns.begin(), ns.end());
    plan.in = plan.out;
    return plan;
  }
  if (is_little()) {
    const auto ns = cfg_->little_g->neighbors(self_);
    plan.out.assign(ns.begin(), ns.end());
    plan.in = plan.out;
  }
  return plan;
}

// ---- GossipShareStage ---------------------------------------------------------

GossipShareStage::GossipShareStage(std::shared_ptr<const GossipConfig> cfg, NodeId self,
                                   GossipState& state)
    : cfg_(std::move(cfg)), self_(self), state_(&state) {}

bool GossipShareStage::is_little() const noexcept { return self_ < cfg_->params.little_count; }

Round GossipShareStage::block() const noexcept { return 2 + (cfg_->params.probe_gamma + 1); }

Round GossipShareStage::duration() const {
  return static_cast<Round>(cfg_->params.phases) * block();
}

void GossipShareStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  const Round b = block();
  const auto phase = static_cast<std::size_t>(r / b);
  const Round k = r % b;
  const graph::Graph& gi = *cfg_->inquiry[phase];

  int probe_heartbeats = 0;
  for (const auto& m : inbox) {
    switch (m.tag) {
      case kTagGossipSet: {
        ByteReader reader(m.body());
        if (state_->extant.apply(reader)) state_->has_certified = true;
        break;
      }
      case kTagGossipComplete: {
        ++probe_heartbeats;
        if (m.has_body()) {
          ByteReader reader(m.body());
          (void)state_->completion.apply(reader);
        }
        break;
      }
      default:
        break;
    }
  }

  if (k == 0) {
    if (is_little() && state_->certified && (phase == 0 || state_->survived_last)) {
      // The certified set is identical for every recipient: encode it at
      // most once per round, lazily (most rounds complete no new neighbor).
      std::uint64_t bits = 0;
      for (NodeId nb : gi.neighbors(self_)) {
        if (state_->completion.test(static_cast<std::size_t>(nb))) continue;
        state_->completion.add(static_cast<std::size_t>(nb));
        if (bits == 0) {
          ByteWriter w(scratch_);
          state_->extant.encode_full(w);
          bits = std::max<std::uint64_t>(1, w.size() * 8);
        }
        io.send(nb, kTagGossipSet, 0, bits, sim::PayloadView(scratch_));
      }
    }
    return;
  }
  if (k == 1) return;  // receive-only sub-round for kTagGossipSet

  if (!is_little()) return;
  if (k == 2) probe_.emplace(cfg_->params.probe_gamma, cfg_->params.probe_delta);
  if (probe_->step(probe_heartbeats)) {
    for (NodeId nb : cfg_->little_g->neighbors(self_)) {
      ByteWriter w(scratch_);
      auto [it, inserted] = watermark_.try_emplace(nb, 0);
      it->second = state_->completion.encode_delta(it->second, w);
      const std::uint64_t bits = std::max<std::uint64_t>(1, w.size() * 8);
      io.send(nb, kTagGossipComplete, 0, bits, w.view());
    }
  }
  if (k == b - 1) state_->survived_last = probe_->survived();
}

LinkBudget GossipShareStage::link_budget(Round r) const {
  const Round k = r % block();
  const auto phase = static_cast<std::size_t>(r / block());
  if (k <= 1) {
    const int d = cfg_->inquiry[phase]->max_degree();
    return LinkBudget{d, d};
  }
  const int d = cfg_->little_g->max_degree();
  return LinkBudget{d, d};
}

LinkPlan GossipShareStage::link_plan(Round r) const {
  const Round k = r % block();
  const auto phase = static_cast<std::size_t>(r / block());
  LinkPlan plan;
  if (k <= 1) {
    const auto ns = cfg_->inquiry[phase]->neighbors(self_);
    plan.out.assign(ns.begin(), ns.end());
    plan.in = plan.out;
    return plan;
  }
  if (is_little()) {
    const auto ns = cfg_->little_g->neighbors(self_);
    plan.out.assign(ns.begin(), ns.end());
    plan.in = plan.out;
  }
  return plan;
}

// ---- GossipFinishStage ----------------------------------------------------------

GossipFinishStage::GossipFinishStage(std::shared_ptr<const GossipConfig> cfg, NodeId self,
                                     GossipState& state, bool decide_at_end, bool enable_pull)
    : cfg_(std::move(cfg)),
      self_(self),
      state_(&state),
      decide_at_end_(decide_at_end),
      enable_pull_(enable_pull) {}

void GossipFinishStage::on_round(Round r, std::span<const sim::Message> inbox, ProtocolIo& io) {
  if (!enable_pull_) {
    if (!state_->has_certified) io.count_fallback();  // surfaced, not repaired
    if (decide_at_end_ && state_->has_certified) {
      state_->decided = true;
      io.decide(state_->extant.digest());
    }
    return;
  }
  switch (r) {
    case 0:
      if (!state_->has_certified) {
        io.count_fallback();
        for (NodeId j = 0; j < cfg_->params.little_count; ++j) {
          if (j != self_) io.send(j, kTagGossipPull, 0, 1);
        }
      }
      break;
    case 1:
      if (self_ < cfg_->params.little_count && state_->certified) {
        // The reply payload is recipient-independent: encode at most once.
        ByteWriter w;
        std::uint64_t bits = 0;
        for (const auto& m : inbox) {
          if (m.tag == kTagGossipPull) {
            if (bits == 0) {
              state_->extant.encode_full(w);
              bits = std::max<std::uint64_t>(1, w.size() * 8);
            }
            io.send(m.from, kTagGossipSetReply, 0, bits, w.view());
          }
        }
      }
      break;
    default:
      for (const auto& m : inbox) {
        if (m.tag == kTagGossipSetReply) {
          ByteReader reader(m.body());
          if (state_->extant.apply(reader)) state_->has_certified = true;
        }
      }
      if (decide_at_end_ && state_->has_certified) {
        state_->decided = true;
        io.decide(state_->extant.digest());
      }
      break;
  }
}

// ---- GossipProcess ----------------------------------------------------------------

GossipProcess::GossipProcess(std::shared_ptr<const GossipConfig> cfg, NodeId self,
                             std::uint64_t rumor)
    : state_(cfg->params.n, self, rumor) {
  driver_.add(std::make_unique<GossipBuildStage>(cfg, self, state_));
  driver_.add(std::make_unique<GossipShareStage>(cfg, self, state_));
  driver_.add(std::make_unique<GossipFinishStage>(cfg, self, state_, /*decide_at_end=*/true));
}

void GossipProcess::run_round(Round round, std::span<const sim::Message> inbox,
                              ProtocolIo& io) {
  if (driver_.drive(round, inbox, io)) io.halt();
}

void GossipProcess::on_round(sim::Context& ctx, const sim::Inbox& inbox) {
  drive_on_engine(*this, ctx, inbox);
}

// ---- runner -------------------------------------------------------------------------

GossipOutcome run_gossip(const GossipParams& params, std::span<const std::uint64_t> rumors,
                         std::unique_ptr<sim::FaultInjector> adversary,
                         const RunOptions& options) {
  LFT_ASSERT(static_cast<NodeId>(rumors.size()) == params.n);
  auto cfg = GossipConfig::build(params);

  sim::EngineConfig engine_config;
  engine_config.crash_budget = params.t;
  engine_config.omission_budget = params.t;
  engine_config.threads = options.threads;
  engine_config.scratch = options.scratch;
  engine_config.trace = options.trace;
  engine_config.simd = options.simd;
  engine_config.telemetry = options.telemetry;
  sim::Engine engine(params.n, engine_config);
  for (NodeId v = 0; v < params.n; ++v) {
    engine.set_process(
        v, std::make_unique<GossipProcess>(cfg, v, rumors[static_cast<std::size_t>(v)]));
  }
  if (adversary != nullptr) engine.add_fault_injector(std::move(adversary));

  GossipOutcome out;
  out.report = engine.run();

  out.termination = out.report.completed;
  out.condition1 = true;
  out.condition2 = true;
  out.rumors_intact = true;
  for (NodeId v = 0; v < params.n; ++v) {
    const auto& status = out.report.nodes[static_cast<std::size_t>(v)];
    const auto& proc = static_cast<const GossipProcess&>(engine.process(v));
    // Faulty nodes are exempt on the holder side too: an omission-faulty
    // node's own decision and extant set carry no guarantee.
    if (status.crashed || status.omission) continue;
    if (!proc.state().decided) {
      out.termination = false;
      continue;
    }
    const ExtantSet& set = proc.state().extant;
    for (NodeId j = 0; j < params.n; ++j) {
      const auto& js = out.report.nodes[static_cast<std::size_t>(j)];
      const bool never_sent = js.crashed && js.sends == 0;
      // Condition (2) applies to non-faulty nodes: an omission-faulty node's
      // pairs may legitimately be missing from decided sets (its sends were
      // lost in transit), exactly like a crashed node's.
      const bool halted_operational = !js.crashed && !js.omission;
      if (never_sent && j != v && set.contains(j)) out.condition1 = false;
      if (halted_operational && !set.contains(j)) out.condition2 = false;
      if (set.contains(j) && set.rumor(j) != rumors[static_cast<std::size_t>(j)]) {
        out.rumors_intact = false;
      }
    }
  }
  return out;
}

}  // namespace lft::core
