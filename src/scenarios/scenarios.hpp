// Named fault scenarios: (protocol × fault plan × size) triples registered
// in one place and reused by tests (determinism + invariant coverage),
// benches, CI (scenario-smoke), the `lft_scenarios` CLI runner, and the
// fleet sweep driver (`lft_fleet`).
//
// Every scenario is a deterministic function of (seed, threads, n, t): same
// inputs give a bit-identical sim::Report — including with the engine's
// parallel stepper enabled — which `fingerprint` certifies with one 64-bit
// digest. Each scenario also states the invariant it checks. Scenarios in
// the paper's crash model assert the full theorem guarantees (termination,
// agreement, validity / the gossip and checkpointing conditions); scenarios
// in regimes beyond the theorems (omission, partition, Byzantine mixtures)
// assert the strongest invariant that provably-or-empirically holds, and say
// so in their description.
//
// Scenarios are size-parameterized: the registered (n, t) is the default
// shape, and `run_at` re-instantiates the same protocol + fault plan at any
// size honoring the registry ratio (use `scaled_t`). `sweep` expands a
// scenario across seed and size axes into SweepItems, and `run_sweep`
// executes the items over a sim::FleetRunner, preserving per-instance
// bit-identity to serial one-at-a-time execution.
//
// Plan-driven scenarios (every entry whose adversary is a declarative
// FaultPlan — all but the adaptive ones) additionally expose the
// plan/protocol split the forensics plane builds on: `plan_of` rebuilds the
// registered fault plan for a (seed, n, t), and `run_plan` executes the
// scenario's protocol + invariant under an *arbitrary* plan — which is what
// lets forensics::replay re-execute perturbed plans and forensics::shrink
// delta-debug a counterexample plan while keeping the scenario's invariant
// as the oracle. Every runner accepts an optional sim::TraceSink so the
// forensics plane can record per-round digests of any scenario execution.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/run_options.hpp"
#include "sim/engine.hpp"
#include "sim/fleet.hpp"

namespace lft::scenarios {

/// Outcome of one scenario execution: the engine Report plus the verdict of
/// the scenario's stated invariant.
struct ScenarioResult {
  sim::Report report;
  bool ok = false;     ///< the scenario's stated invariant held
  std::string detail;  ///< human-readable invariant summary (shown by the CLI)
};

/// One registered (protocol × fault plan × size) triple.
struct Scenario {
  /// Size-parameterized runner: executes the scenario's protocol + fault
  /// plan at an arbitrary (n, t) honoring the registry ratio. Execution
  /// knobs (parallel stepper, scratch recycling, trace recording) travel in
  /// core::RunOptions; the Report is bit-identical for every option value.
  using RunFn = std::function<ScenarioResult(std::uint64_t seed, NodeId n, std::int64_t t,
                                             const core::RunOptions& options)>;
  /// Rebuilds the scenario's registered fault plan for a (seed, n, t).
  using PlanFn = std::function<sim::FaultPlan(std::uint64_t seed, NodeId n, std::int64_t t)>;
  /// Runs the scenario's protocol and evaluates its invariant under an
  /// arbitrary fault plan (the forensics replay/shrink entry point).
  using RunPlanFn = std::function<ScenarioResult(std::uint64_t seed, NodeId n, std::int64_t t,
                                                 sim::FaultPlan plan,
                                                 const core::RunOptions& options)>;

  std::string name;
  std::string protocol;    ///< few_crashes | many_crashes | gossip | checkpointing | ab_consensus | min_flood
  std::string fault_kind;  ///< crash | omission | partition | link | byzantine | delay | gst | mixed
  NodeId n = 0;            ///< default size
  std::int64_t t = 0;      ///< default fault budget
  std::string description;
  RunFn run_at;
  /// Null for scenarios whose adversary is adaptive rather than plan-driven
  /// (`run_at` is then the only entry point). For plan-driven scenarios,
  /// run_at(seed, ...) == run_plan(seed, ..., plan_of(seed, n, t), ...).
  PlanFn plan_of;
  RunPlanFn run_plan;

  /// Runs at the registered default (n, t) with cold buffers.
  [[nodiscard]] ScenarioResult run(std::uint64_t seed, int threads) const {
    core::RunOptions options;
    options.threads = threads;
    return run_at(seed, n, t, options);
  }

  /// The fault budget for an alternative size: the registered t/n ratio
  /// scaled to `size`, floored at 1 (so every scaled shape keeps faults).
  [[nodiscard]] std::int64_t scaled_t(NodeId size) const;
};

/// Stable 64-bit digest over every Report field (rounds, completion, all
/// metrics, per-node status). Equal fingerprints across repeated runs and
/// thread counts certify bit-identical executions.
[[nodiscard]] std::uint64_t fingerprint(const sim::Report& report);

/// The registry, in a fixed presentation order (crash, omission, partition,
/// link, byzantine, mixed, then the timing-fault catalogue: delay, gst,
/// early-deciding, and timing-mixed compositions).
[[nodiscard]] const std::vector<Scenario>& all_scenarios();

/// Looks a scenario up by name; nullptr if unknown.
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

// ---- fleet sweeps ----------------------------------------------------------

/// One queued sweep instance: a scenario at a concrete (seed, n, t).
struct SweepItem {
  const Scenario* scenario = nullptr;
  std::uint64_t seed = 0;
  NodeId n = 0;
  std::int64_t t = 0;
};

/// Expands scenario `name` across the seed × size grid: one SweepItem per
/// (seed, size), with the fault budget scaled via Scenario::scaled_t. An
/// empty `sizes` means the registered default size. Aborts on an unknown
/// name (resolve with find_scenario first for graceful CLI errors).
[[nodiscard]] std::vector<SweepItem> sweep(const std::string& name,
                                           std::span<const std::uint64_t> seeds,
                                           std::span<const NodeId> sizes = {});

/// Result of one sweep instance, with the fields aggregate consumers need
/// (fingerprint, wall time) precomputed.
struct SweepOutcome {
  SweepItem item;
  bool ok = false;
  std::string detail;
  std::uint64_t fingerprint = 0;
  double wall_ms = 0.0;  ///< this instance's execution time on its worker
  sim::Report report;
};

/// Executes `items` over the fleet (each instance serial on one worker) and
/// blocks until all complete. Outcomes are in item order regardless of
/// completion order, and each Report is bit-identical to running that item
/// alone: `items[i].scenario->run_at(seed, n, t, {})`.
[[nodiscard]] std::vector<SweepOutcome> run_sweep(sim::FleetRunner& fleet,
                                                  std::span<const SweepItem> items);

}  // namespace lft::scenarios
