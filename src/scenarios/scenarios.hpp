// Named fault scenarios: (protocol × fault plan × size) triples registered
// in one place and reused by tests (determinism + invariant coverage),
// benches, CI (scenario-smoke), and the `lft_scenarios` CLI runner.
//
// Every scenario is a deterministic function of (seed, threads): same seed
// gives a bit-identical sim::Report — including with the engine's parallel
// stepper enabled — which `fingerprint` certifies with one 64-bit digest.
// Each scenario also states the invariant it checks. Scenarios in the
// paper's crash model assert the full theorem guarantees (termination,
// agreement, validity / the gossip and checkpointing conditions); scenarios
// in regimes beyond the theorems (omission, partition, Byzantine mixtures)
// assert the strongest invariant that provably-or-empirically holds, and say
// so in their description.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace lft::scenarios {

struct ScenarioResult {
  sim::Report report;
  bool ok = false;     // the scenario's stated invariant held
  std::string detail;  // human-readable invariant summary (shown by the CLI)
};

struct Scenario {
  std::string name;
  std::string protocol;    // few_crashes | many_crashes | gossip | checkpointing | ab_consensus
  std::string fault_kind;  // crash | omission | partition | link | byzantine | mixed
  NodeId n = 0;
  std::int64_t t = 0;
  std::string description;
  std::function<ScenarioResult(std::uint64_t seed, int threads)> run;
};

/// Stable 64-bit digest over every Report field (rounds, completion, all
/// metrics, per-node status). Equal fingerprints across repeated runs and
/// thread counts certify bit-identical executions.
[[nodiscard]] std::uint64_t fingerprint(const sim::Report& report);

/// The registry, in a fixed presentation order (crash, omission, partition,
/// link, byzantine, mixed).
[[nodiscard]] const std::vector<Scenario>& all_scenarios();

/// Looks a scenario up by name; nullptr if unknown.
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

}  // namespace lft::scenarios
