#include "scenarios/scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "byzantine/ab_consensus.hpp"
#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/checkpointing.hpp"
#include "core/consensus.hpp"
#include "core/gossip.hpp"
#include "core/stages.hpp"
#include "core/tags.hpp"
#include "graph/overlay.hpp"
#include "service/ordering.hpp"
#include "sim/adversary.hpp"
#include "sim/faults.hpp"

namespace lft::scenarios {

namespace {

using core::ConsensusParams;

std::vector<int> random_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  return inputs;
}

std::string yn(bool b) { return b ? "yes" : "NO"; }

// ---- consensus harness -----------------------------------------------------

/// Which invariants a consensus scenario demands. Crash-model scenarios
/// demand everything (the theorems); fault regimes beyond the paper's model
/// drop termination when faulty-but-running nodes legitimately fail to
/// decide.
struct Expect {
  bool termination = true;
  bool agreement = true;
  bool validity = true;
};

ScenarioResult eval_consensus(core::ConsensusOutcome outcome, const Expect& expect) {
  ScenarioResult result;
  result.ok = (!expect.termination || outcome.termination) &&
              (!expect.agreement || outcome.agreement) &&
              (!expect.validity || outcome.validity);
  result.detail = "termination=" + yn(outcome.termination) +
                  " agreement=" + yn(outcome.agreement) +
                  " validity=" + yn(outcome.validity);
  result.report = std::move(outcome.report);
  return result;
}

/// Runs Few- or Many-Crashes-Consensus under `plan` with random inputs.
ScenarioResult run_consensus(const ConsensusParams& params, bool many, sim::FaultPlan plan,
                             std::uint64_t seed, const Expect& expect,
                             const core::RunOptions& options) {
  const auto inputs = random_inputs(params.n, seed);
  auto factory = [&](NodeId v) {
    const int input = inputs[static_cast<std::size_t>(v)];
    return many ? core::make_many_crashes_process(params, v, input)
                : core::make_few_crashes_process(params, v, input);
  };
  auto report = core::run_system(params.n, params.t, factory,
                                 sim::make_plan_injector(std::move(plan)), options);
  return eval_consensus(core::evaluate_consensus(std::move(report), inputs), expect);
}

ScenarioResult eval_gossip(core::GossipOutcome outcome) {
  ScenarioResult result;
  result.ok = outcome.all_good();
  result.detail = "termination=" + yn(outcome.termination) +
                  " cond1=" + yn(outcome.condition1) + " cond2=" + yn(outcome.condition2) +
                  " rumors=" + yn(outcome.rumors_intact);
  result.report = std::move(outcome.report);
  return result;
}

ScenarioResult eval_checkpointing(core::CheckpointOutcome outcome) {
  ScenarioResult result;
  result.ok = outcome.all_good();
  result.detail = "termination=" + yn(outcome.termination) +
                  " cond1=" + yn(outcome.condition1) + " cond2=" + yn(outcome.condition2) +
                  " cond3=" + yn(outcome.condition3);
  result.report = std::move(outcome.report);
  return result;
}

ScenarioResult eval_ab(byzantine::AbOutcome outcome, bool expect_max_rule) {
  ScenarioResult result;
  result.ok = outcome.termination && outcome.agreement &&
              (!expect_max_rule || outcome.max_rule_holds);
  result.detail = "termination=" + yn(outcome.termination) +
                  " agreement=" + yn(outcome.agreement) +
                  " max_rule=" + yn(outcome.max_rule_holds);
  result.report = std::move(outcome.report);
  return result;
}

std::vector<std::uint64_t> ab_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = rng.uniform(2);
  return inputs;
}

std::vector<std::uint64_t> gossip_rumors(NodeId n, std::uint64_t seed) {
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) rumors[static_cast<std::size_t>(v)] = seed * 1000 + v;
  return rumors;
}

// ---- timing-fault harness: min-flood consensus -----------------------------

/// The timing-fault scenarios run a deliberately simple full-information
/// protocol so that every invariant verdict is attributable to *when*
/// messages arrive rather than to protocol-internal schedule structure:
/// every round below the horizon each node broadcasts its current minimum
/// and adopts the minimum of its inbox; at the horizon it decides and halts.
/// The horizon is fixed (independent of the fault plan), so the decision
/// round never moves — a delay either beats the horizon or loses to it.
/// With `early_decide`, a node decides as soon as it has heard from every
/// peer at least once: since a holder of the global minimum carries it from
/// round 0, hearing every peer implies having seen the global minimum (safe
/// only when no sender can be silenced — the pure delay/GST scenarios).
constexpr std::uint32_t kTagMinFlood = core::kTagBaseline + 40;
constexpr Round kMinFloodHorizon = 12;

class MinFloodProcess final : public sim::Process {
 public:
  MinFloodProcess(NodeId n, Round horizon, std::uint64_t input, bool early_decide)
      : n_(n), horizon_(horizon), min_(input), early_(early_decide) {
    if (early_) heard_.assign(static_cast<std::size_t>(n), 0);
  }

  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override {
    for (const auto& m : inbox) {
      if (m.tag != kTagMinFlood) continue;
      min_ = std::min(min_, m.value);
      if (early_ && heard_[static_cast<std::size_t>(m.from)] == 0) {
        heard_[static_cast<std::size_t>(m.from)] = 1;
        ++heard_count_;
      }
    }
    if (ctx.round() >= horizon_ ||
        (early_ && heard_count_ == static_cast<std::size_t>(n_) - 1)) {
      ctx.decide(min_);
      ctx.halt();
      return;
    }
    for (NodeId v = 0; v < n_; ++v) {
      if (v != ctx.self()) ctx.send(v, kTagMinFlood, min_, 1);
    }
  }

 private:
  NodeId n_;
  Round horizon_;
  std::uint64_t min_;
  bool early_;
  std::vector<char> heard_;
  std::size_t heard_count_ = 0;
};

/// The behavior planned takeovers install in the min-flood scenarios: total
/// silence (the strongest sender-side fault the protocol's invariants can
/// attribute to timing). Halts at the horizon so the taken-over node does
/// not keep the engine alive after every honest node has decided.
class SilentBehavior final : public sim::Process {
 public:
  void on_round(sim::Context& ctx, const sim::Inbox&) override {
    if (ctx.round() >= kMinFloodHorizon) ctx.halt();
  }
};

/// Runs min-flood under `plan` with distinct random inputs (drawn from a
/// wide range so the global minimum is held by one specific node, not by a
/// bit value half the system starts with). Budgets for every node-fault
/// class are opened to t so mixed plans can compose crashes, omissions and
/// takeovers with the (unbudgeted) timing faults.
ScenarioResult run_min_flood(std::uint64_t seed, NodeId n, std::int64_t t,
                             sim::FaultPlan plan, const Expect& expect, bool early_decide,
                             const core::RunOptions& options) {
  Rng rng(seed * 977 + 11);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(1 + rng.uniform(1'000'000));
  sim::EngineConfig config;
  // Enough headroom past the horizon for every parked message to come due
  // (GST plans can lag a round-0 send by stabilization + delta rounds).
  config.max_rounds = kMinFloodHorizon + 80;
  config.crash_budget = t;
  config.omission_budget = t;
  config.byzantine_budget = t;
  config.threads = options.threads;
  config.scratch = options.scratch;
  config.trace = options.trace;
  config.simd = options.simd;
  config.telemetry = options.telemetry;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(
        v, std::make_unique<MinFloodProcess>(
               n, kMinFloodHorizon,
               static_cast<std::uint64_t>(inputs[static_cast<std::size_t>(v)]),
               early_decide));
  }
  engine.add_fault_injector(sim::make_plan_injector(
      std::move(plan),
      [](NodeId, const std::string&) { return std::make_unique<SilentBehavior>(); }));
  return eval_consensus(core::evaluate_consensus(engine.run(), inputs), expect);
}

/// Assembles a plan-driven scenario from its two halves: `plan_of` rebuilds
/// the registered fault plan, `run_plan` executes the protocol + invariant
/// under any plan, and `run_at` is their composition. Keeping the halves
/// separately addressable is what the forensics plane replays and shrinks
/// against.
Scenario make_planned(std::string name, std::string protocol, std::string fault_kind,
                      NodeId n, std::int64_t t, std::string description,
                      Scenario::PlanFn plan_of, Scenario::RunPlanFn run_plan) {
  Scenario s;
  s.name = std::move(name);
  s.protocol = std::move(protocol);
  s.fault_kind = std::move(fault_kind);
  s.n = n;
  s.t = t;
  s.description = std::move(description);
  s.plan_of = std::move(plan_of);
  s.run_plan = std::move(run_plan);
  s.run_at = [plan = s.plan_of, run = s.run_plan](std::uint64_t seed, NodeId size,
                                                  std::int64_t budget,
                                                  const core::RunOptions& options) {
    return run(seed, size, budget, plan(seed, size, budget), options);
  };
  return s;
}

/// Shorthand for a min-flood timing-fault scenario: same protocol half every
/// time, so each entry is just (plan, expectations, decide mode).
Scenario make_min_flood(std::string name, std::string fault_kind, NodeId n, std::int64_t t,
                        std::string description, Scenario::PlanFn plan_of,
                        Expect expect = {}, bool early_decide = false) {
  return make_planned(
      std::move(name), "min_flood", std::move(fault_kind), n, t, std::move(description),
      std::move(plan_of),
      [expect, early_decide](std::uint64_t seed, NodeId size, std::int64_t budget,
                             sim::FaultPlan plan, const core::RunOptions& options) {
        return run_min_flood(seed, size, budget, std::move(plan), expect, early_decide,
                             options);
      });
}

std::vector<Scenario> build_registry() {
  std::vector<Scenario> list;

  // Every runner below is a pure function of (seed, n, t) — RunOptions never
  // changes a bit: the registered (n, t) is only the default shape, and `sweep`
  // re-invokes the same lambda at scaled sizes. Ratios are chosen so every
  // 5t < n / little-group constraint still holds after proportional scaling.

  // ---- crash plans (the paper's model: full theorem guarantees) ------------

  list.push_back(make_planned(
      "crash_burst_flood", "few_crashes", "crash", 600, 100,
      "all t crash in one burst at flood start; n=600 engages the parallel stepper",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.burst_crashes(n, t, 1, seed * 31 + 1);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        return run_consensus(ConsensusParams::practical(n, t), false, std::move(plan), seed,
                             Expect{}, options);
      }));

  list.push_back(make_planned(
      "crash_staggered_drip", "few_crashes", "crash", 160, 31,
      "one crash every 5 rounds through the whole execution",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.staggered_crashes(n, t, 0, 5, seed * 31 + 2);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        return run_consensus(ConsensusParams::practical(n, t), false, std::move(plan), seed,
                             Expect{}, options);
      }));

  list.push_back(make_planned(
      "crash_partial_sends", "many_crashes", "crash", 96, 60,
      "many-crashes regime (t near n); every victim keeps ~30% of its last sends",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.random_crashes(n, t, 0, n / 2, 0.3, seed * 31 + 3);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        return run_consensus(ConsensusParams::practical(n, t), true, std::move(plan), seed,
                             Expect{}, options);
      }));

  list.push_back(make_planned(
      "crash_isolate_little", "few_crashes", "crash", 200, 30,
      "crashes every little-overlay neighbor of little node 1 at round 0 "
      "(phase-graph diversity keeps the victim deciding)",
      [](std::uint64_t, NodeId n, std::int64_t t) {
        const auto params = ConsensusParams::practical(n, t);
        const auto little_g = graph::shared_overlay(
            params.little_count,
            std::min<int>(params.probe_degree_little, params.little_count - 1),
            params.overlay_tag ^ core::kOverlayLittleG);
        sim::FaultPlan plan;
        plan.crash(sim::isolation_crash_schedule(*little_g, 1, t));
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        auto result = run_consensus(ConsensusParams::practical(n, t), false, std::move(plan),
                                    seed, Expect{}, options);
        const auto& victim = result.report.nodes[1];
        result.ok = result.ok && !victim.crashed && victim.decided;
        result.detail += " victim_decided=" + yn(victim.decided);
        return result;
      }));

  list.push_back(Scenario{
      "crash_probe_hubs", "few_crashes", "crash", 200, 30,
      "adaptive ProbeDisruptor: crashes the 2 busiest senders per round until the budget",
      [](std::uint64_t seed, NodeId n, std::int64_t t, const core::RunOptions& options) {
        const auto params = ConsensusParams::practical(n, t);
        const auto inputs = random_inputs(n, seed);
        auto factory = [&](NodeId v) {
          return core::make_few_crashes_process(params, v,
                                                inputs[static_cast<std::size_t>(v)]);
        };
        auto report = core::run_system(n, t, factory,
                                       std::make_unique<sim::ProbeDisruptorAdversary>(t, 2),
                                       options);
        return eval_consensus(core::evaluate_consensus(std::move(report), inputs), Expect{});
      },
      nullptr, nullptr});

  list.push_back(make_planned(
      "crash_gossip_window", "gossip", "crash", 110, 14,
      "gossip with t partial-send crashes inside the first probing window",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.random_crashes(n, t, 0, 4 * t, 0.5, seed * 31 + 4);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = core::GossipParams::practical(n, t);
        return eval_gossip(core::run_gossip(params, gossip_rumors(n, seed),
                                            sim::make_plan_injector(std::move(plan)),
                                            options));
      }));

  // ---- omission plans (Dwork-Halpern-Waarts regimes) -----------------------

  list.push_back(make_planned(
      "omission_send_quorum", "few_crashes", "omission", 200, 30,
      "t nodes are send-omission faulty for the whole run: to everyone else they look "
      "crashed, but they keep receiving, so even the faulty nodes decide the common value",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.random_omissions(n, t, 0, sim::kRoundForever, /*send=*/true, /*recv=*/false,
                              seed * 31 + 5);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        auto result = run_consensus(ConsensusParams::practical(n, t), false, std::move(plan),
                                    seed, Expect{}, options);
        // Stronger than the crash theorem: every node decided, faulty included.
        const bool everyone = result.report.decided_count() == n;
        result.ok = result.ok && everyone;
        result.detail += " all_decided=" + yn(everyone);
        return result;
      }));

  list.push_back(make_planned(
      "omission_recv_blackout", "few_crashes", "omission", 200, 30,
      "t nodes are receive-omission faulty for the whole run; safety (agreement + "
      "validity) must survive even though the deaf nodes may not decide",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.random_omissions(n, t, 0, sim::kRoundForever, /*send=*/false, /*recv=*/true,
                              seed * 31 + 6);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        Expect expect;
        expect.termination = true;  // non-faulty nodes must all decide
        return run_consensus(ConsensusParams::practical(n, t), false, std::move(plan), seed,
                             expect, options);
      }));

  list.push_back(make_planned(
      "omission_flood_window", "few_crashes", "omission", 200, 30,
      "t nodes lose both directions during the first half of the flood window, then "
      "recover; the protocol must absorb the re-merge and deliver full guarantees",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        const auto params = ConsensusParams::practical(n, t);
        sim::FaultPlan plan;
        plan.random_omissions(n, t, 0, params.flood_rounds_little / 2, /*send=*/true,
                              /*recv=*/true, seed * 31 + 7);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        auto result = run_consensus(ConsensusParams::practical(n, t), false, std::move(plan),
                                    seed, Expect{}, options);
        const bool everyone = result.report.decided_count() == n;
        result.ok = result.ok && everyone;
        result.detail += " all_decided=" + yn(everyone);
        return result;
      }));

  list.push_back(make_planned(
      "omission_gossip_mixed", "gossip", "omission", 110, 14,
      "gossip with t/2 send-omission and t/2 receive-omission nodes during part 1",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        const auto params = core::GossipParams::practical(n, t);
        const Round part1 = params.phases * (params.probe_gamma + 3);
        sim::FaultPlan plan;
        plan.random_omissions(n, t / 2, 0, part1, /*send=*/true, /*recv=*/false,
                              seed * 31 + 8);
        plan.random_omissions(n, t - t / 2, 0, part1, /*send=*/false, /*recv=*/true,
                              seed * 31 + 9);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = core::GossipParams::practical(n, t);
        auto outcome = core::run_gossip(params, gossip_rumors(n, seed),
                                        sim::make_plan_injector(std::move(plan)), options);
        return eval_gossip(std::move(outcome));
      }));

  // ---- partitions and link faults ------------------------------------------

  list.push_back(make_planned(
      "partition_split_heal", "few_crashes", "partition", 200, 30,
      "an eighth of the nodes are split off during early flood rounds [1, 9), then the "
      "partition heals; the re-merged nodes must catch up to full guarantees",
      [](std::uint64_t, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.split_at(n - n / 8, n, 1, 9);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        auto result = run_consensus(ConsensusParams::practical(n, t), false, std::move(plan),
                                    seed, Expect{}, options);
        const bool everyone = result.report.decided_count() == n;
        result.ok = result.ok && everyone;
        result.detail += " all_decided=" + yn(everyone);
        return result;
      }));

  list.push_back(make_planned(
      "partition_little_halves", "few_crashes", "partition", 200, 30,
      "the little group is split into halves for 6 flood rounds (cross-half floods are "
      "dropped), then re-merged",
      [](std::uint64_t, NodeId n, std::int64_t t) {
        const auto params = ConsensusParams::practical(n, t);
        std::vector<std::uint32_t> groups(static_cast<std::size_t>(n), 0);
        for (NodeId v = 0; v < params.little_count / 2; ++v) {
          groups[static_cast<std::size_t>(v)] = 1;
        }
        sim::FaultPlan plan;
        plan.split(std::move(groups), 2, 8);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        return run_consensus(ConsensusParams::practical(n, t), false, std::move(plan), seed,
                             Expect{}, options);
      }));

  list.push_back(make_planned(
      "link_flaky_mesh", "few_crashes", "link", 200, 30,
      "60 random node pairs lose their (symmetric) links for the first 20 rounds",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        Rng rng(seed * 31 + 10);
        for (int i = 0; i < 60; ++i) {
          const auto a = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          const auto b = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          if (a == b) continue;
          plan.cut_link(a, b, 0, 20);
        }
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        return run_consensus(ConsensusParams::practical(n, t), false, std::move(plan), seed,
                             Expect{}, options);
      }));

  // ---- Byzantine takeovers (Theorem 11 model) ------------------------------

  list.push_back(make_planned(
      "byz_silent_little", "ab_consensus", "byzantine", 120, 11,
      "t little nodes are taken over with the silent behavior at round 0",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        const auto params = byzantine::AbParams::practical(n, t);
        sim::FaultPlan plan;
        Rng rng(seed * 31 + 11);
        std::vector<NodeId> little(static_cast<std::size_t>(params.little_count));
        for (NodeId v = 0; v < params.little_count; ++v) {
          little[static_cast<std::size_t>(v)] = v;
        }
        rng.shuffle(std::span<NodeId>(little));
        for (std::int64_t i = 0; i < t; ++i) {
          plan.takeover(little[static_cast<std::size_t>(i)], 0, "silent");
        }
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = byzantine::AbParams::practical(n, t);
        return eval_ab(byzantine::run_ab_consensus_plan(params, ab_inputs(n, seed),
                                                        std::move(plan), options),
                       /*expect_max_rule=*/false);
      }));

  list.push_back(make_planned(
      "byz_equivocators", "ab_consensus", "byzantine", 120, 11,
      "t little nodes equivocate (sign 0 to odd peers, 1 to even) in DS round 0",
      [](std::uint64_t, NodeId n, std::int64_t t) {
        const auto params = byzantine::AbParams::practical(n, t);
        sim::FaultPlan plan;
        for (std::int64_t i = 0; i < t; ++i) {
          plan.takeover(static_cast<NodeId>(i * 3 % params.little_count), 0, "equivocate");
        }
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = byzantine::AbParams::practical(n, t);
        return eval_ab(byzantine::run_ab_consensus_plan(params, ab_inputs(n, seed),
                                                        std::move(plan), options),
                       /*expect_max_rule=*/false);
      }));

  list.push_back(make_planned(
      "byz_flooders", "ab_consensus", "byzantine", 120, 11,
      "t nodes flood forged chains, bogus certificates, and garbage bodies",
      [](std::uint64_t, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        for (std::int64_t i = 0; i < t; ++i) {
          plan.takeover(static_cast<NodeId>((i * 7 + 1) % n), 0, "flood");
        }
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = byzantine::AbParams::practical(n, t);
        return eval_ab(byzantine::run_ab_consensus_plan(params, ab_inputs(n, seed),
                                                        std::move(plan), options),
                       /*expect_max_rule=*/false);
      }));

  list.push_back(make_planned(
      "byz_midrun_takeover", "ab_consensus", "byzantine", 120, 11,
      "the adversary adaptively takes over t honest little nodes mid-Dolev-Strong "
      "(round 3): their earlier honest relays are already in flight",
      [](std::uint64_t, NodeId n, std::int64_t t) {
        const auto params = byzantine::AbParams::practical(n, t);
        sim::FaultPlan plan;
        for (std::int64_t i = 0; i < t; ++i) {
          plan.takeover(static_cast<NodeId>(i * 2 % params.little_count), 3, "silent");
        }
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = byzantine::AbParams::practical(n, t);
        return eval_ab(byzantine::run_ab_consensus_plan(params, ab_inputs(n, seed),
                                                        std::move(plan), options),
                       /*expect_max_rule=*/false);
      }));

  // ---- mixed regimes -------------------------------------------------------

  list.push_back(make_planned(
      "mixed_crash_omission_split", "few_crashes", "mixed", 200, 30,
      "one plan composes all crash-model-compatible fault classes: a third of t crashes "
      "in a burst, a third gets omission windows, plus an early partition",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        const auto params = ConsensusParams::practical(n, t);
        sim::FaultPlan plan;
        // Disjoint victim pools: crashes among [0, n/2), omissions among [n/2, n).
        plan.burst_crashes(n / 2, t / 3, 2, seed * 31 + 12);
        for (std::int64_t i = 0; i < t / 3; ++i) {
          plan.omission(static_cast<NodeId>(n / 2 + i * 3), 0, params.flood_rounds_little / 3,
                        /*send=*/true, /*recv=*/true);
        }
        plan.split_at(n - n / 10, n, 4, 10);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        return run_consensus(ConsensusParams::practical(n, t), false, std::move(plan), seed,
                             Expect{}, options);
      }));

  list.push_back(make_planned(
      "mixed_byz_crash_ab", "ab_consensus", "mixed", 120, 11,
      "authenticated consensus under a Byzantine + crash mixture: t/2 takeovers at "
      "round 0 and t/2 crashes during Dolev-Strong",
      [](std::uint64_t, NodeId n, std::int64_t t) {
        const auto params = byzantine::AbParams::practical(n, t);
        sim::FaultPlan plan;
        for (std::int64_t i = 0; i < t / 2; ++i) {
          plan.takeover(static_cast<NodeId>(i), 0, "flood");
        }
        for (std::int64_t i = 0; i < t - t / 2; ++i) {
          plan.crash_at(static_cast<NodeId>(params.little_count + i), 2 + i, 0.5);
        }
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = byzantine::AbParams::practical(n, t);
        return eval_ab(byzantine::run_ab_consensus_plan(params, ab_inputs(n, seed),
                                                        std::move(plan), options),
                       /*expect_max_rule=*/false);
      }));

  list.push_back(make_planned(
      "checkpoint_crash_boundary", "checkpointing", "crash", 150, 20,
      "checkpointing with a crash burst at the gossip/consensus boundary",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        const auto params = core::CheckpointParams::practical(n, t);
        const Round boundary =
            2 * params.gossip.phases * (params.gossip.probe_gamma + 3) + 3;
        sim::FaultPlan plan;
        plan.burst_crashes(n, t, boundary, seed * 31 + 13);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        (void)seed;
        const auto params = core::CheckpointParams::practical(n, t);
        return eval_checkpointing(core::run_checkpointing(
            params, sim::make_plan_injector(std::move(plan)), options));
      }));

  list.push_back(make_planned(
      "checkpoint_omission_gossip", "checkpointing", "omission", 150, 20,
      "checkpointing with t send-omission nodes during the gossip part",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        const auto params = core::CheckpointParams::practical(n, t);
        const Round gossip_end =
            2 * params.gossip.phases * (params.gossip.probe_gamma + 3) + 3;
        sim::FaultPlan plan;
        plan.random_omissions(n, t, 0, gossip_end, /*send=*/true, /*recv=*/false,
                              seed * 31 + 14);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        (void)seed;
        const auto params = core::CheckpointParams::practical(n, t);
        return eval_checkpointing(core::run_checkpointing(
            params, sim::make_plan_injector(std::move(plan)), options));
      }));

  // ---- timing faults: deterministic delays ---------------------------------

  // All min_flood entries share one protocol half (see run_min_flood); the
  // horizon is fixed at 12 rounds, so every verdict below is a statement
  // about whether the plan's delays beat or lose to the decide round.

  list.push_back(make_min_flood(
      "delay_fixed_pipe", "delay", 64, 8,
      "every message lags exactly 2 rounds (a uniform pipeline delay); all guarantees "
      "survive because the lag is far inside the horizon",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 15).delay_all(0, sim::kRoundForever, 2, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_uniform_jitter", "delay", 64, 8,
      "per-message uniform jitter in [0, 3] on every link for the whole run",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 16).delay_all(0, sim::kRoundForever, 0, 3);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_burst_window", "delay", 64, 8,
      "a 3-round congestion burst (lag 4) in rounds [3, 6) after the minimum has "
      "already flooded once",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 17).delay_all(3, 6, 4, 4);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_per_link_mesh", "delay", 64, 8,
      "40 random directed links each get an independent [1, 4] delay rule; undelayed "
      "links keep the flood fast",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 18);
        Rng rng(seed * 31 + 18);
        for (int i = 0; i < 40; ++i) {
          const auto a = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          const auto b = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          if (a == b) continue;
          plan.delay(a, b, 0, sim::kRoundForever, 1, 4);
        }
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_asym_halves", "delay", 64, 8,
      "asymmetric lag: everything the lower half sends is held 3 rounds (one wildcard-"
      "destination rule per source), the upper half sends at full speed",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 19);
        for (NodeId src = 0; src < n / 2; ++src) {
          plan.delay(src, kNoNode, 0, sim::kRoundForever, 3, 3);
        }
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_horizon_edge", "delay", 64, 8,
      "lag 9 against horizon 12: only the round-0 broadcasts arrive before the decide "
      "round, and they alone carry every input",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 20).delay_all(0, sim::kRoundForever, 9, 9);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_parallel_flood", "delay", 600, 75,
      "n=600 engages the parallel stepper with every message jittered in [1, 2]; the "
      "delay queue must stay bit-identical across thread counts",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 21).delay_all(0, sim::kRoundForever, 1, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_zero_noop", "delay", 64, 8,
      "an armed all-links rule whose lag is always 0: the delay plumbing is exercised "
      "but no message is ever parked",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 22).delay_all(0, sim::kRoundForever, 0, 0);
        return plan;
      }));

  // ---- timing faults: GST partial synchrony --------------------------------

  list.push_back(make_min_flood(
      "gst_early_stabilize", "gst", 64, 8,
      "adversarial delays until GST=4, then delta=2: pre-GST sends are readable by "
      "GST+delta, far inside the horizon",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 23).gst(4, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_late_stabilize", "gst", 64, 8,
      "GST=10 lands just before the horizon: every pre-GST send is readable by round "
      "12, the last round that still counts",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 24).gst(10, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_tight_delta", "gst", 64, 8,
      "delta=1 after GST=6: the network is bit-for-bit synchronous once stabilized",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 25).gst(6, 1);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_wide_delta", "gst", 64, 8,
      "GST=2 with a loose delta=6: stabilization comes early but every delivery may "
      "still lag up to 5 rounds",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 26).gst(2, 6);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_beyond_horizon", "gst", 64, 8,
      "GST=40 is after every node has decided: the whole run is adversarially "
      "asynchronous, so only termination and validity are promised",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 27).gst(40, 4);
        return plan;
      },
      Expect{/*termination=*/true, /*agreement=*/false, /*validity=*/true}));

  list.push_back(make_min_flood(
      "gst_decide_boundary", "gst", 64, 8,
      "GST lands exactly on the decide round: pre-GST sends may be readable one round "
      "too late, so agreement is not promised (termination + validity are)",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 28).gst(kMinFloodHorizon, 2);
        return plan;
      },
      Expect{/*termination=*/true, /*agreement=*/false, /*validity=*/true}));

  // ---- timing faults: early-deciding variant -------------------------------

  list.push_back(make_min_flood(
      "early_decide_fastpath", "delay", 64, 8,
      "early-deciding min-flood under [0, 1] jitter: nodes decide as soon as they have "
      "heard every peer, rounds ahead of the horizon",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 29).delay_all(0, sim::kRoundForever, 0, 1);
        return plan;
      },
      Expect{}, /*early_decide=*/true));

  list.push_back(make_min_flood(
      "early_decide_staggered", "delay", 64, 8,
      "early deciders must wait out 8 slow sources (lag 2 on everything they send) "
      "before the heard-from-everyone bar is met",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 30);
        for (NodeId src = 0; src < 8; ++src) {
          plan.delay(src, kNoNode, 0, sim::kRoundForever, 2, 2);
        }
        return plan;
      },
      Expect{}, /*early_decide=*/true));

  list.push_back(make_min_flood(
      "early_decide_gst", "gst", 64, 8,
      "early-deciding min-flood under GST=5, delta=2: decisions spread across rounds "
      "as peers stabilize at different times",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 31).gst(5, 2);
        return plan;
      },
      Expect{}, /*early_decide=*/true));

  // ---- timing faults composed with the classic fault classes ---------------

  list.push_back(make_min_flood(
      "delay_crash_burst", "mixed", 64, 8,
      "t crashes in a round-1 burst on top of a uniform lag of 1; the victims' round-0 "
      "broadcasts are already in flight and still deliver",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 32);
        plan.burst_crashes(n, t, 1, seed * 31 + 32);
        plan.delay_all(0, sim::kRoundForever, 1, 1);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_crash_staggered", "mixed", 64, 8,
      "one crash every 2 rounds from round 1 under [0, 2] jitter: relays are redundant "
      "in a full broadcast, so agreement survives every loss/lag interleaving",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 33);
        plan.staggered_crashes(n, t, 1, 2, seed * 31 + 33);
        plan.delay_all(0, sim::kRoundForever, 0, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_partition_overlap", "mixed", 64, 8,
      "a quarter of the nodes are split off for rounds [2, 6) while every message lags "
      "1: messages parked before the split outrun the partition",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 34);
        plan.split_at(n - n / 4, n, 2, 6);
        plan.delay_all(0, sim::kRoundForever, 1, 1);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_link_storm", "mixed", 64, 8,
      "30 random symmetric link cuts for the first 10 rounds plus [0, 2] jitter "
      "everywhere; the flood routes around both",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 35);
        Rng rng(seed * 31 + 35);
        for (int i = 0; i < 30; ++i) {
          const auto a = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          const auto b = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          if (a == b) continue;
          plan.cut_link(a, b, 0, 10);
        }
        plan.delay_all(0, sim::kRoundForever, 0, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_omission_mix", "mixed", 64, 8,
      "t send-omission nodes for rounds [0, 6) plus a uniform lag of 1: the silenced "
      "inputs surface at round 6 and still beat the horizon",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 36);
        plan.random_omissions(n, t, 0, 6, /*send=*/true, /*recv=*/false, seed * 31 + 36);
        plan.delay_all(0, sim::kRoundForever, 1, 1);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_crash_compose", "mixed", 64, 8,
      "a round-1 crash burst under GST=6, delta=2: every surviving round-0 broadcast "
      "is readable by round 8",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 37);
        plan.burst_crashes(n, t, 1, seed * 31 + 37);
        plan.gst(6, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_partition_compose", "mixed", 64, 8,
      "an eighth of the nodes split off for rounds [1, 4) under GST=5, delta=2",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 38);
        plan.split_at(n - n / 8, n, 1, 4);
        plan.gst(5, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_omission_compose", "mixed", 64, 8,
      "t send-omission nodes for rounds [0, 5) under GST=6, delta=2: the late inputs "
      "ride the stabilized network",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 39);
        plan.random_omissions(n, t, 0, 5, /*send=*/true, /*recv=*/false, seed * 31 + 39);
        plan.gst(6, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "delay_takeover_silence", "mixed", 64, 8,
      "t nodes go Byzantine-silent at round 2 while every message lags [1, 2]; their "
      "round-0 and round-1 broadcasts are already parked and still deliver",
      [](std::uint64_t seed, NodeId n, std::int64_t t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 40);
        for (std::int64_t i = 0; i < t; ++i) {
          plan.takeover(static_cast<NodeId>((i * 5 + 3) % n), 2, "silent");
        }
        plan.delay_all(0, sim::kRoundForever, 1, 2);
        return plan;
      }));

  list.push_back(make_min_flood(
      "gst_churn_everything", "mixed", 64, 8,
      "every fault class at once under GST=7, delta=2: 2 crashes, 2 send-omission "
      "windows, a cut link, and 2 silent takeovers",
      [](std::uint64_t seed, NodeId n, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 41);
        plan.gst(7, 2);
        plan.crash_at(n - 1, 1, 0.0).crash_at(n - 2, 1, 0.0);
        plan.omission(1, 0, 5, /*send=*/true, /*recv=*/false);
        plan.omission(2, 0, 5, /*send=*/true, /*recv=*/false);
        plan.cut_link(4, 5, 0, 8);
        plan.takeover(6, 3, "silent").takeover(7, 3, "silent");
        return plan;
      }));

  list.push_back(make_planned(
      "delay_gossip_window", "gossip", "delay", 110, 14,
      "the paper's gossip protocol under [0, 1] jitter on every link: empirically the "
      "two gossip conditions and rumor integrity survive one round of slack",
      [](std::uint64_t seed, NodeId, std::int64_t) {
        sim::FaultPlan plan;
        plan.with_seed(seed * 31 + 42).delay_all(0, sim::kRoundForever, 0, 1);
        return plan;
      },
      [](std::uint64_t seed, NodeId n, std::int64_t t, sim::FaultPlan plan,
         const core::RunOptions& options) {
        const auto params = core::GossipParams::practical(n, t);
        return eval_gossip(core::run_gossip(params, gossip_rumors(n, seed),
                                            sim::make_plan_injector(std::move(plan)),
                                            options));
      }));

  // ---- service plane (lft_serve's ordering slot) ---------------------------

  // Fault-free and seed-independent by design: this is the exact execution a
  // live lft_serve commit slot performs under the RoundDriver, registered so
  // LFTTRACE files recorded from live traffic replay against the engine
  // (`lft_forensics replay`). Adaptive-style entry (no plan half): the
  // scenario has no fault plan to rebuild or perturb.
  list.push_back(Scenario{
      "service_slot_commit", "few_crashes", "none", 7, 1,
      "one lft_serve commit slot: fault-free few-crashes consensus, all inputs 1 — "
      "the engine twin of a live RoundDriver slot execution",
      [](std::uint64_t seed, NodeId n, std::int64_t t, const core::RunOptions& options) {
        (void)seed;
        auto outcome = service::run_slot_on_engine(n, t, options);
        ScenarioResult result;
        result.ok = outcome.committed;
        result.detail = "committed=" + yn(outcome.committed);
        result.report = std::move(outcome.report);
        return result;
      },
      nullptr, nullptr});

  return list;
}

}  // namespace

std::int64_t Scenario::scaled_t(NodeId size) const {
  LFT_ASSERT(n > 0);
  return std::max<std::int64_t>(1, t * size / n);
}

std::uint64_t fingerprint(const sim::Report& report) {
  std::uint64_t h = 0x4c46545343454e41ULL;  // "LFTSCENA"
  h = hash_combine(h, static_cast<std::uint64_t>(report.rounds));
  h = hash_combine(h, report.completed ? 1 : 0);
  const auto& m = report.metrics;
  h = hash_combine(h, static_cast<std::uint64_t>(m.messages_total));
  h = hash_combine(h, static_cast<std::uint64_t>(m.bits_total));
  h = hash_combine(h, static_cast<std::uint64_t>(m.messages_honest));
  h = hash_combine(h, static_cast<std::uint64_t>(m.bits_honest));
  h = hash_combine(h, static_cast<std::uint64_t>(m.max_sends_per_node));
  h = hash_combine(h, static_cast<std::uint64_t>(m.fallback_pulls));
  h = hash_combine(h, static_cast<std::uint64_t>(m.rounds));
  h = hash_combine(h, static_cast<std::uint64_t>(m.peak_round_messages));
  for (const auto& s : report.nodes) {
    std::uint64_t bits = 0;
    bits |= s.crashed ? 1u : 0u;
    bits |= s.halted ? 2u : 0u;
    bits |= s.decided ? 4u : 0u;
    bits |= s.byzantine ? 8u : 0u;
    bits |= s.omission ? 16u : 0u;
    h = hash_combine(h, bits);
    h = hash_combine(h, static_cast<std::uint64_t>(s.crash_round));
    h = hash_combine(h, s.decision);
    h = hash_combine(h, static_cast<std::uint64_t>(s.sends));
  }
  return h;
}

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> registry = build_registry();
  return registry;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& s : all_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---- fleet sweeps ----------------------------------------------------------

std::vector<SweepItem> sweep(const std::string& name, std::span<const std::uint64_t> seeds,
                             std::span<const NodeId> sizes) {
  const Scenario* scenario = find_scenario(name);
  LFT_ASSERT_MSG(scenario != nullptr, "sweep: unknown scenario name");
  std::vector<SweepItem> items;
  items.reserve(seeds.size() * std::max<std::size_t>(1, sizes.size()));
  for (const std::uint64_t seed : seeds) {
    if (sizes.empty()) {
      items.push_back(SweepItem{scenario, seed, scenario->n, scenario->t});
      continue;
    }
    for (const NodeId size : sizes) {
      items.push_back(SweepItem{scenario, seed, size, scenario->scaled_t(size)});
    }
  }
  return items;
}

std::vector<SweepOutcome> run_sweep(sim::FleetRunner& fleet, std::span<const SweepItem> items) {
  // Jobs write into a shared slot array (one distinct slot each, so no
  // locking); shared ownership keeps the slots alive even if this frame
  // unwinds while queued jobs are still running.
  auto slots = std::make_shared<std::vector<SweepOutcome>>(items.size());
  std::vector<sim::FleetRunner::Handle> handles;
  handles.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const SweepItem item = items[i];
    // Filled before the job is queued: a job that throws (the runner
    // fulfills its handle with a default Report) still leaves a slot whose
    // item is valid and whose ok stays false.
    (*slots)[i].item = item;
    handles.push_back(fleet.submit(sim::FleetJobObs([item, slots, i](
                                       sim::EngineScratch* scratch, obs::Registry* telemetry) {
      const auto start = std::chrono::steady_clock::now();
      core::RunOptions options;
      options.scratch = scratch;
      options.telemetry = telemetry;
      ScenarioResult result = item.scenario->run_at(item.seed, item.n, item.t, options);
      SweepOutcome& out = (*slots)[i];
      out.ok = result.ok;
      out.detail = std::move(result.detail);
      out.fingerprint = fingerprint(result.report);
      out.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      return std::move(result.report);
    })));
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    (*slots)[i].report = handles[i].take();
  }
  return std::move(*slots);
}

}  // namespace lft::scenarios
