// Open-addressing hash set of 64-bit keys with linear probing and
// backward-shift deletion. Purpose-built for the hot edge-dedup loops in
// graph construction, where std::unordered_set's node allocations dominate
// the profile. Keys are hashed through mix64; the all-ones key is reserved
// as the empty sentinel (edge keys pack two non-negative 32-bit node ids, so
// the sentinel can never collide with a real key).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace lft {

class FlatSet64 {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  FlatSet64() = default;
  explicit FlatSet64(std::size_t expected) { reserve(expected); }

  void reserve(std::size_t expected) {
    std::size_t wanted = 16;
    // Size for a max load factor of 1/2.
    while (wanted < expected * 2) wanted *= 2;
    if (wanted > slots_.size()) rehash(wanted);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    if (slots_.empty()) return false;
    for (std::size_t i = slot_of(key);; i = (i + 1) & mask_) {
      if (slots_[i] == key) return true;
      if (slots_[i] == kEmpty) return false;
    }
  }

  /// Returns true iff the key was newly inserted.
  bool insert(std::uint64_t key) {
    LFT_ASSERT(key != kEmpty);
    if (slots_.size() < 2 * (size_ + 1)) rehash(slots_.empty() ? 16 : slots_.size() * 2);
    for (std::size_t i = slot_of(key);; i = (i + 1) & mask_) {
      if (slots_[i] == key) return false;
      if (slots_[i] == kEmpty) {
        slots_[i] = key;
        ++size_;
        return true;
      }
    }
  }

  /// Returns true iff the key was present. Backward-shift deletion keeps
  /// probe chains intact without tombstones.
  bool erase(std::uint64_t key) noexcept {
    if (slots_.empty()) return false;
    std::size_t i = slot_of(key);
    while (slots_[i] != key) {
      if (slots_[i] == kEmpty) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = kEmpty;
    --size_;
    for (std::size_t j = (i + 1) & mask_; slots_[j] != kEmpty; j = (j + 1) & mask_) {
      const std::size_t ideal = slot_of(slots_[j]);
      // The element at j may fill the hole at i iff i lies on j's probe path,
      // i.e. within the cyclic interval [ideal, j].
      if (((i - ideal) & mask_) <= ((j - ideal) & mask_)) {
        slots_[i] = slots_[j];
        slots_[j] = kEmpty;
        i = j;
      }
    }
    return true;
  }

  void clear() noexcept {
    for (auto& s : slots_) s = kEmpty;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key)) & mask_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_capacity, kEmpty);
    mask_ = new_capacity - 1;
    for (const std::uint64_t key : old) {
      if (key == kEmpty) continue;
      for (std::size_t i = slot_of(key);; i = (i + 1) & mask_) {
        if (slots_[i] == kEmpty) {
          slots_[i] = key;
          break;
        }
      }
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lft
