// Core identifier and round types shared across the library.
#pragma once

#include <cstdint>

namespace lft {

/// Identifier of a node in a network of n nodes. Nodes are numbered 0..n-1
/// internally; the paper numbers them 1..n, which only shifts "little node"
/// boundaries by one (a node is *little* iff id < 5t).
using NodeId = std::int32_t;

/// A synchronous round number, starting from 0.
using Round = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

}  // namespace lft
