// Integer math helpers: logs, primality, and modular arithmetic. The modular
// kit (powmod, inverse, Legendre symbol, sqrt mod p) supports the
// Lubotzky-Phillips-Sarnak Ramanujan graph construction in src/graph/lps.*.
#pragma once

#include <cstdint>

namespace lft {

/// floor(log2(x)) for x >= 1.
[[nodiscard]] int floor_log2(std::uint64_t x) noexcept;

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
[[nodiscard]] int ceil_log2(std::uint64_t x) noexcept;

/// The paper's "lg": ceil(log2(x)) but at least 1, matching its use as a
/// round count (e.g. local probing runs 2 + lg n rounds).
[[nodiscard]] int lg_rounds(std::uint64_t x) noexcept;

/// Deterministic primality test (Miller-Rabin with a base set that is exact
/// for all 64-bit integers).
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n >= 2).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n) noexcept;

/// (a * b) mod m without overflow.
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept;

/// (a ^ e) mod m.
[[nodiscard]] std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) noexcept;

/// Modular inverse of a mod p for prime p, a != 0 (mod p).
[[nodiscard]] std::uint64_t invmod(std::uint64_t a, std::uint64_t p) noexcept;

/// Legendre symbol (a/p) for odd prime p: 1 if a is a nonzero quadratic
/// residue, -1 if a non-residue, 0 if a == 0 (mod p).
[[nodiscard]] int legendre(std::uint64_t a, std::uint64_t p) noexcept;

/// Square root of a modulo odd prime p (Tonelli-Shanks). Requires
/// legendre(a, p) != -1. Returns the smaller of the two roots.
[[nodiscard]] std::uint64_t sqrtmod(std::uint64_t a, std::uint64_t p) noexcept;

}  // namespace lft
