#include "common/numa.hpp"

#include <cstdlib>
#include <fstream>
#include <string>

namespace lft {
namespace {

// Parses a kernel cpulist ("0-3,8,10-11") into cpu ids appended to `out`.
// Returns false on malformed input (then the whole discovery is abandoned —
// a partially mapped topology is worse than none).
bool parse_cpulist(const std::string& list, int node, std::vector<int>& out_node_of_cpu) {
  std::size_t i = 0;
  const auto read_int = [&](int& value) {
    if (i >= list.size() || list[i] < '0' || list[i] > '9') return false;
    long v = 0;
    while (i < list.size() && list[i] >= '0' && list[i] <= '9') {
      v = v * 10 + (list[i] - '0');
      if (v > 1 << 20) return false;  // absurd cpu id: refuse
      ++i;
    }
    value = static_cast<int>(v);
    return true;
  };
  while (i < list.size()) {
    int lo = 0;
    if (!read_int(lo)) return false;
    int hi = lo;
    if (i < list.size() && list[i] == '-') {
      ++i;
      if (!read_int(hi) || hi < lo) return false;
    }
    for (int cpu = lo; cpu <= hi; ++cpu) {
      if (static_cast<std::size_t>(cpu) >= out_node_of_cpu.size()) {
        out_node_of_cpu.resize(static_cast<std::size_t>(cpu) + 1, -1);
      }
      out_node_of_cpu[static_cast<std::size_t>(cpu)] = node;
    }
    if (i < list.size()) {
      if (list[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

NumaTopology discover() {
  NumaTopology topo;
  const char* env = std::getenv("LFT_NUMA");
  if (env != nullptr && env[0] == '0') return topo;  // forced single-node
#if defined(__linux__)
  std::vector<int> node_of_cpu;
  int nodes = 0;
  // Populated nodes are dense in practice; scan node0..node255 and stop at
  // the first gap. A host with holes in its node numbering just loses the
  // nodes past the hole — placement is only a hint.
  for (int node = 0; node < 256; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) + "/cpulist");
    if (!f.is_open()) break;
    std::string list;
    std::getline(f, list);
    if (!list.empty() && !parse_cpulist(list, node, node_of_cpu)) return topo;
    ++nodes;
  }
  if (nodes > 1) {
    topo.nodes = nodes;
    topo.node_of_cpu = std::move(node_of_cpu);
  }
#endif
  return topo;
}

}  // namespace

std::vector<int> NumaTopology::cpus_of_node(int node) const {
  std::vector<int> cpus;
  for (std::size_t cpu = 0; cpu < node_of_cpu.size(); ++cpu) {
    if (node_of_cpu[cpu] == node) cpus.push_back(static_cast<int>(cpu));
  }
  return cpus;
}

const NumaTopology& numa_topology() {
  static const NumaTopology topo = discover();
  return topo;
}

}  // namespace lft
