// Tier detection, dispatch, and the scalar reference kernels. The scalar
// implementations here are the semantics: the AVX2/AVX-512 TUs restate the
// same exact integer computations on wider lanes and are held bit-identical
// to these loops by tests/test_simd.cpp.
#include "common/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace lft::simd {

namespace {

// ---- scalar reference kernels ----------------------------------------------

void histogram_u32_scalar(const std::uint32_t* keys, std::size_t n,
                          std::uint32_t* counts) {
  for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
}

std::uint32_t exclusive_scan_u32_scalar(std::uint32_t* a, std::size_t n) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t count = a[i];
    a[i] = sum;
    sum += count;
  }
  return sum;
}

void scatter_records40_scalar(const std::byte* src, std::size_t n,
                              const std::uint32_t* keys, std::uint32_t* next_slot,
                              std::byte* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = next_slot[keys[i]]++;
    std::memcpy(dst + std::size_t{40} * slot, src + std::size_t{40} * i, 40);
  }
}

std::uint32_t build_keys40_scalar(const std::byte* records, std::size_t n,
                                  unsigned tag_bits, std::uint32_t* keys) {
  std::uint32_t max_tag = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // One 8-byte load covers {u32 to @4, u32 tag @8}.
    std::uint64_t to_tag;
    std::memcpy(&to_tag, records + std::size_t{40} * i + 4, 8);
    const auto to = static_cast<std::uint32_t>(to_tag);
    const auto tag = static_cast<std::uint32_t>(to_tag >> 32);
    if (tag > max_tag) max_tag = tag;
    keys[i] = (to << tag_bits) | tag;
  }
  return max_tag;
}

std::uint64_t xor_mul_words_scalar(std::uint64_t seed, const std::byte* bytes,
                                   std::size_t len, std::uint64_t salt0) {
  std::uint64_t acc = seed;
  std::uint64_t salt = salt0;
  std::size_t left = len;
  const std::byte* p = bytes;
  while (left >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    acc ^= word * salt;
    salt += 2;
    p += 8;
    left -= 8;
  }
  if (left != 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, left);
    acc ^= word * salt;  // tail is zero-padded; callers disambiguate by length
  }
  return acc;
}

std::uint64_t sum_headers40_scalar(const std::byte* records, std::size_t n) {
  using namespace detail;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::byte* r = records + std::size_t{40} * i;
    std::uint64_t from_to;   // little-endian: from | to << 32
    std::uint64_t tag_len;   // little-endian: tag | body_len << 32
    std::uint64_t value;
    std::uint64_t bits;
    std::memcpy(&from_to, r, 8);
    std::memcpy(&tag_len, r + 8, 8);
    std::memcpy(&value, r + 16, 8);
    std::memcpy(&bits, r + 24, 8);
    // digest_header wants (from << 32) | to and (tag << 32) | body_len:
    // a 32-bit rotate of the loaded words.
    const std::uint64_t addr = (from_to << 32) | (from_to >> 32);
    const std::uint64_t tagw = (tag_len << 32) | (tag_len >> 32);
    std::uint64_t w = addr * kMulAddr;
    w ^= value * kMulValue;
    w ^= tagw * kMulTag;
    w ^= bits * kMulBits;
    sum += w;
  }
  return sum;
}

constexpr detail::KernelTable kScalarKernels = {
    histogram_u32_scalar,    exclusive_scan_u32_scalar, scatter_records40_scalar,
    build_keys40_scalar,     xor_mul_words_scalar,      sum_headers40_scalar,
};

// ---- dispatch --------------------------------------------------------------

const detail::KernelTable* table_for(Tier tier) noexcept {
  switch (tier) {
    case Tier::kAvx512:
      if (const auto* t = detail::avx512_kernels()) return t;
      [[fallthrough]];
    case Tier::kAvx2:
      if (const auto* t = detail::avx2_kernels()) return t;
      [[fallthrough]];
    default:
      return &kScalarKernels;
  }
}

bool cpu_supports(Tier tier) noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (tier) {
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512cd") != 0;
    default:
      return true;
  }
#else
  return tier == Tier::kScalar;
#endif
}

Tier detect_tier_uncached() noexcept {
  if (tier_compiled(Tier::kAvx512) && cpu_supports(Tier::kAvx512)) return Tier::kAvx512;
  if (tier_compiled(Tier::kAvx2) && cpu_supports(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
    default:
      return "auto";
  }
}

std::optional<Tier> parse_tier(std::string_view name) noexcept {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  if (name == "auto") return Tier::kAuto;
  return std::nullopt;
}

bool tier_compiled(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return detail::avx2_kernels() != nullptr;
    case Tier::kAvx512:
      return detail::avx512_kernels() != nullptr;
    default:
      return false;
  }
}

Tier detect_tier() noexcept {
  static const Tier detected = detect_tier_uncached();
  return detected;
}

Tier apply_env_override(const char* env_value, Tier detected) noexcept {
  if (env_value == nullptr || *env_value == '\0') return detected;
  const auto parsed = parse_tier(env_value);
  if (!parsed.has_value() || *parsed == Tier::kAuto) return detected;
  return *parsed < detected ? *parsed : detected;
}

Tier default_tier() noexcept {
  static const Tier tier = apply_env_override(std::getenv("LFT_SIMD"), detect_tier());
  return tier;
}

Tier resolve_tier(Tier request) noexcept {
  if (request == Tier::kAuto) return default_tier();
  const Tier detected = detect_tier();
  return request < detected ? request : detected;
}

void histogram_u32(Tier tier, const std::uint32_t* keys, std::size_t n,
                   std::uint32_t* counts) {
  table_for(resolve_tier(tier))->histogram_u32(keys, n, counts);
}

std::uint32_t exclusive_scan_u32(Tier tier, std::uint32_t* a, std::size_t n) {
  return table_for(resolve_tier(tier))->exclusive_scan_u32(a, n);
}

void scatter_records40(Tier tier, const std::byte* src, std::size_t n,
                       const std::uint32_t* keys, std::uint32_t* next_slot,
                       std::byte* dst) {
  table_for(resolve_tier(tier))->scatter_records40(src, n, keys, next_slot, dst);
}

std::uint32_t build_keys40(Tier tier, const std::byte* records, std::size_t n,
                           unsigned tag_bits, std::uint32_t* keys) {
  return table_for(resolve_tier(tier))->build_keys40(records, n, tag_bits, keys);
}

std::uint64_t xor_mul_words(Tier tier, std::uint64_t seed, const std::byte* bytes,
                            std::size_t len, std::uint64_t salt0) {
  return table_for(resolve_tier(tier))->xor_mul_words(seed, bytes, len, salt0);
}

std::uint64_t sum_headers40(Tier tier, const std::byte* records, std::size_t n) {
  return table_for(resolve_tier(tier))->sum_headers40(records, n);
}

}  // namespace lft::simd
