// Deterministic pseudo-random generators. The library never uses
// std::random_device or wall-clock seeds: every randomized artifact is a pure
// function of its structured seed, so all nodes of a simulated system derive
// identical overlay graphs (a requirement of the paper's deterministic model)
// and every run is bit-reproducible.
#pragma once

#include <cstdint>
#include <span>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace lft {

/// SplitMix64: tiny stream generator, used to seed Xoshiro and for cheap
/// one-off draws.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's general-purpose PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform draw in [0, bound), bound > 0. Unbiased (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform draw in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Builds a seed from a purpose tag and structured parameters, so different
/// uses of randomness never collide.
[[nodiscard]] std::uint64_t make_seed(std::uint64_t purpose, std::uint64_t a = 0,
                                      std::uint64_t b = 0, std::uint64_t c = 0) noexcept;

}  // namespace lft
