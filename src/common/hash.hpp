// Deterministic 64-bit mixing and hashing. Used for seeding PRNGs from
// structured inputs and as the core of the simulated signature scheme.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace lft {

/// SplitMix64 finalizer: a strong 64-bit mixing function (Stafford variant 13).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one, order-sensitive.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a over a byte span, then strengthened through mix64.
[[nodiscard]] std::uint64_t hash_bytes(std::span<const std::byte> bytes) noexcept;

/// Hashes a sequence of 64-bit words (order-sensitive).
[[nodiscard]] std::uint64_t hash_words(std::span<const std::uint64_t> words) noexcept;

}  // namespace lft
