// Transparent huge-page advice for large hot buffers. The delivery sweep
// scatters 40-byte records at random offsets into arenas tens to hundreds of
// megabytes large; with 4 KiB pages that walk thrashes the DTLB, and backing
// the arenas with 2 MiB pages recovers most of it. This header is advice
// only: madvise(MADV_HUGEPAGE) asks the kernel to use (or collapse to) huge
// pages where it can — allocation never fails because of it, non-Linux
// builds compile to a no-op, and LFT_HUGEPAGES=0 switches it off at runtime.
// Page size never changes observable behavior, only speed, so Reports stay
// bit-identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace lft {

/// Runtime kill switch: true unless the environment sets LFT_HUGEPAGES=0.
/// Latched on first use (the engine consults it on the delivery path).
[[nodiscard]] inline bool hugepages_enabled() noexcept {
  static const bool enabled = [] {
    const char* env = std::getenv("LFT_HUGEPAGES");
    return env == nullptr || env[0] != '0';
  }();
  return enabled;
}

/// Minimum buffer size worth advising: below ~2 huge pages the kernel has
/// nothing to collapse and the syscall is pure overhead.
inline constexpr std::size_t kHugeAdviseMinBytes = std::size_t{4} << 20;

/// Advises the kernel to back `[ptr, ptr + bytes)` with transparent huge
/// pages. The range is shrunk inward to 4 KiB page boundaries (madvise
/// requires aligned addresses, and the buffer may start mid-page inside a
/// malloc'd block); failures — THP disabled system-wide, old kernels — are
/// deliberately ignored. Safe to call repeatedly on the same region: the
/// per-VMA flag is idempotent and the syscall costs microseconds against
/// the multi-millisecond rounds that reach the size gate.
inline void advise_hugepages(void* ptr, std::size_t bytes) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (ptr == nullptr || bytes < kHugeAdviseMinBytes || !hugepages_enabled()) return;
  constexpr std::uintptr_t kPage = 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t begin = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t end = (addr + bytes) & ~(kPage - 1);
  if (end > begin) {
    (void)::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE);
  }
#else
  (void)ptr;
  (void)bytes;
#endif
}

}  // namespace lft
