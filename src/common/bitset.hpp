// A dynamic fixed-size bitset used for extant sets (gossip/checkpointing) and
// vectorized consensus. std::vector<bool> lacks word-level OR and popcount;
// this type provides them and a compact serialization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace lft {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size, bool value = false);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    LFT_ASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value = true) noexcept {
    LFT_ASSERT(i < size_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void reset() noexcept;
  void set_all() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// this |= other. Sizes must match. Returns true iff any bit changed.
  bool or_assign(const DynamicBitset& other) noexcept;

  /// this &= other. Sizes must match.
  void and_assign(const DynamicBitset& other) noexcept;

  /// Bits set in this but not in other (set difference), as a new bitset.
  [[nodiscard]] DynamicBitset minus(const DynamicBitset& other) const;

  /// True iff every bit set in this is also set in other.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const noexcept;

  /// Index of the first set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the first set bit strictly after i, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// Calls fn(i) for every set bit, in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Indices of all set bits.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Raw word access for serialization.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }
  std::vector<std::uint64_t>& mutable_words() noexcept { return words_; }

 private:
  void clear_padding() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lft
