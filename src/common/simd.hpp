// Runtime-dispatched SIMD layer for the message-plane hot kernels.
//
// The engine's delivery sweep and the forensics digest accumulators are
// counting/permutation/fold kernels over flat arrays — exactly the shapes
// wide vectors like. This header exposes them behind a *tier* abstraction:
//
//   kScalar   portable reference implementation (always compiled, always
//             available); the other tiers are verified against it bit for
//             bit and exist purely for speed.
//   kAvx2     256-bit x86 path (compiled into simd_avx2.cpp with -mavx2).
//   kAvx512   512-bit x86 path (simd_avx512.cpp with -mavx512{f,bw,dq,vl,cd}).
//
// Tier selection is runtime CPUID dispatch: detect_tier() returns the best
// tier both compiled in and supported by the executing CPU, default_tier()
// additionally honors the LFT_SIMD=scalar|avx2|avx512 environment override,
// and EngineConfig::simd / core::RunOptions::simd force a tier per engine
// (clamped to what the machine supports, so a forced kAvx512 degrades to the
// best available tier instead of faulting).
//
// Determinism contract: every kernel is an exact integer computation
// (wrapping adds/multiplies, XOR, permutation), so all tiers return
// bit-identical results on all inputs — scalar is the reference
// implementation, not a fallback stub, and tests/test_simd.cpp holds each
// tier to it at lane-boundary sizes. Nothing here is approximate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lft::simd {

/// Dispatch tiers, ordered by capability. kAuto is a request value only
/// (EngineConfig/RunOptions default): resolve_tier maps it to default_tier().
enum class Tier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kAuto = 255 };

/// "scalar" / "avx2" / "avx512" / "auto".
[[nodiscard]] const char* tier_name(Tier tier) noexcept;
/// Parses a tier name (the LFT_SIMD grammar); nullopt for anything else.
[[nodiscard]] std::optional<Tier> parse_tier(std::string_view name) noexcept;

/// True iff this binary carries an implementation of `tier` (kScalar always;
/// the x86 tiers only when the compiler accepted their ISA flags).
[[nodiscard]] bool tier_compiled(Tier tier) noexcept;

/// Best tier that is both compiled in and supported by the executing CPU
/// (CPUID probe, cached after the first call).
[[nodiscard]] Tier detect_tier() noexcept;

/// detect_tier() clamped by the LFT_SIMD environment override (cached).
/// LFT_SIMD=scalar|avx2|avx512 lowers (never raises) the detected tier;
/// unset, empty, or unparsable values leave detection untouched.
[[nodiscard]] Tier default_tier() noexcept;

/// Maps a request to the tier that will actually run: kAuto -> default_tier,
/// anything else -> min(request, detect_tier()). Never returns kAuto.
[[nodiscard]] Tier resolve_tier(Tier request) noexcept;

/// Pure helper behind default_tier (exposed for tests): applies an LFT_SIMD
/// value (may be nullptr/empty) to a detected tier.
[[nodiscard]] Tier apply_env_override(const char* env_value, Tier detected) noexcept;

// ---- kernels ---------------------------------------------------------------
//
// The 40-byte record layout several kernels assume is sim::Message:
//   {u32 from @0, u32 to @4, u32 tag @8, u32 body_len @12,
//    u64 value @16, u64 bits @24, ptr body @32}
// sim/ static_asserts the offsets; common/ keeps only the byte-level shape
// so the kernels stay free of a sim dependency.

/// counts[keys[i]] += 1 for i in [0, n). Caller guarantees keys < the counts
/// extent. Exact (integer increments), so tiers agree bit for bit.
void histogram_u32(Tier tier, const std::uint32_t* keys, std::size_t n,
                   std::uint32_t* counts);

/// In-place exclusive prefix sum over a[0, n); returns the total (wrapping
/// u32 arithmetic, same as the scalar loop).
std::uint32_t exclusive_scan_u32(Tier tier, std::uint32_t* a, std::size_t n);

/// Stable counting-sort scatter of 40-byte records: record i moves to slot
/// next_slot[keys[i]]++ of dst (slots are record indices, dst byte offset =
/// 40 * slot). `next_slot` must hold the exclusive prefix sums of the key
/// histogram; on return it holds the end offset of each key's run. src and
/// dst must not overlap.
void scatter_records40(Tier tier, const std::byte* src, std::size_t n,
                       const std::uint32_t* keys, std::uint32_t* next_slot,
                       std::byte* dst);

/// Builds the delivery-sweep sort key (to << tag_bits) | tag for each 40-byte
/// record and returns the maximum tag seen (0 for n == 0). Keys are valid
/// iff the returned max tag fits tag_bits; the engine retries with wider
/// tag_bits (or falls back to a comparison sort) when it does not.
std::uint32_t build_keys40(Tier tier, const std::byte* records, std::size_t n,
                           unsigned tag_bits, std::uint32_t* keys);

/// XOR-of-salted-products fold over 8-byte little-endian words:
///   acc = seed; acc ^= word_j * (salt0 + 2j)  for each word, with a
/// zero-padded tail word when len is not a multiple of 8. This is the body
/// digest kernel behind sim::digest_body (wrapping multiplies + XOR, so
/// lane order never shows in the result).
std::uint64_t xor_mul_words(Tier tier, std::uint64_t seed, const std::byte* bytes,
                            std::size_t len, std::uint64_t salt0);

/// Wrapping sum of per-record header digests (sim::digest_header) over n
/// 40-byte records — the batch form of the TraceSink header-sum accumulator.
std::uint64_t sum_headers40(Tier tier, const std::byte* records, std::size_t n);

namespace detail {

// Odd multipliers for the digest kernels (golden ratio + the SplitMix64 /
// Murmur finalizer constants — any set of distinct odd 64-bit constants with
// good bit dispersion works). Canonical home: sim/trace.hpp aliases these so
// the scalar digest formulas and the SIMD kernels share one definition.
inline constexpr std::uint64_t kMulChain = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kMulAddr = 0xbf58476d1ce4e5b9ULL;
inline constexpr std::uint64_t kMulValue = 0x94d049bb133111ebULL;
inline constexpr std::uint64_t kMulTag = 0x2545f4914f6cdd1dULL;
inline constexpr std::uint64_t kMulBits = 0xff51afd7ed558ccdULL;
inline constexpr std::uint64_t kMulBody = 0xc4ceb9fe1a85ec53ULL;

/// Per-tier kernel table. The x86 TUs export theirs through avx2_kernels() /
/// avx512_kernels() (nullptr when not compiled in); dispatch selects by tier.
struct KernelTable {
  void (*histogram_u32)(const std::uint32_t*, std::size_t, std::uint32_t*);
  std::uint32_t (*exclusive_scan_u32)(std::uint32_t*, std::size_t);
  void (*scatter_records40)(const std::byte*, std::size_t, const std::uint32_t*,
                            std::uint32_t*, std::byte*);
  std::uint32_t (*build_keys40)(const std::byte*, std::size_t, unsigned,
                                std::uint32_t*);
  std::uint64_t (*xor_mul_words)(std::uint64_t, const std::byte*, std::size_t,
                                 std::uint64_t);
  std::uint64_t (*sum_headers40)(const std::byte*, std::size_t);
};
[[nodiscard]] const KernelTable* avx2_kernels() noexcept;    // simd_avx2.cpp
[[nodiscard]] const KernelTable* avx512_kernels() noexcept;  // simd_avx512.cpp
}  // namespace detail

}  // namespace lft::simd
