// AVX-512 tier of the SIMD message-plane kernels (see common/simd.hpp).
// Compiled with -mavx512{f,bw,dq,vl,cd} when the compiler supports them;
// otherwise degrades to an empty table and dispatch clamps to AVX2/scalar.
// Same determinism contract as the AVX2 TU: exact integer restatements of
// the scalar reference kernels, bit-identical on all inputs.
#include "common/simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512CD__) && defined(__AVX512DQ__) && \
    defined(__AVX512BW__) && defined(__AVX512VL__) && defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

// GCC's unmasked gather/reduce intrinsics seed their result from
// _mm512_undefined_epi32() in avx512fintrin.h, which -Wall flags as
// (maybe-)uninitialized at every inline expansion site. The value is fully
// overwritten (mask = all lanes); silence the header noise for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace lft::simd {
namespace {

// SWAR popcount of each 32-bit lane (conflict masks only use the low 16
// bits). Avoids requiring AVX512_VPOPCNTDQ on top of the base feature set.
inline __m512i popcnt_epi32_swar(__m512i v) {
  const __m512i m1 = _mm512_set1_epi32(0x55555555);
  const __m512i m2 = _mm512_set1_epi32(0x33333333);
  const __m512i m4 = _mm512_set1_epi32(0x0F0F0F0F);
  v = _mm512_sub_epi32(v, _mm512_and_si512(_mm512_srli_epi32(v, 1), m1));
  v = _mm512_add_epi32(_mm512_and_si512(v, m2),
                       _mm512_and_si512(_mm512_srli_epi32(v, 2), m2));
  v = _mm512_and_si512(_mm512_add_epi32(v, _mm512_srli_epi32(v, 4)), m4);
  return _mm512_srli_epi32(_mm512_mullo_epi32(v, _mm512_set1_epi32(0x01010101)), 24);
}

void histogram_u32_avx512(const std::uint32_t* keys, std::size_t n,
                          std::uint32_t* counts) {
  // Conflict-detected vector histogram: per 16-key block, gather the current
  // counts, add each lane's duplicate rank + 1, and scatter only the last
  // occurrence of each distinct key (vpconflictd gives, per lane, the mask
  // of earlier lanes holding the same key; the OR of those masks marks lanes
  // that have a later duplicate). Exact integer adds, so bit-identical to
  // the scalar loop.
  const __m512i ones = _mm512_set1_epi32(1);
  std::size_t i = 0;
  auto* counts_i = reinterpret_cast<int*>(counts);
  for (; i + 16 <= n; i += 16) {
    const __m512i k =
        _mm512_loadu_si512(reinterpret_cast<const void*>(keys + i));
    const __m512i conf = _mm512_conflict_epi32(k);
    const __m512i prior = popcnt_epi32_swar(conf);
    const __m512i cur = _mm512_i32gather_epi32(k, counts_i, 4);
    const __m512i updated =
        _mm512_add_epi32(cur, _mm512_add_epi32(prior, ones));
    // OR of the conflict masks across lanes = lanes that have a later
    // duplicate. (Explicit reduction: GCC's _mm512_reduce_or_epi32 trips
    // -Wmaybe-uninitialized via _mm256_undefined_si256 in its header.)
    const __m256i or256 =
        _mm256_or_si256(_mm512_castsi512_si256(conf),
                        _mm512_extracti64x4_epi64(conf, 1));
    __m128i or128 = _mm_or_si128(_mm256_castsi256_si128(or256),
                                 _mm256_extracti128_si256(or256, 1));
    or128 = _mm_or_si128(or128, _mm_shuffle_epi32(or128, 0x4E));
    or128 = _mm_or_si128(or128, _mm_shuffle_epi32(or128, 0xB1));
    const auto later = static_cast<std::uint32_t>(_mm_cvtsi128_si32(or128));
    const __mmask16 is_last = static_cast<__mmask16>(~later & 0xFFFFu);
    _mm512_mask_i32scatter_epi32(counts_i, is_last, k, updated, 4);
  }
  for (; i < n; ++i) ++counts[keys[i]];
}

std::uint32_t exclusive_scan_u32_avx512(std::uint32_t* a, std::size_t n) {
  std::uint32_t running = 0;
  std::size_t i = 0;
  const __m512i idx1 = _mm512_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14);
  const __m512i idx2 = _mm512_setr_epi32(0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13);
  const __m512i idx4 = _mm512_setr_epi32(0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11);
  const __m512i idx8 = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7);
  for (; i + 16 <= n; i += 16) {
    __m512i x = _mm512_loadu_si512(reinterpret_cast<const void*>(a + i));
    // Inclusive scan via log2(16) shifted adds (lanes below the shift get 0).
    x = _mm512_add_epi32(x, _mm512_maskz_permutexvar_epi32(0xFFFE, idx1, x));
    x = _mm512_add_epi32(x, _mm512_maskz_permutexvar_epi32(0xFFFC, idx2, x));
    x = _mm512_add_epi32(x, _mm512_maskz_permutexvar_epi32(0xFFF0, idx4, x));
    x = _mm512_add_epi32(x, _mm512_maskz_permutexvar_epi32(0xFF00, idx8, x));
    // Exclusive = running + (inclusive shifted right one lane).
    const __m512i shifted = _mm512_maskz_permutexvar_epi32(0xFFFE, idx1, x);
    const __m512i out =
        _mm512_add_epi32(shifted, _mm512_set1_epi32(static_cast<int>(running)));
    _mm512_storeu_si512(reinterpret_cast<void*>(a + i), out);
    running += static_cast<std::uint32_t>(_mm_extract_epi32(
        _mm512_extracti32x4_epi32(x, 3), 3));  // inclusive total of the block
  }
  for (; i < n; ++i) {
    const std::uint32_t count = a[i];
    a[i] = running;
    running += count;
  }
  return running;
}

void scatter_records40_avx512(const std::byte* src, std::size_t n,
                              const std::uint32_t* keys,
                              std::uint32_t* next_slot, std::byte* dst) {
  // One masked 40-byte (five u64 lanes) load/store per record. Record
  // destinations are effectively random across a buffer far larger than the
  // caches on big rounds, and the hardware prefetcher cannot track one
  // stream per (receiver, tag) run — without help every store is a demand
  // RFO at memory latency. Prefetching the destination of record i + kAhead
  // with write intent hides that: the cursor value read early is exact
  // unless the same key repeats inside the window (then it is a near miss
  // that still warms the line's neighborhood), and the lead is long enough
  // to cover DRAM. Prefetch never changes stored bytes, so tiers stay bit
  // for bit identical.
  constexpr __mmask8 k40 = 0x1F;
  constexpr std::size_t kAhead = 24;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      _mm_prefetch(dst + std::size_t{40} * next_slot[keys[i + kAhead]],
                   _MM_HINT_ET0);
    }
    const std::uint32_t slot = next_slot[keys[i]]++;
    const __m512i rec =
        _mm512_maskz_loadu_epi64(k40, src + std::size_t{40} * i);
    _mm512_mask_storeu_epi64(dst + std::size_t{40} * slot, k40, rec);
  }
}

std::uint32_t build_keys40_avx512(const std::byte* records, std::size_t n,
                                  unsigned tag_bits, std::uint32_t* keys) {
  const __m512i stride =
      _mm512_setr_epi64(0, 40, 80, 120, 160, 200, 240, 280);
  const __m512i lo32 = _mm512_set1_epi64(0xFFFFFFFFll);
  __m512i max_tag_v = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const void* base = records + std::size_t{40} * i + 4;
    const __m512i to_tag = _mm512_i64gather_epi64(stride, base, 1);
    const __m512i to = _mm512_and_si512(to_tag, lo32);
    const __m512i tag = _mm512_srli_epi64(to_tag, 32);
    max_tag_v = _mm512_max_epu32(max_tag_v, tag);  // upper 32s are zero
    const __m512i key = _mm512_or_si512(
        _mm512_slli_epi64(to, static_cast<int>(tag_bits)), tag);
    // Each key fits u32: narrow the eight u64 lanes and store 32 bytes.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                        _mm512_cvtepi64_epi32(key));
  }
  std::uint32_t max_tag = _mm512_reduce_max_epu32(max_tag_v);
  for (; i < n; ++i) {
    std::uint64_t to_tag;
    std::memcpy(&to_tag, records + std::size_t{40} * i + 4, 8);
    const auto to = static_cast<std::uint32_t>(to_tag);
    const auto tag = static_cast<std::uint32_t>(to_tag >> 32);
    if (tag > max_tag) max_tag = tag;
    keys[i] = (to << tag_bits) | tag;
  }
  return max_tag;
}

std::uint64_t xor_mul_words_avx512(std::uint64_t seed, const std::byte* bytes,
                                   std::size_t len, std::uint64_t salt0) {
  std::uint64_t acc = seed;
  std::uint64_t salt = salt0;
  std::size_t left = len;
  const std::byte* p = bytes;
  if (left >= 64) {
    __m512i accv = _mm512_setzero_si512();
    __m512i saltv = _mm512_setr_epi64(
        static_cast<long long>(salt0), static_cast<long long>(salt0 + 2),
        static_cast<long long>(salt0 + 4), static_cast<long long>(salt0 + 6),
        static_cast<long long>(salt0 + 8), static_cast<long long>(salt0 + 10),
        static_cast<long long>(salt0 + 12), static_cast<long long>(salt0 + 14));
    const __m512i step = _mm512_set1_epi64(16);
    do {
      const __m512i words = _mm512_loadu_si512(reinterpret_cast<const void*>(p));
      accv = _mm512_xor_si512(accv, _mm512_mullo_epi64(words, saltv));
      saltv = _mm512_add_epi64(saltv, step);
      p += 64;
      left -= 64;
      salt += 16;
    } while (left >= 64);
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(reinterpret_cast<void*>(lanes), accv);
    for (const std::uint64_t lane : lanes) acc ^= lane;
  }
  while (left >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    acc ^= word * salt;
    salt += 2;
    p += 8;
    left -= 8;
  }
  if (left != 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, left);
    acc ^= word * salt;
  }
  return acc;
}

std::uint64_t sum_headers40_avx512(const std::byte* records, std::size_t n) {
  using namespace detail;
  const __m512i stride =
      _mm512_setr_epi64(0, 40, 80, 120, 160, 200, 240, 280);
  const __m512i mul_addr = _mm512_set1_epi64(static_cast<long long>(kMulAddr));
  const __m512i mul_value = _mm512_set1_epi64(static_cast<long long>(kMulValue));
  const __m512i mul_tag = _mm512_set1_epi64(static_cast<long long>(kMulTag));
  const __m512i mul_bits = _mm512_set1_epi64(static_cast<long long>(kMulBits));
  __m512i sumv = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::byte* r = records + std::size_t{40} * i;
    const __m512i from_to = _mm512_i64gather_epi64(stride, r, 1);
    const __m512i tag_len = _mm512_i64gather_epi64(stride, r + 8, 1);
    const __m512i value = _mm512_i64gather_epi64(stride, r + 16, 1);
    const __m512i bits = _mm512_i64gather_epi64(stride, r + 24, 1);
    // 32-bit rotate: little-endian load -> (from << 32) | to, as in
    // digest_header.
    const __m512i addr = _mm512_rol_epi64(from_to, 32);
    const __m512i tagw = _mm512_rol_epi64(tag_len, 32);
    __m512i w = _mm512_mullo_epi64(addr, mul_addr);
    w = _mm512_xor_si512(w, _mm512_mullo_epi64(value, mul_value));
    w = _mm512_xor_si512(w, _mm512_mullo_epi64(tagw, mul_tag));
    w = _mm512_xor_si512(w, _mm512_mullo_epi64(bits, mul_bits));
    sumv = _mm512_add_epi64(sumv, w);
  }
  std::uint64_t sum =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(sumv));
  for (; i < n; ++i) {
    const std::byte* r = records + std::size_t{40} * i;
    std::uint64_t from_to;
    std::uint64_t tag_len;
    std::uint64_t value;
    std::uint64_t bits;
    std::memcpy(&from_to, r, 8);
    std::memcpy(&tag_len, r + 8, 8);
    std::memcpy(&value, r + 16, 8);
    std::memcpy(&bits, r + 24, 8);
    const std::uint64_t addr = (from_to << 32) | (from_to >> 32);
    const std::uint64_t tagw = (tag_len << 32) | (tag_len >> 32);
    std::uint64_t w = addr * kMulAddr;
    w ^= value * kMulValue;
    w ^= tagw * kMulTag;
    w ^= bits * kMulBits;
    sum += w;
  }
  return sum;
}

constexpr detail::KernelTable kAvx512Kernels = {
    histogram_u32_avx512,  exclusive_scan_u32_avx512, scatter_records40_avx512,
    build_keys40_avx512,   xor_mul_words_avx512,      sum_headers40_avx512,
};

}  // namespace

namespace detail {
const KernelTable* avx512_kernels() noexcept { return &kAvx512Kernels; }
}  // namespace detail

}  // namespace lft::simd

#else  // missing AVX-512 feature macros

namespace lft::simd::detail {
const KernelTable* avx512_kernels() noexcept { return nullptr; }
}  // namespace lft::simd::detail

#endif
