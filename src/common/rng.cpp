#include "common/rng.hpp"

namespace lft {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  LFT_ASSERT(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded draw.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  LFT_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) noexcept {
  LFT_ASSERT(den > 0);
  return uniform(den) < num;
}

std::uint64_t make_seed(std::uint64_t purpose, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) noexcept {
  std::uint64_t h = mix64(purpose);
  h = hash_combine(h, a);
  h = hash_combine(h, b);
  h = hash_combine(h, c);
  return h;
}

}  // namespace lft
