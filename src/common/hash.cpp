#include "common/hash.hpp"

namespace lft {

std::uint64_t hash_bytes(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

std::uint64_t hash_words(std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t w : words) h = hash_combine(h, w);
  return h;
}

}  // namespace lft
