#include "common/bitset.hpp"

#include <bit>

namespace lft {

DynamicBitset::DynamicBitset(std::size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
  clear_padding();
}

void DynamicBitset::clear_padding() noexcept {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void DynamicBitset::reset() noexcept {
  for (auto& w : words_) w = 0;
}

void DynamicBitset::set_all() noexcept {
  for (auto& w : words_) w = ~0ULL;
  clear_padding();
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::or_assign(const DynamicBitset& other) noexcept {
  LFT_ASSERT(size_ == other.size_);
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed |= (merged != words_[i]);
    words_[i] = merged;
  }
  return changed;
}

void DynamicBitset::and_assign(const DynamicBitset& other) noexcept {
  LFT_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

DynamicBitset DynamicBitset::minus(const DynamicBitset& other) const {
  LFT_ASSERT(size_ == other.size_);
  DynamicBitset out(size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & ~other.words_[i];
  }
  return out;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const noexcept {
  LFT_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= size_) return size_;
  std::size_t w = i >> 6;
  std::uint64_t bits = words_[w] & (~0ULL << (i & 63));
  while (true) {
    if (bits != 0) return w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
    if (++w == words_.size()) return size_;
    bits = words_[w];
  }
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace lft
