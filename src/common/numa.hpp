// Minimal NUMA topology discovery for the fleet pool. Reads the sysfs node
// directories once (no libnuma dependency — the container toolchain is all we
// assume) and exposes a cpu -> node map plus per-node cpu lists. Fleet
// workers use it to (a) pin themselves to the cpus of one node so an
// instance's EngineScratch — message vectors and payload-arena chunks, tens
// to hundreds of MB warm — stays on the memory controller that faulted it,
// and (b) prefer stealing work from same-node peers, so a stolen instance
// adopts scratch whose pages are local. On single-node hosts (laptops, most
// CI, this dev container) discovery returns one node and everything
// degrades to exactly the old behavior: no pinning, flat stealing.
//
// Placement is a performance hint only; Reports are bit-identical regardless
// of which node (or core) ran an instance. LFT_NUMA=0 forces the single-node
// path at runtime.
#pragma once

#include <vector>

namespace lft {

/// Immutable snapshot of the host's NUMA layout.
struct NumaTopology {
  /// Number of populated nodes (>= 1; exactly 1 when discovery is
  /// unavailable, disabled via LFT_NUMA=0, or the host is UMA).
  int nodes = 1;
  /// node_of_cpu[cpu] = NUMA node owning that cpu id, for every cpu id the
  /// kernel lists. Empty when nodes == 1 (nothing to look up).
  std::vector<int> node_of_cpu;

  /// All cpu ids belonging to `node` (ascending). Empty when unknown.
  [[nodiscard]] std::vector<int> cpus_of_node(int node) const;
};

/// The host topology, discovered once on first use (thread-safe latch).
[[nodiscard]] const NumaTopology& numa_topology();

}  // namespace lft
