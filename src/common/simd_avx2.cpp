// AVX2 tier of the SIMD message-plane kernels (see common/simd.hpp). This TU
// is compiled with -mavx2 when the compiler supports it; otherwise it
// degrades to an empty table and dispatch clamps to scalar. Every kernel is
// an exact integer restatement of the scalar reference in simd.cpp —
// wrapping adds/multiplies and XOR folds are associative/commutative over
// the lane regrouping done here, so results are bit-identical by
// construction (and asserted in tests/test_simd.cpp).
#include "common/simd.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

namespace lft::simd {
namespace {

// Exact 64-bit low-half product per lane (AVX2 has no vpmullq): split into
// 32-bit halves, lo*lo + ((lo*hi + hi*lo) << 32), all mod 2^64.
inline __m256i mullo_epi64(__m256i a, __m256i b) {
  const __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);   // b hi<->lo per 64
  const __m256i prodlh = _mm256_mullo_epi32(a, bswap);   // a.lo*b.hi, a.hi*b.lo
  const __m256i prodlh2 = _mm256_srli_epi64(prodlh, 32);
  const __m256i prodlh3 = _mm256_add_epi32(prodlh2, prodlh);
  const __m256i cross = _mm256_slli_epi64(prodlh3, 32);  // (cross sums) << 32
  const __m256i prodll = _mm256_mul_epu32(a, b);         // a.lo*b.lo (full 64)
  return _mm256_add_epi64(prodll, cross);
}

void histogram_u32_avx2(const std::uint32_t* keys, std::size_t n,
                        std::uint32_t* counts) {
  // Counting into one shared array is inherently serial per key; AVX2 has
  // neither scatter nor conflict detection, so this tier keeps the scalar
  // loop (the tier's wins are in scan/scatter/keys/digests).
  for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
}

std::uint32_t exclusive_scan_u32_avx2(std::uint32_t* a, std::size_t n) {
  std::uint32_t running = 0;
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i rot1 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // Inclusive scan of 8 lanes: within-128 shifts, then carry the low
    // half's total into the high half.
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    const __m256i lane3 = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(3));
    x = _mm256_add_epi32(x, _mm256_blend_epi32(zero, lane3, 0xF0));
    // Exclusive = running + (inclusive shifted right one lane, 0 in lane 0).
    __m256i shifted = _mm256_permutevar8x32_epi32(x, rot1);
    shifted = _mm256_blend_epi32(shifted, zero, 0x01);
    const __m256i out = _mm256_add_epi32(shifted, _mm256_set1_epi32(static_cast<int>(running)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), out);
    running += static_cast<std::uint32_t>(
        _mm256_extract_epi32(x, 7));  // inclusive total of this block
  }
  for (; i < n; ++i) {
    const std::uint32_t count = a[i];
    a[i] = running;
    running += count;
  }
  return running;
}

void scatter_records40_avx2(const std::byte* src, std::size_t n,
                            const std::uint32_t* keys, std::uint32_t* next_slot,
                            std::byte* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = next_slot[keys[i]]++;
    const std::byte* s = src + std::size_t{40} * i;
    std::byte* d = dst + std::size_t{40} * slot;
    const __m256i head = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    std::uint64_t tail;
    std::memcpy(&tail, s + 32, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d), head);
    std::memcpy(d + 32, &tail, 8);
  }
}

std::uint32_t build_keys40_avx2(const std::byte* records, std::size_t n,
                                unsigned tag_bits, std::uint32_t* keys) {
  const __m256i stride = _mm256_setr_epi64x(0, 40, 80, 120);
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  __m256i max_tag_v = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // One 8-byte gather per record covers {to @+4, tag @+8}.
    const auto* base =
        reinterpret_cast<const long long*>(records + std::size_t{40} * i + 4);
    const __m256i to_tag = _mm256_i64gather_epi64(base, stride, 1);
    const __m256i to = _mm256_and_si256(to_tag, lo32);
    const __m256i tag = _mm256_srli_epi64(to_tag, 32);
    max_tag_v = _mm256_max_epu32(max_tag_v, tag);  // upper 32s are zero
    const __m256i key = _mm256_or_si256(
        _mm256_slli_epi64(to, static_cast<int>(tag_bits)), tag);
    // Pack the four u64 lanes (each < 2^32) down to u32 and store 16 bytes.
    const __m256i packed = _mm256_permutevar8x32_epi32(
        key, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i),
                     _mm256_castsi256_si128(packed));
  }
  // Horizontal max of the tag accumulator (lanes 0,2,4,6 hold tags).
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), max_tag_v);
  std::uint32_t max_tag = 0;
  for (int k = 0; k < 8; k += 2) max_tag = lanes[k] > max_tag ? lanes[k] : max_tag;
  for (; i < n; ++i) {
    std::uint64_t to_tag;
    std::memcpy(&to_tag, records + std::size_t{40} * i + 4, 8);
    const auto to = static_cast<std::uint32_t>(to_tag);
    const auto tag = static_cast<std::uint32_t>(to_tag >> 32);
    if (tag > max_tag) max_tag = tag;
    keys[i] = (to << tag_bits) | tag;
  }
  return max_tag;
}

std::uint64_t xor_mul_words_avx2(std::uint64_t seed, const std::byte* bytes,
                                 std::size_t len, std::uint64_t salt0) {
  std::uint64_t acc = seed;
  std::uint64_t salt = salt0;
  std::size_t left = len;
  const std::byte* p = bytes;
  if (left >= 32) {
    __m256i accv = _mm256_setzero_si256();
    __m256i saltv = _mm256_setr_epi64x(
        static_cast<long long>(salt0), static_cast<long long>(salt0 + 2),
        static_cast<long long>(salt0 + 4), static_cast<long long>(salt0 + 6));
    const __m256i step = _mm256_set1_epi64x(8);
    do {
      const __m256i words = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      accv = _mm256_xor_si256(accv, mullo_epi64(words, saltv));
      saltv = _mm256_add_epi64(saltv, step);
      p += 32;
      left -= 32;
      salt += 8;
    } while (left >= 32);
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), accv);
    acc ^= lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
  }
  while (left >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    acc ^= word * salt;
    salt += 2;
    p += 8;
    left -= 8;
  }
  if (left != 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, left);
    acc ^= word * salt;
  }
  return acc;
}

std::uint64_t sum_headers40_avx2(const std::byte* records, std::size_t n) {
  using namespace detail;
  const __m256i stride = _mm256_setr_epi64x(0, 40, 80, 120);
  const __m256i mul_addr = _mm256_set1_epi64x(static_cast<long long>(kMulAddr));
  const __m256i mul_value = _mm256_set1_epi64x(static_cast<long long>(kMulValue));
  const __m256i mul_tag = _mm256_set1_epi64x(static_cast<long long>(kMulTag));
  const __m256i mul_bits = _mm256_set1_epi64x(static_cast<long long>(kMulBits));
  __m256i sumv = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::byte* r = records + std::size_t{40} * i;
    const __m256i from_to =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(r), stride, 1);
    const __m256i tag_len =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(r + 8), stride, 1);
    const __m256i value =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(r + 16), stride, 1);
    const __m256i bits =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(r + 24), stride, 1);
    // 32-bit rotate turns the little-endian loads into (from << 32) | to and
    // (tag << 32) | body_len, matching digest_header.
    const __m256i addr = _mm256_shuffle_epi32(from_to, 0xB1);
    const __m256i tagw = _mm256_shuffle_epi32(tag_len, 0xB1);
    __m256i w = mullo_epi64(addr, mul_addr);
    w = _mm256_xor_si256(w, mullo_epi64(value, mul_value));
    w = _mm256_xor_si256(w, mullo_epi64(tagw, mul_tag));
    w = _mm256_xor_si256(w, mullo_epi64(bits, mul_bits));
    sumv = _mm256_add_epi64(sumv, w);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sumv);
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    const std::byte* r = records + std::size_t{40} * i;
    std::uint64_t from_to;
    std::uint64_t tag_len;
    std::uint64_t value;
    std::uint64_t bits;
    std::memcpy(&from_to, r, 8);
    std::memcpy(&tag_len, r + 8, 8);
    std::memcpy(&value, r + 16, 8);
    std::memcpy(&bits, r + 24, 8);
    const std::uint64_t addr = (from_to << 32) | (from_to >> 32);
    const std::uint64_t tagw = (tag_len << 32) | (tag_len >> 32);
    std::uint64_t w = addr * kMulAddr;
    w ^= value * kMulValue;
    w ^= tagw * kMulTag;
    w ^= bits * kMulBits;
    sum += w;
  }
  return sum;
}

constexpr detail::KernelTable kAvx2Kernels = {
    histogram_u32_avx2,  exclusive_scan_u32_avx2, scatter_records40_avx2,
    build_keys40_avx2,   xor_mul_words_avx2,      sum_headers40_avx2,
};

}  // namespace

namespace detail {
const KernelTable* avx2_kernels() noexcept { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace lft::simd

#else  // !(__AVX2__ && __x86_64__)

namespace lft::simd::detail {
const KernelTable* avx2_kernels() noexcept { return nullptr; }
}  // namespace lft::simd::detail

#endif
