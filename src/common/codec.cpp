#include "common/codec.hpp"

namespace lft {

void ByteWriter::put_u8(std::uint8_t v) { buf_->push_back(static_cast<std::byte>(v)); }

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::byte> bytes) {
  buf_->insert(buf_->end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_bitset(const DynamicBitset& bits) {
  put_varint(bits.size());
  for (std::uint64_t w : bits.words()) put_u64(w);
}

std::optional<std::uint8_t> ByteReader::get_u8() noexcept {
  if (pos_ >= data_.size()) return std::nullopt;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::optional<std::uint32_t> ByteReader::get_u32() noexcept {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> ByteReader::get_u64() noexcept {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> ByteReader::get_varint() noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size() || shift > 63) return std::nullopt;
    const auto b = static_cast<std::uint8_t>(data_[pos_++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::optional<std::span<const std::byte>> ByteReader::get_bytes(std::size_t n) noexcept {
  if (remaining() < n) return std::nullopt;
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::optional<DynamicBitset> ByteReader::get_bitset(std::size_t max_bits) noexcept {
  const auto size = get_varint();
  if (!size || *size > max_bits) return std::nullopt;
  const std::size_t nwords = (*size + 63) / 64;
  if (remaining() < nwords * 8) return std::nullopt;
  DynamicBitset bits(static_cast<std::size_t>(*size));
  for (std::size_t i = 0; i < nwords; ++i) {
    bits.mutable_words()[i] = *get_u64();
  }
  // Reject payloads with garbage in padding bits (canonical form only).
  const std::size_t tail = *size & 63;
  if (tail != 0 && nwords > 0 &&
      (bits.words().back() & ~((1ULL << tail) - 1)) != 0) {
    return std::nullopt;
  }
  return bits;
}

}  // namespace lft
