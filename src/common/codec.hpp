// Compact binary serialization with bounds-checked decoding. Byzantine nodes
// may inject arbitrary byte strings, so every read returns std::optional and
// readers never trust lengths found in the payload beyond what remains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bitset.hpp"

namespace lft {

/// Appends values to a growing byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// LEB128-style variable-length unsigned integer.
  void put_varint(std::uint64_t v);
  void put_bytes(std::span<const std::byte> bytes);
  /// Writes the bitset size as a varint followed by its words.
  void put_bitset(const DynamicBitset& bits);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential reads from a byte span; every accessor fails softly on
/// truncated or malformed input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> get_u8() noexcept;
  [[nodiscard]] std::optional<std::uint32_t> get_u32() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> get_u64() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> get_varint() noexcept;
  /// Reads exactly n bytes.
  [[nodiscard]] std::optional<std::span<const std::byte>> get_bytes(std::size_t n) noexcept;
  /// Reads a bitset written by put_bitset; rejects sizes above max_bits.
  [[nodiscard]] std::optional<DynamicBitset> get_bitset(std::size_t max_bits) noexcept;

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace lft
