// Compact binary serialization with bounds-checked decoding. Byzantine nodes
// may inject arbitrary byte strings, so every read returns std::optional and
// readers never trust lengths found in the payload beyond what remains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bitset.hpp"

namespace lft {

/// Appends values to a growing byte buffer. Default-constructed writers own
/// their buffer; the borrowing constructor builds into caller-provided
/// scratch (cleared on construction), so hot paths can reuse one buffer
/// across rounds and hand the engine a view() instead of a fresh vector.
class ByteWriter {
 public:
  ByteWriter() noexcept : buf_(&own_) {}
  explicit ByteWriter(std::vector<std::byte>& scratch) noexcept : buf_(&scratch) {
    scratch.clear();
  }
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// LEB128-style variable-length unsigned integer.
  void put_varint(std::uint64_t v);
  void put_bytes(std::span<const std::byte> bytes);
  /// Writes the bitset size as a varint followed by its words.
  void put_bitset(const DynamicBitset& bits);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return *buf_; }
  /// Transfers the buffer out; owning mode only (taking borrowed scratch
  /// would gut the caller's reusable buffer).
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    LFT_ASSERT(buf_ == &own_);
    return std::move(own_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_->size(); }
  /// View of the written bytes; valid until the next write or buffer reuse.
  [[nodiscard]] std::span<const std::byte> view() const noexcept {
    return std::span<const std::byte>(buf_->data(), buf_->size());
  }

 private:
  std::vector<std::byte> own_;
  std::vector<std::byte>* buf_;
};

/// Sequential reads from a byte span; every accessor fails softly on
/// truncated or malformed input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> get_u8() noexcept;
  [[nodiscard]] std::optional<std::uint32_t> get_u32() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> get_u64() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> get_varint() noexcept;
  /// Reads exactly n bytes.
  [[nodiscard]] std::optional<std::span<const std::byte>> get_bytes(std::size_t n) noexcept;
  /// Reads a bitset written by put_bitset; rejects sizes above max_bits.
  [[nodiscard]] std::optional<DynamicBitset> get_bitset(std::size_t max_bits) noexcept;

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace lft
