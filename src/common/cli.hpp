// Shared `--flag` / `--name=value` parsing for the lft_* CLIs
// (lft_scenarios, lft_fleet, lft_forensics, lft_serve, lft_bench_client).
// Declare sinks, then parse(): unknown or malformed arguments print to
// stderr and fail, so every tool keeps the same strict surface. Header-only
// on purpose — the CLIs are the only consumers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace lft::cli {

/// Splits "a,b,c" into {"a","b","c"}; empty segments are dropped.
[[nodiscard]] inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) parts.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

class ArgParser {
 public:
  /// `first_arg` skips positionals the caller consumed itself (e.g. a
  /// subcommand in argv[1] — pass 2).
  ArgParser(int argc, char** argv, int first_arg = 1) {
    for (int i = first_arg; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// `--name` (no value).
  ArgParser& on_flag(const char* name, bool& out) {
    handlers_.push_back(Handler{name, /*takes_value=*/false, /*allows_bare=*/true,
                                [&out](const std::string&) {
                                  out = true;
                                  return true;
                                }});
    return *this;
  }

  /// `--name=string`.
  ArgParser& on_str(const char* name, std::string& out) {
    handlers_.push_back(Handler{name, true, false, [&out](const std::string& v) {
                                  out = v;
                                  return true;
                                }});
    return *this;
  }

  /// `--name=N`, unsigned.
  ArgParser& on_u64(const char* name, std::uint64_t& out) {
    handlers_.push_back(Handler{name, true, false, [&out](const std::string& v) {
                                  out = std::strtoull(v.c_str(), nullptr, 10);
                                  return true;
                                }});
    return *this;
  }

  /// `--name=N`, signed, clamped below at `min`.
  ArgParser& on_i64(const char* name, std::int64_t& out, std::int64_t min) {
    handlers_.push_back(Handler{name, true, false, [&out, min](const std::string& v) {
                                  out = std::strtoll(v.c_str(), nullptr, 10);
                                  if (out < min) out = min;
                                  return true;
                                }});
    return *this;
  }

  /// `--name=N`, int, clamped below at `min`.
  ArgParser& on_int(const char* name, int& out, int min) {
    handlers_.push_back(Handler{name, true, false, [&out, min](const std::string& v) {
                                  out = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
                                  if (out < min) out = min;
                                  return true;
                                }});
    return *this;
  }

  /// `--name=a,b,c` — appends the CSV parts.
  ArgParser& on_csv(const char* name, std::vector<std::string>& out) {
    handlers_.push_back(Handler{name, true, false, [&out](const std::string& v) {
                                  for (auto& part : split_csv(v)) out.push_back(std::move(part));
                                  return true;
                                }});
    return *this;
  }

  /// Custom sink: `fn` gets the raw value ("" for a bare `--name` when
  /// `allow_bare`); return false to reject the argument.
  ArgParser& on_value(const char* name, std::function<bool(const std::string&)> fn,
                      bool allow_bare = false) {
    handlers_.push_back(Handler{name, true, allow_bare, std::move(fn)});
    return *this;
  }

  /// Applies every argument to its handler; false (with a stderr message)
  /// on an unknown or rejected argument.
  [[nodiscard]] bool parse() const {
    for (const std::string& arg : args_) {
      bool matched = false;
      for (const Handler& h : handlers_) {
        if (h.takes_value && arg.size() > h.name.size() + 1 &&
            arg.compare(0, h.name.size(), h.name) == 0 && arg[h.name.size()] == '=') {
          if (!h.apply(arg.substr(h.name.size() + 1))) {
            std::fprintf(stderr, "bad argument: %s\n", arg.c_str());
            return false;
          }
          matched = true;
          break;
        }
        if (h.allows_bare && arg == h.name) {
          if (!h.apply(std::string())) {
            std::fprintf(stderr, "bad argument: %s\n", arg.c_str());
            return false;
          }
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  struct Handler {
    std::string name;
    bool takes_value = false;
    bool allows_bare = false;
    std::function<bool(const std::string&)> apply;
  };

  std::vector<std::string> args_;
  std::vector<Handler> handlers_;
};

}  // namespace lft::cli
