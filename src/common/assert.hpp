// Always-on invariant checks. Simulation correctness depends on model
// invariants (budgets, irrevocable decisions), so these stay enabled in
// release builds; they guard logic errors, not recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lft::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "LFT_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace lft::detail

#define LFT_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::lft::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define LFT_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) ::lft::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
