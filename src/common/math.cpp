#include "common/math.hpp"

#include <bit>
#include <initializer_list>

#include "common/assert.hpp"

namespace lft {

int floor_log2(std::uint64_t x) noexcept {
  LFT_ASSERT(x >= 1);
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) noexcept {
  LFT_ASSERT(x >= 1);
  return x == 1 ? 0 : floor_log2(x - 1) + 1;
}

int lg_rounds(std::uint64_t x) noexcept {
  const int c = ceil_log2(x < 1 ? 1 : x);
  return c < 1 ? 1 : c;
}

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * static_cast<__uint128_t>(b)) % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) noexcept {
  LFT_ASSERT(m > 0);
  std::uint64_t result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) result = mulmod(result, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return result;
}

namespace {

bool miller_rabin_witness(std::uint64_t n, std::uint64_t a, std::uint64_t d, int r) noexcept {
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 0; i < r - 1; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // composite witness found
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
                          31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is deterministic for all 64-bit integers.
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
                          31ULL, 37ULL}) {
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  std::uint64_t c = n | 1;  // first odd >= n
  while (!is_prime(c)) c += 2;
  return c;
}

std::uint64_t invmod(std::uint64_t a, std::uint64_t p) noexcept {
  a %= p;
  LFT_ASSERT(a != 0);
  return powmod(a, p - 2, p);  // Fermat, p prime
}

int legendre(std::uint64_t a, std::uint64_t p) noexcept {
  a %= p;
  if (a == 0) return 0;
  const std::uint64_t s = powmod(a, (p - 1) / 2, p);
  return s == 1 ? 1 : -1;
}

std::uint64_t sqrtmod(std::uint64_t a, std::uint64_t p) noexcept {
  a %= p;
  if (a == 0) return 0;
  LFT_ASSERT_MSG(legendre(a, p) == 1, "sqrtmod of a non-residue");
  if (p % 4 == 3) {
    const std::uint64_t r = powmod(a, (p + 1) / 4, p);
    return r <= p - r ? r : p - r;
  }
  // Tonelli-Shanks for p == 1 (mod 4).
  std::uint64_t q = p - 1;
  int s = 0;
  while ((q & 1) == 0) {
    q >>= 1;
    ++s;
  }
  std::uint64_t z = 2;
  while (legendre(z, p) != -1) ++z;
  std::uint64_t m = static_cast<std::uint64_t>(s);
  std::uint64_t c = powmod(z, q, p);
  std::uint64_t t = powmod(a, q, p);
  std::uint64_t r = powmod(a, (q + 1) / 2, p);
  while (t != 1) {
    std::uint64_t i = 0;
    std::uint64_t tt = t;
    while (tt != 1) {
      tt = mulmod(tt, tt, p);
      ++i;
      LFT_ASSERT(i < m);
    }
    std::uint64_t b = c;
    for (std::uint64_t j = 0; j < m - i - 1; ++j) b = mulmod(b, b, p);
    m = i;
    c = mulmod(b, b, p);
    t = mulmod(t, c, p);
    r = mulmod(r, b, p);
  }
  return r <= p - r ? r : p - r;
}

}  // namespace lft
