// Umbrella header: the library's public API in one include.
//
//   #include "lft.hpp"
//
// Entry points by problem (all in namespace lft):
//   consensus, crash model ..... core::run_few_crashes_consensus (t < n/5)
//                                core::run_many_crashes_consensus (any t < n)
//   agreement primitives ....... core::run_aea, core::run_scv
//   gossiping .................. core::run_gossip
//   checkpointing .............. core::run_checkpointing
//   counting / majority ........ core::run_majority_consensus
//   Byzantine (authenticated) .. byzantine::run_ab_consensus
//   single-port model .......... singleport::run_linear_consensus,
//                                singleport::run_single_port_gossip
//   lower-bound experiments .... singleport::run_port_isolation,
//                                singleport::run_divergence_experiment
//   baselines .................. baselines::run_floodset, ...
//   fault scenarios ............ scenarios::all_scenarios, find_scenario
//   fleet sweeps ............... sim::FleetRunner, scenarios::sweep,
//                                scenarios::run_sweep
// Parameters come from the *Params::practical / ::single_port factories;
// fault plans and injectors from sim/faults.hpp (declarative FaultPlan,
// ScheduledAdversary) and sim/adversary.hpp (graph-aware / adaptive
// strategies).
#pragma once

#include "baselines/baselines.hpp"
#include "byzantine/ab_consensus.hpp"
#include "core/checkpointing.hpp"
#include "core/consensus.hpp"
#include "core/extensions.hpp"
#include "core/gossip.hpp"
#include "graph/lps.hpp"
#include "graph/overlay.hpp"
#include "graph/properties.hpp"
#include "graph/spectral.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "sim/single_port.hpp"
#include "singleport/gossip_sp.hpp"
#include "singleport/linear_consensus.hpp"
#include "singleport/lower_bound.hpp"
