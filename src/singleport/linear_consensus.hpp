// Linear-Consensus (Theorem 12): the single-port adaptation of
// Few-Crashes-Consensus. Parts 1-2 of AEA expand into 2d-slot blocks on the
// constant-degree overlay G; the related-node star is scheduled link by link
// when t >= sqrt(n) (n/5t <= t slots) and replaced by longer SCV Part 1
// flooding otherwise, per the Section 8 prose; SCV Part 2 uses inquiry
// graphs capped at degree 3t+1. Runs in O(t + log n) sp-rounds with
// O(n + t log n) message bits.
#pragma once

#include <memory>
#include <span>

#include "core/consensus.hpp"
#include "core/params.hpp"
#include "sim/single_port.hpp"
#include "singleport/adapter.hpp"

namespace lft::singleport {

/// Builds the Linear-Consensus process for one node. `params` should come
/// from core::ConsensusParams::single_port.
[[nodiscard]] std::unique_ptr<SinglePortStageProcess> make_linear_consensus_process(
    const core::ConsensusParams& params, NodeId self, int input);

/// Scheduled crash adversary for the single-port engine (clean crashes).
class ScheduledSpAdversary final : public sim::SpAdversary {
 public:
  explicit ScheduledSpAdversary(std::vector<sim::CrashEvent> events);
  void on_round(const sim::SpView& view, std::vector<NodeId>& crash_out) override;

 private:
  std::vector<sim::CrashEvent> events_;
  std::size_t next_ = 0;
};

[[nodiscard]] core::ConsensusOutcome run_linear_consensus(
    const core::ConsensusParams& params, std::span<const int> inputs,
    std::unique_ptr<sim::SpAdversary> adversary);

}  // namespace lft::singleport
