#include "singleport/linear_consensus.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/stages.hpp"
#include "graph/overlay.hpp"

namespace lft::singleport {

std::unique_ptr<SinglePortStageProcess> make_linear_consensus_process(
    const core::ConsensusParams& p, NodeId self, int input) {
  LFT_ASSERT(input == 0 || input == 1);
  LFT_ASSERT_MSG(5 * p.t < p.n, "Linear-Consensus requires t < n/5");
  LFT_ASSERT_MSG(!p.use_little_pull && !p.guarantee_termination,
                 "use core::ConsensusParams::single_port for the single-port model");

  auto proc = std::make_unique<SinglePortStageProcess>(self);
  proc->state().candidate = input;
  proc->state().is_little = self < p.little_count;

  const int little_degree =
      std::max(1, std::min<int>(p.probe_degree_little, p.little_count - 1));
  auto g = graph::shared_overlay(p.little_count, little_degree,
                                 p.overlay_tag ^ core::kOverlayLittleG);
  proc->add_stage(std::make_unique<core::FloodRumorStage>(self, p.little_count, g,
                                                          p.flood_rounds_little, proc->state()));
  proc->add_stage(std::make_unique<core::ProbeStage>(self, p.little_count, g,
                                                     p.probe_gamma_little, p.probe_delta_little,
                                                     proc->state(), /*decide_on_survive=*/true));
  // Section 8: the star notification costs ceil(n/5t) slots per little node,
  // which is O(t) only when t >= sqrt(n); below that, longer SCV flooding
  // seeded by the little deciders replaces it.
  if (p.t * p.t >= static_cast<std::int64_t>(p.n)) {
    proc->add_stage(
        std::make_unique<core::NotifyRelatedStage>(self, p.n, p.little_count, proc->state()));
  }
  const int spread_degree = std::max(1, std::min<int>(p.spread_degree, p.n - 1));
  auto h = graph::shared_overlay(p.n, spread_degree, p.overlay_tag ^ core::kOverlaySpreadH);
  proc->add_stage(
      std::make_unique<core::SpreadFloodStage>(self, h, p.spread_rounds, proc->state()));
  proc->add_stage(std::make_unique<core::InquiryPhasesStage>(
      self, core::inquiry_graphs(p, p.scv_phases, p.overlay_tag ^ core::kOverlayInquiryBase),
      proc->state()));
  return proc;
}

ScheduledSpAdversary::ScheduledSpAdversary(std::vector<sim::CrashEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const sim::CrashEvent& a, const sim::CrashEvent& b) {
                     return a.round < b.round;
                   });
}

void ScheduledSpAdversary::on_round(const sim::SpView& view, std::vector<NodeId>& crash_out) {
  while (next_ < events_.size() && events_[next_].round <= view.round()) {
    crash_out.push_back(events_[next_++].node);
  }
}

core::ConsensusOutcome run_linear_consensus(const core::ConsensusParams& params,
                                            std::span<const int> inputs,
                                            std::unique_ptr<sim::SpAdversary> adversary) {
  LFT_ASSERT(static_cast<NodeId>(inputs.size()) == params.n);
  sim::SinglePortConfig config;
  config.crash_budget = params.t;
  sim::SinglePortEngine engine(params.n, config);
  for (NodeId v = 0; v < params.n; ++v) {
    engine.set_process(
        v, make_linear_consensus_process(params, v, inputs[static_cast<std::size_t>(v)]));
  }
  if (adversary != nullptr) engine.set_adversary(std::move(adversary));
  return core::evaluate_consensus(engine.run(), inputs);
}

}  // namespace lft::singleport
