#include "singleport/adapter.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::singleport {

void SinglePortStageProcess::QueueIo::send(NodeId to, std::uint32_t tag, std::uint64_t value,
                                           std::uint64_t bits, std::vector<std::byte> body) {
  auto [it, inserted] = queue_->try_emplace(to);
  LFT_ASSERT_MSG(inserted, "stage queued two messages on one link in one round");
  it->second = QueuedSend{tag, value, bits, std::move(body)};
}

Round SinglePortStageProcess::total_sp_duration() const {
  Round total = 0;
  for (const auto& stage : stages_) {
    for (Round r = 0; r < stage->duration(); ++r) {
      const core::LinkBudget b = stage->link_budget(r);
      total += std::max<Round>(1, static_cast<Round>(b.max_out) + b.max_in);
    }
  }
  return total;
}

void SinglePortStageProcess::advance_mp_round() {
  ++stage_round_;
  slot_ = 0;
  queued_.clear();
  while (stage_index_ < stages_.size() &&
         stage_round_ >= stages_[stage_index_]->duration()) {
    stage_round_ = 0;
    ++stage_index_;
  }
  if (stage_index_ >= stages_.size()) done_ = true;
}

sim::SpAction SinglePortStageProcess::on_round(sim::SpContext& ctx,
                                               const std::optional<sim::Message>& received) {
  if (received.has_value()) inbox_accumulator_.push_back(*received);
  if (done_) {
    ctx.halt();
    return {};
  }

  core::Stage& stage = *stages_[stage_index_];

  if (slot_ == 0) {
    // Drive the wrapped stage with everything polled since its last round,
    // in the multi-port engine's delivery normal form: grouped by tag,
    // sender-sorted within each tag group.
    std::stable_sort(inbox_accumulator_.begin(), inbox_accumulator_.end(),
                     [](const sim::Message& a, const sim::Message& b) {
                       return a.tag != b.tag ? a.tag < b.tag : a.from < b.from;
                     });
    QueueIo io(queued_, ctx);
    stage.on_round(stage_round_, inbox_accumulator_, io);
    inbox_accumulator_.clear();
    budget_ = stage.link_budget(stage_round_);
    plan_ = stage.link_plan(stage_round_);
    LFT_ASSERT(static_cast<int>(plan_.out.size()) <= std::max(1, budget_.max_out));
    LFT_ASSERT(static_cast<int>(plan_.in.size()) <= std::max(1, budget_.max_in));
  }

  sim::SpAction action;
  const Round out_slots = budget_.max_out;
  const Round in_slots = budget_.max_in;
  if (slot_ < out_slots) {
    if (slot_ < static_cast<Round>(plan_.out.size())) {
      const NodeId target = plan_.out[static_cast<std::size_t>(slot_)];
      auto it = queued_.find(target);
      if (it != queued_.end()) {
        action.send = sim::SpSend{target, it->second.tag, it->second.value, it->second.bits,
                                  std::move(it->second.body)};
        queued_.erase(it);
      }
    }
  } else if (slot_ < out_slots + in_slots) {
    const Round in_index = slot_ - out_slots;
    if (in_index < static_cast<Round>(plan_.in.size())) {
      action.poll = plan_.in[static_cast<std::size_t>(in_index)];
    }
  }

  ++slot_;
  const Round block = std::max<Round>(1, out_slots + in_slots);
  if (slot_ >= block) {
    LFT_ASSERT_MSG(queued_.empty(), "stage sent outside its declared link plan");
    advance_mp_round();
    if (done_) {
      // Halt next round (after the engine processes this action).
    }
  }
  return action;
}

}  // namespace lft::singleport
