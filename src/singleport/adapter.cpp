#include "singleport/adapter.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lft::singleport {

void SinglePortStageProcess::QueueIo::send(NodeId to, std::uint32_t tag, std::uint64_t value,
                                           std::uint64_t bits, sim::PayloadView body) {
  auto [it, inserted] = queue_->try_emplace(to);
  LFT_ASSERT_MSG(inserted, "stage queued two messages on one link in one round");
  const std::size_t offset = bytes_->size();
  bytes_->insert(bytes_->end(), body.begin(), body.end());
  it->second = QueuedSend{tag, value, bits, offset, body.size()};
}

Round SinglePortStageProcess::total_sp_duration() const {
  Round total = 0;
  for (const auto& stage : stages_) {
    for (Round r = 0; r < stage->duration(); ++r) {
      const core::LinkBudget b = stage->link_budget(r);
      total += std::max<Round>(1, static_cast<Round>(b.max_out) + b.max_in);
    }
  }
  return total;
}

void SinglePortStageProcess::advance_mp_round() {
  ++stage_round_;
  slot_ = 0;
  queued_.clear();
  while (stage_index_ < stages_.size() &&
         stage_round_ >= stages_[stage_index_]->duration()) {
    stage_round_ = 0;
    ++stage_index_;
  }
  if (stage_index_ >= stages_.size()) done_ = true;
}

sim::SpAction SinglePortStageProcess::on_round(sim::SpContext& ctx,
                                               const std::optional<sim::Message>& received) {
  if (received.has_value()) {
    // The engine-side payload scratch is only valid for this call: pool the
    // bytes and record the offset (acc_bytes_ may still reallocate while the
    // block accumulates, so pointers are rebound at slot 0).
    acc_offsets_.push_back(acc_bytes_.size());
    acc_bytes_.insert(acc_bytes_.end(), received->body().begin(), received->body().end());
    inbox_accumulator_.push_back(*received);
  }
  if (done_) {
    ctx.halt();
    return {};
  }

  core::Stage& stage = *stages_[stage_index_];

  if (slot_ == 0) {
    // Drive the wrapped stage with everything polled since its last round,
    // in the multi-port engine's delivery normal form: grouped by tag,
    // sender-sorted within each tag group.
    for (std::size_t i = 0; i < inbox_accumulator_.size(); ++i) {
      inbox_accumulator_[i].set_body(
          sim::PayloadView(acc_bytes_.data() + acc_offsets_[i],
                           inbox_accumulator_[i].body_len));
    }
    std::stable_sort(inbox_accumulator_.begin(), inbox_accumulator_.end(),
                     [](const sim::Message& a, const sim::Message& b) {
                       return a.tag != b.tag ? a.tag < b.tag : a.from < b.from;
                     });
    queued_bytes_.clear();
    QueueIo io(queued_, queued_bytes_, ctx);
    stage.on_round(stage_round_, inbox_accumulator_, io);
    inbox_accumulator_.clear();
    acc_offsets_.clear();
    acc_bytes_.clear();
    budget_ = stage.link_budget(stage_round_);
    plan_ = stage.link_plan(stage_round_);
    LFT_ASSERT(static_cast<int>(plan_.out.size()) <= std::max(1, budget_.max_out));
    LFT_ASSERT(static_cast<int>(plan_.in.size()) <= std::max(1, budget_.max_in));
  }

  sim::SpAction action;
  const Round out_slots = budget_.max_out;
  const Round in_slots = budget_.max_in;
  if (slot_ < out_slots) {
    if (slot_ < static_cast<Round>(plan_.out.size())) {
      const NodeId target = plan_.out[static_cast<std::size_t>(slot_)];
      auto it = queued_.find(target);
      if (it != queued_.end()) {
        // The view into queued_bytes_ stays valid until the next block's
        // slot 0 — past the engine's enqueue step this round.
        action.send = sim::SpSend{
            target, it->second.tag, it->second.value, it->second.bits,
            sim::PayloadView(queued_bytes_.data() + it->second.body_offset,
                             it->second.body_len)};
        queued_.erase(it);
      }
    }
  } else if (slot_ < out_slots + in_slots) {
    const Round in_index = slot_ - out_slots;
    if (in_index < static_cast<Round>(plan_.in.size())) {
      action.poll = plan_.in[static_cast<std::size_t>(in_index)];
    }
  }

  ++slot_;
  const Round block = std::max<Round>(1, out_slots + in_slots);
  if (slot_ >= block) {
    LFT_ASSERT_MSG(queued_.empty(), "stage sent outside its declared link plan");
    advance_mp_round();
    if (done_) {
      // Halt next round (after the engine processes this action).
    }
  }
  return action;
}

}  // namespace lft::singleport
