#include "singleport/gossip_sp.hpp"

#include "common/assert.hpp"

namespace lft::singleport {

SinglePortGossipProcess::SinglePortGossipProcess(std::shared_ptr<const core::GossipConfig> cfg,
                                                 NodeId self, std::uint64_t rumor)
    : state_(cfg->params.n, self, rumor), adapter_(self) {
  adapter_.add_stage(std::make_unique<core::GossipBuildStage>(cfg, self, state_));
  adapter_.add_stage(std::make_unique<core::GossipShareStage>(cfg, self, state_));
  adapter_.add_stage(std::make_unique<core::GossipFinishStage>(cfg, self, state_,
                                                               /*decide_at_end=*/true,
                                                               /*enable_pull=*/false));
}

sim::SpAction SinglePortGossipProcess::on_round(sim::SpContext& ctx,
                                                const std::optional<sim::Message>& received) {
  return adapter_.on_round(ctx, received);
}

core::GossipOutcome run_single_port_gossip(const core::GossipParams& params,
                                           std::span<const std::uint64_t> rumors,
                                           std::unique_ptr<sim::SpAdversary> adversary) {
  LFT_ASSERT(static_cast<NodeId>(rumors.size()) == params.n);
  auto cfg = core::GossipConfig::build(params);

  sim::SinglePortConfig config;
  config.crash_budget = params.t;
  sim::SinglePortEngine engine(params.n, config);
  for (NodeId v = 0; v < params.n; ++v) {
    engine.set_process(v, std::make_unique<SinglePortGossipProcess>(
                              cfg, v, rumors[static_cast<std::size_t>(v)]));
  }
  if (adversary != nullptr) engine.set_adversary(std::move(adversary));

  core::GossipOutcome out;
  out.report = engine.run();
  out.termination = out.report.completed;
  out.condition1 = true;
  out.condition2 = true;
  out.rumors_intact = true;
  for (NodeId v = 0; v < params.n; ++v) {
    const auto& status = out.report.nodes[static_cast<std::size_t>(v)];
    const auto& proc = static_cast<const SinglePortGossipProcess&>(engine.process(v));
    if (status.crashed) continue;
    if (!proc.state().decided) {
      out.termination = false;
      continue;
    }
    const core::ExtantSet& set = proc.state().extant;
    for (NodeId j = 0; j < params.n; ++j) {
      const auto& js = out.report.nodes[static_cast<std::size_t>(j)];
      if (js.crashed && js.sends == 0 && j != v && set.contains(j)) out.condition1 = false;
      if (!js.crashed && !set.contains(j)) out.condition2 = false;
      if (set.contains(j) && set.rumor(j) != rumors[static_cast<std::size_t>(j)]) {
        out.rumors_intact = false;
      }
    }
  }
  return out;
}

}  // namespace lft::singleport
