// Experimental realizations of the Theorem 13 lower-bound constructions:
//
//  * Port isolation (the Omega(t) argument): the adversary pre-computes,
//    round by round, which sources would deliver to a chosen victim and
//    crashes them at round 0 (at most t), keeping the victim information-
//    free. By construction every crash extends the victim's silence, so t
//    crashes buy >= t/2 silent sp-rounds — no algorithm can let the victim
//    decide correct gossip output earlier.
//
//  * State divergence (the Omega(log n) argument): two executions from
//    initial configurations differing at one node are traced; the set A[i]
//    of nodes whose observable history differs after round i can grow by at
//    most a factor 3 per round (each diverged node contacts at most one
//    other per execution), so agreement on differing decisions needs
//    >= log_3 n rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/params.hpp"

namespace lft::singleport {

struct IsolationResult {
  Round isolation_rounds = 0;      // sp-rounds before the victim's first receipt
  Round baseline_receipt = 0;      // first receipt with no crashes at all
  std::int64_t crashes_used = 0;   // crash budget consumed by the adversary
  bool victim_starved = false;     // victim never received anything at all
  Round protocol_rounds = 0;       // total sp-rounds of the final execution
};

/// Runs Linear-Consensus with the iterative port-killing adversary against
/// `victim`. Deterministic.
[[nodiscard]] IsolationResult run_port_isolation(NodeId n, std::int64_t t, NodeId victim);

struct DivergenceResult {
  /// diverged_per_round[i] = |A[i]|: nodes whose observable trace differs
  /// between the two executions within the first i+1 sp-rounds.
  std::vector<std::int64_t> diverged_per_round;
  Round rounds = 0;             // sp-rounds of the executions
  bool decisions_differ = false;  // the two runs decided differently
};

/// Traces two Linear-Consensus executions from configurations that differ
/// only in node 0's input (all-zeros vs. single one), and measures the
/// divergence growth.
[[nodiscard]] DivergenceResult run_divergence_experiment(NodeId n, std::int64_t t);

}  // namespace lft::singleport
