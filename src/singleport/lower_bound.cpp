#include "singleport/lower_bound.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "singleport/linear_consensus.hpp"

namespace lft::singleport {

namespace {

/// Wraps a single-port process and records its observable history: for each
/// round, a digest of (received message, returned action).
class RecordingProcess final : public sim::SinglePortProcess {
 public:
  explicit RecordingProcess(std::unique_ptr<sim::SinglePortProcess> inner)
      : inner_(std::move(inner)) {}

  sim::SpAction on_round(sim::SpContext& ctx,
                         const std::optional<sim::Message>& received) override {
    if (received.has_value() && !first_receipt_.has_value()) {
      first_receipt_ = ctx.round();
      first_sender_ = received->from;
    }
    const sim::SpAction action = inner_->on_round(ctx, received);
    std::uint64_t h = trace_.empty() ? 0x74726163ULL : trace_.back();
    if (received.has_value()) {
      h = hash_combine(h, static_cast<std::uint64_t>(received->from));
      h = hash_combine(h, received->value);
      h = hash_combine(h, hash_bytes(received->body()));
    } else {
      h = hash_combine(h, 0x6e6f6e65ULL);
    }
    if (action.send.has_value()) {
      h = hash_combine(h, static_cast<std::uint64_t>(action.send->to));
      h = hash_combine(h, action.send->value);
      h = hash_combine(h, hash_bytes(action.send->body));
    }
    h = hash_combine(h, static_cast<std::uint64_t>(action.poll));
    h = hash_combine(h, ctx.has_decided() ? 1 + ctx.decision() : 0);
    trace_.push_back(h);
    return action;
  }

  /// Cumulative trace digest after each round.
  [[nodiscard]] const std::vector<std::uint64_t>& trace() const noexcept { return trace_; }
  [[nodiscard]] std::optional<Round> first_receipt() const noexcept { return first_receipt_; }
  [[nodiscard]] NodeId first_sender() const noexcept { return first_sender_; }

 private:
  std::unique_ptr<sim::SinglePortProcess> inner_;
  std::vector<std::uint64_t> trace_;
  std::optional<Round> first_receipt_;
  NodeId first_sender_ = kNoNode;
};

struct TracedRun {
  sim::Report report;
  std::vector<std::vector<std::uint64_t>> traces;  // per node
  std::optional<Round> victim_first_receipt;
  NodeId victim_first_sender = kNoNode;
};

TracedRun run_traced(const core::ConsensusParams& params, std::span<const int> inputs,
                     const std::vector<NodeId>& crash_at_zero, NodeId victim) {
  sim::SinglePortConfig config;
  config.crash_budget = static_cast<std::int64_t>(crash_at_zero.size());
  sim::SinglePortEngine engine(params.n, config);
  for (NodeId v = 0; v < params.n; ++v) {
    engine.set_process(v, std::make_unique<RecordingProcess>(make_linear_consensus_process(
                              params, v, inputs[static_cast<std::size_t>(v)])));
  }
  std::vector<sim::CrashEvent> events;
  for (NodeId v : crash_at_zero) events.push_back(sim::CrashEvent{0, v, 0.0});
  if (!events.empty()) {
    engine.set_adversary(std::make_unique<ScheduledSpAdversary>(std::move(events)));
  }
  TracedRun run;
  run.report = engine.run();
  run.traces.reserve(static_cast<std::size_t>(params.n));
  for (NodeId v = 0; v < params.n; ++v) {
    auto& rec = static_cast<RecordingProcess&>(engine.process(v));
    run.traces.push_back(rec.trace());
    if (v == victim) {
      run.victim_first_receipt = rec.first_receipt();
      run.victim_first_sender = rec.first_sender();
    }
  }
  return run;
}

}  // namespace

IsolationResult run_port_isolation(NodeId n, std::int64_t t, NodeId victim) {
  LFT_ASSERT(victim >= 0 && victim < n);
  const auto params = core::ConsensusParams::single_port(n, t);
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  inputs[static_cast<std::size_t>(victim == 0 ? 1 : 0)] = 1;

  std::vector<NodeId> crash_set;
  IsolationResult result;
  // Iteratively crash the earliest node that manages to deliver to the
  // victim; each crash strictly extends the victim's silence.
  while (true) {
    TracedRun run = run_traced(params, inputs, crash_set, victim);
    result.protocol_rounds = run.report.rounds;
    result.crashes_used = static_cast<std::int64_t>(crash_set.size());
    if (crash_set.empty()) {
      result.baseline_receipt =
          run.victim_first_receipt.value_or(run.report.rounds);
    }
    if (!run.victim_first_receipt.has_value()) {
      result.victim_starved = true;
      result.isolation_rounds = run.report.rounds;
      break;
    }
    result.isolation_rounds = *run.victim_first_receipt;
    if (static_cast<std::int64_t>(crash_set.size()) >= t) break;
    LFT_ASSERT(run.victim_first_sender != kNoNode && run.victim_first_sender != victim);
    crash_set.push_back(run.victim_first_sender);
  }
  return result;
}

DivergenceResult run_divergence_experiment(NodeId n, std::int64_t t) {
  const auto params = core::ConsensusParams::single_port(n, t);
  std::vector<int> zeros(static_cast<std::size_t>(n), 0);
  std::vector<int> one_seed = zeros;
  one_seed[0] = 1;  // flood-of-ones protocols decide 1 from a single seed

  TracedRun e0 = run_traced(params, zeros, {}, 0);
  TracedRun e1 = run_traced(params, one_seed, {}, 0);

  DivergenceResult result;
  result.rounds = std::max(e0.report.rounds, e1.report.rounds);
  result.diverged_per_round.assign(static_cast<std::size_t>(result.rounds), 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& t0 = e0.traces[static_cast<std::size_t>(v)];
    const auto& t1 = e1.traces[static_cast<std::size_t>(v)];
    // First round where the observable histories differ (shorter trace =
    // halted earlier = divergence at the cut).
    const std::size_t common = std::min(t0.size(), t1.size());
    std::size_t diverge_at = common;
    for (std::size_t i = 0; i < common; ++i) {
      if (t0[i] != t1[i]) {
        diverge_at = i;
        break;
      }
    }
    if (diverge_at == common && t0.size() == t1.size()) continue;  // never diverged
    for (std::size_t r = diverge_at; r < result.diverged_per_round.size(); ++r) {
      ++result.diverged_per_round[r];
    }
  }
  const auto d0 = e0.report.agreed_value();
  const auto d1 = e1.report.agreed_value();
  result.decisions_differ = d0.has_value() && d1.has_value() && *d0 != *d1;
  return result;
}

}  // namespace lft::singleport
