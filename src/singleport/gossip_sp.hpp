// Single-port gossip (the Table 1 "Yes" for the gossip/checkpointing row):
// the gossip stages already declare per-round link budgets and plans
// (inquiry graphs G_i and the little overlay G), so the generic Section 8
// adapter runs them directly. The pull epilogue is disabled — its little-node
// in-degree is unbounded — and its dormancy is still metered: nodes lacking
// a certified set surface through the fallback counter.
#pragma once

#include <memory>
#include <span>

#include "core/gossip.hpp"
#include "sim/single_port.hpp"
#include "singleport/adapter.hpp"

namespace lft::singleport {

class SinglePortGossipProcess final : public sim::SinglePortProcess {
 public:
  SinglePortGossipProcess(std::shared_ptr<const core::GossipConfig> cfg, NodeId self,
                          std::uint64_t rumor);

  sim::SpAction on_round(sim::SpContext& ctx,
                         const std::optional<sim::Message>& received) override;

  [[nodiscard]] const core::GossipState& state() const noexcept { return state_; }

 private:
  core::GossipState state_;
  SinglePortStageProcess adapter_;
};

/// Runs gossip in the single-port model and evaluates the same conditions as
/// core::run_gossip.
[[nodiscard]] core::GossipOutcome run_single_port_gossip(
    const core::GossipParams& params, std::span<const std::uint64_t> rumors,
    std::unique_ptr<sim::SpAdversary> adversary);

}  // namespace lft::singleport
