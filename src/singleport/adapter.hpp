// The Section 8 construction, generalized: any stage-based protocol whose
// stages declare per-round link budgets and link plans can be executed in
// the single-port model. Each multi-port round r expands into a block of
// max_out(r) + max_in(r) sp-rounds: the node first pushes its queued sends
// one link at a time, then polls each potential in-link once. Budgets are
// node-independent, so all nodes stay block-aligned; every send of a block
// happens in a slot strictly before every poll of that block, so polls pick
// up exactly the block's messages (FIFO queues never accumulate).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/io.hpp"
#include "sim/single_port.hpp"

namespace lft::singleport {

class SinglePortStageProcess final : public sim::SinglePortProcess {
 public:
  explicit SinglePortStageProcess(NodeId self) : self_(self) {}

  void add_stage(std::unique_ptr<core::Stage> stage) { stages_.push_back(std::move(stage)); }

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] core::BinaryState& state() noexcept { return state_; }
  [[nodiscard]] const core::BinaryState& state() const noexcept { return state_; }

  /// Total sp-rounds the protocol occupies (sum of block lengths).
  [[nodiscard]] Round total_sp_duration() const;

  sim::SpAction on_round(sim::SpContext& ctx, const std::optional<sim::Message>& received) override;

 private:
  /// Queued payloads live as (offset, length) slices of queued_bytes_, the
  /// per-block pool filled while the wrapped stage runs at slot 0 and stable
  /// until the next block starts — so the SpSend emitted for a slot can view
  /// it directly.
  struct QueuedSend {
    std::uint32_t tag = 0;
    std::uint64_t value = 0;
    std::uint64_t bits = 1;
    std::size_t body_offset = 0;
    std::size_t body_len = 0;
  };

  /// Collects the wrapped stage's sends for slot-by-slot emission.
  class QueueIo final : public core::ProtocolIo {
   public:
    QueueIo(std::map<NodeId, QueuedSend>& queue, std::vector<std::byte>& bytes,
            sim::SpContext& ctx)
        : queue_(&queue), bytes_(&bytes), ctx_(&ctx) {}
    void send(NodeId to, std::uint32_t tag, std::uint64_t value, std::uint64_t bits,
              sim::PayloadView body) override;
    void decide(std::uint64_t value) override { ctx_->decide(value); }
    // Lifecycle control stays with the adapter: stages only send/decide
    // (halting and parking are Program-wrapper concerns), so these are
    // unreachable from the wrapped stage and deliberately inert.
    void halt() override {}
    void sleep_until(Round /*wake_round*/) override {}
    void count_fallback() override { ctx_->count_fallback(); }

   private:
    std::map<NodeId, QueuedSend>* queue_;
    std::vector<std::byte>* bytes_;
    sim::SpContext* ctx_;
  };

  void advance_mp_round();

  NodeId self_;
  std::vector<std::unique_ptr<core::Stage>> stages_;
  core::BinaryState state_;

  std::size_t stage_index_ = 0;
  Round stage_round_ = 0;  // mp-round within the current stage
  Round slot_ = 0;         // sp-slot within the current block
  bool done_ = false;

  core::LinkBudget budget_;
  core::LinkPlan plan_;
  std::map<NodeId, QueuedSend> queued_;  // this block's sends by target
  std::vector<std::byte> queued_bytes_;  // this block's payload pool

  // Polled messages for the next mp-round. Poll payloads are copied into
  // acc_bytes_ (their engine-side scratch is call-scoped); the messages
  // record offsets and are rebound to pointers once the block is complete
  // and acc_bytes_ stops growing.
  std::vector<sim::Message> inbox_accumulator_;
  std::vector<std::size_t> acc_offsets_;
  std::vector<std::byte> acc_bytes_;
};

}  // namespace lft::singleport
