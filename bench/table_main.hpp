// Shared main body for the table benches (split from bench_json.hpp so
// non-benchmark binaries — e.g. the scenario runner — can use the JSON
// helpers without linking Google Benchmark).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_json.hpp"

namespace lft::bench {

/// Parses `--json=PATH`, runs `print` (with a JsonRows sink or nullptr),
/// writes the file, then hands the remaining argv to google-benchmark.
/// Returns the process exit code.
template <class PrintFn>
int table_main(int argc, char** argv, PrintFn&& print) {
  const std::string json_path = json_flag(argc, argv);
  JsonRows rows;
  JsonRows* json = json_path.empty() ? nullptr : &rows;
  print(json);
  if (json != nullptr && !rows.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace lft::bench
