// E-THM8 — Theorem 8 / Corollary 1: Many-Crashes-Consensus works for any
// t < n within n + 3(1 + lg n) rounds and at most (5/(1-alpha))^8 n lg n
// one-bit messages (alpha = t/n). The table sweeps alpha and reports
// measured rounds/messages next to the paper's formulas; the measured
// messages sit far below the formula (whose constant is astronomically
// conservative) but grow with 1/(1-alpha) in the same direction.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/consensus.hpp"
#include "core/params.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_table() {
  banner("E-THM8: Many-Crashes-Consensus (any t < n)",
         "claim: <= n + 3(1+lg n) rounds; <= (5/(1-a))^8 n lg n one-bit messages");
  Table table({"n", "t", "alpha", "rounds", "bound", "messages", "paper_msgs", "ok"});
  table.print_header();
  for (NodeId n : {256, 512, 1024}) {
    for (double alpha : {0.2, 0.5, 0.9}) {
      const auto t = static_cast<std::int64_t>(alpha * n);
      const auto params = core::ConsensusParams::practical(n, t);
      const auto inputs = random_binary_inputs(n, 13);
      const auto outcome = core::run_many_crashes_consensus(
          params, inputs, random_crashes(n, t, n / 2, 19));
      const auto lgn = ceil_log2(static_cast<std::uint64_t>(n));
      const Round round_bound = n + 3 * (1 + lgn);
      const double paper_msgs = std::pow(5.0 / (1.0 - alpha), 8.0) *
                                static_cast<double>(n) * static_cast<double>(lgn);
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(alpha);
      table.cell(outcome.report.rounds);
      table.cell(round_bound);
      table.cell(outcome.report.metrics.messages_total);
      table.cell_sci(paper_msgs);
      table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
      table.end_row();
    }
  }
  // Corollary 1 extreme: t = n - 1.
  {
    const NodeId n = 256;
    const auto params = core::ConsensusParams::practical(n, n - 1);
    const auto inputs = random_binary_inputs(n, 13);
    const auto outcome = core::run_many_crashes_consensus(
        params, inputs, random_crashes(n, n - 1, n, 23));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(static_cast<std::int64_t>(n - 1));
    table.cell(std::string("1-1/n"));
    table.cell(outcome.report.rounds);
    table.cell(static_cast<std::int64_t>(n + 3 * (1 + ceil_log2(static_cast<std::uint64_t>(n)))));
    table.cell(outcome.report.metrics.messages_total);
    table.cell(std::string("58 n^9 lg n"));
    table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
    table.end_row();
  }
  std::printf(
      "\nexpected shape: measured rounds track n + O(log n) (within ~2x of the bound);\n"
      "messages grow with 1/(1-alpha) but stay orders below the paper's constants.\n");
}

void BM_ManyCrashes(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 2;
  const auto params = core::ConsensusParams::practical(n, t);
  const auto inputs = random_binary_inputs(n, 13);
  for (auto _ : state) {
    auto outcome =
        core::run_many_crashes_consensus(params, inputs, random_crashes(n, t, n / 2, 19));
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_ManyCrashes)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
