// E-T1-R1 — Table 1, row "crash consensus: optimal for t = O(n / log n)".
// Inside the range, rounds/t and bits/n must stay flat (linear time AND
// linear communication); at t = n/5 (outside the range) bits/n grows with
// the log factor, reproducing why the paper's optimality range stops there.
//
// `--json=PATH` additionally writes every table row (n, t, regime, rounds,
// messages, bits, wall_ms, ok) as a JSON array — CI archives it as
// BENCH_table1_consensus.json so the perf trajectory is machine-readable.
#include <benchmark/benchmark.h>

#include "table_main.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void record_row(JsonRows* json, const char* sweep, NodeId n, std::int64_t t,
                const char* regime, const core::ConsensusOutcome& outcome, double wall_ms) {
  record_table_row(json, {{"sweep", sweep}, {"regime", regime}}, n, t,
                   outcome.report.rounds, outcome.report.metrics.messages_total,
                   outcome.report.metrics.bits_total, wall_ms, outcome.all_good());
}

void print_table(JsonRows* json) {
  banner("E-T1-R1: Table 1 row 2 (crash consensus)",
         "claim: deterministic consensus with O(t) rounds and O(n) bits for t = O(n/log n)");
  Table table({"n", "t", "regime", "rounds", "rounds/t", "bits", "bits/n", "ok"});
  table.print_header();
  for (NodeId n : {512, 1024, 2048, 4096}) {
    for (const char* regime : {"n/lg n", "n/5"}) {
      const std::int64_t t = std::string(regime) == "n/lg n"
                                 ? n / (5 * ceil_log2(static_cast<std::uint64_t>(n)))
                                 : (n / 5 - 1);
      const auto params = core::ConsensusParams::practical(n, t);
      const auto inputs = random_binary_inputs(n, 17);
      const WallTimer timer;
      const auto outcome = core::run_few_crashes_consensus(
          params, inputs, random_crashes(n, t, 5 * t + 10, 23));
      record_row(json, "table1", n, t, regime, outcome, timer.ms());
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(std::string(regime));
      table.cell(outcome.report.rounds);
      table.cell(static_cast<double>(outcome.report.rounds) / static_cast<double>(t));
      table.cell(outcome.report.metrics.bits_total);
      table.cell(static_cast<double>(outcome.report.metrics.bits_total) /
                 static_cast<double>(n));
      table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
      table.end_row();
    }
  }
  std::printf(
      "\nexpected shape: rounds/t flat in both regimes; bits/n flat for t=n/lg n and\n"
      "growing ~log n at t=n/5 (the optimality range boundary of Table 1).\n");
}

// Large-n crash-failure sweep in the optimal regime; exercises the batched
// event-driven engine and the implicit inquiry overlays at production scale.
void print_big_sweep(JsonRows* json) {
  banner("E-T1-R1b: large-n crash sweep (t = n/(5 lg n))",
         "claim: the engine sustains n = 100000 node executions in seconds");
  Table table({"n", "t", "rounds", "msgs", "bits/n", "ok"});
  table.print_header();
  for (NodeId n : {50000, 100000}) {
    const std::int64_t t = n / (5 * ceil_log2(static_cast<std::uint64_t>(n)));
    const auto params = core::ConsensusParams::practical(n, t);
    const auto inputs = random_binary_inputs(n, 17);
    const WallTimer timer;
    const auto outcome = core::run_few_crashes_consensus(
        params, inputs, random_crashes(n, t, 5 * t + 10, 23));
    record_row(json, "big_sweep", n, t, "n/lg n", outcome, timer.ms());
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(outcome.report.rounds);
    table.cell(outcome.report.metrics.messages_total);
    table.cell(static_cast<double>(outcome.report.metrics.bits_total) /
               static_cast<double>(n));
    table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
    table.end_row();
  }
}

void BM_FewCrashesConsensus(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / (5 * ceil_log2(static_cast<std::uint64_t>(n)));
  const auto params = core::ConsensusParams::practical(n, t);
  const auto inputs = random_binary_inputs(n, 17);
  core::ConsensusOutcome outcome;
  for (auto _ : state) {
    outcome = core::run_few_crashes_consensus(params, inputs,
                                              random_crashes(n, t, 5 * t + 10, 23));
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
  state.counters["rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["bits"] = static_cast<double>(outcome.report.metrics.bits_total);
  state.counters["bits_per_node"] =
      static_cast<double>(outcome.report.metrics.bits_total) / static_cast<double>(n);
}
BENCHMARK(BM_FewCrashesConsensus)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv, [](lft::bench::JsonRows* json) {
    print_table(json);
    print_big_sweep(json);
  });
}

