// E-THM13 — Theorem 13: the Omega(t + log n) single-port lower bound,
// realized experimentally.
//  (a) Port isolation: the iterative port-killing adversary keeps a victim
//      information-free; t crashes buy >= t/2 silent sp-rounds, so no
//      algorithm can terminate a victim with correct gossip output earlier.
//  (b) State divergence: two executions differing in one input diverge at
//      most by a factor 3 per round (|A[i]| <= 3^i), so differing decisions
//      need >= log_3 n rounds.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "singleport/lower_bound.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_tables() {
  banner("E-THM13a: port isolation (Omega(t))",
         "claim: with budget t the adversary forces >= t/2 silent sp-rounds at a victim");
  Table table({"n", "t", "crashes", "no-crash_rcpt", "silent_rounds", "silent/t", "starved"});
  table.print_header();
  for (auto [n, t] : std::vector<std::pair<NodeId, std::int64_t>>{
           {64, 4}, {64, 8}, {64, 12}, {128, 16}, {128, 24}}) {
    const auto result = singleport::run_port_isolation(n, t, n - 1);
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(result.crashes_used);
    table.cell(result.baseline_receipt);
    table.cell(result.isolation_rounds);
    table.cell(static_cast<double>(result.isolation_rounds) / static_cast<double>(t));
    table.cell(std::string(result.victim_starved ? "yes" : "no"));
    table.end_row();
  }
  std::printf(
      "\nexpected shape: silent/t >= 0.5 everywhere (the Omega(t) bound), and\n"
      "silent_rounds > no-crash receipt (the adversary actively delays the victim).\n");

  banner("E-THM13b: state divergence (Omega(log n))",
         "claim: |A[i]| <= 3^i, so differing decisions require >= log_3 n rounds");
  Table table2({"round", "diverged", "3^i cap", "within"});
  table2.print_header();
  const auto result = singleport::run_divergence_experiment(256, 16);
  std::int64_t cap = 1;
  std::size_t printed = 0;
  for (std::size_t i = 0; i < result.diverged_per_round.size(); ++i) {
    // Subsample: print every round until divergence moves, then milestones.
    const bool moved = i == 0 || result.diverged_per_round[i] != result.diverged_per_round[i - 1];
    if (moved && printed < 24) {
      table2.cell(static_cast<std::int64_t>(i));
      table2.cell(result.diverged_per_round[i]);
      table2.cell(cap);
      table2.cell(std::string(result.diverged_per_round[i] <= cap ? "yes" : "NO"));
      table2.end_row();
      ++printed;
    }
    if (cap < (std::int64_t{1} << 40)) cap *= 3;
  }
  std::printf("\ndecisions differ: %s; log_3(256) = %.2f rounds is the floor.\n",
              result.decisions_differ ? "yes" : "no", std::log(256.0) / std::log(3.0));
}

void BM_PortIsolation(benchmark::State& state) {
  const auto t = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    auto result = singleport::run_port_isolation(64, t, 63);
    benchmark::DoNotOptimize(result.isolation_rounds);
  }
}
BENCHMARK(BM_PortIsolation)->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_Divergence(benchmark::State& state) {
  for (auto _ : state) {
    auto result = singleport::run_divergence_experiment(128, 8);
    benchmark::DoNotOptimize(result.rounds);
  }
}
BENCHMARK(BM_Divergence)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
