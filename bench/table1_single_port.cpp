// E-T1-R4 — Table 1, single-port column ("Yes" for the crash rows):
// Linear-Consensus keeps the multi-port complexity in the single-port model,
// with rounds Theta(t + log n) (the Theorem 13 lower bound makes the log n
// term necessary).
#include <benchmark/benchmark.h>

#include "table_main.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "singleport/linear_consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_table(JsonRows* json) {
  banner("E-T1-R4: Table 1 single-port column",
         "claim: single-port consensus in O(t + log n) rounds with O(n + t log n) bits");
  Table table({"n", "t", "sp_rounds", "r/(t+lgn)", "bits", "bits/n", "ok"});
  table.print_header();
  for (auto [n, t] : std::vector<std::pair<NodeId, std::int64_t>>{
           {256, 8}, {256, 32}, {1024, 16}, {1024, 128}, {2048, 256}}) {
    const auto params = core::ConsensusParams::single_port(n, t);
    const auto inputs = random_binary_inputs(n, 41);
    auto adversary = t == 0 ? nullptr
                            : std::make_unique<singleport::ScheduledSpAdversary>(
                                  sim::random_crash_schedule(n, t, 0, 40 * t, 0.0, 43));
    const WallTimer timer;
    const auto outcome = singleport::run_linear_consensus(params, inputs, std::move(adversary));
    record_table_row(json, {}, n, t, outcome.report.rounds,
                     outcome.report.metrics.messages_total,
                     outcome.report.metrics.bits_total, timer.ms(), outcome.all_good());
    const double shape =
        static_cast<double>(t) + ceil_log2(static_cast<std::uint64_t>(n));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(outcome.report.rounds);
    table.cell(static_cast<double>(outcome.report.rounds) / shape);
    table.cell(outcome.report.metrics.bits_total);
    table.cell(static_cast<double>(outcome.report.metrics.bits_total) /
               static_cast<double>(n));
    table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
    table.end_row();
  }
  std::printf("\nexpected shape: sp_rounds/(t+lg n) flat; bits/n bounded.\n");
}

void BM_LinearConsensus(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 16;
  const auto params = core::ConsensusParams::single_port(n, t);
  const auto inputs = random_binary_inputs(n, 41);
  core::ConsensusOutcome outcome;
  for (auto _ : state) {
    outcome = singleport::run_linear_consensus(params, inputs, nullptr);
  }
  state.counters["sp_rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["bits"] = static_cast<double>(outcome.report.metrics.bits_total);
}
BENCHMARK(BM_LinearConsensus)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv, [](lft::bench::JsonRows* json) { print_table(json); });
}

