// Fleet-throughput bench: aggregate instances/sec of the instance-
// multiplexed FleetRunner vs. a serial one-at-a-time loop over the same
// mixed scenario batch. The table reports the serial baseline and the fleet
// at 1/2/4/8 workers with per-row speedups; on a machine with >= 8 cores
// the 8-worker row is expected to clear 2x (the single-worker row also
// isolates the scratch-recycling gain from multiplexing proper). --json=PATH
// captures the rows in the BENCH_*.json artifact schema.
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fleet.hpp"
#include "table_main.hpp"

namespace lft::bench {
namespace {

using scenarios::SweepItem;

/// The benchmark batch: a scenario mix across fault classes at fleet-scale
/// sizes (small enough that hundreds of instances stay in benchmark budget).
std::vector<SweepItem> fleet_batch(std::int64_t seeds_per_cell) {
  static const std::vector<NodeId> kSizes = {64, 96};
  static const char* kScenarios[] = {"crash_staggered_drip", "omission_send_quorum",
                                     "partition_split_heal", "byz_silent_little"};
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(seeds_per_cell));
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 1 + static_cast<std::uint64_t>(i);
  std::vector<SweepItem> items;
  for (const char* name : kScenarios) {
    auto expanded = scenarios::sweep(name, seeds, kSizes);
    items.insert(items.end(), expanded.begin(), expanded.end());
  }
  return items;
}

/// One-at-a-time reference execution (what a user's plain loop would do).
double run_serial_ms(const std::vector<SweepItem>& items) {
  const WallTimer timer;
  for (const auto& item : items) {
    const auto result = item.scenario->run_at(item.seed, item.n, item.t, {});
    benchmark::DoNotOptimize(result.report.rounds);
  }
  return timer.ms();
}

double run_fleet_ms(const std::vector<SweepItem>& items, int threads) {
  sim::FleetRunner fleet(sim::FleetConfig{threads, /*reuse_scratch=*/true});
  const WallTimer timer;
  const auto outcomes = scenarios::run_sweep(fleet, items);
  benchmark::DoNotOptimize(outcomes.size());
  return timer.ms();
}

void print_fleet_table(JsonRows* json) {
  const unsigned cores = std::thread::hardware_concurrency();
  banner("fleet throughput",
         "aggregate instances/sec over a mixed scenario batch: serial loop vs. "
         "instance-multiplexed FleetRunner (>= 2x expected at 8 workers on >= 8 cores)");
  std::printf("hardware threads: %u\n\n", cores);

  const auto items = fleet_batch(/*seeds_per_cell=*/16);  // 4 scenarios x 16 seeds x 2 sizes
  const auto count = static_cast<std::int64_t>(items.size());

  Table table({"mode", "workers", "instances", "wall_ms", "inst_per_sec", "speedup"});
  table.print_header();

  const double serial_ms = run_serial_ms(items);
  const double serial_rate = 1000.0 * static_cast<double>(count) / serial_ms;
  table.cell("serial-loop");
  table.cell(static_cast<std::int64_t>(1));
  table.cell(count);
  table.cell(serial_ms);
  table.cell(serial_rate);
  table.cell(1.0);
  table.end_row();
  if (json != nullptr) {
    json->begin_row();
    json->field("mode", std::string("serial"));
    json->field("workers", static_cast<std::int64_t>(1));
    json->field("instances", count);
    json->field("wall_ms", serial_ms);
    json->field("instances_per_sec", serial_rate);
    json->field("speedup", 1.0);
  }

  for (const int workers : {1, 2, 4, 8}) {
    const double fleet_ms = run_fleet_ms(items, workers);
    const double rate = 1000.0 * static_cast<double>(count) / fleet_ms;
    const double speedup = serial_ms / fleet_ms;
    table.cell("fleet");
    table.cell(static_cast<std::int64_t>(workers));
    table.cell(count);
    table.cell(fleet_ms);
    table.cell(rate);
    table.cell(speedup);
    table.end_row();
    if (json != nullptr) {
      json->begin_row();
      json->field("mode", std::string("fleet"));
      json->field("workers", static_cast<std::int64_t>(workers));
      json->field("instances", count);
      json->field("wall_ms", fleet_ms);
      json->field("instances_per_sec", rate);
      json->field("speedup", speedup);
    }
  }
}

void bm_serial_loop(benchmark::State& state) {
  const auto items = fleet_batch(/*seeds_per_cell=*/4);
  for (auto _ : state) benchmark::DoNotOptimize(run_serial_ms(items));
  state.counters["instances"] = static_cast<double>(items.size());
}

void bm_fleet(benchmark::State& state) {
  const auto items = fleet_batch(/*seeds_per_cell=*/4);
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(run_fleet_ms(items, workers));
  state.counters["instances"] = static_cast<double>(items.size());
}

BENCHMARK(bm_serial_loop)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_fleet)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lft::bench

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv, lft::bench::print_fleet_table);
}
