// E-THM7 — Theorem 7: Few-Crashes-Consensus runs in O(t + log n) rounds with
// O(n + t log t) one-bit messages, versus the classical baselines: FloodSet
// (t+1 rounds but Theta(t n^2) messages) and the rotating coordinator (O(t)
// rounds, O(t n) messages). The paper's algorithm wins on communication by
// factors growing with n — this bench reproduces the who-wins picture.
#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "core/consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_table() {
  banner("E-THM7: Few-Crashes-Consensus vs. classical baselines",
         "claim: O(t + log n) rounds, O(n + t log t) bits; baselines pay Theta(t n^2) / Theta(t n)");
  Table table({"algorithm", "n", "t", "rounds", "bits", "bits/n"});
  table.print_header();
  for (NodeId n : {256, 512, 1024}) {
    const std::int64_t t = n / 8;
    const auto inputs = random_binary_inputs(n, 3);
    {
      const auto params = core::ConsensusParams::practical(n, t);
      const auto outcome = core::run_few_crashes_consensus(
          params, inputs, random_crashes(n, t, 5 * t, 5));
      table.cell(std::string("Few-Crashes"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.bits_total);
      table.cell(static_cast<double>(outcome.report.metrics.bits_total) / n);
      table.end_row();
    }
    {
      const auto outcome =
          baselines::run_rotating_coordinator(n, t, inputs, random_crashes(n, t, t, 5));
      table.cell(std::string("coordinator"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.bits_total);
      table.cell(static_cast<double>(outcome.report.metrics.bits_total) / n);
      table.end_row();
    }
    if (n <= 512) {  // FloodSet is Theta(t n^2): keep sizes moderate
      const auto outcome = baselines::run_floodset(n, t, inputs, random_crashes(n, t, t, 5));
      table.cell(std::string("FloodSet"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.bits_total);
      table.cell(static_cast<double>(outcome.report.metrics.bits_total) / n);
      table.end_row();
    }
  }
  std::printf(
      "\nexpected shape: Few-Crashes bits/n stays O(log)-bounded; coordinator grows ~t;\n"
      "FloodSet grows ~t*n — the paper's algorithm wins by widening factors.\n");
}

void BM_FewCrashes(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 8;
  const auto params = core::ConsensusParams::practical(n, t);
  const auto inputs = random_binary_inputs(n, 3);
  for (auto _ : state) {
    auto outcome =
        core::run_few_crashes_consensus(params, inputs, random_crashes(n, t, 5 * t, 5));
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_FewCrashes)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_FloodSet(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 8;
  const auto inputs = random_binary_inputs(n, 3);
  for (auto _ : state) {
    auto outcome = baselines::run_floodset(n, t, inputs, random_crashes(n, t, t, 5));
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_FloodSet)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
