// E-THM12 — Theorem 12: Linear-Consensus in the single-port model runs in
// O(t + log n) sp-rounds with O(n + t log n) bits, in both Section 8
// regimes (t >= sqrt(n): related-node star scheduled link by link;
// t < sqrt(n): extended SCV flooding replaces the star).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "singleport/linear_consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_table() {
  banner("E-THM12: Linear-Consensus (single-port)",
         "claim: O(t + log n) sp-rounds, O(n + t log n) bits, both t-vs-sqrt(n) regimes");
  Table table({"n", "t", "regime", "sp_rounds", "r/(t+lgn)", "bits", "ok"});
  table.print_header();
  for (auto [n, t] : std::vector<std::pair<NodeId, std::int64_t>>{
           {400, 10},    // t < sqrt(n)
           {400, 60},    // t >= sqrt(n)
           {1600, 30},   // t < sqrt(n)
           {1600, 250},  // t >= sqrt(n)
           {3200, 600}}) {
    const auto params = core::ConsensusParams::single_port(n, t);
    const auto inputs = random_binary_inputs(n, 83);
    auto adversary = std::make_unique<singleport::ScheduledSpAdversary>(
        sim::random_crash_schedule(n, t, 0, 40 * t, 0.0, 89));
    const auto outcome = singleport::run_linear_consensus(params, inputs, std::move(adversary));
    const bool star = t * t >= static_cast<std::int64_t>(n);
    const double shape =
        static_cast<double>(t) + ceil_log2(static_cast<std::uint64_t>(n));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(std::string(star ? "star" : "flood"));
    table.cell(outcome.report.rounds);
    table.cell(static_cast<double>(outcome.report.rounds) / shape);
    table.cell(outcome.report.metrics.bits_total);
    table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
    table.end_row();
  }
  std::printf("\nexpected shape: sp_rounds/(t + lg n) bounded in both regimes.\n");
}

void BM_LinearConsensusSweep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 8;
  const auto params = core::ConsensusParams::single_port(n, t);
  const auto inputs = random_binary_inputs(n, 83);
  for (auto _ : state) {
    auto outcome = singleport::run_linear_consensus(params, inputs, nullptr);
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_LinearConsensusSweep)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
