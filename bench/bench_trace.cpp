// Recorder-overhead gate for the forensics plane: the same engine-hotpath
// fanout workload (bench/engine_hotpath.cpp) with tracing off vs. a
// TraceRecorder installed. The TraceSink contract is <= 5% overhead or
// <= 5 ns per message on the hot path when enabled, whichever allows more
// (and zero when disabled — loss counters hide behind the drop branches);
// scripts/check_trace_overhead.py compares the paired BM_TraceOff/BM_TraceOn
// items_per_second rates and fails CI past both bounds (advisory under
// ASan, like the hotpath gate). The absolute budget is what keeps the gate
// stable as the untraced baseline speeds up: the recorder's digest work is
// a fixed per-message cost, not a fraction of delivery time.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "forensics/trace.hpp"
#include "sim/engine.hpp"

namespace {

using namespace lft;
using namespace lft::sim;

constexpr NodeId kNodes = 1024;
constexpr Round kRounds = 4;

/// Every node sends `fan` messages per round to a fixed pseudo-random set of
/// receivers, cycling through 7 tags, then halts after kRounds (the
/// engine_hotpath workload).
class FanoutProcess final : public Process {
 public:
  FanoutProcess(NodeId self, int fan, std::size_t body_bytes)
      : self_(self), fan_(fan), body_(body_bytes, std::byte{0x5A}) {}

  void on_round(Context& ctx, const Inbox& inbox) override {
    benchmark::DoNotOptimize(inbox.size());
    if (ctx.round() >= kRounds) {
      ctx.halt();
      return;
    }
    for (int i = 0; i < fan_; ++i) {
      const auto to = static_cast<NodeId>(
          (static_cast<std::int64_t>(self_) * 31 + i * 17 + ctx.round()) % kNodes);
      const auto tag = static_cast<std::uint32_t>(i % 7);
      if (body_.empty()) {
        ctx.send(to, tag, static_cast<std::uint64_t>(i));
      } else {
        ctx.send(to, tag, static_cast<std::uint64_t>(i), 1 + body_.size() * 8, body_);
      }
    }
  }

 private:
  NodeId self_;
  int fan_;
  std::vector<std::byte> body_;
};

void run_fanout(benchmark::State& state, std::size_t body_bytes, bool traced) {
  const auto messages = static_cast<std::int64_t>(state.range(0));
  const int fan = static_cast<int>(messages / kNodes);
  std::int64_t delivered = 0;
  std::uint64_t digest_guard = 0;
  for (auto _ : state) {
    forensics::TraceRecorder recorder;
    EngineConfig config;
    if (traced) config.trace = &recorder;
    Engine engine(kNodes, config);
    for (NodeId v = 0; v < kNodes; ++v) {
      engine.set_process(v, std::make_unique<FanoutProcess>(v, fan, body_bytes));
    }
    const Report report = engine.run();
    delivered = report.metrics.messages_total;
    for (const auto& d : recorder.trace().rounds) digest_guard ^= d.payload_hash;
    benchmark::DoNotOptimize(delivered);
    benchmark::DoNotOptimize(digest_guard);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
}

void BM_TraceOff(benchmark::State& state) { run_fanout(state, 0, false); }
BENCHMARK(BM_TraceOff)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_TraceOn(benchmark::State& state) { run_fanout(state, 0, true); }
BENCHMARK(BM_TraceOn)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_TraceOffBody(benchmark::State& state) { run_fanout(state, 32, false); }
BENCHMARK(BM_TraceOffBody)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_TraceOnBody(benchmark::State& state) { run_fanout(state, 32, true); }
BENCHMARK(BM_TraceOnBody)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
