// Microbenchmarks for the engine's message plane: raw send/deliver
// throughput with and without payload bodies, at batch sizes m spanning
// 10^5..10^7 messages. This isolates the per-message constant factor the
// paper's O(n) communication bounds make the whole ballgame — protocol logic
// is a trivial fan-out so the measured time is arena append + crash filter +
// delivery sweep into (receiver, tag) normal form.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "sim/engine.hpp"

namespace {

using namespace lft;
using namespace lft::sim;

constexpr NodeId kNodes = 1024;
constexpr Round kRounds = 4;

/// Every node sends `fan` messages per round to a fixed pseudo-random set of
/// receivers, cycling through 7 tags, then halts after kRounds.
class FanoutProcess final : public Process {
 public:
  FanoutProcess(NodeId self, int fan, std::size_t body_bytes)
      : self_(self), fan_(fan), body_(body_bytes, std::byte{0x5A}) {}

  void on_round(Context& ctx, const Inbox& inbox) override {
    benchmark::DoNotOptimize(inbox.size());
    if (ctx.round() >= kRounds) {
      ctx.halt();
      return;
    }
    for (int i = 0; i < fan_; ++i) {
      const auto to = static_cast<NodeId>(
          (static_cast<std::int64_t>(self_) * 31 + i * 17 + ctx.round()) % kNodes);
      const auto tag = static_cast<std::uint32_t>(i % 7);
      if (body_.empty()) {
        ctx.send(to, tag, static_cast<std::uint64_t>(i));
      } else {
        ctx.send(to, tag, static_cast<std::uint64_t>(i), 1 + body_.size() * 8, body_);
      }
    }
  }

 private:
  NodeId self_;
  int fan_;
  std::vector<std::byte> body_;
};

void run_fanout(benchmark::State& state, std::size_t body_bytes) {
  const auto messages = static_cast<std::int64_t>(state.range(0));
  const int fan = static_cast<int>(messages / kNodes);
  std::int64_t delivered = 0;
  for (auto _ : state) {
    Engine engine(kNodes, {});
    for (NodeId v = 0; v < kNodes; ++v) {
      engine.set_process(v, std::make_unique<FanoutProcess>(v, fan, body_bytes));
    }
    const Report report = engine.run();
    delivered = report.metrics.messages_total;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
  state.counters["msgs_per_round"] = static_cast<double>(fan) * kNodes;
}

void BM_SendDeliver(benchmark::State& state) { run_fanout(state, 0); }
BENCHMARK(BM_SendDeliver)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SendDeliverBody(benchmark::State& state) { run_fanout(state, 32); }
BENCHMARK(BM_SendDeliverBody)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
