// Microbenchmarks for the engine's message plane: raw send/deliver
// throughput with and without payload bodies, at batch sizes m spanning
// 10^5..10^7 messages. This isolates the per-message constant factor the
// paper's O(n) communication bounds make the whole ballgame — protocol logic
// is a trivial fan-out so the measured time is arena append + crash filter +
// delivery sweep into (receiver, tag) normal form.
//
// Extra flags (stripped before Google Benchmark sees the command line):
//   --simd=scalar|avx2|avx512|auto   force the engine's dispatch tier
//                                    (clamped to what the CPU supports;
//                                    equivalent to the LFT_SIMD env var)
//   --json=PATH                      write one flat JSON row per benchmark
//                                    run (bench, m, simd, ms, items/s) in
//                                    the shared BENCH_*.json row schema that
//                                    scripts/check_hotpath_regression.py and
//                                    scripts/bench_report.py consume
//   --print-simd-tier                print the resolved tier and exit (CI
//                                    uses this to label artifacts)
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/simd.hpp"
#include "sim/engine.hpp"

namespace {

using namespace lft;
using namespace lft::sim;

constexpr NodeId kNodes = 1024;
constexpr Round kRounds = 4;

// Dispatch tier under test for every benchmark in this binary; one tier per
// invocation keeps the JSON rows unambiguous (CI runs the binary once per
// tier it gates).
simd::Tier g_tier = simd::Tier::kAuto;

/// Every node sends `fan` messages per round to a fixed pseudo-random set of
/// receivers, cycling through 7 tags, then halts after kRounds.
class FanoutProcess final : public Process {
 public:
  FanoutProcess(NodeId self, int fan, std::size_t body_bytes)
      : self_(self), fan_(fan), body_(body_bytes, std::byte{0x5A}) {}

  void on_round(Context& ctx, const Inbox& inbox) override {
    benchmark::DoNotOptimize(inbox.size());
    if (ctx.round() >= kRounds) {
      ctx.halt();
      return;
    }
    for (int i = 0; i < fan_; ++i) {
      const auto to = static_cast<NodeId>(
          (static_cast<std::int64_t>(self_) * 31 + i * 17 + ctx.round()) % kNodes);
      const auto tag = static_cast<std::uint32_t>(i % 7);
      if (body_.empty()) {
        ctx.send(to, tag, static_cast<std::uint64_t>(i));
      } else {
        ctx.send(to, tag, static_cast<std::uint64_t>(i), 1 + body_.size() * 8, body_);
      }
    }
  }

 private:
  NodeId self_;
  int fan_;
  std::vector<std::byte> body_;
};

void run_fanout(benchmark::State& state, std::size_t body_bytes) {
  const auto messages = static_cast<std::int64_t>(state.range(0));
  const int fan = static_cast<int>(messages / kNodes);
  std::int64_t delivered = 0;
  for (auto _ : state) {
    EngineConfig config;
    config.simd = g_tier;
    Engine engine(kNodes, config);
    for (NodeId v = 0; v < kNodes; ++v) {
      engine.set_process(v, std::make_unique<FanoutProcess>(v, fan, body_bytes));
    }
    const Report report = engine.run();
    delivered = report.metrics.messages_total;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
  state.counters["msgs_per_round"] = static_cast<double>(fan) * kNodes;
}

void BM_SendDeliver(benchmark::State& state) { run_fanout(state, 0); }
BENCHMARK(BM_SendDeliver)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SendDeliverBody(benchmark::State& state) { run_fanout(state, 32); }
BENCHMARK(BM_SendDeliverBody)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);

/// Console reporter that additionally collects one flat JSON row per
/// non-aggregate run, tagged with the resolved dispatch tier, in the schema
/// shared by every BENCH_*.json artifact.
class RowCaptureReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      rows.begin_row();
      rows.field("bench", run.benchmark_name());
      rows.field("simd", std::string(simd::tier_name(simd::resolve_tier(g_tier))));
      rows.field("ms_per_iter", run.GetAdjustedRealTime());
      const auto it = run.counters.find("items_per_second");
      rows.field("items_per_second", it == run.counters.end() ? 0.0 : it->second.value);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  lft::bench::JsonRows rows;
};

bool parse_tier(const char* name, simd::Tier& out) {
  if (std::strcmp(name, "scalar") == 0) out = simd::Tier::kScalar;
  else if (std::strcmp(name, "avx2") == 0) out = simd::Tier::kAvx2;
  else if (std::strcmp(name, "avx512") == 0) out = simd::Tier::kAvx512;
  else if (std::strcmp(name, "auto") == 0) out = simd::Tier::kAuto;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool print_tier = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--simd=", 7) == 0) {
      if (!parse_tier(arg + 7, g_tier)) {
        std::fprintf(stderr, "unknown --simd tier '%s' (scalar|avx2|avx512|auto)\n", arg + 7);
        return 2;
      }
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--print-simd-tier") == 0) {
      print_tier = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (print_tier) {
    std::printf("%s\n", simd::tier_name(simd::resolve_tier(g_tier)));
    return 0;
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  RowCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.rows.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
