// Scenario-harness bench: replays every registered fault scenario once as a
// table (with --json=PATH capture for the BENCH_scenarios trajectory) and
// times representative scenarios from each fault class under
// google-benchmark — engine overhead of the fault plane shows up here first.
#include <string>

#include "bench_util.hpp"
#include "scenarios/scenarios.hpp"
#include "table_main.hpp"

namespace lft::bench {
namespace {

void print_scenario_table(JsonRows* json) {
  banner("fault scenarios", "every registered (protocol x fault plan x size) scenario, seed 1");
  Table table({"fault", "n", "t", "rounds", "messages", "wall_ms", "ok"});
  std::printf("%-28s", "scenario");
  table.print_header();
  for (const auto& s : scenarios::all_scenarios()) {
    const WallTimer timer;
    const auto result = s.run(/*seed=*/1, /*threads=*/1);
    const double wall_ms = timer.ms();
    std::printf("%-28s", s.name.c_str());
    table.cell(s.fault_kind);
    table.cell(static_cast<std::int64_t>(s.n));
    table.cell(s.t);
    table.cell(static_cast<std::int64_t>(result.report.rounds));
    table.cell(result.report.metrics.messages_total);
    table.cell(wall_ms);
    table.cell(result.ok ? "yes" : "NO");
    table.end_row();
    record_table_row(json, {{"scenario", s.name.c_str()}, {"fault", s.fault_kind.c_str()}},
                     s.n, s.t, result.report.rounds, result.report.metrics.messages_total,
                     result.report.metrics.bits_total, wall_ms, result.ok);
  }
}

void bm_scenario(benchmark::State& state, const char* name) {
  const auto* scenario = scenarios::find_scenario(name);
  if (scenario == nullptr) {
    state.SkipWithError("unknown scenario");
    return;
  }
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result = scenario->run(seed++, /*threads=*/1);
    benchmark::DoNotOptimize(result.report.rounds);
  }
}

BENCHMARK_CAPTURE(bm_scenario, crash_burst_flood, "crash_burst_flood")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_scenario, omission_send_quorum, "omission_send_quorum")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_scenario, partition_split_heal, "partition_split_heal")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_scenario, byz_flooders, "byz_flooders")->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lft::bench

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv, lft::bench::print_scenario_table);
}
