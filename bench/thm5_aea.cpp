// E-THM5 — Theorem 5: Almost-Everywhere-Agreement solves 3/5-AEA in O(t)
// rounds with O(n) one-bit messages (O(1) per node plus O(log t) per crash).
// Series: rounds vs t at n = 8t (linear), messages vs n at fixed t/n.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_table() {
  banner("E-THM5: Almost-Everywhere-Agreement",
         "claim: >= 3/5 n nodes decide, O(t) rounds, O(n + t log t) one-bit messages");
  Table table({"n", "t", "rounds", "rounds/t", "messages", "decided%", "agree"});
  table.print_header();
  for (std::int64_t t : {16, 32, 64, 128, 256}) {
    const NodeId n = static_cast<NodeId>(8 * t);
    const auto params = core::ConsensusParams::practical(n, t);
    const auto inputs = random_binary_inputs(n, 7);
    const auto outcome =
        core::run_aea(params, inputs, random_crashes(n, t, 5 * t, 11));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(outcome.report.rounds);
    table.cell(static_cast<double>(outcome.report.rounds) / static_cast<double>(t));
    table.cell(outcome.report.metrics.messages_total);
    table.cell(100.0 * static_cast<double>(outcome.decided_or_crashed) /
               static_cast<double>(n));
    table.cell(std::string(outcome.agreement && outcome.validity ? "yes" : "NO"));
    table.end_row();
  }
  std::printf("\nexpected shape: rounds/t flat (~5, the 5t-1 flooding part); decided%% >= 60.\n");
}

void BM_Aea(benchmark::State& state) {
  const auto t = static_cast<std::int64_t>(state.range(0));
  const NodeId n = static_cast<NodeId>(8 * t);
  const auto params = core::ConsensusParams::practical(n, t);
  const auto inputs = random_binary_inputs(n, 7);
  core::AeaOutcome outcome;
  for (auto _ : state) {
    outcome = core::run_aea(params, inputs, random_crashes(n, t, 5 * t, 11));
  }
  state.counters["rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["messages"] = static_cast<double>(outcome.report.metrics.messages_total);
}
BENCHMARK(BM_Aea)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
