// E-THM6 — Theorem 6: Spread-Common-Value solves 3/5-SCV in O(log t) rounds
// with O(t log t) messages. Both Part 2 branches are exercised: the
// all-littles pull (t^2 <= n) and the inquiry phases (t^2 > n).
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

std::vector<std::optional<std::uint64_t>> seeded(NodeId n, std::uint64_t value) {
  std::vector<std::optional<std::uint64_t>> initials(static_cast<std::size_t>(n));
  Rng rng(59);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));
  for (NodeId i = 0; i < (3 * n + 4) / 5; ++i) {
    initials[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = value;
  }
  return initials;
}

void print_table() {
  banner("E-THM6: Spread-Common-Value",
         "claim: every node learns the common value in O(log t) rounds, O(t log t) messages");
  Table table({"n", "t", "branch", "rounds", "r/lg t", "messages", "ok"});
  table.print_header();
  for (auto [n, t] : std::vector<std::pair<NodeId, std::int64_t>>{
           {400, 10}, {1600, 30}, {400, 60}, {1600, 250}, {3200, 600}}) {
    const auto params = core::ConsensusParams::practical(n, t);
    const auto outcome =
        core::run_scv(params, seeded(n, 7), random_crashes(n, t, 2 * t, 61));
    const double lgt = std::max(1, ceil_log2(static_cast<std::uint64_t>(t)));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(std::string(params.use_little_pull ? "little-pull" : "phases"));
    table.cell(outcome.report.rounds);
    table.cell(static_cast<double>(outcome.report.rounds) / lgt);
    table.cell(outcome.report.metrics.messages_total);
    table.cell(std::string(outcome.all_decided_common ? "yes" : "NO"));
    table.end_row();
  }
  std::printf("\nexpected shape: rounds/lg t bounded (logarithmic time in t).\n");
}

void BM_Scv(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 6;
  const auto params = core::ConsensusParams::practical(n, t);
  const auto initials = seeded(n, 7);
  core::ScvOutcome outcome;
  for (auto _ : state) {
    outcome = core::run_scv(params, initials, random_crashes(n, t, 2 * t, 61));
  }
  state.counters["rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["messages"] = static_cast<double>(outcome.report.metrics.messages_total);
}
BENCHMARK(BM_Scv)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
