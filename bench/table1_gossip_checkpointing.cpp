// E-T1-R2 — Table 1, row "crash gossip/checkpointing: optimal for
// t = O(n / log^2 n)". Inside that range both rounds and messages stay
// linear-bounded (messages/n flat); at t = n/6 the t log n log t term takes
// over, showing the boundary.
#include <benchmark/benchmark.h>

#include "table_main.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/checkpointing.hpp"
#include "core/gossip.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

std::vector<std::uint64_t> rumors(NodeId n) {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = 7000 + v;
  return out;
}

template <class Outcome>
void record_row(JsonRows* json, const char* problem, NodeId n, std::int64_t t,
                const char* regime, const Outcome& outcome, double wall_ms) {
  record_table_row(json, {{"problem", problem}, {"regime", regime}}, n, t,
                   outcome.report.rounds, outcome.report.metrics.messages_total,
                   outcome.report.metrics.bits_total, wall_ms, outcome.all_good());
}

void print_table(JsonRows* json) {
  banner("E-T1-R2: Table 1 row 4 (crash gossip / checkpointing)",
         "claim: O(t) time and O(n) messages for t = O(n/log^2 n)");
  Table table({"problem", "n", "t", "regime", "rounds", "messages", "msgs/n", "ok"});
  table.print_header();
  for (NodeId n : {512, 1024, 2048}) {
    const int logn = ceil_log2(static_cast<std::uint64_t>(n));
    for (const char* regime : {"n/lg^2 n", "n/6"}) {
      const std::int64_t t = std::string(regime) == "n/lg^2 n"
                                 ? std::max<std::int64_t>(1, n / (5 * logn * logn))
                                 : n / 6;
      {
        const auto params = core::GossipParams::practical(n, t);
        const WallTimer timer;
        const auto outcome =
            core::run_gossip(params, rumors(n), random_crashes(n, t, 4 * t + 20, 31));
        record_row(json, "gossip", n, t, regime, outcome, timer.ms());
        table.cell(std::string("gossip"));
        table.cell(static_cast<std::int64_t>(n));
        table.cell(t);
        table.cell(std::string(regime));
        table.cell(outcome.report.rounds);
        table.cell(outcome.report.metrics.messages_total);
        table.cell(static_cast<double>(outcome.report.metrics.messages_total) /
                   static_cast<double>(n));
        table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
        table.end_row();
      }
      {
        const auto params = core::CheckpointParams::practical(n, t);
        const WallTimer timer;
        const auto outcome =
            core::run_checkpointing(params, random_crashes(n, t, 4 * t + 20, 37));
        record_row(json, "checkpoint", n, t, regime, outcome, timer.ms());
        table.cell(std::string("checkpoint"));
        table.cell(static_cast<std::int64_t>(n));
        table.cell(t);
        table.cell(std::string(regime));
        table.cell(outcome.report.rounds);
        table.cell(outcome.report.metrics.messages_total);
        table.cell(static_cast<double>(outcome.report.metrics.messages_total) /
                   static_cast<double>(n));
        table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
        table.end_row();
      }
    }
  }
  std::printf(
      "\nexpected shape: msgs/n flat at t=n/lg^2 n (within the optimality range),\n"
      "growing with the t log n log t term at t=n/6 (outside the range).\n");
}

void BM_Gossip(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));
  const std::int64_t t = std::max<std::int64_t>(1, n / (5 * logn * logn));
  const auto params = core::GossipParams::practical(n, t);
  const auto r = rumors(n);
  core::GossipOutcome outcome;
  for (auto _ : state) {
    outcome = core::run_gossip(params, r, random_crashes(n, t, 4 * t + 20, 31));
  }
  state.counters["rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["messages"] = static_cast<double>(outcome.report.metrics.messages_total);
}
BENCHMARK(BM_Gossip)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Checkpointing(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const int logn = ceil_log2(static_cast<std::uint64_t>(n));
  const std::int64_t t = std::max<std::int64_t>(1, n / (5 * logn * logn));
  const auto params = core::CheckpointParams::practical(n, t);
  core::CheckpointOutcome outcome;
  for (auto _ : state) {
    outcome = core::run_checkpointing(params, random_crashes(n, t, 4 * t + 20, 37));
  }
  state.counters["rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["messages"] = static_cast<double>(outcome.report.metrics.messages_total);
}
BENCHMARK(BM_Checkpointing)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv, [](lft::bench::JsonRows* json) { print_table(json); });
}

