// Ablations for the design choices DESIGN.md calls out:
//  (a) overlay family — the paper's expander machinery vs. weaker topologies
//      (ring, torus, hypercube) and the degenerate complete graph, plugged
//      into the same AEA pipeline: expanders keep the 3/5-decided guarantee
//      with O(1)-degree traffic; thin graphs lose probing survivors or
//      agreement margin; complete graphs pay quadratic messages.
//  (b) probing threshold delta — too low weakens the dense-cluster
//      certificate, too high starves survivors (Theorem 2's balance).
//  (c) probing radius gamma — Theorem 3's 2 + lg n is the knee: smaller
//      radii certify too-small neighborhoods.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "bench_util.hpp"
#include "common/bitset.hpp"
#include "common/math.hpp"
#include "core/consensus.hpp"
#include "core/stages.hpp"
#include "graph/families.hpp"
#include "graph/margulis.hpp"
#include "graph/overlay.hpp"
#include "graph/properties.hpp"
#include "sim/adversary.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

struct AeaRun {
  std::int64_t decided_or_crashed = 0;
  bool agreement = true;
  Round rounds = 0;
  std::int64_t messages = 0;
};

// Runs the AEA pipeline (flood + probe + notify) with an injected little
// overlay and probing parameters.
AeaRun run_aea_with(std::shared_ptr<const graph::Graph> little_g, NodeId n, NodeId little,
                    std::int64_t t, int gamma, int delta, std::uint64_t seed) {
  sim::EngineConfig config;
  config.crash_budget = t;
  sim::Engine engine(n, config);
  std::vector<core::StageProcess*> procs;
  const auto inputs = random_binary_inputs(n, seed);
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<core::StageProcess>(v);
    proc->state().candidate = inputs[static_cast<std::size_t>(v)];
    proc->add_stage(std::make_unique<core::FloodRumorStage>(
        v, little, little_g, std::max<Round>(1, little - 1), proc->state()));
    proc->add_stage(std::make_unique<core::ProbeStage>(v, little, little_g, gamma, delta,
                                                       proc->state(), true));
    proc->add_stage(std::make_unique<core::NotifyRelatedStage>(v, n, little, proc->state()));
    procs.push_back(proc.get());
    engine.set_process(v, std::move(proc));
  }
  engine.add_fault_injector(sim::make_scheduled(sim::burst_crash_schedule(n, t, 1, seed + 1)));
  const auto report = engine.run();

  AeaRun out;
  out.rounds = report.rounds;
  out.messages = report.metrics.messages_total;
  std::optional<std::uint64_t> seen;
  for (const auto& s : report.nodes) {
    if (s.crashed || s.decided) ++out.decided_or_crashed;
    if (s.crashed || !s.decided) continue;
    if (seen && *seen != s.decision) out.agreement = false;
    seen = s.decision;
  }
  return out;
}

// Partition attack: find a BFS ball holding 1/4..1/2 of the little group,
// crash its inner boundary (all ball vertices with an outside neighbor), and
// give the ball interior input 1 and everyone else input 0. On graphs whose
// balls have small boundaries (ring, torus) the budget suffices to cut the
// graph, two components flood different values, and agreement breaks — the
// precise failure Theorem 1's expansion rules out: on expanders every
// linear-size ball has a linear-size boundary, so the cut exceeds t.
struct PartitionAttack {
  bool cut_possible = false;
  std::vector<sim::CrashEvent> crashes;
  std::vector<int> inputs;  // per little node (extended to n by caller)
};

PartitionAttack build_partition_attack(const graph::Graph& g, std::int64_t t) {
  const NodeId l = g.num_vertices();
  PartitionAttack attack;
  attack.inputs.assign(static_cast<std::size_t>(l), 0);
  DynamicBitset all(static_cast<std::size_t>(l));
  all.set_all();
  for (int radius = 1; radius < l; ++radius) {
    const auto ball = graph::neighborhood_ball(g, 0, radius, all);
    if (ball.count() * 4 < static_cast<std::size_t>(l)) continue;
    if (ball.count() * 2 > static_cast<std::size_t>(l)) break;  // grew too big
    // Inner boundary of the ball.
    std::vector<NodeId> boundary;
    ball.for_each([&](std::size_t v) {
      for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
        if (!ball.test(static_cast<std::size_t>(w))) {
          boundary.push_back(static_cast<NodeId>(v));
          break;
        }
      }
    });
    if (static_cast<std::int64_t>(boundary.size()) > t) continue;
    attack.cut_possible = true;
    for (NodeId v : boundary) attack.crashes.push_back(sim::CrashEvent{0, v, 0.0});
    ball.for_each([&](std::size_t v) { attack.inputs[v] = 1; });
    return attack;
  }
  return attack;
}

void overlay_family_table() {
  banner("ABLATION-A: overlay family under a partition attack",
         "crash a ball's inner boundary; expanders make the cut exceed t (Theorem 1)");
  struct Fam {
    const char* name;
    graph::Graph g;
    int delta;
  };
  std::vector<Fam> families;
  families.push_back({"certified-16", graph::make_overlay(400, 16, 77), 4});
  families.push_back({"margulis", graph::margulis_graph(20), 2});
  families.push_back({"hypercube", graph::hypercube_graph(8), 2});
  families.push_back({"torus", graph::torus_graph(20, 20), 1});
  families.push_back({"ring", graph::ring_graph(400), 1});

  Table table({"overlay", "degree", "cut<=t?", "cut_size", "decided%", "agree"});
  table.print_header();
  for (auto& fam : families) {
    const NodeId l = fam.g.num_vertices();
    const NodeId n = 5 * l;
    const std::int64_t t = l / 5;
    auto attack = build_partition_attack(fam.g, t);
    auto g = std::make_shared<const graph::Graph>(std::move(fam.g));
    const int gamma = 2 + ceil_log2(static_cast<std::uint64_t>(l));

    sim::EngineConfig config;
    config.crash_budget = t;
    sim::Engine engine(n, config);
    std::vector<core::StageProcess*> procs;
    for (NodeId v = 0; v < n; ++v) {
      auto proc = std::make_unique<core::StageProcess>(v);
      proc->state().candidate =
          v < l ? attack.inputs[static_cast<std::size_t>(v)] : 0;
      proc->add_stage(std::make_unique<core::FloodRumorStage>(
          v, l, g, std::max<Round>(1, l - 1), proc->state()));
      proc->add_stage(
          std::make_unique<core::ProbeStage>(v, l, g, gamma, fam.delta, proc->state(), true));
      proc->add_stage(std::make_unique<core::NotifyRelatedStage>(v, n, l, proc->state()));
      procs.push_back(proc.get());
      engine.set_process(v, std::move(proc));
    }
    engine.add_fault_injector(sim::make_scheduled(attack.crashes));
    const auto report = engine.run();

    std::int64_t decided_or_crashed = 0;
    bool agreement = true;
    std::optional<std::uint64_t> seen;
    for (const auto& s : report.nodes) {
      if (s.crashed || s.decided) ++decided_or_crashed;
      if (s.crashed || !s.decided) continue;
      if (seen && *seen != s.decision) agreement = false;
      seen = s.decision;
    }
    table.cell(std::string(fam.name));
    table.cell(static_cast<std::int64_t>(g->max_degree()));
    table.cell(std::string(attack.cut_possible ? "yes" : "no"));
    table.cell(static_cast<std::int64_t>(attack.crashes.size()));
    table.cell(100.0 * static_cast<double>(decided_or_crashed) / static_cast<double>(n));
    table.cell(std::string(agreement ? "yes" : "NO"));
    table.end_row();
  }
  std::printf(
      "\nexpected shape: on the expanders (certified-16, margulis, hypercube) no ball\n"
      "has a cuttable boundary within budget, so agreement stands; on ring/torus the\n"
      "cut succeeds, the two components flood different values, and agreement breaks\n"
      "exactly as Lemma 4 predicts when Theorem 1's expansion is absent.\n");
}

void delta_sensitivity_table() {
  banner("ABLATION-B: probing threshold delta",
         "degree-16 certified overlay, 20% burst crashes; Theorem 2's balance");
  const NodeId little = 400;
  const NodeId n = 2000;
  const std::int64_t t = little / 5;
  const int gamma = 2 + ceil_log2(static_cast<std::uint64_t>(little));
  auto g = graph::shared_overlay(little, 16, 0xAB1A);

  Table table({"delta", "decided%", "agree", "messages"});
  table.print_header();
  for (int delta : {0, 4, 8, 12, 13, 14, 15, 16}) {
    const auto run = run_aea_with(g, n, little, t, gamma, delta, 9);
    table.cell(static_cast<std::int64_t>(delta));
    table.cell(100.0 * static_cast<double>(run.decided_or_crashed) / static_cast<double>(n));
    table.cell(std::string(run.agreement ? "yes" : "NO"));
    table.cell(run.messages);
    table.end_row();
  }
  std::printf(
      "\nexpected shape: with 20%% random crashes the expected alive-degree is ~12.8,\n"
      "so decided%% stays high through delta ~ 12 and collapses for delta >= 13-14\n"
      "(survivor starvation, the upper side of Theorem 2's balance); the lower side\n"
      "(weak certificates at tiny delta) is what ABLATION-A's partition attack probes.\n");
}

void gamma_sensitivity_table() {
  banner("ABLATION-C: probing radius gamma",
         "Theorem 3: radius 2 + lg L certifies linear-size dense neighborhoods");
  const NodeId little = 400;
  const NodeId n = 2000;
  const std::int64_t t = little / 5;
  auto g = graph::shared_overlay(little, 16, 0xAB1C);

  Table table({"gamma", "decided%", "agree", "rounds"});
  table.print_header();
  const int knee = 2 + ceil_log2(static_cast<std::uint64_t>(little));
  for (int gamma : {1, 2, 4, knee, knee + 4}) {
    const auto run = run_aea_with(g, n, little, t, gamma, 4, 13);
    table.cell(static_cast<std::int64_t>(gamma));
    table.cell(100.0 * static_cast<double>(run.decided_or_crashed) / static_cast<double>(n));
    table.cell(std::string(run.agreement ? "yes" : "NO"));
    table.cell(run.rounds);
    table.end_row();
  }
  std::printf(
      "\nexpected shape: under *random* crashes every gamma succeeds — gamma buys\n"
      "worst-case certification (Theorem 3's dense neighborhoods of linear size),\n"
      "not average-case progress; its measured cost is the linear-in-gamma round\n"
      "overhead shown here, which is why the paper stops at the 2 + lg L knee.\n");
}

void BM_AblationAea(benchmark::State& state) {
  const NodeId little = 400;
  auto g = graph::shared_overlay(little, 16, 0xAB1A);
  for (auto _ : state) {
    auto run = run_aea_with(g, 2000, little, little / 5,
                            2 + ceil_log2(static_cast<std::uint64_t>(little)), 4, 9);
    benchmark::DoNotOptimize(run.rounds);
  }
}
BENCHMARK(BM_AblationAea)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  overlay_family_table();
  delta_sensitivity_table();
  gamma_sensitivity_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
