// E-T1-R3 — Table 1, row "authenticated Byzantine consensus: optimal for
// t = O(sqrt(n))". AB-Consensus takes O(t) rounds and O(t^2 + n) honest
// messages; at t = sqrt(n) both are linear, and the honest-message ratio to
// (t^2 + n) stays flat. The n-source Dolev-Strong baseline ([24], the t=O(1)
// row) pays Theta(n^2) messages regardless.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "table_main.hpp"
#include "bench_util.hpp"
#include "byzantine/ab_consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

std::vector<std::uint64_t> binary_inputs(NodeId n) {
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) inputs[static_cast<std::size_t>(v)] = v % 2;
  return inputs;
}

std::vector<std::pair<NodeId, std::string>> byz_mix(NodeId little, std::int64_t t) {
  std::vector<std::pair<NodeId, std::string>> byz;
  const char* kinds[] = {"silent", "equivocate", "flood"};
  for (std::int64_t i = 0; i < t; ++i) {
    byz.emplace_back(static_cast<NodeId>(i * 3 % little), kinds[i % 3]);
  }
  // Deduplicate targets (behavior of the first claim wins).
  std::sort(byz.begin(), byz.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  byz.erase(std::unique(byz.begin(), byz.end(),
                        [](const auto& a, const auto& b) { return a.first == b.first; }),
            byz.end());
  return byz;
}

void record_row(JsonRows* json, const char* algo, NodeId n, std::int64_t t, Round rounds,
                std::int64_t honest_msgs, std::int64_t bits, double wall_ms, bool ok) {
  record_table_row(json, {{"algo", algo}}, n, t, rounds, honest_msgs, bits, wall_ms, ok);
}

void print_table(JsonRows* json) {
  banner("E-T1-R3: Table 1 row 6 (authenticated Byzantine consensus)",
         "claim: O(t) rounds, O(t^2 + n) honest messages for t = O(sqrt(n))");
  Table table({"algo", "n", "t", "rounds", "honest_msgs", "msgs/(t^2+n)", "agree"});
  table.print_header();
  for (NodeId n : {256, 1024, 2304}) {
    const auto t = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)) / 2);
    const auto params = byzantine::AbParams::practical(n, t);
    const auto inputs = binary_inputs(n);
    const auto byz = byz_mix(params.little_count, t);
    const WallTimer timer;
    const auto outcome = byzantine::run_ab_consensus(params, inputs, byz);
    record_row(json, "ab_consensus", n, t, outcome.report.rounds,
               outcome.report.metrics.messages_honest, outcome.report.metrics.bits_honest,
               timer.ms(), outcome.agreement && outcome.termination);
    const double shape = static_cast<double>(t * t + n);
    table.cell(std::string("AB-Consensus"));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(outcome.report.rounds);
    table.cell(outcome.report.metrics.messages_honest);
    table.cell(static_cast<double>(outcome.report.metrics.messages_honest) / shape);
    table.cell(std::string(outcome.agreement && outcome.termination ? "yes" : "NO"));
    table.end_row();
  }
  for (NodeId n : {64, 128, 256}) {
    const auto t = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)) / 2);
    const WallTimer timer;
    const auto outcome = baselines::run_full_dolev_strong(n, t, binary_inputs(n), {});
    record_row(json, "full_dolev_strong", n, t, outcome.report.rounds,
               outcome.report.metrics.messages_honest, outcome.report.metrics.bits_honest,
               timer.ms(), outcome.agreement && outcome.termination);
    const double shape = static_cast<double>(t * t + n);
    table.cell(std::string("full-DS [24]"));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(t);
    table.cell(outcome.report.rounds);
    table.cell(outcome.report.metrics.messages_honest);
    table.cell(static_cast<double>(outcome.report.metrics.messages_honest) / shape);
    table.cell(std::string(outcome.agreement && outcome.termination ? "yes" : "NO"));
    table.end_row();
  }
  std::printf(
      "\nexpected shape: AB-Consensus msgs/(t^2+n) flat (linear communication at\n"
      "t = sqrt(n)); the full Dolev-Strong baseline grows ~n per node (Theta(n^2)).\n");
}

void BM_AbConsensus(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto t = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)) / 2);
  const auto params = byzantine::AbParams::practical(n, t);
  const auto inputs = binary_inputs(n);
  const auto byz = byz_mix(params.little_count, t);
  byzantine::AbOutcome outcome;
  for (auto _ : state) {
    outcome = byzantine::run_ab_consensus(params, inputs, byz);
  }
  state.counters["rounds"] = static_cast<double>(outcome.report.rounds);
  state.counters["honest_msgs"] = static_cast<double>(outcome.report.metrics.messages_honest);
}
BENCHMARK(BM_AbConsensus)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv, [](lft::bench::JsonRows* json) { print_table(json); });
}

