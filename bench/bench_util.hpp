// Shared helpers for the benchmark harness: fixed-width paper-style table
// printing (each bench binary first regenerates its table/figure rows, then
// runs google-benchmark timings) and common workload construction.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/adversary.hpp"

namespace lft::bench {

/// Prints aligned rows: header once, then one row per call.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {}

  void print_header() const {
    for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void cell(const std::string& value) const { std::printf("%*s", width_, value.c_str()); }
  void cell(std::int64_t value) const { std::printf("%*lld", width_, static_cast<long long>(value)); }
  void cell(double value) const { std::printf("%*.3f", width_, value); }
  void cell_sci(double value) const { std::printf("%*.2e", width_, value); }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> columns_;
  int width_;
};

inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

inline std::vector<int> random_binary_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  return inputs;
}

inline std::unique_ptr<sim::FaultInjector> random_crashes(NodeId n, std::int64_t t,
                                                           Round window, std::uint64_t seed) {
  if (t == 0) return nullptr;
  return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, window, 0.0, seed));
}

}  // namespace lft::bench
