// Service commit-path bench: in-process loopback throughput of the
// ReplicaGroup slot pipeline, no sockets and no client threads — the
// server-side ceiling the service plane can reach once network I/O is off
// the table. The table sweeps pipeline depth D (1/2/4) against batch size
// and reports commands/sec plus the per-slot consensus cost; depth 1 is the
// strictly serial commit path, so the D>1 rows isolate what slot pooling
// plus pipelined stepping buys. Every cell asserts the log digest matches
// the depth-1 reference — pipelining must change throughput, never the log.
// --json=PATH captures the rows in the BENCH_*.json artifact schema.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "service/replica.hpp"
#include "table_main.hpp"

namespace lft::bench {
namespace {

using service::Command;
using service::ReplicaGroup;
using service::ReplicaGroupOptions;

std::vector<Command> make_batch(std::uint64_t& next_request, std::size_t batch_size) {
  std::vector<Command> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    Command cmd;
    cmd.client_id = 1 + (next_request % 8);
    cmd.request_id = 1 + next_request / 8;
    cmd.payload.resize(16, std::byte{0x5a});
    batch.push_back(std::move(cmd));
    ++next_request;
  }
  return batch;
}

struct CellResult {
  double wall_ms = 0.0;
  double commands_per_s = 0.0;
  double slot_us = 0.0;  ///< mean wall time per consensus slot
  std::uint64_t digest = 0;
  std::uint64_t slots = 0;
};

/// Pushes `commands` commands through the pipeline in batches of
/// `batch_size`, keeping the pipeline as full as depth permits.
CellResult run_cell(int pipeline, std::size_t batch_size, std::uint64_t commands) {
  ReplicaGroupOptions options;
  options.pipeline = pipeline;
  ReplicaGroup group(options);
  std::uint64_t next_request = 0;
  std::uint64_t enqueued = 0;
  const WallTimer timer;
  while (enqueued < commands || group.in_flight() > 0) {
    while (enqueued < commands && group.can_enqueue()) {
      group.enqueue(make_batch(next_request, batch_size));
      enqueued += batch_size;
    }
    group.step();
    while (group.head_ready()) {
      const auto result = group.take_head();
      benchmark::DoNotOptimize(result.applied.size());
    }
  }
  CellResult cell;
  cell.wall_ms = timer.ms();
  cell.commands_per_s =
      cell.wall_ms > 0.0 ? static_cast<double>(commands) / (cell.wall_ms / 1000.0) : 0.0;
  cell.slots = group.slots();
  cell.slot_us = group.slots() > 0
                     ? cell.wall_ms * 1000.0 / static_cast<double>(group.slots())
                     : 0.0;
  cell.digest = group.machine().digest();
  return cell;
}

void print_service_table(JsonRows* json) {
  banner("service commit pipeline",
         "loopback ReplicaGroup throughput (commands/sec) by pipeline depth and batch "
         "size; every cell must reproduce the depth-1 log digest");
  static const int kDepths[] = {1, 2, 4};
  static const std::size_t kBatches[] = {64, 256, 1024};
  const std::uint64_t commands = 1 << 16;

  Table table({"depth", "batch", "slots", "wall_ms", "cmds_per_s", "slot_us", "digest_ok"});
  table.print_header();
  for (const std::size_t batch : kBatches) {
    std::uint64_t reference_digest = 0;
    for (const int depth : kDepths) {
      const CellResult cell = run_cell(depth, batch, commands);
      if (depth == 1) reference_digest = cell.digest;
      const bool digest_ok = cell.digest == reference_digest;
      table.cell(static_cast<std::int64_t>(depth));
      table.cell(static_cast<std::int64_t>(batch));
      table.cell(static_cast<std::int64_t>(cell.slots));
      table.cell(cell.wall_ms);
      table.cell(cell.commands_per_s);
      table.cell(cell.slot_us);
      table.cell(std::string(digest_ok ? "yes" : "NO"));
      table.end_row();
      if (json != nullptr) {
        json->begin_row();
        // Per-cell bench name + items_per_second keep the rows renderable as
        // a bench/history/ series by scripts/bench_report.py.
        json->field("bench", std::string("service_commit_pipeline/d") +
                                 std::to_string(depth) + "/b" + std::to_string(batch));
        json->field("simd", std::string("service"));
        json->field("depth", static_cast<std::int64_t>(depth));
        json->field("batch", static_cast<std::int64_t>(batch));
        json->field("commands", static_cast<std::int64_t>(commands));
        json->field("slots", static_cast<std::int64_t>(cell.slots));
        json->field("wall_ms", cell.wall_ms);
        json->field("cmds_per_s", cell.commands_per_s);
        json->field("items_per_second", cell.commands_per_s);
        json->field("slot_us", cell.slot_us);
        json->field("ok", std::string(digest_ok ? "yes" : "NO"));
      }
      if (!digest_ok) {
        std::fprintf(stderr, "digest mismatch at depth %d batch %zu\n", depth, batch);
        std::exit(1);
      }
    }
  }
}

/// google-benchmark twin of the table: one 256-command batch per iteration,
/// pipeline kept full at the requested depth.
void bm_commit_pipeline(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  constexpr std::size_t kBatch = 256;
  service::ReplicaGroupOptions options;
  options.pipeline = depth;
  service::ReplicaGroup group(options);
  std::uint64_t next_request = 0;
  for (auto _ : state) {
    while (!group.can_enqueue()) {
      group.step();
      while (group.head_ready()) {
        benchmark::DoNotOptimize(group.take_head().applied.size());
      }
    }
    group.enqueue(make_batch(next_request, kBatch));
  }
  while (group.in_flight() > 0) {
    group.step();
    while (group.head_ready()) {
      benchmark::DoNotOptimize(group.take_head().applied.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(bm_commit_pipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lft::bench

int main(int argc, char** argv) {
  return lft::bench::table_main(argc, argv,
                                [](lft::bench::JsonRows* json) {
                                  lft::bench::print_service_table(json);
                                });
}
