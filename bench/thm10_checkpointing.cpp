// E-THM10 — Theorem 10: Checkpointing in O(t + log n log t) rounds with
// O(n + t log n log t) messages, improving the O(t n) message bound of the
// classical leader-collect scheme (De Prisco-Mayer-Yung shape) by a
// polynomial factor — the paper's headline claim for this problem.
#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/checkpointing.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

void print_table() {
  banner("E-THM10: Checkpointing",
         "claim: O(t + log n log t) rounds, O(n + t log n log t) messages vs O(t n) baseline");
  Table table({"algorithm", "n", "t", "rounds", "messages", "msgs/n", "ok"});
  table.print_header();
  for (NodeId n : {512, 1024, 2048, 4096}) {
    const std::int64_t t = n / 12;
    {
      const auto params = core::CheckpointParams::practical(n, t);
      const auto outcome = core::run_checkpointing(params, random_crashes(n, t, 4 * t, 71));
      table.cell(std::string("Checkpoint(Fig.6)"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.messages_total);
      table.cell(static_cast<double>(outcome.report.metrics.messages_total) / n);
      table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
      table.end_row();
    }
    {
      const auto outcome =
          baselines::run_naive_checkpointing(n, t, random_crashes(n, t, t, 71));
      table.cell(std::string("leader-collect"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.messages_total);
      table.cell(static_cast<double>(outcome.report.metrics.messages_total) / n);
      table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
      table.end_row();
    }
  }
  std::printf(
      "\nexpected shape: Figure 6 msgs/n grows polylog; the baseline's msgs/n grows ~n\n"
      "(its n^2 presence exchange + t coordinator broadcasts), a polynomial separation.\n");
}

void BM_Checkpointing(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 12;
  const auto params = core::CheckpointParams::practical(n, t);
  for (auto _ : state) {
    auto outcome = core::run_checkpointing(params, random_crashes(n, t, 4 * t, 71));
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_Checkpointing)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
