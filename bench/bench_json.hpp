// Machine-readable bench output: each table row the bench prints is also
// recorded as a flat JSON object, and `--json=PATH` writes the rows as a
// JSON array so CI can archive the perf trajectory (BENCH_*.json artifacts).
// No dependencies — values are integers, doubles, or plain strings; the
// scenario runner reuses this without linking Google Benchmark (the
// benchmark-aware table_main lives in table_main.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace lft::bench {

/// Collects rows of key/value fields and serializes them as a JSON array of
/// flat objects.
class JsonRows {
 public:
  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, std::int64_t v) { rows_.back().emplace_back(key, v); }
  void field(const std::string& key, double v) { rows_.back().emplace_back(key, v); }
  void field(const std::string& key, const std::string& v) {
    rows_.back().emplace_back(key, v);
  }

  /// Writes the collected rows to `path`; returns false on IO failure.
  [[nodiscard]] bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "  {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        const auto& [key, value] = rows_[r][i];
        std::fprintf(f, "%s\"%s\": ", i == 0 ? "" : ", ", escaped(key).c_str());
        if (std::holds_alternative<std::int64_t>(value)) {
          std::fprintf(f, "%lld", static_cast<long long>(std::get<std::int64_t>(value)));
        } else if (std::holds_alternative<double>(value)) {
          std::fprintf(f, "%.6g", std::get<double>(value));
        } else {
          std::fprintf(f, "\"%s\"", escaped(std::get<std::string>(value)).c_str());
        }
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    return std::fclose(f) == 0;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  using Value = std::variant<std::int64_t, double, std::string>;
  std::vector<std::vector<std::pair<std::string, Value>>> rows_;
};

/// Splits a comma-separated CLI value into its non-empty parts (shared by
/// the lft_scenarios --run= and lft_fleet --scenario=/--sizes= parsers).
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string part =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return parts;
}

/// Returns the PATH of a `--json=PATH` argument, or "" if absent. Leaves
/// argv untouched (google-benchmark ignores flags it does not recognize
/// when ReportUnrecognizedArguments is not called).
inline std::string json_flag(int argc, char** argv) {
  const std::string prefix = "--json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return {};
}

/// Appends one table1-style row: any leading label fields, then the common
/// (n, t, rounds, messages, bits, wall_ms, ok) columns every BENCH_*.json
/// artifact shares — keeping the four table benches' schemas from
/// diverging. No-op when json is null (no --json flag).
inline void record_table_row(JsonRows* json,
                             std::initializer_list<std::pair<const char*, const char*>> labels,
                             NodeId n, std::int64_t t, std::int64_t rounds,
                             std::int64_t messages, std::int64_t bits, double wall_ms,
                             bool ok) {
  if (json == nullptr) return;
  json->begin_row();
  for (const auto& [key, value] : labels) json->field(key, std::string(value));
  json->field("n", static_cast<std::int64_t>(n));
  json->field("t", t);
  json->field("rounds", rounds);
  json->field("messages", messages);
  json->field("bits", bits);
  json->field("wall_ms", wall_ms);
  json->field("ok", std::string(ok ? "yes" : "NO"));
}

/// Wall-clock stopwatch for per-row timings.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lft::bench
