// E-THM9 — Theorem 9: Gossip solves gossiping in O(log n log t) rounds with
// O(n + t log n log t) messages, improving on the quadratic all-to-all
// baseline by a factor ~n/(t polylog) while paying polylog rounds.
#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/gossip.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

std::vector<std::uint64_t> rumors(NodeId n) {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = 9000 + v;
  return out;
}

void print_table() {
  banner("E-THM9: Gossip",
         "claim: O(log n log t) rounds, O(n + t log n log t) messages; all-to-all pays n^2");
  Table table({"algorithm", "n", "t", "rounds", "messages", "r/(lgn*lgt)", "ok"});
  table.print_header();
  for (NodeId n : {512, 1024, 2048}) {
    const std::int64_t t = n / 12;
    const double lgn = ceil_log2(static_cast<std::uint64_t>(n));
    const double lgt = std::max(1, ceil_log2(static_cast<std::uint64_t>(5 * t)));
    {
      const auto params = core::GossipParams::practical(n, t);
      const auto outcome =
          core::run_gossip(params, rumors(n), random_crashes(n, t, 4 * t, 67));
      table.cell(std::string("Gossip (Fig.5)"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.messages_total);
      table.cell(static_cast<double>(outcome.report.rounds) / (lgn * lgt));
      table.cell(std::string(outcome.all_good() ? "yes" : "NO"));
      table.end_row();
    }
    {
      const auto outcome = baselines::run_all_to_all_gossip(n, t, random_crashes(n, t, 1, 67));
      table.cell(std::string("all-to-all"));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.messages_total);
      table.cell(static_cast<double>(outcome.report.rounds) / (lgn * lgt));
      table.cell(std::string(outcome.condition1 && outcome.condition2 ? "yes" : "NO"));
      table.end_row();
    }
  }
  std::printf(
      "\nexpected shape: Gossip rounds/(lg n * lg t) flat; messages grow ~linearly in n\n"
      "while the all-to-all baseline grows quadratically (the who-wins crossover).\n");
}

void BM_Gossip(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 12;
  const auto params = core::GossipParams::practical(n, t);
  const auto r = rumors(n);
  for (auto _ : state) {
    auto outcome = core::run_gossip(params, r, random_crashes(n, t, 4 * t, 67));
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_Gossip)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
