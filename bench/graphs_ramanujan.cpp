// E-THM1-4 — Section 3's Ramanujan-graph properties, measured on genuine
// LPS graphs, Margulis expanders, and the certified random-regular overlays
// the protocols use:
//   Theorem 1 (ell-expansion), Theorem 2 (compactness: survival subsets of
//   >= 3/4 of any large vertex set), Theorem 3 (dense-neighborhood growth to
//   linear size at radius 2 + lg n), Theorem 4 (cross-edges between linear
//   sets), plus construction/certification timings.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "graph/lps.hpp"
#include "graph/margulis.hpp"
#include "graph/overlay.hpp"
#include "graph/properties.hpp"
#include "graph/random_regular.hpp"
#include "graph/spectral.hpp"

namespace {

using namespace lft;
using namespace lft::bench;
using graph::Graph;

DynamicBitset random_subset(NodeId n, NodeId keep, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));
  DynamicBitset b(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < keep; ++i) b.set(static_cast<std::size_t>(perm[i]));
  return b;
}

void spectra_table() {
  banner("E-THM1-4 (spectra)", "lambda = max(|l2|,|ln|) vs the Ramanujan bound 2 sqrt(d-1)");
  Table table({"family", "n", "d", "lambda", "bound", "ramanujan"});
  table.print_header();
  const auto catalog = graph::lps_catalog(3000);
  for (const auto& params : catalog) {
    const auto res = graph::lps_graph(params.p, params.q);
    const double lambda = graph::second_eigenvalue_estimate(res.graph, 250);
    const double bound = graph::ramanujan_bound(res.degree);
    table.cell(std::string("LPS"));
    table.cell(params.vertices);
    table.cell(static_cast<std::int64_t>(res.degree));
    table.cell(lambda);
    table.cell(bound);
    table.cell(std::string(lambda <= bound * 1.001 ? "yes" : "NO"));
    table.end_row();
  }
  {
    const Graph g = graph::margulis_graph(32);
    const double lambda = graph::second_eigenvalue_estimate(g, 250);
    table.cell(std::string("Margulis"));
    table.cell(static_cast<std::int64_t>(g.num_vertices()));
    table.cell(static_cast<std::int64_t>(g.max_degree()));
    table.cell(lambda);
    table.cell(graph::ramanujan_bound(8));
    table.cell(std::string(lambda <= 5.0 * 1.4143 ? "5sqrt2" : "NO"));
    table.end_row();
  }
  for (NodeId n : {1024, 4096}) {
    const Graph g = graph::make_overlay(n, 16, 999);
    const double lambda = graph::second_eigenvalue_estimate(g, 250);
    const double bound = graph::ramanujan_bound(16);
    table.cell(std::string("rand-reg"));
    table.cell(static_cast<std::int64_t>(n));
    table.cell(std::int64_t{16});
    table.cell(lambda);
    table.cell(bound);
    table.cell(std::string(lambda <= bound * 1.25 ? "near" : "NO"));
    table.end_row();
  }
}

void compactness_table() {
  banner("E-THM2 (compactness)",
         "claim: any set B keeps a delta-survival core of >= 3/4 |B| after crashes");
  Table table({"family", "n", "removed%", "delta", "|B|", "|core|", "core/B"});
  table.print_header();
  const auto catalog = graph::lps_catalog(1500);
  const auto lps = graph::lps_graph(catalog.front().p, catalog.front().q);
  struct Case {
    const Graph* g;
    const char* name;
    int delta;
  };
  const Graph rr = graph::make_overlay(2048, 16, 1234);
  for (const Case& c : {Case{&lps.graph, "LPS", lps.degree / 4},
                        Case{&lps.graph, "LPS", lps.degree / 2},
                        Case{&rr, "rand-reg", 4}, Case{&rr, "rand-reg", 8}}) {
    const NodeId n = c.g->num_vertices();
    for (int removed_pct : {10, 20, 30}) {
      const auto b = random_subset(n, n - n * removed_pct / 100, 77);
      const auto core = graph::survival_subset(*c.g, b, c.delta);
      table.cell(std::string(c.name));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(static_cast<std::int64_t>(removed_pct));
      table.cell(static_cast<std::int64_t>(c.delta));
      table.cell(static_cast<std::int64_t>(b.count()));
      table.cell(static_cast<std::int64_t>(core.count()));
      table.cell(static_cast<double>(core.count()) / static_cast<double>(b.count()));
      table.end_row();
    }
  }
  std::printf(
      "\nexpected shape: core/B >= 0.75 throughout (Theorem 2's 3/4 fraction); the\n"
      "protocols' delta = degree/4 keeps the core at ~100%% even at 30%% removals.\n");
}

void dense_growth_table() {
  banner("E-THM3 (dense-neighborhood growth)",
         "claim: dense neighborhoods double per radius step until linear size");
  Table table({"radius", "|dense(v)|", "n"});
  table.print_header();
  const NodeId n = 2048;
  const Graph g = graph::make_overlay(n, 16, 555);
  DynamicBitset all(static_cast<std::size_t>(n));
  all.set_all();
  for (int radius : {1, 2, 4, 6, 8, 10, 2 + ceil_log2(static_cast<std::uint64_t>(n))}) {
    const auto size = graph::dense_neighborhood_size(g, 0, radius, 4, all);
    table.cell(static_cast<std::int64_t>(radius));
    table.cell(static_cast<std::int64_t>(size));
    table.cell(static_cast<std::int64_t>(n));
    table.end_row();
  }
  std::printf("\nexpected shape: roughly doubling until a constant fraction of n.\n");
}

void cross_edges_table() {
  banner("E-THM4 (cross edges)",
         "claim: disjoint linear-size sets are always joined by an edge");
  Table table({"family", "n", "|A|", "|B|", "trials", "all_joined"});
  table.print_header();
  const Graph g = graph::make_overlay(4096, 16, 321);
  Rng rng(3);
  const NodeId n = g.num_vertices();
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  bool all_joined = true;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    rng.shuffle(std::span<NodeId>(perm));
    DynamicBitset a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n / 3; ++i) a.set(static_cast<std::size_t>(perm[i]));
    for (NodeId i = 0; i < n / 3; ++i) b.set(static_cast<std::size_t>(perm[n / 3 + i]));
    if (graph::edges_between(g, a, b) == 0) all_joined = false;
  }
  table.cell(std::string("rand-reg"));
  table.cell(static_cast<std::int64_t>(n));
  table.cell(static_cast<std::int64_t>(n / 3));
  table.cell(static_cast<std::int64_t>(n / 3));
  table.cell(static_cast<std::int64_t>(trials));
  table.cell(std::string(all_joined ? "yes" : "NO"));
  table.end_row();
}

void BM_LpsConstruction(benchmark::State& state) {
  const auto catalog = graph::lps_catalog(3000);
  const auto params = catalog.back();
  for (auto _ : state) {
    auto res = graph::lps_graph(params.p, params.q);
    benchmark::DoNotOptimize(res.graph.num_edges());
  }
  state.counters["vertices"] = static_cast<double>(params.vertices);
}
BENCHMARK(BM_LpsConstruction)->Unit(benchmark::kMillisecond);

void BM_CertifiedOverlay(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t tag = 10000;
  for (auto _ : state) {
    auto g = graph::make_overlay(n, 16, tag++);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_CertifiedOverlay)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_SurvivalSubset(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = graph::make_overlay(n, 16, 42);
  const auto b = random_subset(n, n - n / 5, 7);
  for (auto _ : state) {
    auto core = graph::survival_subset(g, b, 4);
    benchmark::DoNotOptimize(core.count());
  }
}
BENCHMARK(BM_SurvivalSubset)->Arg(4096)->Arg(16384)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  spectra_table();
  compactness_table();
  dense_growth_table();
  cross_edges_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
