// E-THM11 — Theorem 11: AB-Consensus under authenticated Byzantine faults:
// O(t) rounds and O(t^2 + n) messages from non-faulty nodes, across
// Byzantine behaviors (silent / equivocating / flooding); Byzantine traffic
// is excluded from the bound exactly as the paper counts it.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "byzantine/ab_consensus.hpp"

namespace {

using namespace lft;
using namespace lft::bench;

std::vector<std::uint64_t> inputs_of(NodeId n) {
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) inputs[static_cast<std::size_t>(v)] = (v * 7 % 13) % 2;
  return inputs;
}

std::vector<std::pair<NodeId, std::string>> byz_assign(const char* kind, NodeId little,
                                                       std::int64_t count) {
  std::vector<std::pair<NodeId, std::string>> byz;
  for (std::int64_t i = 0; i < count; ++i) {
    byz.emplace_back(static_cast<NodeId>((2 * i + 1) % little), kind);
  }
  std::sort(byz.begin(), byz.end());
  byz.erase(std::unique(byz.begin(), byz.end(),
                        [](const auto& a, const auto& b) { return a.first == b.first; }),
            byz.end());
  return byz;
}

void print_table() {
  banner("E-THM11: AB-Consensus under Byzantine behaviors",
         "claim: O(t) rounds, O(t^2 + n) honest messages; Byzantine floods don't count");
  Table table(
      {"behavior", "n", "t", "rounds", "honest_msgs", "total_msgs", "h/(t^2+n)", "agree"});
  table.print_header();
  for (auto [n, t] : std::vector<std::pair<NodeId, std::int64_t>>{
           {200, 8}, {400, 16}, {800, 32}}) {
    for (const char* kind : {"silent", "equivocate", "flood"}) {
      const auto params = byzantine::AbParams::practical(n, t);
      const auto byz = byz_assign(kind, params.little_count, t);
      const auto outcome = byzantine::run_ab_consensus(params, inputs_of(n), byz);
      table.cell(std::string(kind));
      table.cell(static_cast<std::int64_t>(n));
      table.cell(t);
      table.cell(outcome.report.rounds);
      table.cell(outcome.report.metrics.messages_honest);
      table.cell(outcome.report.metrics.messages_total);
      table.cell(static_cast<double>(outcome.report.metrics.messages_honest) /
                 static_cast<double>(t * t + n));
      table.cell(std::string(outcome.agreement && outcome.termination ? "yes" : "NO"));
      table.end_row();
    }
  }
  std::printf(
      "\nexpected shape: honest/(t^2+n) flat across sizes and behaviors; total > honest\n"
      "only for the flooding behavior (excluded by the paper's accounting).\n");
}

void BM_AbConsensusBehaviors(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::int64_t t = n / 25;
  const auto params = byzantine::AbParams::practical(n, t);
  const auto byz = byz_assign("flood", params.little_count, t);
  const auto inputs = inputs_of(n);
  for (auto _ : state) {
    auto outcome = byzantine::run_ab_consensus(params, inputs, byz);
    benchmark::DoNotOptimize(outcome.report.rounds);
  }
}
BENCHMARK(BM_AbConsensusBehaviors)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
